/**
 * @file
 * Sharded-engine sweep: islands x shard count on a tree fabric.
 *
 * The repo's trial harness already fans independent trials across
 * cores (--jobs); this bench measures the new axis — intra-trial
 * parallelism from the sharded event loop (sim/sharded.hpp). Each
 * cell runs the fabric scenario on a tree topology with the islands
 * partitioned across K shard simulators and reports wall time,
 * window/boundary accounting and the scenario's deterministic
 * counters.
 *
 * Two claims are self-checked (exit non-zero on violation):
 *
 *  1. Determinism: for a given island count and seed, the scenario
 *     digest — and the window/boundary-message counts, which are
 *     pure functions of the global event set — are bit-identical
 *     for every swept shard count. Always enforced.
 *  2. Speedup: at the largest swept island count, 4 shards must be
 *     at least 3x faster than 1 shard. Only enforced when the host
 *     has >= 4 hardware threads (a 1-core CI box cannot exhibit
 *     parallel speedup); override the threshold with
 *     CORM_SHARD_SPEEDUP_MIN (0 disables).
 *
 * Custom flags, consumed before the shared bench CLI:
 *
 *   --islands N[,N...]   island counts to sweep (default 64,256)
 *   --shards K[,K...]    shard counts to sweep (default 1,2,4)
 *
 * The shared capture flags (--trace/--monitor/--metrics) attach to
 * trial 0 of the first swept cell and flow through the sharded
 * barrier-time merge (DESIGN.md §11). Any capture flag also arms
 * the observability overhead pin: the first island count is re-run
 * at the largest shard count fully captured, in flight mode
 * (monitor only) and bare; the three digests must agree at zero
 * tolerance (exit non-zero otherwise) and the wall ratios plus
 * capture counts are reported under results.obs_overhead for the
 * shard_obs_gate_check baseline.
 *
 * The workload is deliberately dense (many tunes per epoch, a
 * 500 us hop latency) so each lookahead window carries enough
 * events to amortise the barrier. The workload window is fixed by
 * the scenario (not --warmup-sec/--measure-sec) so the gated
 * baseline stays comparable across invocations.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "coord/fabric.hpp"
#include "obs/trace.hpp"

namespace {

/** Split "1,2,4" into integers within [lo, hi]; exits on garbage. */
std::vector<int>
parseIntList(const char *arg, const char *flag, long lo, long hi)
{
    std::vector<int> out;
    const char *p = arg;
    while (*p != '\0') {
        char *end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v < lo || v > hi) {
            std::fprintf(stderr,
                         "shard_scale: bad %s value in '%s' "
                         "(want %ld..%ld)\n",
                         flag, arg, lo, hi);
            std::exit(2);
        }
        out.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
    }
    if (out.empty()) {
        std::fprintf(stderr, "shard_scale: empty %s list\n", flag);
        std::exit(2);
    }
    return out;
}

/** Per-cell deterministic fingerprint, compared across shard counts. */
struct CellIdentity
{
    std::vector<std::uint64_t> digests; // per trial
    std::uint64_t shardWindows = 0;
    std::uint64_t boundaryMessages = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::vector<int> islandCounts = {64, 256};
    std::vector<int> shardCounts = {1, 2, 4};
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--islands") && i + 1 < argc) {
            islandCounts =
                parseIntList(argv[++i], "--islands", 2, 4096);
        } else if (!std::strcmp(argv[i], "--shards") && i + 1 < argc) {
            shardCounts = parseIntList(argv[++i], "--shards", 1, 16);
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    const auto opts = corm::bench::parseArgs(
        static_cast<int>(passthrough.size()), passthrough.data(),
        "shard_scale");
    // Capture flags (--trace/--monitor/--metrics) attach to trial 0
    // of the FIRST swept cell — the same seed and schedule regardless
    // of --jobs or sweep order, so captured artefacts are comparable
    // across invocations that put different shard counts first.
    const corm::bench::ObsCapture &obs = *opts.obs;
    const bool wantCapture =
        !obs.tracePath.empty() || obs.metrics || obs.monitor;

    corm::bench::banner("Shard scale",
                        "one trial, K concurrent event-loop shards: "
                        "islands x shards on a tree fabric");
    corm::bench::BenchReport report(opts);

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("host: %u hardware thread(s)\n", hw);
    std::printf("%-14s | %8s %8s | %9s %9s %8s | %7s %7s\n", "cell",
                "wall s", "speedup", "windows", "boundary", "applied",
                "conv ms", "ev/us");

    int largestN = 0;
    for (int n : islandCounts)
        largestN = std::max(largestN, n);

    const auto makeCfg = [](int n, int k) {
        corm::platform::FabricScenarioConfig cfg;
        cfg.islands = n;
        cfg.shards = k;
        // Ids 0..n-1; the 16-bit IslandId holds 65536 of them.
        cfg.firstIslandId = 0;
        cfg.fabric.topology = corm::coord::FabricTopology::tree;
        cfg.fabric.treeFanout = 4;
        // A coarse hop gives the conservative lookahead fat
        // windows; dense epochs fill them with parallel work.
        cfg.fabric.hopLatency = 500 * corm::sim::usec;
        cfg.fabric.aggWindow = 300 * corm::sim::usec;
        cfg.tunesPerPair = 150;
        // Triggers ride the reliable low-latency path. The old
        // 8-bit seq space wrapped under this density (the
        // endpoint dedup window ate re-used seqs as replays);
        // the 32-bit space never wraps, so the dense sweep now
        // exercises the full Tune + Trigger protocol.
        cfg.triggerProb = 0.02;
        cfg.settleLimit = 500 * corm::sim::msec;
        cfg.convergencePoll = 2 * corm::sim::msec;
        cfg.monitorLanes = false;
        return cfg;
    };

    bool invariantsHold = true;
    bool identityHolds = true;
    double wall1Largest = 0.0, wall4Largest = 0.0;
    for (int n : islandCounts) {
        CellIdentity baseline;
        bool haveBaseline = false;
        int baselineShards = 0;
        double wallBase = 0.0;
        for (int k : shardCounts) {
            const corm::platform::FabricScenarioConfig cfg =
                makeCfg(n, k);
            // Capture attaches to trial 0 of the first swept cell;
            // every other trial runs bare. The binary's own
            // digest-identity check then doubles as the
            // capture-neutrality proof: the captured cell must agree
            // with every uncaptured shard count, bit for bit.
            const bool captureCell = wantCapture
                && n == islandCounts.front()
                && k == shardCounts.front();

            const auto t0 = std::chrono::steady_clock::now();
            auto results = corm::platform::runTrials(
                opts.trial, [&](int idx, std::uint64_t seed) {
                    corm::platform::FabricScenarioConfig c = cfg;
                    c.seed = seed;
                    corm::obs::TraceRecorder rec;
                    const bool cap = captureCell && idx == 0;
                    if (cap) {
                        if (!obs.tracePath.empty()) {
                            rec.setEnabled(true);
                            c.trace = &rec;
                        }
                        if (obs.monitor)
                            c.monitorLanes = true;
                        c.captureMetrics = obs.metrics;
                    }
                    auto r = corm::platform::runFabricScenario(c);
                    if (cap) {
                        if (c.trace)
                            opts.obs->traceJson = rec.json();
                        if (obs.metrics) {
                            opts.obs->metricsJson = r.metricsJson;
                            opts.obs->metricsText = r.metricsJson + "\n";
                        }
                        if (obs.monitor) {
                            opts.obs->healthReport = r.healthReport;
                            opts.obs->healthBreaches = r.healthBreaches;
                        }
                    }
                    return r;
                });
            const double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

            using R = corm::platform::FabricScenarioResult;
            CellIdentity id;
            std::uint64_t events = 0;
            double applied = 0.0, convMs = 0.0;
            for (const R &r : results) {
                id.digests.push_back(r.digest);
                id.shardWindows = r.shardWindows;
                id.boundaryMessages = r.boundaryMessages;
                events += r.eventsExecuted;
                applied += static_cast<double>(r.appliedTunes);
                convMs += r.convergenceMs;
                if (!r.deltaSumsExact || !r.converged || !r.bindingsOk
                    || !r.triggersAccounted || r.fabricDropped != 0) {
                    invariantsHold = false;
                    std::fprintf(stderr,
                                 "shard_scale: INVARIANT VIOLATION "
                                 "n=%d shards=%d (exact=%d conv=%d "
                                 "bind=%d trig=%d dropped=%llu)\n",
                                 n, k, r.deltaSumsExact, r.converged,
                                 r.bindingsOk, r.triggersAccounted,
                                 static_cast<unsigned long long>(
                                     r.fabricDropped));
                }
            }
            const auto trials =
                static_cast<double>(results.size() ? results.size()
                                                   : 1);
            applied /= trials;
            convMs /= trials;

            if (!haveBaseline) {
                baseline = id;
                haveBaseline = true;
                baselineShards = k;
                wallBase = wall;
            } else if (id.digests != baseline.digests
                       || id.shardWindows != baseline.shardWindows
                       || id.boundaryMessages
                           != baseline.boundaryMessages) {
                identityHolds = false;
                std::fprintf(
                    stderr,
                    "shard_scale: DETERMINISM VIOLATION n=%d: "
                    "shards=%d disagrees with shards=%d "
                    "(digest0 %016llx vs %016llx, windows %llu vs "
                    "%llu, boundary %llu vs %llu)\n",
                    n, k, baselineShards,
                    static_cast<unsigned long long>(id.digests[0]),
                    static_cast<unsigned long long>(
                        baseline.digests[0]),
                    static_cast<unsigned long long>(id.shardWindows),
                    static_cast<unsigned long long>(
                        baseline.shardWindows),
                    static_cast<unsigned long long>(
                        id.boundaryMessages),
                    static_cast<unsigned long long>(
                        baseline.boundaryMessages));
            }
            const double speedup = wall > 0.0 ? wallBase / wall : 0.0;
            if (n == largestN && k == 1)
                wall1Largest = wall;
            if (n == largestN && k == 4)
                wall4Largest = wall;

            char label[48];
            std::snprintf(label, sizeof(label), "tree_n%d_s%d", n, k);
            std::printf("%-14s | %8.3f %8.2f | %9llu %9llu %8.0f | "
                        "%7.1f %7.2f\n",
                        label, wall, speedup,
                        static_cast<unsigned long long>(
                            id.shardWindows),
                        static_cast<unsigned long long>(
                            id.boundaryMessages),
                        applied, convMs,
                        wall > 0.0 ? static_cast<double>(events) / wall
                                / 1e6
                                   : 0.0);

            // wall_seconds is reported for humans but never
            // baselined (machine-dependent), and the smoke test's
            // jobs-determinism diff filters it out; the speedup
            // ratio stays out of the JSON for the same reason.
            report.addScalars(
                label,
                {
                    {"digest_hi",
                     static_cast<double>(id.digests[0] >> 32)},
                    {"digest_lo",
                     static_cast<double>(id.digests[0]
                                         & 0xffffffffULL)},
                    {"shard_windows",
                     static_cast<double>(id.shardWindows)},
                    {"boundary_messages",
                     static_cast<double>(id.boundaryMessages)},
                    {"applied_tunes", applied},
                    {"convergence_ms", convMs},
                    {"wall_seconds", wall},
                },
                events);
        }
    }

    // Observability overhead pin: with any capture flag set, re-run
    // the first-island cell at the largest swept shard count three
    // ways — fully captured (trace + monitor + metrics), flight mode
    // (monitor only: the bounded, detail-gated flight ring, no full
    // trace), and bare — and report wall-time ratios plus the
    // deterministic capture counts. The digest must not move under
    // any capture mode (enforced here at zero tolerance); the gate
    // baseline pins the ratios generously (wall time is
    // machine-dependent) and the counts exactly.
    bool captureNeutral = true;
    if (wantCapture) {
        const int n = islandCounts.front();
        const int k = shardCounts.back();
        const auto timeRun =
            [](const corm::platform::FabricScenarioConfig &c,
               corm::platform::FabricScenarioResult &out) {
                const auto t0 = std::chrono::steady_clock::now();
                out = corm::platform::runFabricScenario(c);
                return std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                    .count();
            };
        corm::obs::TraceRecorder rec;
        rec.setEnabled(true);
        corm::platform::FabricScenarioConfig cap = makeCfg(n, k);
        cap.seed = opts.trial.seed;
        cap.trace = &rec;
        cap.monitorLanes = true;
        cap.captureMetrics = true;
        corm::platform::FabricScenarioResult rCap, rFlight, rPlain;
        const double wallCap = timeRun(cap, rCap);
        corm::platform::FabricScenarioConfig flight = makeCfg(n, k);
        flight.seed = opts.trial.seed;
        flight.monitorLanes = true;
        const double wallFlight = timeRun(flight, rFlight);
        corm::platform::FabricScenarioConfig plain = makeCfg(n, k);
        plain.seed = opts.trial.seed;
        const double wallPlain = timeRun(plain, rPlain);

        const double ratio =
            wallPlain > 0.0 ? wallCap / wallPlain : 0.0;
        const double flightRatio =
            wallPlain > 0.0 ? wallFlight / wallPlain : 0.0;
        const bool digestMatch = rCap.digest == rPlain.digest
            && rFlight.digest == rPlain.digest;
        if (!digestMatch) {
            captureNeutral = false;
            std::fprintf(stderr,
                         "shard_scale: CAPTURE PERTURBED DIGEST "
                         "n=%d shards=%d (captured %016llx flight "
                         "%016llx plain %016llx)\n",
                         n, k,
                         static_cast<unsigned long long>(rCap.digest),
                         static_cast<unsigned long long>(
                             rFlight.digest),
                         static_cast<unsigned long long>(
                             rPlain.digest));
        }
        std::printf(
            "[obs overhead @ n=%d s=%d] captured %.3fs flight %.3fs "
            "plain %.3fs (ratio %.2f / %.2f), %llu trace events, "
            "%llu breach(es), digest %s\n",
            n, k, wallCap, wallFlight, wallPlain, ratio, flightRatio,
            static_cast<unsigned long long>(rCap.traceEvents),
            static_cast<unsigned long long>(rCap.healthBreaches),
            digestMatch ? "unchanged" : "PERTURBED");
        report.addScalars(
            "obs_overhead",
            {
                {"islands", static_cast<double>(n)},
                {"shards", static_cast<double>(k)},
                {"trace_events",
                 static_cast<double>(rCap.traceEvents)},
                {"health_breaches",
                 static_cast<double>(rCap.healthBreaches)},
                {"digest_match", digestMatch ? 1.0 : 0.0},
                {"wall_captured_seconds", wallCap},
                {"wall_flight_seconds", wallFlight},
                {"wall_plain_seconds", wallPlain},
                {"wall_ratio", ratio},
                {"flight_ratio", flightRatio},
            });
    }

    report.write();

    double speedupMin = 3.0;
    if (const char *env = std::getenv("CORM_SHARD_SPEEDUP_MIN"))
        speedupMin = std::atof(env);
    bool speedupHolds = true;
    if (wall1Largest > 0.0 && wall4Largest > 0.0) {
        const double s = wall1Largest / wall4Largest;
        const bool enforce = hw >= 4 && speedupMin > 0.0;
        std::printf("[shard speedup @ n=%d] 4 shards %.2fx vs 1 shard "
                    "(%s, need >= %.2f)\n",
                    largestN, s,
                    enforce ? (s >= speedupMin ? "OK" : "TOO SLOW")
                            : "not enforced on this host",
                    speedupMin);
        if (enforce && s < speedupMin)
            speedupHolds = false;
    }

    if (!invariantsHold) {
        std::fprintf(stderr,
                     "shard_scale: FAILED (invariant violations)\n");
        return 1;
    }
    if (!identityHolds) {
        std::fprintf(stderr,
                     "shard_scale: FAILED (results differ across "
                     "shard counts)\n");
        return 1;
    }
    if (!speedupHolds) {
        std::fprintf(stderr,
                     "shard_scale: FAILED (4-shard speedup below "
                     "threshold)\n");
        return 1;
    }
    if (!captureNeutral) {
        std::fprintf(stderr,
                     "shard_scale: FAILED (observability capture "
                     "changed the digest)\n");
        return 1;
    }
    return 0;
}
