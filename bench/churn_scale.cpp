/**
 * @file
 * Dynamic-fabric churn sweep: islands x churn rate on a tree fabric,
 * each cell replayed at every swept shard count.
 *
 * The cell workload is the standard fabric scenario plus a
 * deterministic schedule of membership/placement changes (island
 * joins, graceful leaves, hub crashes with delayed re-parenting,
 * and live entity migrations) spread across the workload span. The
 * schedule is derived from the trial seed, so every shard count
 * replays the same churn.
 *
 * Two claims are self-checked (exit non-zero on violation):
 *
 *  1. Conservation: for every trial of every cell, tunes_lost — the
 *     scenario's logical-minus-applied-minus-abandoned ledger — must
 *     be exactly zero: every root-issued tune is applied exactly
 *     once or attributed as abandoned, across any migration,
 *     crash, or re-parent. Always enforced.
 *  2. Determinism: for a given cell and seed, the scenario digest
 *     and the full churn accounting (reparents, migration forwards,
 *     skipped events) are bit-identical for every swept shard
 *     count. Always enforced.
 *
 * Custom flags, consumed before the shared bench CLI:
 *
 *   --islands N[,N...]   island counts to sweep (default 16,64)
 *   --churn C[,C...]     churn events per run (default 0,8,32)
 *   --shards K[,K...]    shard counts to replay (default 1,2,4)
 *
 * The workload window is fixed by the scenario (not --warmup-sec /
 * --measure-sec) so the gated baseline stays comparable.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "coord/fabric.hpp"
#include "sim/random.hpp"

namespace {

/** Split "1,2,4" into integers within [lo, hi]; exits on garbage. */
std::vector<int>
parseIntList(const char *arg, const char *flag, long lo, long hi)
{
    std::vector<int> out;
    const char *p = arg;
    while (*p != '\0') {
        char *end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v < lo || v > hi) {
            std::fprintf(stderr,
                         "churn_scale: bad %s value in '%s' "
                         "(want %ld..%ld)\n",
                         flag, arg, lo, hi);
            std::exit(2);
        }
        out.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
    }
    if (out.empty()) {
        std::fprintf(stderr, "churn_scale: empty %s list\n", flag);
        std::exit(2);
    }
    return out;
}

/**
 * Deterministic churn schedule: @p count events spread across the
 * workload span, drawn from a stream keyed on (seed, islands, count)
 * so every shard count — and every re-run of the gate — replays the
 * identical schedule. Events that are invalid at their tick (double
 * leave, join of a live island, self-migration) are skipped and
 * tallied by the scenario, so no pre-validation is needed here.
 */
std::vector<corm::platform::FabricScenarioConfig::ChurnEvent>
makeChurnSchedule(std::uint64_t seed, int islands, int count,
                  const corm::platform::FabricScenarioConfig &cfg)
{
    using Ev = corm::platform::FabricScenarioConfig::ChurnEvent;
    corm::sim::Rng rng(corm::sim::SplitMix64(
                           seed ^ 0xc08a5cULL
                           ^ (0x9e3779b97f4a7c15ULL
                              * (static_cast<std::uint64_t>(islands)
                                 * 131 + count)))
                           .next());
    std::vector<Ev> plan;
    plan.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        Ev ev;
        switch (rng.uniformInt(4)) {
        case 0: ev.kind = Ev::Kind::join; break;
        case 1: ev.kind = Ev::Kind::leave; break;
        case 2: ev.kind = Ev::Kind::crash; break;
        default: ev.kind = Ev::Kind::migrate; break;
        }
        ev.at = static_cast<corm::sim::Tick>(
            rng.uniformInt(static_cast<std::uint64_t>(
                cfg.workloadSpan)));
        ev.island = 1
            + static_cast<int>(rng.uniformInt(
                static_cast<std::uint64_t>(islands - 1)));
        ev.dstIsland = 1
            + static_cast<int>(rng.uniformInt(
                static_cast<std::uint64_t>(islands - 1)));
        ev.tier = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(cfg.tiers)));
        plan.push_back(ev);
    }
    return plan;
}

/** Per-cell deterministic fingerprint, compared across shard counts. */
struct CellIdentity
{
    std::vector<std::uint64_t> digests; // per trial
    std::uint64_t applied = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t reparents = 0;
    std::uint64_t migForwards = 0;
    std::uint64_t skipped = 0;

    bool
    operator==(const CellIdentity &o) const
    {
        return digests == o.digests && applied == o.applied
            && abandoned == o.abandoned && reparents == o.reparents
            && migForwards == o.migForwards && skipped == o.skipped;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::vector<int> islandCounts = {16, 64};
    std::vector<int> churnCounts = {0, 8, 32};
    std::vector<int> shardCounts = {1, 2, 4};
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--islands") && i + 1 < argc) {
            islandCounts =
                parseIntList(argv[++i], "--islands", 3, 4096);
        } else if (!std::strcmp(argv[i], "--churn") && i + 1 < argc) {
            churnCounts = parseIntList(argv[++i], "--churn", 0, 4096);
        } else if (!std::strcmp(argv[i], "--shards") && i + 1 < argc) {
            shardCounts = parseIntList(argv[++i], "--shards", 1, 16);
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    const auto opts = corm::bench::parseArgs(
        static_cast<int>(passthrough.size()), passthrough.data(),
        "churn_scale");

    corm::bench::banner("Churn scale",
                        "islands x churn rate on a tree fabric, "
                        "replayed at every shard count: exactly-once "
                        "tune conservation under membership churn");
    corm::bench::BenchReport report(opts);

    std::printf("%-20s | %8s | %8s %9s %7s | %6s %6s %6s | %5s\n",
                "cell", "wall s", "applied", "abandoned", "lost",
                "repar", "migfw", "skip", "epoch");

    const auto makeCfg = [](int n, int k) {
        corm::platform::FabricScenarioConfig cfg;
        cfg.islands = n;
        cfg.shards = k;
        cfg.firstIslandId = 0;
        cfg.fabric.topology = corm::coord::FabricTopology::tree;
        cfg.fabric.treeFanout = 4;
        cfg.fabric.hopLatency = 500 * corm::sim::usec;
        cfg.fabric.aggWindow = 300 * corm::sim::usec;
        cfg.tunesPerPair = 40;
        cfg.triggerProb = 0.02;
        cfg.settleLimit = 500 * corm::sim::msec;
        cfg.convergencePoll = 2 * corm::sim::msec;
        cfg.monitorLanes = false;
        return cfg;
    };

    bool conservationHolds = true;
    bool identityHolds = true;
    for (int n : islandCounts) {
        for (int c : churnCounts) {
            CellIdentity baseline;
            bool haveBaseline = false;
            int baselineShards = 0;
            for (int k : shardCounts) {
                const corm::platform::FabricScenarioConfig proto =
                    makeCfg(n, k);

                const auto t0 = std::chrono::steady_clock::now();
                auto results = corm::platform::runTrials(
                    opts.trial, [&](int, std::uint64_t seed) {
                        corm::platform::FabricScenarioConfig cfg =
                            proto;
                        cfg.seed = seed;
                        cfg.churn =
                            makeChurnSchedule(seed, n, c, cfg);
                        return corm::platform::runFabricScenario(cfg);
                    });
                const double wall =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

                using R = corm::platform::FabricScenarioResult;
                CellIdentity id;
                std::uint64_t events = 0, routeEpochs = 0;
                std::int64_t lostTotal = 0;
                for (const R &r : results) {
                    id.digests.push_back(r.digest);
                    id.applied += r.appliedTunes;
                    id.abandoned += r.abandonedTunes;
                    id.reparents += r.churnReparents;
                    id.migForwards += r.migForwards;
                    id.skipped += r.churnSkipped;
                    events += r.eventsExecuted;
                    routeEpochs += r.routeEpochs;
                    lostTotal += r.tunesLost;
                    // The headline gate: applied + abandoned must
                    // account for every logical tune, exactly.
                    if (r.tunesLost != 0 || !r.deltaSumsExact
                        || !r.converged || !r.triggersAccounted) {
                        conservationHolds = false;
                        std::fprintf(
                            stderr,
                            "churn_scale: CONSERVATION VIOLATION "
                            "n=%d churn=%d shards=%d (lost=%lld "
                            "exact=%d conv=%d trig=%d)\n%s",
                            n, c, k,
                            static_cast<long long>(r.tunesLost),
                            r.deltaSumsExact, r.converged,
                            r.triggersAccounted,
                            r.convergenceMismatch.c_str());
                    }
                }

                if (!haveBaseline) {
                    baseline = id;
                    haveBaseline = true;
                    baselineShards = k;
                } else if (!(id == baseline)) {
                    identityHolds = false;
                    std::fprintf(
                        stderr,
                        "churn_scale: DETERMINISM VIOLATION n=%d "
                        "churn=%d: shards=%d disagrees with "
                        "shards=%d (digest0 %016llx vs %016llx, "
                        "reparents %llu vs %llu, migfw %llu vs "
                        "%llu)\n",
                        n, c, k, baselineShards,
                        static_cast<unsigned long long>(
                            id.digests[0]),
                        static_cast<unsigned long long>(
                            baseline.digests[0]),
                        static_cast<unsigned long long>(id.reparents),
                        static_cast<unsigned long long>(
                            baseline.reparents),
                        static_cast<unsigned long long>(
                            id.migForwards),
                        static_cast<unsigned long long>(
                            baseline.migForwards));
                }

                char label[48];
                std::snprintf(label, sizeof(label),
                              "tree_n%d_c%d_s%d", n, c, k);
                std::printf("%-20s | %8.3f | %8llu %9llu %7lld | "
                            "%6llu %6llu %6llu | %5llu\n",
                            label, wall,
                            static_cast<unsigned long long>(
                                id.applied),
                            static_cast<unsigned long long>(
                                id.abandoned),
                            static_cast<long long>(lostTotal),
                            static_cast<unsigned long long>(
                                id.reparents),
                            static_cast<unsigned long long>(
                                id.migForwards),
                            static_cast<unsigned long long>(
                                id.skipped),
                            static_cast<unsigned long long>(
                                routeEpochs));

                // wall_seconds is reported for humans but never
                // baselined (machine-dependent); everything else in
                // the cell is deterministic and pinned exactly.
                report.addScalars(
                    label,
                    {
                        {"digest_hi",
                         static_cast<double>(id.digests[0] >> 32)},
                        {"digest_lo",
                         static_cast<double>(id.digests[0]
                                             & 0xffffffffULL)},
                        {"applied_tunes",
                         static_cast<double>(id.applied)},
                        {"abandoned_tunes",
                         static_cast<double>(id.abandoned)},
                        {"tunes_lost",
                         static_cast<double>(lostTotal)},
                        {"churn_reparents",
                         static_cast<double>(id.reparents)},
                        {"mig_forwards",
                         static_cast<double>(id.migForwards)},
                        {"churn_skipped",
                         static_cast<double>(id.skipped)},
                        {"route_epochs",
                         static_cast<double>(routeEpochs)},
                        {"wall_seconds", wall},
                    },
                    events);
            }
        }
    }

    report.write();

    if (!conservationHolds) {
        std::fprintf(stderr,
                     "churn_scale: FAILED (tunes lost or invariant "
                     "violations under churn)\n");
        return 1;
    }
    if (!identityHolds) {
        std::fprintf(stderr,
                     "churn_scale: FAILED (results differ across "
                     "shard counts)\n");
        return 1;
    }
    return 0;
}
