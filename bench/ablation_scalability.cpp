/**
 * @file
 * Ablation: coordination-channel latency and island fan-out.
 *
 * The paper attributes part of its mis-coordination to "the
 * relatively large latency of the PCIe-based messaging channel" and
 * argues (§3.3, Hardware considerations; §5) that tighter
 * interconnects (QPI/HTX-class) and hardware signalling would
 * eliminate it, and that the mechanisms must scale to many islands.
 *
 * Part 1 sweeps the channel latency from hardware-signal-class up to
 * slow-PCIe-class and reports the coordinated RUBiS outcome.
 *
 * Part 2 measures registration/tune fan-out across many islands
 * through the global controller (mechanism scalability).
 */

#include <cstdio>
#include <iterator>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "coord/controller.hpp"
#include "coord/fabric.hpp"

namespace {

/** Minimal island that just counts operations (fan-out target). */
class CountingIsland : public corm::coord::ResourceIsland
{
  public:
    explicit CountingIsland(corm::coord::IslandId island_id)
        : id_(island_id), name_("island-" + std::to_string(island_id))
    {}

    corm::coord::IslandId id() const override { return id_; }
    const std::string &name() const override { return name_; }
    void applyTune(corm::coord::EntityId, double) override { ++tunes; }
    void applyTrigger(corm::coord::EntityId) override { ++triggers; }
    void learnBinding(const corm::coord::EntityBinding &) override
    {
        ++bindings;
    }

    std::uint64_t tunes = 0, triggers = 0, bindings = 0;

  private:
    corm::coord::IslandId id_;
    std::string name_;
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts =
        corm::bench::parseArgs(argc, argv, "ablation_scalability");
    corm::bench::banner("Ablation: scalability",
                        "channel latency sweep + many-island fan-out");
    corm::bench::BenchReport report(opts);

    std::printf("Part 1 -- coordination channel one-way latency sweep "
                "(coordinated RUBiS, 60 s):\n");
    std::printf("%12s %12s %12s %12s\n", "latency", "mean RT",
                "throughput", "tunes appl.");
    const corm::sim::Tick latencies[] = {
        1 * corm::sim::usec,    // on-chip hardware signalling
        10 * corm::sim::usec,   // QPI/HTX-class
        120 * corm::sim::usec,  // the prototype's PCIe config space
        500 * corm::sim::usec,  // slow PCIe
        2 * corm::sim::msec,    // slow shared bus
        20 * corm::sim::msec,   // pathological
    };
    constexpr int nLat = static_cast<int>(std::size(latencies));
    // Independent sweep rows: spread them across --jobs threads.
    std::vector<corm::platform::RubisResult> sweep(nLat);
    corm::platform::runTrialsIndexed(nLat, opts.trial.jobs, [&](int i) {
        corm::platform::RubisScenarioConfig cfg;
        cfg.coordination = true;
        cfg.testbed.coordLatency = latencies[i];
        cfg.warmup = 15 * corm::sim::sec;
        cfg.measure = 60 * corm::sim::sec;
        sweep[static_cast<std::size_t>(i)] =
            corm::platform::runRubisScenario(cfg);
    });
    for (int i = 0; i < nLat; ++i) {
        const auto &r = sweep[static_cast<std::size_t>(i)];
        std::printf("%9.0f us %9.0f ms %9.1f /s %12llu\n",
                    corm::sim::toMicros(latencies[i]), r.meanResponseMs,
                    r.throughputRps,
                    static_cast<unsigned long long>(r.tunesApplied));
        char label[48];
        std::snprintf(label, sizeof(label), "latency_%.0fus",
                      corm::sim::toMicros(latencies[i]));
        report.addScalars(label,
                          {{"latency_us",
                            corm::sim::toMicros(latencies[i])},
                           {"mean_response_ms", r.meanResponseMs},
                           {"throughput_rps", r.throughputRps},
                           {"tunes_applied", double(r.tunesApplied)}},
                          r.eventsExecuted);
    }

    std::printf("\nPart 2 -- global-controller fan-out across N "
                "islands (registrations broadcast to all others):\n");
    std::printf("%10s %14s %16s\n", "islands", "entities",
                "announcements");
    for (int n : {2, 4, 8, 16, 32, 64}) {
        corm::coord::GlobalController controller;
        std::vector<std::unique_ptr<CountingIsland>> islands;
        for (int i = 0; i < n; ++i) {
            islands.push_back(std::make_unique<CountingIsland>(
                static_cast<corm::coord::IslandId>(i + 1)));
            controller.registerIsland(*islands.back());
        }
        // Each island registers 4 entities.
        corm::coord::EntityId next = 1;
        for (int i = 0; i < n; ++i) {
            for (int e = 0; e < 4; ++e) {
                corm::coord::EntityBinding b;
                b.ref = {islands[static_cast<std::size_t>(i)]->id(),
                         next};
                b.ip = corm::net::IpAddr(0x0a000000u + next);
                b.name = "vm" + std::to_string(next);
                ++next;
                controller.registerEntity(b);
            }
        }
        std::uint64_t announced = 0;
        for (const auto &isl : islands)
            announced += isl->bindings;
        std::printf("%10d %14zu %16llu\n", n, controller.entityCount(),
                    static_cast<unsigned long long>(announced));
        char label[32];
        std::snprintf(label, sizeof(label), "fanout_%d_islands", n);
        report.addScalars(
            label, {{"islands", double(n)},
                    {"entities", double(controller.entityCount())},
                    {"announcements", double(announced)}});
    }
    // Part 3: fabric topology — the hub (Dom0-style) star against
    // the direct mesh that hardware-supported queues would enable.
    std::printf("\nPart 3 -- N-island fabric: hub-relay star vs "
                "direct mesh (10 us/hop, 10k tunes each):\n");
    std::printf("%10s %16s %16s %14s\n", "islands", "star lat (us)",
                "mesh lat (us)", "hub relays");
    for (int n : {4, 16, 64}) {
        double lat[2] = {0.0, 0.0};
        std::uint64_t relays = 0;
        for (int t = 0; t < 2; ++t) {
            const auto topo = t == 0
                ? corm::coord::FabricTopology::star
                : corm::coord::FabricTopology::mesh;
            corm::sim::Simulator sim;
            corm::coord::CoordFabric fabric(sim, topo,
                                            10 * corm::sim::usec,
                                            /*hub=*/1);
            std::vector<std::unique_ptr<CountingIsland>> islands;
            for (int i = 0; i < n; ++i) {
                islands.push_back(std::make_unique<CountingIsland>(
                    static_cast<corm::coord::IslandId>(i + 1)));
                fabric.attach(*islands.back());
            }
            corm::sim::Rng rng(7);
            for (int k = 0; k < 10000; ++k) {
                corm::coord::CoordMessage m;
                m.type = corm::coord::MsgType::tune;
                m.src = static_cast<corm::coord::IslandId>(
                    1 + rng.uniformInt(static_cast<std::uint64_t>(n)));
                do {
                    m.dst = static_cast<corm::coord::IslandId>(
                        1
                        + rng.uniformInt(
                            static_cast<std::uint64_t>(n)));
                } while (m.dst == m.src);
                m.entity = 1;
                m.value = 1.0;
                fabric.send(m);
            }
            sim.runToCompletion();
            lat[t] = fabric.stats().deliveryLatencyUs.mean();
            if (t == 0)
                relays = fabric.stats().hubRelays.value();
        }
        std::printf("%10d %16.1f %16.1f %14llu\n", n, lat[0], lat[1],
                    static_cast<unsigned long long>(relays));
        char label[32];
        std::snprintf(label, sizeof(label), "fabric_%d_islands", n);
        report.addScalars(label,
                          {{"islands", double(n)},
                           {"star_latency_us", lat[0]},
                           {"mesh_latency_us", lat[1]},
                           {"hub_relays", double(relays)}});
    }

    std::printf("\nFan-out grows as N*(N-1)*entities — the quadratic "
                "cost §5's distributed coordination work targets.\n"
                "Reading on part 1: the RUBiS Tune scheme is robust "
                "to channel latency well past PCIe-class — its\n"
                "actuation is already bounded by the scheduler's "
                "30 ms accounting period and the seconds-scale\n"
                "session waves it tracks; latency-critical schemes "
                "(the Fig. 7 Trigger) are the ones that benefit\n"
                "from tighter interconnects.\n");
    report.write();
    return 0;
}
