/**
 * @file
 * Ablation: platform-level power budgeting across islands — the
 * paper's second motivating use case (§1) and part of its ongoing
 * work (§5): "properties like caps on total power usage must be
 * obtained at platform level [...] turning off or slowing down
 * processors in certain tiles may negatively impact the performance
 * of application components executing on others."
 *
 * Two decode-hog guests run under the PowerCapPolicy, which reads
 * the platform power model (x86 + IXP islands) and emits Tunes that
 * throttle the lower-priority guest first, restoring it when
 * headroom returns. The sweep shows the power/performance trade.
 */

#include <cstdio>

#include "apps/mplayer.hpp"
#include "bench_util.hpp"

namespace {

/** One row of the weight-throttling sweep. */
struct WeightCapRow
{
    double avgW = 0.0, peakW = 0.0;
    double fpsHi = 0.0, fpsLo = 0.0;
    std::uint64_t throttles = 0, restores = 0;
    std::uint64_t events = 0;
};

/** One row of the DVFS sweep. */
struct DvfsCapRow
{
    double avgW = 0.0, peakW = 0.0;
    double fpsHi = 0.0, fpsLo = 0.0;
    double endLevel = 0.0;
    std::uint64_t events = 0;
};

WeightCapRow
runWeightCap(double cap)
{
    WeightCapRow row;
    corm::platform::TestbedParams tp;
    tp.sched.minWeight = 32;
    corm::platform::Testbed tb(tp);
    auto &hi = tb.addGuest("hi-prio", corm::net::IpAddr{10, 0, 3, 2},
                           256.0);
    auto &lo = tb.addGuest("lo-prio", corm::net::IpAddr{10, 0, 3, 3},
                           256.0);
    corm::apps::mplayer::DiskPlayer phi(*hi.dom,
                                        15 * corm::sim::msec);
    corm::apps::mplayer::DiskPlayer plo(*lo.dom,
                                        15 * corm::sim::msec);
    phi.start();
    plo.start();

    corm::coord::PowerCapPolicy::Config pc;
    pc.capWatts = cap;
    pc.stepDelta = 48.0;
    pc.maxReduction = 224.0;
    // The island power models report windowed averages, so the
    // controller samples once per period and the policy reads
    // that sample (double-sampling in one tick would see an
    // empty window).
    double sampled_watts = 0.0;
    corm::coord::PowerCapPolicy policy(
        pc, [&sampled_watts] { return sampled_watts; });
    policy.addEntity(lo.ref, /*priority=*/0); // throttled first
    policy.addEntity(hi.ref, /*priority=*/1);
    tb.attachPolicy(policy);

    // The power controller samples every 250 ms. A throttled
    // guest runs at lower weight; with both guests CPU-bound the
    // weight shift lowers the *platform* draw only via the
    // scheduler's response to the induced idling — here the
    // throttle works by capping the low-priority guest's weight
    // so the high-priority guest's QoS survives the cap.
    corm::sim::Summary watts;
    corm::sim::PeriodicEvent controller(
        tb.sim(), 250 * corm::sim::msec, [&] {
            sampled_watts = tb.x86().currentPowerWatts()
                + tb.ixp().currentPowerWatts();
            watts.record(sampled_watts);
            policy.onPeriodic(tb.sim().now());
            // Throttling translates into a hard cap on the low
            // guest: weight below baseline idles it pro rata.
            const double frac =
                lo.dom->weight() / 256.0;
            if (frac < 1.0 && plo.framesDecoded() > 0) {
                // Model DVFS-style slowdown: pause the hog
                // briefly in proportion to the throttle.
                plo.stop();
                tb.sim().schedule(
                    static_cast<corm::sim::Tick>(
                        250 * corm::sim::msec * (1.0 - frac)),
                    [&plo] { plo.start(); });
            }
        });

    tb.run(5 * corm::sim::sec);
    tb.beginMeasurement();
    phi.resetStats();
    plo.resetStats();
    tb.run(60 * corm::sim::sec);

    const auto elapsed = tb.measuredElapsed();
    row.avgW = watts.mean();
    row.peakW = watts.max();
    row.fpsHi = phi.fps(elapsed);
    row.fpsLo = plo.fps(elapsed);
    row.throttles = policy.throttles();
    row.restores = policy.restores();
    row.events = tb.sim().executedEvents();
    return row;
}

DvfsCapRow
runDvfsCap(double cap)
{
    DvfsCapRow row;
    corm::platform::TestbedParams tp;
    corm::platform::Testbed tb(tp);
    auto &hi = tb.addGuest("hi-prio", corm::net::IpAddr{10, 0, 3, 2},
                           256.0);
    auto &lo = tb.addGuest("lo-prio", corm::net::IpAddr{10, 0, 3, 3},
                           256.0);
    corm::apps::mplayer::DiskPlayer phi(*hi.dom,
                                        15 * corm::sim::msec);
    corm::apps::mplayer::DiskPlayer plo(*lo.dom,
                                        15 * corm::sim::msec);
    phi.start();
    plo.start();

    // Simple integral controller on the island frequency.
    corm::sim::Summary watts;
    corm::sim::PeriodicEvent controller(
        tb.sim(), 250 * corm::sim::msec, [&] {
            const double w = tb.x86().currentPowerWatts()
                + tb.ixp().currentPowerWatts();
            watts.record(w);
            const double level = tb.x86().currentDvfsLevel();
            if (w > cap) {
                tb.x86().setDvfsLevel(level - 0.05);
            } else if (w < cap * 0.92 && level < 1.0) {
                tb.x86().setDvfsLevel(level + 0.05);
            }
        });

    tb.run(5 * corm::sim::sec);
    tb.beginMeasurement();
    phi.resetStats();
    plo.resetStats();
    tb.run(60 * corm::sim::sec);
    const auto elapsed = tb.measuredElapsed();
    row.avgW = watts.mean();
    row.peakW = watts.max();
    row.fpsHi = phi.fps(elapsed);
    row.fpsLo = plo.fps(elapsed);
    row.endLevel = tb.x86().currentDvfsLevel();
    row.events = tb.sim().executedEvents();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts =
        corm::bench::parseArgs(argc, argv, "ablation_powercap");
    corm::bench::banner("Ablation: power cap",
                        "platform-level power budgeting via "
                        "coordination Tunes");
    corm::bench::BenchReport report(opts);

    // Every sweep row is deterministic (no stochastic streams), so
    // --trials does not multiply the work here; --jobs still spreads
    // the independent rows across threads.
    const std::vector<double> weightCaps = {1e9, 126.0, 122.0, 118.0,
                                            114.0};
    std::vector<WeightCapRow> wrows(weightCaps.size());
    corm::platform::runTrialsIndexed(
        static_cast<int>(weightCaps.size()), opts.trial.jobs,
        [&](int i) {
            wrows[static_cast<std::size_t>(i)] =
                runWeightCap(weightCaps[static_cast<std::size_t>(i)]);
        });

    std::printf("%10s | %10s %10s | %10s %10s | %9s %9s\n",
                "cap (W)", "avg W", "peak W", "fps hi", "fps lo",
                "throttles", "restores");
    for (std::size_t i = 0; i < weightCaps.size(); ++i) {
        const auto &r = wrows[i];
        std::printf("%10.0f | %10.1f %10.1f | %10.1f %10.1f | %9llu "
                    "%9llu\n",
                    weightCaps[i], r.avgW, r.peakW, r.fpsHi, r.fpsLo,
                    static_cast<unsigned long long>(r.throttles),
                    static_cast<unsigned long long>(r.restores));
        char label[48];
        std::snprintf(label, sizeof(label), "weight_cap_%.0f",
                      weightCaps[i]);
        report.addScalars(label,
                          {{"cap_watts", weightCaps[i]},
                           {"avg_watts", r.avgW},
                           {"peak_watts", r.peakW},
                           {"fps_hi", r.fpsHi},
                           {"fps_lo", r.fpsLo},
                           {"throttles", double(r.throttles)},
                           {"restores", double(r.restores)}},
                          r.events);
    }

    // ---- Second actuator: island-level DVFS ---------------------
    const std::vector<double> dvfsCaps = {1e9, 122.0, 114.0, 106.0};
    std::vector<DvfsCapRow> drows(dvfsCaps.size());
    corm::platform::runTrialsIndexed(
        static_cast<int>(dvfsCaps.size()), opts.trial.jobs,
        [&](int i) {
            drows[static_cast<std::size_t>(i)] =
                runDvfsCap(dvfsCaps[static_cast<std::size_t>(i)]);
        });

    std::printf("\nDVFS actuator (island-level frequency scaling "
                "instead of per-entity weight throttling):\n");
    std::printf("%10s | %10s %10s | %10s %10s | %10s\n", "cap (W)",
                "avg W", "peak W", "fps hi", "fps lo", "end level");
    for (std::size_t i = 0; i < dvfsCaps.size(); ++i) {
        const auto &r = drows[i];
        std::printf("%10.0f | %10.1f %10.1f | %10.1f %10.1f | %10.2f\n",
                    dvfsCaps[i], r.avgW, r.peakW, r.fpsHi, r.fpsLo,
                    r.endLevel);
        char label[48];
        std::snprintf(label, sizeof(label), "dvfs_cap_%.0f",
                      dvfsCaps[i]);
        report.addScalars(label,
                          {{"cap_watts", dvfsCaps[i]},
                           {"avg_watts", r.avgW},
                           {"peak_watts", r.peakW},
                           {"fps_hi", r.fpsHi},
                           {"fps_lo", r.fpsLo},
                           {"end_level", r.endLevel}},
                          r.events);
    }

    std::printf("\nShape: weight throttling sacrifices the low-"
                "priority entity to preserve the high-priority one;\n"
                "DVFS spreads the cap across both (f*V^2 power "
                "savings at proportional slowdown). Coordinated\n"
                "platform-level budgeting — §1's second use case — "
                "can pick either translation per island.\n");
    report.write();
    return 0;
}
