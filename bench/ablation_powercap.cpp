/**
 * @file
 * Ablation: platform-level power budgeting across islands — the
 * paper's second motivating use case (§1) and part of its ongoing
 * work (§5): "properties like caps on total power usage must be
 * obtained at platform level [...] turning off or slowing down
 * processors in certain tiles may negatively impact the performance
 * of application components executing on others."
 *
 * Two decode-hog guests run under the PowerCapPolicy, which reads
 * the platform power model (x86 + IXP islands) and emits Tunes that
 * throttle the lower-priority guest first, restoring it when
 * headroom returns. The sweep shows the power/performance trade.
 */

#include <cstdio>

#include "apps/mplayer.hpp"
#include "bench_util.hpp"

int
main()
{
    corm::bench::banner("Ablation: power cap",
                        "platform-level power budgeting via "
                        "coordination Tunes");

    std::printf("%10s | %10s %10s | %10s %10s | %9s %9s\n",
                "cap (W)", "avg W", "peak W", "fps hi", "fps lo",
                "throttles", "restores");

    for (const double cap : {1e9, 126.0, 122.0, 118.0, 114.0}) {
        corm::platform::TestbedParams tp;
        tp.sched.minWeight = 32;
        corm::platform::Testbed tb(tp);
        auto &hi = tb.addGuest("hi-prio", corm::net::IpAddr{10, 0, 3, 2},
                               256.0);
        auto &lo = tb.addGuest("lo-prio", corm::net::IpAddr{10, 0, 3, 3},
                               256.0);
        corm::apps::mplayer::DiskPlayer phi(*hi.dom,
                                            15 * corm::sim::msec);
        corm::apps::mplayer::DiskPlayer plo(*lo.dom,
                                            15 * corm::sim::msec);
        phi.start();
        plo.start();

        corm::coord::PowerCapPolicy::Config pc;
        pc.capWatts = cap;
        pc.stepDelta = 48.0;
        pc.maxReduction = 224.0;
        // The island power models report windowed averages, so the
        // controller samples once per period and the policy reads
        // that sample (double-sampling in one tick would see an
        // empty window).
        double sampled_watts = 0.0;
        corm::coord::PowerCapPolicy policy(
            pc, [&sampled_watts] { return sampled_watts; });
        policy.addEntity(lo.ref, /*priority=*/0); // throttled first
        policy.addEntity(hi.ref, /*priority=*/1);
        tb.attachPolicy(policy);

        // The power controller samples every 250 ms. A throttled
        // guest runs at lower weight; with both guests CPU-bound the
        // weight shift lowers the *platform* draw only via the
        // scheduler's response to the induced idling — here the
        // throttle works by capping the low-priority guest's weight
        // so the high-priority guest's QoS survives the cap.
        corm::sim::Summary watts;
        corm::sim::PeriodicEvent controller(
            tb.sim(), 250 * corm::sim::msec, [&] {
                sampled_watts = tb.x86().currentPowerWatts()
                    + tb.ixp().currentPowerWatts();
                watts.record(sampled_watts);
                policy.onPeriodic(tb.sim().now());
                // Throttling translates into a hard cap on the low
                // guest: weight below baseline idles it pro rata.
                const double frac =
                    lo.dom->weight() / 256.0;
                if (frac < 1.0 && plo.framesDecoded() > 0) {
                    // Model DVFS-style slowdown: pause the hog
                    // briefly in proportion to the throttle.
                    plo.stop();
                    tb.sim().schedule(
                        static_cast<corm::sim::Tick>(
                            250 * corm::sim::msec * (1.0 - frac)),
                        [&plo] { plo.start(); });
                }
            });

        tb.run(5 * corm::sim::sec);
        tb.beginMeasurement();
        phi.resetStats();
        plo.resetStats();
        tb.run(60 * corm::sim::sec);

        const auto elapsed = tb.measuredElapsed();
        std::printf("%10.0f | %10.1f %10.1f | %10.1f %10.1f | %9llu "
                    "%9llu\n",
                    cap, watts.mean(), watts.max(), phi.fps(elapsed),
                    plo.fps(elapsed),
                    static_cast<unsigned long long>(policy.throttles()),
                    static_cast<unsigned long long>(policy.restores()));
    }

    // ---- Second actuator: island-level DVFS ---------------------
    std::printf("\nDVFS actuator (island-level frequency scaling "
                "instead of per-entity weight throttling):\n");
    std::printf("%10s | %10s %10s | %10s %10s | %10s\n", "cap (W)",
                "avg W", "peak W", "fps hi", "fps lo", "end level");
    for (const double cap : {1e9, 122.0, 114.0, 106.0}) {
        corm::platform::TestbedParams tp;
        corm::platform::Testbed tb(tp);
        auto &hi = tb.addGuest("hi-prio", corm::net::IpAddr{10, 0, 3, 2},
                               256.0);
        auto &lo = tb.addGuest("lo-prio", corm::net::IpAddr{10, 0, 3, 3},
                               256.0);
        corm::apps::mplayer::DiskPlayer phi(*hi.dom,
                                            15 * corm::sim::msec);
        corm::apps::mplayer::DiskPlayer plo(*lo.dom,
                                            15 * corm::sim::msec);
        phi.start();
        plo.start();

        // Simple integral controller on the island frequency.
        corm::sim::Summary watts;
        corm::sim::PeriodicEvent controller(
            tb.sim(), 250 * corm::sim::msec, [&] {
                const double w = tb.x86().currentPowerWatts()
                    + tb.ixp().currentPowerWatts();
                watts.record(w);
                const double level = tb.x86().currentDvfsLevel();
                if (w > cap) {
                    tb.x86().setDvfsLevel(level - 0.05);
                } else if (w < cap * 0.92 && level < 1.0) {
                    tb.x86().setDvfsLevel(level + 0.05);
                }
            });

        tb.run(5 * corm::sim::sec);
        tb.beginMeasurement();
        phi.resetStats();
        plo.resetStats();
        tb.run(60 * corm::sim::sec);
        const auto elapsed = tb.measuredElapsed();
        std::printf("%10.0f | %10.1f %10.1f | %10.1f %10.1f | %10.2f\n",
                    cap, watts.mean(), watts.max(), phi.fps(elapsed),
                    plo.fps(elapsed), tb.x86().currentDvfsLevel());
    }

    std::printf("\nShape: weight throttling sacrifices the low-"
                "priority entity to preserve the high-priority one;\n"
                "DVFS spreads the cap across both (f*V^2 power "
                "savings at proportional slowdown). Coordinated\n"
                "platform-level budgeting — §1's second use case — "
                "can pick either translation per island.\n");
    return 0;
}
