/**
 * @file
 * Figure 7: tuning credit adjustments using IXP buffer monitoring —
 * the system-level Trigger scheme (§3.2, scheme 2).
 *
 * A bursty UDP stream (no flow control) periodically fills the
 * per-VM packet buffer in IXP DRAM; when occupancy crosses the
 * 128 KiB threshold the IXP fires a Trigger and the host boosts the
 * dequeuing guest's run-queue position. The figure shows the guest's
 * CPU-utilisation spikes lining up with buffer-occupancy peaks.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

namespace {

/** Sample a time series at a fixed step for compact printing. */
double
seriesAt(const corm::sim::TimeSeries &s, corm::sim::Tick t)
{
    double last = 0.0;
    for (const auto &p : s.data()) {
        if (p.when > t)
            break;
        last = p.value;
    }
    return last;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts =
        corm::bench::parseArgs(argc, argv, "fig7_buffer_trigger");
    corm::bench::banner("Figure 7",
                        "IXP buffer occupancy vs boosted-domain CPU "
                        "(trigger threshold 128 KiB)");
    corm::bench::BenchReport report(opts);

    corm::platform::TriggerScenarioConfig nocoord;
    nocoord.trigger = false;
    nocoord.measure = 60 * corm::sim::sec;
    const auto mbase = corm::bench::runTriggerTrials(nocoord, opts);
    const auto &base = mbase.mean;

    corm::platform::TriggerScenarioConfig coord;
    coord.trigger = true;
    coord.measure = 60 * corm::sim::sec;
    const auto mtrig = corm::bench::runTriggerTrials(coord, opts);
    const auto &trig = mtrig.mean;

    std::printf("%8s | %12s %12s | %12s %12s\n", "t (s)",
                "buf KB", "cpu1 %", "buf KB", "cpu1 %");
    std::printf("%8s | %25s | %25s\n", "", "-------- no-coord",
                "--- coord-trigger");

    const corm::sim::Tick start = base.bufferSeries.data().empty()
        ? 0
        : base.bufferSeries.data().front().when;
    for (int i = 0; i <= 28; ++i) {
        const corm::sim::Tick t =
            start + static_cast<corm::sim::Tick>(i) * 2 * corm::sim::sec;
        std::printf("%8.0f | %12.0f %12.0f | %12.0f %12.0f\n",
                    corm::sim::toSeconds(t - start),
                    seriesAt(base.bufferSeries, t) / 1024.0,
                    seriesAt(base.cpu1Series, t),
                    seriesAt(trig.bufferSeries, t) / 1024.0,
                    seriesAt(trig.cpu1Series, t));
    }

    std::printf("\nSummary: no-coord fps=%.1f peak-buffer=%.0f KB "
                "drops=%llu | coord-trigger fps=%.1f peak-buffer="
                "%.0f KB drops=%llu triggers=%llu boosts=%llu\n",
                base.fps1, base.bufferPeakBytes / 1024.0,
                static_cast<unsigned long long>(base.ixpQueueDrops),
                trig.fps1, trig.bufferPeakBytes / 1024.0,
                static_cast<unsigned long long>(trig.ixpQueueDrops),
                static_cast<unsigned long long>(trig.triggersSent),
                static_cast<unsigned long long>(trig.boosts));
    std::printf("Paper shape: CPU-utilisation spikes for the boosted "
                "domain whenever the 128 KiB buffer threshold is\n"
                "crossed; frame rate improves ~10%% (24.0 -> 26.6 "
                "fps on the paper's testbed) and buffers drain "
                "faster.\n");
    report.add("base", mbase);
    report.add("trigger", mtrig);
    report.write();
    return 0;
}
