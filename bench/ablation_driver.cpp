/**
 * @file
 * Ablation: host notification mode — periodic polling vs device
 * interrupts.
 *
 * §2.1: "The messaging driver handles packet-receive by periodic
 * polling. The IXP can be programmed to interrupt the host at a
 * user-defined frequency." This bench quantifies the trade the
 * driver's operator makes: polling burns Dom0 CPU proportional to
 * the poll rate but bounds latency by the interval; interrupts track
 * traffic with low latency at a per-event cost, bounded by the
 * coalescing window.
 *
 * Workload: the Fig. 7 bursty-stream scenario, whose buffer dynamics
 * are sensitive to how promptly the host drains the descriptor ring.
 */

#include <cstdio>

#include "bench_util.hpp"

namespace {

struct Row
{
    const char *label;
    corm::platform::DriverParams driver;
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts =
        corm::bench::parseArgs(argc, argv, "ablation_driver");
    corm::bench::banner("Ablation: messaging-driver mode",
                        "periodic polling vs coalesced interrupts "
                        "(bursty-stream workload)");
    corm::bench::BenchReport report(opts);

    using corm::platform::DriverMode;
    using corm::sim::msec;
    using corm::sim::usec;

    Row rows[5];
    rows[0].label = "poll @ 100 us";
    rows[0].driver.pollInterval = 100 * usec;
    rows[1].label = "poll @ 500 us (default)";
    rows[1].driver.pollInterval = 500 * usec;
    rows[2].label = "poll @ 2 ms";
    rows[2].driver.pollInterval = 2 * msec;
    rows[3].label = "interrupt, 50 us coalesce";
    rows[3].driver.mode = DriverMode::interrupt;
    rows[3].driver.interruptCoalesce = 50 * usec;
    rows[4].label = "interrupt, 1 ms coalesce";
    rows[4].driver.mode = DriverMode::interrupt;
    rows[4].driver.interruptCoalesce = 1 * msec;

    std::printf("%-28s | %8s %9s %9s | %9s %10s\n", "driver mode",
                "fps", "buf KB", "drops", "polls/s", "intr/s");
    for (const auto &row : rows) {
        corm::platform::TriggerScenarioConfig cfg;
        cfg.testbed.driver = row.driver;
        cfg.trigger = true;
        cfg.measure = 60 * corm::sim::sec;
        const auto merged = corm::bench::runTriggerTrials(cfg, opts);
        const auto &r = merged.mean;
        corm::sim::Tick warm = cfg.warmup, meas = cfg.measure;
        corm::bench::applyWindow(opts, warm, meas);
        const double secs = corm::sim::toSeconds(warm + meas);
        report.add(row.label, merged);
        std::printf("%-28s | %8.1f %9.0f %9llu | %9.0f %10.0f\n",
                    row.label, r.fps1, r.bufferPeakBytes / 1024.0,
                    static_cast<unsigned long long>(r.ixpQueueDrops),
                    static_cast<double>(r.driverPolls) / secs,
                    static_cast<double>(r.driverInterrupts) / secs);
    }

    std::printf("\nReading: over-aggressive polling burns Dom0 CPU "
                "that the decoding guests needed (fps drops at\n"
                "100 us polls); coalesced interrupts match the best "
                "polling configuration at a fraction of the\n"
                "notification rate — the 'user-defined frequency' "
                "knob §2.1 describes is a real trade-off.\n");
    report.write();
    return 0;
}
