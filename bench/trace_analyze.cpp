/**
 * @file
 * Offline flow-latency analytics over a merged Chrome trace-event
 * JSON file (the artefact --trace writes and the sharded barrier
 * merge produces):
 *
 *   trace_analyze FILE [--json OUT] [--top N]
 *
 * Independently recomputes the same attribution report the
 * in-process FlowProfiler produces (obs/flowprofile.hpp): per-flow
 * leg breakdowns (decide/queue/wire/retry/apply/ack), outcome and
 * blame tables, per-(link, message-type) wire distributions with
 * p50/p99/p999, and the top-N slowest flows. The flow_attr_check
 * ctest asserts this output is byte-identical to the report the
 * bench computed in-process from the live recorder — cross
 * validating the capture pipeline (serialize -> merge -> parse)
 * and the profiler itself in one comparison.
 *
 * --json OUT writes the report to OUT (stdout keeps the human
 * summary); without it the report JSON goes to stdout.
 *
 * Exit status: 0 on success, 2 on usage/IO/parse errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flowprofile.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr, "usage: %s FILE [--json OUT] [--top N]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    const char *jsonOut = nullptr;
    std::size_t topK = 5;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            jsonOut = argv[++i];
        } else if (!std::strcmp(argv[i], "--top") && i + 1 < argc) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 0) {
                std::fprintf(stderr,
                             "trace_analyze: --top wants >= 0\n");
                return 2;
            }
            topK = static_cast<std::size_t>(n);
        } else if (!path) {
            path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (!path)
        return usage(argv[0]);

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "trace_analyze: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    corm::obs::FlowProfiler prof;
    std::string err;
    if (!prof.ingestTraceText(buf.str(), &err)) {
        std::fprintf(stderr, "trace_analyze: %s: %s\n", path,
                     err.c_str());
        return 2;
    }

    const std::string report = prof.reportJson(topK);
    if (jsonOut) {
        std::ofstream out(jsonOut);
        if (!out) {
            std::fprintf(stderr, "trace_analyze: cannot write %s\n",
                         jsonOut);
            return 2;
        }
        out << report << "\n";
        using corm::obs::FlowLeg;
        using corm::obs::FlowOutcome;
        std::printf(
            "trace_analyze: %s: %llu flows (%llu completed, %llu "
            "coalesced, %llu abandoned, %llu orphans), total p99 "
            "%.1f us, blame wire/queue/retry %llu/%llu/%llu\n",
            path,
            static_cast<unsigned long long>(prof.flows().size()),
            static_cast<unsigned long long>(
                prof.outcomeCount(FlowOutcome::completed)),
            static_cast<unsigned long long>(
                prof.outcomeCount(FlowOutcome::coalesced)),
            static_cast<unsigned long long>(
                prof.outcomeCount(FlowOutcome::abandoned)),
            static_cast<unsigned long long>(
                prof.outcomeCount(FlowOutcome::orphan)),
            prof.total().hist.quantile(0.99),
            static_cast<unsigned long long>(prof.blameCount("wire")),
            static_cast<unsigned long long>(prof.blameCount("queue")),
            static_cast<unsigned long long>(
                prof.blameCount("retry")));
    } else {
        std::printf("%s\n", report.c_str());
    }
    return 0;
}
