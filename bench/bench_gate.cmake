# Bench regression gate, run as a ctest.
#
# Reruns one bench binary with the committed fast configuration and
# gates its JSON report against the checked-in baseline
# (bench/baselines/*.json) via the bench_gate comparator. Then
# self-tests the gate: a synthetic 2x regression at SCALE_PATH
# (--scale) must be caught, otherwise the gate itself is broken.
# SCALE_PATH defaults to the RUBiS throughput bench's latency metric;
# gates for other benches pass their own gated path.

if(NOT SCALE_PATH)
    set(SCALE_PATH results.coord.mean_response_ms.mean)
endif()

# Optional extra bench flags (space-separated string) and environment
# ("NAME=VALUE;NAME=VALUE") — the observability gates use these to run
# the bench with capture enabled and the host-dependent speedup
# self-check disarmed.
if(BENCH_ARGS)
    separate_arguments(bench_args UNIX_COMMAND "${BENCH_ARGS}")
endif()
if(BENCH_ENV)
    foreach(kv IN LISTS BENCH_ENV)
        string(FIND "${kv}" "=" eq)
        string(SUBSTRING "${kv}" 0 ${eq} env_name)
        math(EXPR eq "${eq} + 1")
        string(SUBSTRING "${kv}" ${eq} -1 env_value)
        set(ENV{${env_name}} "${env_value}")
    endforeach()
endif()

# Distinct per-gate scratch name, so gates sharing WORK_DIR can run
# under a parallel ctest without clobbering each other's report.
if(NOT FRESH_NAME)
    set(FRESH_NAME gate_fresh.json)
endif()

execute_process(
    COMMAND ${BENCH_BIN} --trials 1 --warmup-sec 0.5 --measure-sec 2
        --json ${WORK_DIR}/${FRESH_NAME} ${bench_args}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "gate bench run failed (rc=${rc})")
endif()

execute_process(
    COMMAND ${GATE_BIN} ${BASELINE} ${WORK_DIR}/${FRESH_NAME}
    RESULT_VARIABLE gate_rc)
if(NOT gate_rc EQUAL 0)
    message(FATAL_ERROR
        "bench regression gate failed against ${BASELINE} "
        "(rc=${gate_rc}); if the change is intentional, refresh the "
        "baseline with scripts/check_bench.sh --update")
endif()

execute_process(
    COMMAND ${GATE_BIN} ${BASELINE} ${WORK_DIR}/${FRESH_NAME}
        --scale ${SCALE_PATH}=2.0 --expect-fail
    RESULT_VARIABLE self_rc OUTPUT_QUIET)
if(NOT self_rc EQUAL 0)
    message(FATAL_ERROR
        "gate self-test failed: a synthetic 2x latency regression "
        "was not caught (rc=${self_rc})")
endif()

message(STATUS "bench_gate: baseline holds; synthetic regression caught")
