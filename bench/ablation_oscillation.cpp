/**
 * @file
 * Ablation: coordination mis-application under read/write
 * oscillation, and the damping fix.
 *
 * §3.1 of the paper: "We do not currently incorporate any mechanisms
 * for predicting frequent transitions amongst read and write
 * requests or to recognize oscillations in client request streams
 * and all our coordination actions are applied on a per-request
 * basis [...] sometimes lead to the incorrect application of our
 * coordination algorithm [...] The correctness of this
 * interpretation is demonstrated by another run of a purely
 * 'Browsing' related mix that does not have the read-write
 * transitions. Here, our approach always performs better than the
 * baseline case for all request types."
 *
 * This bench reproduces the diagnosis (browsing-only mix: no
 * regressions) and evaluates the §5-style fix the paper leaves to
 * future work: EWMA-damped tune application.
 */

#include <cstdio>

#include "bench_util.hpp"

namespace {

struct MixOutcome
{
    int improved = 0;
    int regressedMax = 0;
    int rows = 0;
    double meanBase = 0.0;
    double meanCoord = 0.0;
};

MixOutcome
compare(const corm::platform::RubisResult &base,
        const corm::platform::RubisResult &coord)
{
    MixOutcome o;
    for (std::size_t i = 0; i < base.types.size(); ++i) {
        const auto &b = base.types[i];
        const auto &c = coord.types[i];
        if (b.count < 20 || c.count < 20)
            continue;
        ++o.rows;
        if (c.meanMs < b.meanMs)
            ++o.improved;
        if (c.maxMs > b.maxMs * 1.15)
            ++o.regressedMax;
    }
    o.meanBase = base.meanResponseMs;
    o.meanCoord = coord.meanResponseMs;
    return o;
}

corm::platform::MergedRubis
run(const corm::bench::BenchOptions &opts, corm::apps::rubis::Mix mix,
    bool coordination, bool damped, double delta = 0.0)
{
    corm::platform::RubisScenarioConfig cfg;
    cfg.client.mix = mix;
    cfg.coordination = coordination;
    if (delta > 0.0)
        cfg.tuneDelta = delta;
    if (damped) {
        cfg.damping.enabled = true;
        cfg.damping.alpha = 0.2;
        // Hysteresis scaled to the tune step: large enough to absorb
        // read/write alternation, small enough to pass real waves.
        cfg.damping.hysteresis = cfg.tuneDelta * 0.25;
    }
    cfg.warmup = 15 * corm::sim::sec;
    cfg.measure = 120 * corm::sim::sec;
    return corm::bench::runRubisTrials(cfg, opts);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts =
        corm::bench::parseArgs(argc, argv, "ablation_oscillation");
    corm::bench::banner("Ablation: oscillation",
                        "per-request vs damped tunes; read-write vs "
                        "browsing-only mix");
    corm::bench::BenchReport report(opts);

    using corm::apps::rubis::Mix;

    std::printf("%-34s %9s %9s %10s %12s\n", "Configuration",
                "improved", "max-regr", "mean base", "mean coord");

    // The read-write baseline is shared by the first three
    // configurations (identical config + seed => identical result).
    const auto rwBase = run(opts, Mix::bidBrowseSell, false, false);
    report.add("rw_base", rwBase);

    {
        const auto coord = run(opts, Mix::bidBrowseSell, true, false);
        const auto o = compare(rwBase.mean, coord.mean);
        std::printf("%-34s %6d/%-2d %9d %8.0f ms %9.0f ms\n",
                    "read-write mix, per-request", o.improved, o.rows,
                    o.regressedMax, o.meanBase, o.meanCoord);
        report.add("rw_per_request", coord);
    }
    {
        // Aggressive per-request steps overreact to read/write
        // alternation — the paper's mis-application pathology.
        const auto coord =
            run(opts, Mix::bidBrowseSell, true, false, 32.0);
        const auto o = compare(rwBase.mean, coord.mean);
        std::printf("%-34s %6d/%-2d %9d %8.0f ms %9.0f ms\n",
                    "read-write mix, aggressive steps", o.improved,
                    o.rows, o.regressedMax, o.meanBase, o.meanCoord);
        report.add("rw_aggressive", coord);
    }
    {
        const auto coord = run(opts, Mix::bidBrowseSell, true, true);
        const auto o = compare(rwBase.mean, coord.mean);
        std::printf("%-34s %6d/%-2d %9d %8.0f ms %9.0f ms\n",
                    "read-write mix, damped tunes", o.improved, o.rows,
                    o.regressedMax, o.meanBase, o.meanCoord);
        report.add("rw_damped", coord);
    }
    {
        const auto base = run(opts, Mix::browsing, false, false);
        const auto coord = run(opts, Mix::browsing, true, false);
        const auto o = compare(base.mean, coord.mean);
        std::printf("%-34s %6d/%-2d %9d %8.0f ms %9.0f ms\n",
                    "browsing-only mix, per-request", o.improved,
                    o.rows, o.regressedMax, o.meanBase, o.meanCoord);
        report.add("browse_base", base);
        report.add("browse_per_request", coord);
    }

    std::printf("\nReading: calibrated per-request tunes track the "
                "session waves cleanly; aggressive steps overreact to\n"
                "read/write alternation and regress maxima (the "
                "paper's mis-application pathology); EWMA damping\n"
                "suppresses the pathology but also the benefit — "
                "reaction speed is the price of stability.\n");
    report.write();
    return 0;
}
