/**
 * @file
 * Bench regression gate: compares a freshly produced BENCH_*.json
 * report against a committed baseline (bench/baselines/*.json) with
 * per-metric relative tolerances, and fails when a gated metric
 * drifts outside its band.
 *
 * The simulator is deterministic for a fixed (config, seed), so the
 * gated metrics are exactly reproducible run to run; the tolerances
 * absorb intentional small drift across PRs (and are per metric, so
 * noisy aggregates can run looser than structural counters).
 *
 * Usage:
 *
 *   bench_gate BASELINE FRESH [--scale PATH=FACTOR]... [--expect-fail]
 *   bench_gate --init FRESH --out BASELINE PATH=TOL...
 *
 * The first form gates: every metric listed in BASELINE is looked up
 * by dotted path in FRESH and compared. `--scale` multiplies the
 * fresh value at PATH first (the ctest self-test uses it to
 * synthesize a regression); `--expect-fail` inverts the exit status
 * so that self-test can assert the gate *catches* it.
 *
 * The second form captures a baseline: each PATH=TOL argument reads
 * the value at PATH out of FRESH and records it with relative
 * tolerance TOL.
 *
 * Exit status: 0 pass, 1 regression (or, with --expect-fail, a pass
 * that should have failed), 2 usage/IO/format errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

using corm::obs::JsonValue;
using corm::obs::JsonWriter;

namespace {

bool
readFile(const char *path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** Look up a dotted path ("results.base.throughput_rps.mean"). */
const JsonValue *
lookup(const JsonValue &doc, const std::string &path)
{
    const JsonValue *v = &doc;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        const std::size_t dot = path.find('.', pos);
        const std::string key = path.substr(
            pos, dot == std::string::npos ? std::string::npos
                                          : dot - pos);
        if (!v->isObject())
            return nullptr;
        v = v->get(key.c_str());
        if (!v)
            return nullptr;
        if (dot == std::string::npos)
            break;
        pos = dot + 1;
    }
    return v;
}

struct GateMetric
{
    std::string path;
    double value = 0.0;
    double relTol = 0.1;
};

int
capture(const char *fresh_path, const char *out_path,
        const std::vector<std::pair<std::string, double>> &wanted)
{
    std::string text;
    if (!readFile(fresh_path, text)) {
        std::fprintf(stderr, "bench_gate: cannot read %s\n",
                     fresh_path);
        return 2;
    }
    JsonValue doc;
    std::string err;
    if (!corm::obs::parseJson(text, doc, &err)) {
        std::fprintf(stderr, "bench_gate: %s: malformed JSON: %s\n",
                     fresh_path, err.c_str());
        return 2;
    }
    JsonWriter w;
    w.beginObject();
    const JsonValue *bench = doc.get("bench");
    w.field("bench", bench && bench->isString() ? bench->str : "");
    w.beginObject("metrics");
    for (const auto &[path, tol] : wanted) {
        const JsonValue *v = lookup(doc, path);
        if (!v || !v->isNumber()) {
            std::fprintf(stderr,
                         "bench_gate: %s: no numeric value at %s\n",
                         fresh_path, path.c_str());
            return 2;
        }
        w.beginObject(path.c_str());
        w.field("value", v->num);
        w.field("rel_tol", tol);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "bench_gate: cannot write %s\n",
                     out_path);
        return 2;
    }
    out << w.str() << "\n";
    std::printf("bench_gate: captured %zu metric(s) -> %s\n",
                wanted.size(), out_path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *baselinePath = nullptr;
    const char *freshPath = nullptr;
    const char *initFresh = nullptr;
    const char *outPath = nullptr;
    bool expectFail = false;
    std::vector<std::pair<std::string, double>> scales;
    std::vector<std::pair<std::string, double>> initMetrics;

    auto value = [&](const char *flag, int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr,
                         "bench_gate: missing value for %s\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    auto splitEq = [](const char *arg, std::string &key,
                      double &num) {
        const char *eq = std::strchr(arg, '=');
        if (!eq || eq == arg)
            return false;
        key.assign(arg, eq);
        num = std::strtod(eq + 1, nullptr);
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--init")) {
            initFresh = value(a, i);
        } else if (!std::strcmp(a, "--out")) {
            outPath = value(a, i);
        } else if (!std::strcmp(a, "--scale")) {
            std::string p;
            double f = 0.0;
            if (!splitEq(value(a, i), p, f)) {
                std::fprintf(stderr,
                             "bench_gate: bad --scale (want "
                             "PATH=FACTOR)\n");
                return 2;
            }
            scales.emplace_back(std::move(p), f);
        } else if (!std::strcmp(a, "--expect-fail")) {
            expectFail = true;
        } else if (initFresh) {
            std::string p;
            double t = 0.0;
            if (!splitEq(a, p, t)) {
                std::fprintf(stderr,
                             "bench_gate: bad metric spec '%s' "
                             "(want PATH=TOL)\n", a);
                return 2;
            }
            initMetrics.emplace_back(std::move(p), t);
        } else if (!baselinePath) {
            baselinePath = a;
        } else if (!freshPath) {
            freshPath = a;
        } else {
            std::fprintf(stderr,
                         "usage: %s BASELINE FRESH [--scale "
                         "PATH=FACTOR]... [--expect-fail]\n"
                         "       %s --init FRESH --out BASELINE "
                         "PATH=TOL...\n",
                         argv[0], argv[0]);
            return 2;
        }
    }

    if (initFresh) {
        if (!outPath || initMetrics.empty()) {
            std::fprintf(stderr,
                         "bench_gate: --init needs --out and at "
                         "least one PATH=TOL\n");
            return 2;
        }
        return capture(initFresh, outPath, initMetrics);
    }

    if (!baselinePath || !freshPath) {
        std::fprintf(stderr,
                     "usage: %s BASELINE FRESH [--scale "
                     "PATH=FACTOR]... [--expect-fail]\n",
                     argv[0]);
        return 2;
    }

    std::string baseText, freshText;
    if (!readFile(baselinePath, baseText)) {
        std::fprintf(stderr, "bench_gate: cannot read %s\n",
                     baselinePath);
        return 2;
    }
    if (!readFile(freshPath, freshText)) {
        std::fprintf(stderr, "bench_gate: cannot read %s\n",
                     freshPath);
        return 2;
    }
    JsonValue base, fresh;
    std::string err;
    if (!corm::obs::parseJson(baseText, base, &err)) {
        std::fprintf(stderr, "bench_gate: %s: malformed JSON: %s\n",
                     baselinePath, err.c_str());
        return 2;
    }
    if (!corm::obs::parseJson(freshText, fresh, &err)) {
        std::fprintf(stderr, "bench_gate: %s: malformed JSON: %s\n",
                     freshPath, err.c_str());
        return 2;
    }

    const JsonValue *metrics = base.get("metrics");
    if (!metrics || !metrics->isObject()
        || metrics->members.empty()) {
        std::fprintf(stderr,
                     "bench_gate: %s: no gated metrics\n",
                     baselinePath);
        return 2;
    }

    std::size_t checked = 0, regressions = 0;
    for (const auto &[path, spec] : metrics->members) {
        const JsonValue *want = spec.get("value");
        const JsonValue *tol = spec.get("rel_tol");
        if (!want || !want->isNumber()) {
            std::fprintf(stderr,
                         "bench_gate: baseline metric %s has no "
                         "value\n", path.c_str());
            return 2;
        }
        const double relTol =
            tol && tol->isNumber() ? tol->num : 0.1;
        const JsonValue *got = lookup(fresh, path);
        if (!got || !got->isNumber()) {
            std::printf("bench_gate: FAIL %s: missing from fresh "
                        "report\n", path.c_str());
            ++regressions;
            continue;
        }
        double observed = got->num;
        for (const auto &[sp, factor] : scales) {
            if (sp == path)
                observed *= factor;
        }
        ++checked;
        const double expect = want->num;
        const double band =
            relTol * (expect < 0 ? -expect : expect);
        const double delta =
            observed - expect < 0 ? expect - observed
                                  : observed - expect;
        if (delta > band) {
            std::printf("bench_gate: FAIL %s: %.6g outside %.6g "
                        "+/- %.1f%%\n",
                        path.c_str(), observed, expect,
                        100.0 * relTol);
            ++regressions;
        } else {
            std::printf("bench_gate: ok   %s: %.6g (baseline %.6g, "
                        "+/- %.1f%%)\n",
                        path.c_str(), observed, expect,
                        100.0 * relTol);
        }
    }

    const bool failed = regressions != 0;
    std::printf("bench_gate: %zu metric(s) checked, %zu "
                "regression(s)%s\n",
                checked, regressions,
                expectFail ? " (inverted: expecting failure)" : "");
    if (expectFail)
        return failed ? 0 : 1;
    return failed ? 1 : 0;
}
