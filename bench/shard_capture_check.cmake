# Sharded trace/monitor capture acceptance check, run as a ctest.
#
# Exercises the PR-8 tentpole claims end to end on a small tree
# fabric (24 islands, cheap enough for every CI run; EXPERIMENTS.md
# records the 256/1024-island numbers):
#
#  1. Cross-shard-count trace identity: the merged Chrome trace from
#     a --shards 1 capture is byte-identical to a --shards 4 capture
#     of the same seed (run A captures the 1-shard cell, run B the
#     4-shard cell; the sweep order decides which cell capture
#     attaches to).
#  2. Schema + stitching: trace_check accepts the merged trace,
#     finds a complete multi-hop causal span, and verifies every
#     cross-track flow carries a stitching step (run B's trace).
#  3. Jobs independence: trial-0 capture is byte-identical between
#     --trials 1 and a --trials 2 --jobs 2 run (run J vs run B).
#  4. Digest neutrality across processes: the scenario digest of a
#     bare (capture-off) run equals the captured run's digest, via
#     the JSON reports. (The binary also enforces this in-process at
#     zero tolerance through its obs-overhead rerun; this check
#     additionally proves it across separate invocations.)
#
# The 4-shard speedup self-check is disarmed: 24-island cells are
# far too small to amortise barriers, and this test is about
# capture correctness, not throughput.

set(ENV{CORM_SHARD_SPEEDUP_MIN} 0)

set(common --islands 24 --trials 1 --monitor --metrics)

# Run A: capture rides the 1-shard cell (first in the sweep order).
execute_process(
    COMMAND ${BENCH_BIN} ${common} --shards 1,4
        --trace ${WORK_DIR}/capture_s1.json
        --json ${WORK_DIR}/capture_a.json
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "captured 1-shard run failed (rc=${rc})")
endif()

# Run B: same seed, capture rides the 4-shard cell.
execute_process(
    COMMAND ${BENCH_BIN} ${common} --shards 4,1
        --trace ${WORK_DIR}/capture_s4.json
        --json ${WORK_DIR}/capture_b.json
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "captured 4-shard run failed (rc=${rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/capture_s1.json ${WORK_DIR}/capture_s4.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "merge violation: trace differs between --shards 1 and "
        "--shards 4 (${WORK_DIR}/capture_s1.json vs capture_s4.json)")
endif()

# Schema, causal spans, and cross-shard stitching.
execute_process(
    COMMAND ${CHECK_BIN} ${WORK_DIR}/capture_s4.json
        --require-flow --stitched-flows
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "trace_check rejected the merged sharded trace (rc=${rc})")
endif()

# Run J: parallel trials must not perturb trial-0 capture.
execute_process(
    COMMAND ${BENCH_BIN} --islands 24 --monitor --metrics
        --trials 2 --jobs 2 --shards 4,1
        --trace ${WORK_DIR}/capture_j2.json
        --json ${WORK_DIR}/capture_j.json
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "captured --jobs 2 run failed (rc=${rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/capture_s4.json ${WORK_DIR}/capture_j2.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "determinism violation: trial-0 sharded trace differs "
        "between --jobs 1 and --jobs 2")
endif()

# Run C: bare capture-off run; its digest must match the captured
# run's, proving capture never schedules simulator events.
execute_process(
    COMMAND ${BENCH_BIN} --islands 24 --trials 1 --shards 4
        --json ${WORK_DIR}/capture_c.json
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bare comparison run failed (rc=${rc})")
endif()

function(extract_digest file out)
    file(READ ${file} content)
    string(REGEX MATCH "\"tree_n24_s4\":[^}]*" cell "${content}")
    if(NOT cell)
        message(FATAL_ERROR "no tree_n24_s4 cell in ${file}")
    endif()
    string(REGEX MATCH "\"digest_hi\": *([0-9eE.+-]+)" m "${cell}")
    set(hi "${CMAKE_MATCH_1}")
    string(REGEX MATCH "\"digest_lo\": *([0-9eE.+-]+)" m "${cell}")
    set(lo "${CMAKE_MATCH_1}")
    if(NOT hi OR NOT lo)
        message(FATAL_ERROR "no digest scalars in ${file}")
    endif()
    set(${out} "${hi}/${lo}" PARENT_SCOPE)
endfunction()

extract_digest(${WORK_DIR}/capture_b.json digest_captured)
extract_digest(${WORK_DIR}/capture_c.json digest_bare)
if(NOT digest_captured STREQUAL digest_bare)
    message(FATAL_ERROR
        "capture perturbed the digest: captured ${digest_captured} "
        "vs bare ${digest_bare}")
endif()

message(STATUS "shard_capture_check: merged trace byte-identical "
    "across shard counts and jobs, stitched flows present, digest "
    "capture-neutral")
