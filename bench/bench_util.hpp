/**
 * @file
 * Shared infrastructure for the paper-artefact benchmark binaries:
 *
 *  - banner/table formatting and the paper's reported values (for
 *    side-by-side shape comparison; we reproduce shapes, not absolute
 *    numbers — see EXPERIMENTS.md);
 *  - the common command line every bench accepts
 *    (--trials/--jobs/--seed/--warmup-sec/--measure-sec/--json);
 *  - multi-trial scenario runners fanning independent trials across
 *    host cores via platform/harness.hpp;
 *  - the machine-readable BENCH_<name>.json report (wall time,
 *    events/sec, merged trial results) that tracks the perf
 *    trajectory of the simulator from PR to PR.
 */

#pragma once

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "platform/harness.hpp"
#include "platform/scenarios.hpp"
#include "sim/log.hpp"

namespace corm::bench {

// The bench JSON report shares one writer with the metrics and trace
// emitters (obs/json.hpp) so every machine-readable artefact stays
// format-consistent.
using corm::obs::JsonWriter;
using corm::obs::jsonSummary;

/** Print a banner naming the artefact being regenerated. */
inline void
banner(const char *artefact, const char *description)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s — %s\n", artefact, description);
    std::printf("(CoRM reproduction; simulated substrate -- compare "
                "shapes, not absolute values)\n");
    std::printf("==================================================="
                "===========================\n");
}

/**
 * Paper Table 1: average request response times in ms
 * (base, coord-ixp-dom0), indexed by RequestType ordinal.
 */
struct PaperTable1Row
{
    double baseMs;
    double coordMs;
};

inline const PaperTable1Row paperTable1[] = {
    {1447, 1015}, // Register
    {922, 461},   // Browse
    {1896, 1242}, // BrowseCategories
    {1085, 788},  // SearchItemsInCategory
    {1491, 1490}, // BrowseRegions
    {1068, 927},  // BrowseCategoriesInRegion
    {590, 530},   // SearchItemsInRegion
    {2147, 1944}, // ViewItem
    {551, 292},   // BuyNow
    {1089, 867},  // PutBidAuth
    {1528, 538},  // PutBid
    {3366, 1421}, // StoreBid
    {4186, 721},  // PutComment
    {720, 490},   // Sell
    {351, 188},   // SellItemForm
    {1154, 546},  // AboutMe(authForm)
};

//
// Command line
//

/**
 * Observability capture for a bench run. The trial runners wire
 * trial 0 — which runs the same seed and configuration regardless of
 * --jobs, so the captured artefacts are byte-identical for any
 * parallelism — to fill this in; BenchReport::write() emits it.
 */
struct ObsCapture
{
    /** --trace destination; empty disables trace capture. */
    std::string tracePath;
    /** --metrics: dump + embed the registry snapshot. */
    bool metrics = false;
    /** --monitor: arm the online health monitor on trial 0. */
    bool monitor = false;
    /** --dashboard destination; empty disables (implies monitor). */
    std::string dashboardPath;

    /** Chrome trace-event JSON from trial 0 (filled by the run). */
    std::string traceJson;
    /** MetricRegistry JSON snapshot from trial 0. */
    std::string metricsJson;
    /** MetricRegistry text dump from trial 0. */
    std::string metricsText;
    /** Health monitor log from trial 0 (--monitor). */
    std::string healthReport;
    /** Unhealthy events observed on trial 0. */
    std::uint64_t healthBreaches = 0;
    /** Flight-recorder dump around the first incident, if any. */
    std::string flightJson;
    /** What triggered the flight dump. */
    std::string flightReason;
    /** Rendered time-series dashboard (--dashboard). */
    std::string dashboardHtml;
};

/** Options every bench binary accepts. */
struct BenchOptions
{
    corm::platform::TrialOptions trial;
    /** Scenario window overrides in seconds; < 0 keeps the default. */
    double warmupSec = -1.0;
    double measureSec = -1.0;
    /** Where the JSON report goes; empty = BENCH_<name>.json. */
    std::string jsonPath;
    bool writeJson = true;
    /** True once --seed was given explicitly. */
    bool seedSet = false;
    /** Bench name (set by parseArgs from the binary's artefact id). */
    std::string name;
    /**
     * Trace/metrics capture, shared between the trial runners (which
     * fill it) and the report (which writes it). Always non-null.
     */
    std::shared_ptr<ObsCapture> obs = std::make_shared<ObsCapture>();
};

inline void
printUsage(const char *bench_name)
{
    std::printf(
        "usage: %s [options]\n"
        "  --trials N        independent trials to run and merge "
        "(default 1)\n"
        "  --jobs M          worker threads; results are identical "
        "for any M (default 1)\n"
        "  --seed S          master seed, decimal or 0x-hex "
        "(default 0x5eedc0de5eedc0de)\n"
        "  --warmup-sec X    override scenario warm-up window\n"
        "  --measure-sec X   override scenario measurement window\n"
        "  --json PATH       write the JSON report to PATH "
        "(default BENCH_%s.json)\n"
        "  --no-json         skip the JSON report\n"
        "  --trace PATH      write a Perfetto-loadable trace of "
        "trial 0 to PATH\n"
        "  --metrics         print trial 0's metric registry and "
        "embed it in the report\n"
        "  --monitor         arm the online health monitor (SLO "
        "watchdogs + flight recorder) on trial 0\n"
        "  --dashboard PATH  write trial 0's time-series dashboard "
        "as HTML (implies --monitor)\n"
        "  --log-level SPEC  logging spec "
        "\"level[,component=level,...]\" (like CORM_LOG)\n"
        "  --help            this text\n",
        bench_name, bench_name);
}

/**
 * Parse the shared bench flags. Exits with usage on error, so bench
 * main()s stay one-liners.
 */
inline BenchOptions
parseArgs(int argc, char **argv, const char *bench_name)
{
    BenchOptions o;
    o.name = bench_name;
    auto numeric = [&](const char *flag, int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                         flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--trials")) {
            o.trial.trials = std::atoi(numeric(a, i));
            if (o.trial.trials < 1) {
                std::fprintf(stderr, "%s: --trials must be >= 1\n",
                             argv[0]);
                std::exit(2);
            }
        } else if (!std::strcmp(a, "--jobs")) {
            o.trial.jobs = std::atoi(numeric(a, i));
            if (o.trial.jobs < 1) {
                std::fprintf(stderr, "%s: --jobs must be >= 1\n",
                             argv[0]);
                std::exit(2);
            }
        } else if (!std::strcmp(a, "--seed")) {
            o.trial.seed = std::strtoull(numeric(a, i), nullptr, 0);
            o.seedSet = true;
        } else if (!std::strcmp(a, "--warmup-sec")) {
            o.warmupSec = std::atof(numeric(a, i));
        } else if (!std::strcmp(a, "--measure-sec")) {
            o.measureSec = std::atof(numeric(a, i));
        } else if (!std::strcmp(a, "--json")) {
            o.jsonPath = numeric(a, i);
        } else if (!std::strcmp(a, "--no-json")) {
            o.writeJson = false;
        } else if (!std::strcmp(a, "--trace")) {
            o.obs->tracePath = numeric(a, i);
        } else if (!std::strcmp(a, "--metrics")) {
            o.obs->metrics = true;
        } else if (!std::strcmp(a, "--monitor")) {
            o.obs->monitor = true;
        } else if (!std::strcmp(a, "--dashboard")) {
            o.obs->dashboardPath = numeric(a, i);
            o.obs->monitor = true;
        } else if (!std::strcmp(a, "--log-level")) {
            const char *spec = numeric(a, i);
            if (!corm::sim::LogConfig::instance().configure(spec)) {
                std::fprintf(stderr,
                             "%s: bad --log-level spec '%s'\n",
                             argv[0], spec);
                std::exit(2);
            }
        } else if (!std::strcmp(a, "--help")) {
            printUsage(bench_name);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         a);
            printUsage(bench_name);
            std::exit(2);
        }
    }
    // Observability capture is wired to trial 0 only (the one trial
    // whose seed and schedule are --jobs-independent); make the
    // narrowing explicit instead of silently dropping trials 2..N.
    if (o.trial.trials > 1
        && (!o.obs->tracePath.empty() || o.obs->monitor)) {
        std::fprintf(stderr,
                     "%s: note: --trace/--monitor capture trial 0 "
                     "only; trials 2..%d run unobserved\n",
                     argv[0], o.trial.trials);
    }
    return o;
}

/** Apply --warmup-sec/--measure-sec to a scenario window pair. */
inline void
applyWindow(const BenchOptions &o, corm::sim::Tick &warmup,
            corm::sim::Tick &measure)
{
    if (o.warmupSec >= 0.0)
        warmup = corm::sim::fromSeconds(o.warmupSec);
    if (o.measureSec >= 0.0)
        measure = corm::sim::fromSeconds(o.measureSec);
}

//
// Multi-trial scenario runners
//

/**
 * Wire a scenario config for observability capture if @p trial_idx
 * is 0 and the user asked for --trace or --metrics. The recorder
 * @p rec must outlive the scenario run (the inspect hook serializes
 * it after measurement, before teardown). Chains any inspect hook
 * the bench itself installed.
 */
template <typename Config>
inline void
attachObsCapture(const BenchOptions &o, int trial_idx, Config &cfg,
                 corm::obs::TraceRecorder &rec)
{
    std::shared_ptr<ObsCapture> obs = o.obs;
    if (!obs || trial_idx != 0
        || (obs->tracePath.empty() && !obs->metrics && !obs->monitor))
        return;
    if (!obs->tracePath.empty())
        cfg.testbed.trace = &rec;
    if (obs->monitor)
        cfg.testbed.monitor = true;
    auto prev = std::move(cfg.inspect);
    corm::obs::TraceRecorder *recp = &rec;
    cfg.inspect = [obs, prev, recp](corm::platform::Testbed &tb) {
        if (prev)
            prev(tb);
        if (obs->metrics) {
            std::ostringstream text;
            tb.metrics().writeText(text);
            obs->metricsText = text.str();
            obs->metricsJson = tb.metrics().jsonSnapshot();
        }
        if (!obs->tracePath.empty())
            obs->traceJson = recp->json();
        if (corm::obs::HealthMonitor *mon = tb.monitor()) {
            obs->healthReport = mon->healthReport();
            obs->healthBreaches = mon->breaches();
            if (mon->flight().hasSnapshot()) {
                obs->flightJson = mon->flight().snapshotJson();
                obs->flightReason = mon->flight().snapshotReason();
            }
            if (!obs->dashboardPath.empty())
                obs->dashboardHtml = mon->sampler().dashboardHtml(
                    "CoRM trial 0");
        }
    };
}

/**
 * Run --trials independent RUBiS trials of @p cfg_template across
 * --jobs threads and merge. Per-trial seeds derive from the master
 * seed; everything else in the template is shared. A default
 * single-trial run (no --seed) keeps the template's built-in RNG
 * seeds so the no-flag invocation regenerates the paper artefact
 * documented in EXPERIMENTS.md byte-for-byte.
 */
inline corm::platform::MergedRubis
runRubisTrials(const corm::platform::RubisScenarioConfig &cfg_template,
               const BenchOptions &o)
{
    const bool reseed = o.trial.trials > 1 || o.seedSet;
    auto results = corm::platform::runTrials(
        o.trial, [&](int idx, std::uint64_t seed) {
            corm::platform::RubisScenarioConfig cfg = cfg_template;
            applyWindow(o, cfg.warmup, cfg.measure);
            if (reseed)
                corm::platform::applyTrialSeed(cfg, seed);
            corm::obs::TraceRecorder rec;
            attachObsCapture(o, idx, cfg, rec);
            return corm::platform::runRubisScenario(cfg);
        });
    return corm::platform::mergeRubisResults(results);
}

/** RUBiS trials with the default scenario configuration. */
inline corm::platform::MergedRubis
runRubis(bool coordination, const BenchOptions &o)
{
    corm::platform::RubisScenarioConfig cfg;
    cfg.coordination = coordination;
    cfg.warmup = 20 * corm::sim::sec;
    cfg.measure = 300 * corm::sim::sec;
    return runRubisTrials(cfg, o);
}

/**
 * Run --trials MPlayer-QoS trials. The scenario's workload is fully
 * deterministic (no stochastic streams), so trials differ only if
 * the template does; the harness still parallelises sweeps.
 */
inline corm::platform::MergedMplayerQos
runMplayerTrials(const corm::platform::MplayerQosConfig &cfg_template,
                 const BenchOptions &o)
{
    auto results = corm::platform::runTrials(
        o.trial, [&](int idx, std::uint64_t) {
            corm::platform::MplayerQosConfig cfg = cfg_template;
            applyWindow(o, cfg.warmup, cfg.measure);
            corm::obs::TraceRecorder rec;
            attachObsCapture(o, idx, cfg, rec);
            return corm::platform::runMplayerQos(cfg);
        });
    return corm::platform::mergeMplayerResults(results);
}

/** Run --trials buffer-threshold Trigger trials. */
inline corm::platform::MergedTrigger
runTriggerTrials(
    const corm::platform::TriggerScenarioConfig &cfg_template,
    const BenchOptions &o)
{
    auto results = corm::platform::runTrials(
        o.trial, [&](int idx, std::uint64_t) {
            corm::platform::TriggerScenarioConfig cfg = cfg_template;
            applyWindow(o, cfg.warmup, cfg.measure);
            corm::obs::TraceRecorder rec;
            attachObsCapture(o, idx, cfg, rec);
            return corm::platform::runTriggerScenario(cfg);
        });
    return corm::platform::mergeTriggerResults(results);
}

//
// JSON report (writer and jsonSummary live in obs/json.hpp)
//

/**
 * Per-bench JSON report: collects merged results under labels, then
 * write() stamps wall time and events/sec and emits
 * BENCH_<name>.json (schema documented in EXPERIMENTS.md).
 */
class BenchReport
{
  public:
    explicit BenchReport(const BenchOptions &options)
        : opts(options), started(std::chrono::steady_clock::now())
    {
        json.beginObject();
        json.field("bench", opts.name);
        json.field("trials", opts.trial.trials);
        json.field("jobs", opts.trial.jobs);
        char seedbuf[32];
        std::snprintf(seedbuf, sizeof(seedbuf), "0x%016" PRIx64,
                      opts.trial.seed);
        json.field("seed", std::string(seedbuf));
        json.beginObject("results");
    }

    void
    add(const char *label, const corm::platform::MergedRubis &m)
    {
        totalEvents += m.totalEvents;
        json.beginObject(label);
        json.field("trials", m.trials);
        jsonSummary(json, "throughput_rps", m.throughputRps);
        jsonSummary(json, "mean_response_ms", m.meanResponseMs);
        json.field("sessions_completed", m.mean.sessionsCompleted);
        json.field("avg_session_sec", m.mean.avgSessionSec);
        json.field("platform_efficiency", m.mean.platformEfficiency);
        json.field("tunes_sent", m.mean.tunesSent);
        json.field("tunes_applied", m.mean.tunesApplied);
        json.beginObject("channel_health");
        json.field("dropped", m.mean.chanDropped);
        json.field("duplicates", m.mean.chanDuplicates);
        json.field("reorders", m.mean.chanReorders);
        json.field("retries", m.mean.chanRetries);
        json.field("outage_ms", m.mean.chanOutageMs);
        json.field("regs_acked", m.mean.regsAcked);
        json.field("regs_abandoned", m.mean.regsAbandoned);
        json.field("regs_pending", m.mean.regsPending);
        json.endObject();
        json.field("events_executed", m.totalEvents);
        json.beginArray("types");
        for (std::size_t i = 0; i < m.mean.types.size(); ++i) {
            const auto &t = m.mean.types[i];
            json.beginObject();
            json.field("name", t.name);
            json.field("count", t.count);
            json.field("min_ms", t.minMs);
            json.field("max_ms", t.maxMs);
            json.field("mean_ms", t.meanMs);
            json.field("stddev_ms", t.stddevMs);
            json.field("trial_mean_stddev_ms",
                       m.typeMeanMs[i].stddev());
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    void
    add(const char *label, const corm::platform::MergedMplayerQos &m)
    {
        totalEvents += m.totalEvents;
        json.beginObject(label);
        json.field("trials", m.trials);
        jsonSummary(json, "fps1", m.fps1);
        jsonSummary(json, "fps2", m.fps2);
        json.field("late1", m.mean.late1);
        json.field("late2", m.mean.late2);
        json.field("cpu1_pct", m.mean.cpu1Pct);
        json.field("cpu2_pct", m.mean.cpu2Pct);
        json.field("dom0_pct", m.mean.dom0Pct);
        json.field("weight1_end", m.mean.weight1End);
        json.field("weight2_end", m.mean.weight2End);
        json.field("events_executed", m.totalEvents);
        json.endObject();
    }

    void
    add(const char *label, const corm::platform::MergedTrigger &m)
    {
        totalEvents += m.totalEvents;
        json.beginObject(label);
        json.field("trials", m.trials);
        jsonSummary(json, "fps1", m.fps1);
        jsonSummary(json, "fps2", m.fps2);
        json.field("late1", m.mean.late1);
        json.field("triggers_sent", m.mean.triggersSent);
        json.field("boosts", m.mean.boosts);
        json.field("ixp_queue_drops", m.mean.ixpQueueDrops);
        json.field("buffer_peak_bytes", m.mean.bufferPeakBytes);
        json.field("driver_polls", m.mean.driverPolls);
        json.field("driver_interrupts", m.mean.driverInterrupts);
        json.field("events_executed", m.totalEvents);
        json.endObject();
    }

    /** Free-form scalar rows (ablation sweeps). */
    void
    addScalars(
        const char *label,
        const std::vector<std::pair<std::string, double>> &values,
        std::uint64_t events = 0)
    {
        totalEvents += events;
        json.beginObject(label);
        for (const auto &[k, v] : values)
            json.field(k.c_str(), v);
        if (events)
            json.field("events_executed", events);
        json.endObject();
    }

    /**
     * Close the report and write it. Prints the destination so runs
     * leave a breadcrumb next to the human-readable tables.
     */
    void
    write()
    {
        if (written)
            return;
        written = true;
        json.endObject(); // results
        if (opts.obs && !opts.obs->metricsJson.empty())
            json.fieldRaw("metrics", opts.obs->metricsJson);
        if (opts.obs && !opts.obs->healthReport.empty()) {
            json.beginObject("health");
            json.field("breaches", opts.obs->healthBreaches);
            json.field("flight_reason", opts.obs->flightReason);
            json.endObject();
        }
        // Round-trip the capture flags into the run metadata, so a
        // report always records whether (and how) its run was
        // observed — a traced run's numbers are not a baseline for
        // an untraced one. Deterministic per invocation, so the
        // jobs-determinism smoke diff is unaffected.
        if (opts.obs) {
            json.beginObject("capture");
            json.field("trace", !opts.obs->tracePath.empty());
            json.field("metrics", opts.obs->metrics);
            json.field("monitor", opts.obs->monitor);
            json.field("dashboard", !opts.obs->dashboardPath.empty());
            json.endObject();
        }
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                .count();
        json.field("wall_seconds", wall);
        json.field("events_executed", totalEvents);
        json.field("events_per_second",
                   wall > 0.0 ? static_cast<double>(totalEvents) / wall
                              : 0.0);
        json.endObject();
        // Trace and metrics dumps are independent of --no-json.
        if (opts.obs) {
            const ObsCapture &obs = *opts.obs;
            if (!obs.tracePath.empty() && !obs.traceJson.empty()) {
                std::ofstream tf(obs.tracePath);
                tf << obs.traceJson << "\n";
                std::printf("\n[trace: trial 0 -> %s]\n",
                            obs.tracePath.c_str());
            }
            if (obs.metrics && !obs.metricsText.empty())
                std::printf("\n--- metrics (trial 0) ---\n%s",
                            obs.metricsText.c_str());
            if (!obs.healthReport.empty())
                std::printf("\n--- health (trial 0) ---\n%s",
                            obs.healthReport.c_str());
            if (!obs.flightJson.empty()) {
                const std::string fpath =
                    "BENCH_" + opts.name + "_flight.json";
                std::ofstream ff(fpath);
                ff << obs.flightJson << "\n";
                std::printf("[flight dump (%s) -> %s]\n",
                            obs.flightReason.c_str(), fpath.c_str());
            }
            if (!obs.dashboardPath.empty()
                && !obs.dashboardHtml.empty()) {
                std::ofstream df(obs.dashboardPath);
                df << obs.dashboardHtml;
                std::printf("[dashboard: trial 0 -> %s]\n",
                            obs.dashboardPath.c_str());
            }
        }
        if (!opts.writeJson)
            return;
        const std::string path = opts.jsonPath.empty()
            ? "BENCH_" + opts.name + ".json"
            : opts.jsonPath;
        std::ofstream f(path);
        f << json.str() << "\n";
        std::printf("\n[%s: %d trial(s) x %d job(s), %.2f s wall, "
                    "%.2fM events/s -> %s]\n",
                    opts.name.c_str(), opts.trial.trials,
                    opts.trial.jobs, wall,
                    wall > 0.0
                        ? static_cast<double>(totalEvents) / wall / 1e6
                        : 0.0,
                    path.c_str());
    }

  private:
    BenchOptions opts;
    std::chrono::steady_clock::time_point started;
    JsonWriter json;
    std::uint64_t totalEvents = 0;
    bool written = false;
};

} // namespace corm::bench
