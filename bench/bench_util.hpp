/**
 * @file
 * Shared helpers for the paper-artefact benchmark binaries: table
 * formatting and the paper's reported values (for side-by-side shape
 * comparison; we reproduce shapes, not absolute numbers — see
 * EXPERIMENTS.md).
 */

#pragma once

#include <cstdio>
#include <string>

#include "platform/scenarios.hpp"

namespace corm::bench {

/** Print a banner naming the artefact being regenerated. */
inline void
banner(const char *artefact, const char *description)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s — %s\n", artefact, description);
    std::printf("(CoRM reproduction; simulated substrate -- compare "
                "shapes, not absolute values)\n");
    std::printf("==================================================="
                "===========================\n");
}

/**
 * Paper Table 1: average request response times in ms
 * (base, coord-ixp-dom0), indexed by RequestType ordinal.
 */
struct PaperTable1Row
{
    double baseMs;
    double coordMs;
};

inline const PaperTable1Row paperTable1[] = {
    {1447, 1015}, // Register
    {922, 461},   // Browse
    {1896, 1242}, // BrowseCategories
    {1085, 788},  // SearchItemsInCategory
    {1491, 1490}, // BrowseRegions
    {1068, 927},  // BrowseCategoriesInRegion
    {590, 530},   // SearchItemsInRegion
    {2147, 1944}, // ViewItem
    {551, 292},   // BuyNow
    {1089, 867},  // PutBidAuth
    {1528, 538},  // PutBid
    {3366, 1421}, // StoreBid
    {4186, 721},  // PutComment
    {720, 490},   // Sell
    {351, 188},   // SellItemForm
    {1154, 546},  // AboutMe(authForm)
};

/** Run the default RUBiS scenario with/without coordination. */
inline corm::platform::RubisResult
runRubis(bool coordination,
         corm::sim::Tick warmup = 20 * corm::sim::sec,
         corm::sim::Tick measure = 300 * corm::sim::sec)
{
    corm::platform::RubisScenarioConfig cfg;
    cfg.coordination = coordination;
    cfg.warmup = warmup;
    cfg.measure = measure;
    return corm::platform::runRubisScenario(cfg);
}

} // namespace corm::bench
