/**
 * @file
 * Flow-latency attribution bench + acceptance harness.
 *
 * Runs the scale-out fabric scenario on a small tree with the
 * in-process FlowProfiler armed (cfg.profileFlows) over two cells —
 * clean links and faulty links (10% loss + 5% dup, so the reliable
 * replay/retry machinery shows up in the leg breakdowns) — sweeping
 * the shard count, and self-checks the PR's attribution claims
 * (exit non-zero on violation):
 *
 *  1. Digest neutrality: profiling is pure post-run analysis; the
 *     scenario digest of the profiled trial equals a bare rerun of
 *     the same seed, at zero tolerance.
 *  2. Shard invariance: the merged trace bytes AND the attribution
 *     report bytes are identical for every swept shard count
 *     (byte-identical trace -> byte-identical report).
 *  3. In-process / offline agreement: re-ingesting the serialized
 *     trace JSON through FlowProfiler::ingestTraceText must
 *     reproduce the scenario's in-process report byte for byte —
 *     the same cross-validation bench/trace_analyze.cpp performs
 *     out of process (the flow_attr_check ctest closes that loop).
 *  4. Attribution sanity: the faulty cell must attribute retry time
 *     (blame or leg sum) that the clean cell does not, and every
 *     reassembled flow must land in a named outcome (completed +
 *     coalesced + abandoned + orphans == flows).
 *
 * Custom flags, consumed before the shared bench CLI:
 *
 *   --islands N          islands in both cells (default 12)
 *   --shards K[,K...]    shard counts to sweep (default 1,2,4)
 *   --profile PATH       write the faulty-cell front-shard report
 *                        (trailing newline, trace_analyze-compatible)
 *
 * The shared --trace PATH writes the matching merged trace, so
 * `flow_attr --trace t.json --profile p.json` followed by
 * `trace_analyze t.json --json q.json` must satisfy p == q.
 *
 * Gated scalars (bench/baselines/flow_attr.json): per-cell flow and
 * outcome counts, blame tallies and digests at zero tolerance; wall
 * time generously.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "coord/fabric.hpp"
#include "obs/flowprofile.hpp"
#include "obs/trace.hpp"

namespace {

/** Split "1,2,4" into integers within [lo, hi]; exits on garbage. */
std::vector<int>
parseIntList(const char *arg, const char *flag, long lo, long hi)
{
    std::vector<int> out;
    const char *p = arg;
    while (*p != '\0') {
        char *end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v < lo || v > hi) {
            std::fprintf(stderr,
                         "flow_attr: bad %s value in '%s' "
                         "(want %ld..%ld)\n",
                         flag, arg, lo, hi);
            std::exit(2);
        }
        out.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
    }
    if (out.empty()) {
        std::fprintf(stderr, "flow_attr: empty %s list\n", flag);
        std::exit(2);
    }
    return out;
}

struct CellSpec
{
    const char *label;
    bool faulty;
};

} // namespace

int
main(int argc, char **argv)
{
    int islands = 12;
    std::vector<int> shardCounts = {1, 2, 4};
    std::string profilePath;
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--islands") && i + 1 < argc) {
            islands = parseIntList(argv[++i], "--islands", 2,
                                   4096)[0];
        } else if (!std::strcmp(argv[i], "--shards") && i + 1 < argc) {
            shardCounts = parseIntList(argv[++i], "--shards", 1, 16);
        } else if (!std::strcmp(argv[i], "--profile")
                   && i + 1 < argc) {
            profilePath = argv[++i];
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    const auto opts = corm::bench::parseArgs(
        static_cast<int>(passthrough.size()), passthrough.data(),
        "flow_attr");

    corm::bench::banner(
        "Flow attribution",
        "per-leg latency blame on a faulty tree fabric: in-process "
        "profiler vs offline trace analytics");
    corm::bench::BenchReport report(opts);

    const auto makeCfg = [&](bool faulty, int k) {
        corm::platform::FabricScenarioConfig cfg;
        cfg.islands = islands;
        cfg.shards = k;
        cfg.firstIslandId = 0;
        cfg.fabric.topology = corm::coord::FabricTopology::tree;
        cfg.fabric.treeFanout = 3;
        cfg.fabric.hopLatency = 200 * corm::sim::usec;
        // Aggregation open so tree hubs fold fire-and-forget tunes
        // (the `coalesced` outcome the profiler must attribute).
        cfg.fabric.aggWindow = 300 * corm::sim::usec;
        cfg.tunesPerPair = 30;
        cfg.triggerProb = 0.1; // reliable path: acks, retries
        cfg.settleLimit = 500 * corm::sim::msec;
        cfg.convergencePoll = 2 * corm::sim::msec;
        cfg.monitorLanes = false;
        if (faulty) {
            // Dense enough weather that link replays, reliable-layer
            // retries and the occasional budget-exhaustion abandon
            // all appear in a 200 ms workload span.
            cfg.fabric.faults.lossProb = 0.10;
            cfg.fabric.faults.dupProb = 0.05;
        }
        return cfg;
    };

    const CellSpec cells[] = {
        {"tree_clean", false},
        {"tree_faulty", true},
    };

    std::printf("%-12s | %6s | %6s %6s %6s %6s %6s | %-9s %9s\n",
                "cell", "shards", "flows", "compl", "coal", "aband",
                "orph", "blame", "p99 us");

    bool ok = true;
    std::uint64_t faultyRetryBlame = 0, faultyRetrySumNs = 0;
    std::uint64_t cleanRetrySumNs = 0;
    for (const CellSpec &cell : cells) {
        std::string baseTrace, baseProfile;
        int baseShards = 0;
        std::uint64_t profiledDigest = 0, profiledSeed = 0;
        for (int k : shardCounts) {
            const bool front = k == shardCounts.front();
            corm::obs::TraceRecorder rec;
            corm::platform::FabricScenarioResult r0;
            auto results = corm::platform::runTrials(
                opts.trial, [&](int idx, std::uint64_t seed) {
                    corm::platform::FabricScenarioConfig c =
                        makeCfg(cell.faulty, k);
                    c.seed = seed;
                    if (idx == 0) {
                        rec.setEnabled(true);
                        c.trace = &rec;
                        c.profileFlows = true;
                    }
                    return corm::platform::runFabricScenario(c);
                });
            r0 = results[0];
            profiledDigest = r0.digest;
            profiledSeed = corm::platform::trialSeed(
                opts.trial.seed, 0);

            const std::string traceJson = rec.json();
            if (r0.flowProfileJson.empty()) {
                ok = false;
                std::fprintf(stderr,
                             "flow_attr: %s s=%d produced no "
                             "attribution report\n",
                             cell.label, k);
                continue;
            }

            // Claim 3: offline reingest of the serialized trace must
            // reproduce the in-process report byte for byte.
            corm::obs::FlowProfiler offline;
            std::string err;
            if (!offline.ingestTraceText(traceJson, &err)) {
                ok = false;
                std::fprintf(stderr,
                             "flow_attr: %s s=%d trace reingest "
                             "failed: %s\n",
                             cell.label, k, err.c_str());
                continue;
            }
            const std::string offlineReport = offline.reportJson(5);
            if (offlineReport != r0.flowProfileJson) {
                ok = false;
                std::fprintf(stderr,
                             "flow_attr: ATTRIBUTION DISAGREEMENT "
                             "%s s=%d: offline report differs from "
                             "in-process (%zu vs %zu bytes)\n",
                             cell.label, k, offlineReport.size(),
                             r0.flowProfileJson.size());
            }

            // Claim 2: shard-count invariance of trace and report.
            if (baseShards == 0) {
                baseTrace = traceJson;
                baseProfile = r0.flowProfileJson;
                baseShards = k;
            } else {
                if (traceJson != baseTrace) {
                    ok = false;
                    std::fprintf(stderr,
                                 "flow_attr: MERGE VIOLATION %s: "
                                 "trace differs between shards=%d "
                                 "and shards=%d\n",
                                 cell.label, k, baseShards);
                }
                if (r0.flowProfileJson != baseProfile) {
                    ok = false;
                    std::fprintf(stderr,
                                 "flow_attr: ATTRIBUTION DRIFT %s: "
                                 "report differs between shards=%d "
                                 "and shards=%d\n",
                                 cell.label, k, baseShards);
                }
            }

            // Claim 4 bookkeeping + human row, from the offline
            // profiler (already proven byte-equal to in-process).
            using corm::obs::FlowLeg;
            using corm::obs::FlowOutcome;
            const std::uint64_t flows = offline.flows().size();
            const std::uint64_t completed =
                offline.outcomeCount(FlowOutcome::completed);
            const std::uint64_t coalesced =
                offline.outcomeCount(FlowOutcome::coalesced);
            const std::uint64_t abandoned =
                offline.outcomeCount(FlowOutcome::abandoned);
            const std::uint64_t orphans =
                offline.outcomeCount(FlowOutcome::orphan);
            if (completed + coalesced + abandoned + orphans != flows
                || flows == 0) {
                ok = false;
                std::fprintf(stderr,
                             "flow_attr: OUTCOME LEAK %s s=%d: "
                             "%llu flows but outcomes sum to %llu\n",
                             cell.label, k,
                             static_cast<unsigned long long>(flows),
                             static_cast<unsigned long long>(
                                 completed + coalesced + abandoned
                                 + orphans));
            }
            const char *domBlame = "none";
            std::uint64_t domCount = 0;
            for (const char *lbl :
                 {"decide", "queue", "wire", "retry", "apply", "ack",
                  "abandoned"}) {
                const std::uint64_t c = offline.blameCount(lbl);
                if (c > domCount) {
                    domCount = c;
                    domBlame = lbl;
                }
            }
            if (front) {
                std::printf(
                    "%-12s | %6d | %6llu %6llu %6llu %6llu %6llu | "
                    "%-9s %9.1f\n",
                    cell.label, k,
                    static_cast<unsigned long long>(flows),
                    static_cast<unsigned long long>(completed),
                    static_cast<unsigned long long>(coalesced),
                    static_cast<unsigned long long>(abandoned),
                    static_cast<unsigned long long>(orphans),
                    domBlame,
                    offline.total().hist.quantile(0.99));
                if (cell.faulty) {
                    faultyRetryBlame = offline.blameCount("retry")
                        + offline.blameCount("abandoned");
                    faultyRetrySumNs =
                        offline.leg(FlowLeg::retry).sumNs;
                } else {
                    cleanRetrySumNs =
                        offline.leg(FlowLeg::retry).sumNs;
                }
                report.addScalars(
                    cell.label,
                    {
                        {"digest_hi",
                         static_cast<double>(r0.digest >> 32)},
                        {"digest_lo",
                         static_cast<double>(r0.digest
                                             & 0xffffffffULL)},
                        {"flows", static_cast<double>(flows)},
                        {"completed",
                         static_cast<double>(completed)},
                        {"coalesced",
                         static_cast<double>(coalesced)},
                        {"abandoned",
                         static_cast<double>(abandoned)},
                        {"orphans", static_cast<double>(orphans)},
                        {"blame_queue",
                         static_cast<double>(
                             offline.blameCount("queue"))},
                        {"blame_wire",
                         static_cast<double>(
                             offline.blameCount("wire"))},
                        {"blame_retry",
                         static_cast<double>(
                             offline.blameCount("retry"))},
                        {"blame_abandoned",
                         static_cast<double>(
                             offline.blameCount("abandoned"))},
                        {"retry_sum_ns",
                         static_cast<double>(
                             offline.leg(FlowLeg::retry).sumNs)},
                        {"trace_events",
                         static_cast<double>(r0.traceEvents)},
                    },
                    r0.eventsExecuted);

                // Export the faulty cell's front-shard artefacts
                // (the trace with retries, replays and abandons in
                // it); trace and profile come from the same run, so
                // the flow_attr_check trace_analyze comparison
                // closes the loop out of process.
                if (cell.faulty) {
                    if (!opts.obs->tracePath.empty())
                        opts.obs->traceJson = traceJson;
                    if (!profilePath.empty()) {
                        std::ofstream pf(profilePath);
                        pf << r0.flowProfileJson << "\n";
                    }
                }
            }
        }

        // Claim 1: digest neutrality — bare rerun of the profiled
        // seed at the front shard count.
        corm::platform::FabricScenarioConfig bare =
            makeCfg(cell.faulty, shardCounts.front());
        bare.seed = profiledSeed;
        const auto rBare = corm::platform::runFabricScenario(bare);
        if (rBare.digest != profiledDigest) {
            ok = false;
            std::fprintf(
                stderr,
                "flow_attr: PROFILING PERTURBED DIGEST %s "
                "(profiled %016llx vs bare %016llx)\n",
                cell.label,
                static_cast<unsigned long long>(profiledDigest),
                static_cast<unsigned long long>(rBare.digest));
        }
    }

    // Claim 4: weather must surface as retry attribution the clean
    // cell lacks (the whole point of leg-level blame).
    if (faultyRetrySumNs <= cleanRetrySumNs
        || faultyRetryBlame == 0) {
        ok = false;
        std::fprintf(stderr,
                     "flow_attr: ATTRIBUTION INSENSITIVE: faulty "
                     "cell retry_sum_ns %llu (blamed %llu) vs clean "
                     "%llu — weather left no retry signature\n",
                     static_cast<unsigned long long>(
                         faultyRetrySumNs),
                     static_cast<unsigned long long>(
                         faultyRetryBlame),
                     static_cast<unsigned long long>(
                         cleanRetrySumNs));
    }

    report.write();

    if (!ok) {
        std::fprintf(stderr, "flow_attr: FAILED\n");
        return 1;
    }
    std::printf("[flow_attr: in-process and offline attribution "
                "agree byte-for-byte; digest and report shard-count "
                "invariant]\n");
    return 0;
}
