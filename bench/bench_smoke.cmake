# Smoke + determinism check for the bench harness, run as a ctest.
#
# Runs one bench binary twice — --jobs 2 then --jobs 1 — with the
# same trials/seed and a tiny measure window, and requires the two
# JSON reports to be identical apart from the fields that legitimately
# differ (jobs, wall time, events/sec rate).

# SMOKE_TAG keeps report filenames distinct when several smoke tests
# share WORK_DIR and run in parallel.
if(NOT SMOKE_TAG)
    set(SMOKE_TAG smoke)
endif()

set(common --trials 2 --warmup-sec 0.5 --measure-sec 2)

execute_process(
    COMMAND ${BENCH_BIN} ${common} --jobs 2
        --json ${WORK_DIR}/${SMOKE_TAG}_j2.json
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc2 OUTPUT_QUIET)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "bench --jobs 2 run failed (rc=${rc2})")
endif()

execute_process(
    COMMAND ${BENCH_BIN} ${common} --jobs 1
        --json ${WORK_DIR}/${SMOKE_TAG}_j1.json
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc1 OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "bench --jobs 1 run failed (rc=${rc1})")
endif()

foreach(which j1 j2)
    file(STRINGS ${WORK_DIR}/${SMOKE_TAG}_${which}.json lines_${which})
    set(norm_${which} "")
    foreach(line IN LISTS lines_${which})
        if(NOT line MATCHES "\"(jobs|wall_seconds|events_per_second)\":")
            string(APPEND norm_${which} "${line}\n")
        endif()
    endforeach()
endforeach()

if(NOT norm_j1 STREQUAL norm_j2)
    message(FATAL_ERROR
        "determinism violation: merged results differ between "
        "--jobs 1 and --jobs 2 at the same seed "
        "(${WORK_DIR}/${SMOKE_TAG}_j1.json vs ${SMOKE_TAG}_j2.json)")
endif()

message(STATUS "bench_smoke: --jobs 1 and --jobs 2 reports identical")
