/**
 * @file
 * CLI wrapper around the shared trace schema checker
 * (obs/tracecheck.hpp). Used by the trace_smoke ctest to validate a
 * real bench-produced trace, and handy interactively:
 *
 *   trace_check FILE [--require-flow] [--min-steps N]
 *
 * --min-steps N demands at least one complete flow with >= N steps
 * (implies --require-flow's chain requirement only when that flag is
 * also given; on its own it still validates the deepest chain) — the
 * multi-hop fabric check: a span relayed across an N-link tree path
 * carries one step per relay, so fabric scenarios assert deeper
 * chains than the two-island channel produces.
 *
 * Exit status: 0 on a valid trace, 1 on violations (each printed),
 * 2 on usage/IO errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/tracecheck.hpp"

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    bool requireFlow = false;
    std::size_t minSteps = 1;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--require-flow")) {
            requireFlow = true;
        } else if (!std::strcmp(argv[i], "--min-steps")
                   && i + 1 < argc) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1) {
                std::fprintf(stderr,
                             "trace_check: --min-steps wants >= 1\n");
                return 2;
            }
            minSteps = static_cast<std::size_t>(n);
            requireFlow = true; // a depth bar implies the chain check
        } else if (!path) {
            path = argv[i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s FILE [--require-flow] [--min-steps N]\n",
                argv[0]);
            return 2;
        }
    }
    if (!path) {
        std::fprintf(stderr,
                     "usage: %s FILE [--require-flow] [--min-steps N]\n",
                     argv[0]);
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "trace_check: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    const corm::obs::TraceCheckResult r =
        corm::obs::checkTraceText(buf.str(), requireFlow, minSteps);
    for (const std::string &v : r.violations)
        std::fprintf(stderr, "trace_check: %s\n", v.c_str());

    std::printf("trace_check: %s: %zu events (%zu timed), %zu flows "
                "(%zu complete, %zu multi-hop, max %zu steps, "
                "%zu dangling), %zu violation(s)\n",
                path, r.events, r.timed, r.flows, r.complete,
                r.multiHop, r.maxSteps, r.dangling,
                r.violations.size());
    return r.ok() ? 0 : 1;
}
