/**
 * @file
 * Schema checker for the Chrome trace-event JSON our TraceRecorder
 * emits (and Perfetto loads). Used by the trace_smoke ctest to
 * validate a real bench-produced trace, and handy interactively:
 *
 *   trace_check FILE [--require-flow]
 *
 * Checks structural invariants Perfetto relies on: a traceEvents
 * array, per-event ph/name/pid/tid, ts on timed events, dur on
 * complete events, ids on flow events — and, with --require-flow,
 * that at least one causal span forms a complete begin → step → end
 * chain in timestamp order (the classifier → Tune → apply path the
 * tracing tentpole exists to show).
 *
 * Exit status: 0 on a valid trace, 1 on violations (each printed),
 * 2 on usage/IO errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

struct FlowChain
{
    int begins = 0;
    int steps = 0;
    int ends = 0;
    double firstTs = 0.0;
    double lastTs = 0.0;
    bool ordered = true; ///< events appeared in non-decreasing ts
};

int failures = 0;

void
violation(const char *what, std::size_t index)
{
    std::fprintf(stderr, "trace_check: event %zu: %s\n", index, what);
    ++failures;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    bool requireFlow = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--require-flow"))
            requireFlow = true;
        else if (!path)
            path = argv[i];
        else {
            std::fprintf(stderr,
                         "usage: %s FILE [--require-flow]\n", argv[0]);
            return 2;
        }
    }
    if (!path) {
        std::fprintf(stderr, "usage: %s FILE [--require-flow]\n",
                     argv[0]);
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "trace_check: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    corm::obs::JsonValue doc;
    std::string err;
    if (!corm::obs::parseJson(text, doc, &err)) {
        std::fprintf(stderr, "trace_check: %s: malformed JSON: %s\n",
                     path, err.c_str());
        return 1;
    }
    if (!doc.isObject()) {
        std::fprintf(stderr, "trace_check: top level is not an object\n");
        return 1;
    }
    const corm::obs::JsonValue *events = doc.get("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "trace_check: missing traceEvents array\n");
        return 1;
    }

    std::map<double, FlowChain> chains;
    std::size_t timed = 0;
    for (std::size_t i = 0; i < events->items.size(); ++i) {
        const corm::obs::JsonValue &e = events->items[i];
        if (!e.isObject()) {
            violation("not an object", i);
            continue;
        }
        const corm::obs::JsonValue *ph = e.get("ph");
        if (!ph || !ph->isString() || ph->str.size() != 1) {
            violation("missing/odd ph", i);
            continue;
        }
        const char p = ph->str[0];
        const corm::obs::JsonValue *name = e.get("name");
        if (!name || !name->isString() || name->str.empty())
            violation("missing name", i);
        const corm::obs::JsonValue *pid = e.get("pid");
        const corm::obs::JsonValue *tid = e.get("tid");
        if (!pid || !pid->isNumber() || !tid || !tid->isNumber())
            violation("missing pid/tid", i);

        if (p == 'M') // metadata carries no timestamp
            continue;
        ++timed;
        const corm::obs::JsonValue *ts = e.get("ts");
        if (!ts || !ts->isNumber()) {
            violation("timed event without numeric ts", i);
            continue;
        }
        if (p == 'X') {
            const corm::obs::JsonValue *dur = e.get("dur");
            if (!dur || !dur->isNumber() || dur->num < 0)
                violation("complete event without dur", i);
        } else if (p == 's' || p == 't' || p == 'f') {
            const corm::obs::JsonValue *id = e.get("id");
            if (!id || !id->isNumber() || id->num <= 0) {
                violation("flow event without positive id", i);
                continue;
            }
            FlowChain &c = chains[id->num];
            const bool first = c.begins + c.steps + c.ends == 0;
            if (first)
                c.firstTs = ts->num;
            else if (ts->num < c.lastTs)
                c.ordered = false;
            c.lastTs = ts->num;
            if (p == 's')
                ++c.begins;
            else if (p == 't')
                ++c.steps;
            else
                ++c.ends;
        } else if (p != 'i' && p != 'C') {
            violation("unknown phase", i);
        }
    }

    std::size_t complete = 0;
    std::size_t completeWithSteps = 0;
    for (const auto &[id, c] : chains) {
        if (c.begins != 1)
            std::fprintf(stderr,
                         "trace_check: flow %.0f has %d begins\n", id,
                         c.begins),
                ++failures;
        if (c.ends > 1)
            std::fprintf(stderr,
                         "trace_check: flow %.0f has %d ends\n", id,
                         c.ends),
                ++failures;
        if (!c.ordered)
            std::fprintf(
                stderr,
                "trace_check: flow %.0f events out of ts order\n", id),
                ++failures;
        if (c.begins == 1 && c.ends == 1) {
            ++complete;
            if (c.steps > 0)
                ++completeWithSteps;
        }
    }

    if (requireFlow && completeWithSteps == 0) {
        std::fprintf(stderr,
                     "trace_check: no complete multi-hop flow "
                     "(begin -> step -> end) found\n");
        ++failures;
    }

    std::printf("trace_check: %s: %zu events (%zu timed), %zu flows "
                "(%zu complete, %zu multi-hop), %d violation(s)\n",
                path, events->items.size(), timed, chains.size(),
                complete, completeWithSteps, failures);
    return failures == 0 ? 0 : 1;
}
