/**
 * @file
 * CLI wrapper around the shared trace schema checker
 * (obs/tracecheck.hpp). Used by the trace_smoke ctest to validate a
 * real bench-produced trace, and handy interactively:
 *
 *   trace_check FILE [--require-flow]
 *
 * Exit status: 0 on a valid trace, 1 on violations (each printed),
 * 2 on usage/IO errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/tracecheck.hpp"

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    bool requireFlow = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--require-flow"))
            requireFlow = true;
        else if (!path)
            path = argv[i];
        else {
            std::fprintf(stderr,
                         "usage: %s FILE [--require-flow]\n", argv[0]);
            return 2;
        }
    }
    if (!path) {
        std::fprintf(stderr, "usage: %s FILE [--require-flow]\n",
                     argv[0]);
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "trace_check: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    const corm::obs::TraceCheckResult r =
        corm::obs::checkTraceText(buf.str(), requireFlow);
    for (const std::string &v : r.violations)
        std::fprintf(stderr, "trace_check: %s\n", v.c_str());

    std::printf("trace_check: %s: %zu events (%zu timed), %zu flows "
                "(%zu complete, %zu multi-hop), %zu violation(s)\n",
                path, r.events, r.timed, r.flows, r.complete,
                r.multiHop, r.violations.size());
    return r.ok() ? 0 : 1;
}
