/**
 * @file
 * CLI wrapper around the shared trace schema checker
 * (obs/tracecheck.hpp). Used by the trace_smoke and
 * shard_capture_check ctests to validate real bench-produced traces,
 * and handy interactively:
 *
 *   trace_check FILE [--require-flow] [--min-steps N]
 *               [--expect-tracks N] [--stitched-flows]
 *               [--monotone-flows]
 *
 * --min-steps N demands at least one complete flow with >= N steps
 * (implies --require-flow's chain requirement only when that flag is
 * also given; on its own it still validates the deepest chain) — the
 * multi-hop fabric check: a span relayed across an N-link tree path
 * carries one step per relay, so fabric scenarios assert deeper
 * chains than the two-island channel produces.
 *
 * --expect-tracks N demands exactly N declared tracks (thread_name
 * metadata entries) — the per-shard-track shape check.
 *
 * --stitched-flows enforces the cross-shard stitching rule: every
 * flow that ends on a different track than it began must carry at
 * least one step, and at least one such cross-track flow must exist.
 * A sharded trace merge that dropped the lane flow-steps fails this
 * with "teleporting" spans.
 *
 * --monotone-flows reports every individual backwards timestamp step
 * along any flow's chain as its own violation (event index + the
 * two timestamps), instead of the default one-line-per-flow
 * summary — the misordered-window forensics mode for the sharded
 * barrier-time merge.
 *
 * Exit status: 0 on a valid trace, 1 on violations (each printed),
 * 2 on usage/IO errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/tracecheck.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s FILE [--require-flow] [--min-steps N] "
                 "[--expect-tracks N] [--stitched-flows] "
                 "[--monotone-flows]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    corm::obs::TraceCheckParams params;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--require-flow")) {
            params.require_flow = true;
        } else if (!std::strcmp(argv[i], "--min-steps")
                   && i + 1 < argc) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1) {
                std::fprintf(stderr,
                             "trace_check: --min-steps wants >= 1\n");
                return 2;
            }
            params.min_steps = static_cast<std::size_t>(n);
            params.require_flow = true; // depth bar implies the chain
        } else if (!std::strcmp(argv[i], "--expect-tracks")
                   && i + 1 < argc) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1) {
                std::fprintf(
                    stderr,
                    "trace_check: --expect-tracks wants >= 1\n");
                return 2;
            }
            params.expect_tracks = static_cast<std::size_t>(n);
        } else if (!std::strcmp(argv[i], "--stitched-flows")) {
            params.require_stitched = true;
        } else if (!std::strcmp(argv[i], "--monotone-flows")) {
            params.monotone_flows = true;
        } else if (!path) {
            path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (!path)
        return usage(argv[0]);

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "trace_check: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    const corm::obs::TraceCheckResult r =
        corm::obs::checkTraceText(buf.str(), params);
    for (const std::string &v : r.violations)
        std::fprintf(stderr, "trace_check: %s\n", v.c_str());

    std::printf("trace_check: %s: %zu events (%zu timed, %zu tracks), "
                "%zu flows (%zu complete, %zu multi-hop, %zu "
                "cross-track, max %zu steps, %zu dangling), "
                "%zu violation(s)\n",
                path, r.events, r.timed, r.tracks, r.flows, r.complete,
                r.multiHop, r.crossTrack, r.maxSteps, r.dangling,
                r.violations.size());
    return r.ok() ? 0 : 1;
}
