/**
 * @file
 * Coordination-channel fault sweep: RUBiS under channel weather.
 *
 * The paper's coordination channel is a real PCIe mailbox; messages
 * can be lost, delayed, or reordered, and the prototype shrugs this
 * off because Tune/Trigger are advisory while registration retries
 * until acknowledged. This bench quantifies that claim: an eight-cell
 * grid of loss {0, 20%} x reordering {off, 15%} x one 50 ms burst
 * outage {off, on}, each cell a full coordinated RUBiS run. Reported
 * per cell: response time and throughput (the degradation), the
 * channel-health counters (the weather that actually happened), and
 * registration convergence (the correctness floor — regs_pending and
 * regs_abandoned must be 0 for every cell).
 *
 * All fault sequences derive from the master seed, so reports are
 * byte-identical for any --jobs value (modulo wall-time fields).
 */

#include <cstdio>

#include "bench_util.hpp"

namespace {

struct Cell
{
    const char *label;
    double lossProb;
    double reorderProb;
    bool outage;
};

constexpr Cell cells[] = {
    {"clean", 0.0, 0.0, false},
    {"outage", 0.0, 0.0, true},
    {"reorder", 0.0, 0.15, false},
    {"reorder_outage", 0.0, 0.15, true},
    {"loss20", 0.2, 0.0, false},
    {"loss20_outage", 0.2, 0.0, true},
    {"loss20_reorder", 0.2, 0.15, false},
    {"loss20_reorder_outage", 0.2, 0.15, true},
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = corm::bench::parseArgs(argc, argv, "fault_sweep");
    corm::bench::banner("Fault sweep",
                        "coordinated RUBiS vs coordination-channel "
                        "loss / reordering / outage");
    corm::bench::BenchReport report(opts);

    std::printf("%-22s | %9s %8s | %7s %7s %7s | %5s %5s %5s\n",
                "cell", "resp ms", "rps", "dropped", "retries",
                "reorder", "acked", "aband", "pend");

    double cleanResponseMs = 0.0;
    for (const auto &cell : cells) {
        corm::platform::RubisScenarioConfig cfg;
        cfg.coordination = true;
        cfg.warmup = 5 * corm::sim::sec;
        cfg.measure = 40 * corm::sim::sec;

        cfg.testbed.coordFaults.lossProb = cell.lossProb;
        cfg.testbed.coordFaults.reorderProb = cell.reorderProb;
        if (cell.outage) {
            // One 50 ms burst blackout shortly after bring-up; the
            // registrations (t ~ 0) are already converged, so this
            // hits live Tune traffic.
            cfg.testbed.coordFaults.outages.push_back(
                {1 * corm::sim::sec, 50 * corm::sim::msec});
        }
        // Headroom over the default 8 attempts: at 20% loss each
        // way, 16 attempts make registration give-up astronomically
        // unlikely, so regs_abandoned == 0 is a hard expectation.
        cfg.testbed.announcer.maxAttempts = 16;

        const auto merged = corm::bench::runRubisTrials(cfg, opts);
        const auto &r = merged.mean;
        std::printf("%-22s | %9.1f %8.2f | %7llu %7llu %7llu | "
                    "%5llu %5llu %5llu\n",
                    cell.label, r.meanResponseMs, r.throughputRps,
                    static_cast<unsigned long long>(r.chanDropped),
                    static_cast<unsigned long long>(r.chanRetries),
                    static_cast<unsigned long long>(r.chanReorders),
                    static_cast<unsigned long long>(r.regsAcked),
                    static_cast<unsigned long long>(r.regsAbandoned),
                    static_cast<unsigned long long>(r.regsPending));
        if (cell.lossProb == 0.0 && cell.reorderProb == 0.0
            && !cell.outage)
            cleanResponseMs = r.meanResponseMs;
        report.add(cell.label, merged);
    }

    std::printf("\nExpected shape: every cell converges "
                "(aband = pend = 0); response time degrades but "
                "stays the same order as the clean cell "
                "(%.1f ms) — lost tunes cost performance, never "
                "correctness.\n",
                cleanResponseMs);
    report.write();
    return 0;
}
