/**
 * @file
 * Table 1: RUBiS average request response times, base vs
 * coord-ixp-dom0, with the paper's reported values alongside for
 * shape comparison.
 */

#include <cstdio>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    const auto opts = corm::bench::parseArgs(
        argc, argv, "table1_rubis_response_times");
    corm::bench::banner("Table 1",
                        "RUBiS average request response times (ms)");

    corm::bench::BenchReport report(opts);
    const auto mbase = corm::bench::runRubis(false, opts);
    const auto mcoord = corm::bench::runRubis(true, opts);
    const auto &base = mbase.mean;
    const auto &coord = mcoord.mean;

    std::printf("%-26s | %9s %9s %7s | %9s %9s\n", "Request Type",
                "base", "coord", "change", "paper.b", "paper.c");
    int improved = 0, rows = 0;
    for (std::size_t i = 0; i < base.types.size(); ++i) {
        const auto &b = base.types[i];
        const auto &c = coord.types[i];
        if (b.count == 0 || c.count == 0)
            continue;
        const double chg = b.meanMs > 0.0
            ? 100.0 * (c.meanMs - b.meanMs) / b.meanMs
            : 0.0;
        ++rows;
        if (chg < 0.0)
            ++improved;
        std::printf("%-26s | %9.0f %9.0f %+6.0f%% | %9.0f %9.0f\n",
                    b.name.c_str(), b.meanMs, c.meanMs, chg,
                    corm::bench::paperTable1[i].baseMs,
                    corm::bench::paperTable1[i].coordMs);
    }
    std::printf("\nCoordination reduced the average response time for "
                "%d of %d request types.\n",
                improved, rows);
    std::printf("Paper shape: coordination reduces every type's "
                "average (by over 60%% for PutBid-class types on the\n"
                "real testbed; our CPU-only substrate reproduces the "
                "direction with smaller magnitudes -- see "
                "EXPERIMENTS.md).\n");
    report.add("base", mbase);
    report.add("coord", mcoord);
    report.write();
    return 0;
}
