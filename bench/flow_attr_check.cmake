# Flow-attribution acceptance check, run as a ctest.
#
# Closes the in-process / offline loop across process boundaries:
#
#  1. flow_attr runs the faulty tree cell with the in-process
#     FlowProfiler armed and exports the merged trace plus the
#     attribution report it computed from the live recorder (the
#     binary already self-checks shard invariance and digest
#     neutrality; a non-zero exit fails this test immediately).
#  2. trace_analyze independently re-derives the report from the
#     trace file alone; cmake -E compare_files requires the two
#     reports to be byte-identical.
#  3. trace_check validates the exported trace's schema, demands a
#     complete multi-hop causal span with stitched cross-track
#     flows, and — with --monotone-flows — that no flow's chain
#     ever steps backwards in time (the misordered-merge guard the
#     profiler's leg arithmetic depends on).

set(ENV{CORM_SHARD_SPEEDUP_MIN} 0)

execute_process(
    COMMAND ${BENCH_BIN} --islands 12 --shards 1,4 --trials 1
        --trace ${WORK_DIR}/flow_attr_trace.json
        --profile ${WORK_DIR}/flow_attr_inproc.json
        --json ${WORK_DIR}/flow_attr_report.json
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "flow_attr self-checks failed (rc=${rc})")
endif()

execute_process(
    COMMAND ${ANALYZE_BIN} ${WORK_DIR}/flow_attr_trace.json
        --json ${WORK_DIR}/flow_attr_offline.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace_analyze failed (rc=${rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/flow_attr_inproc.json
        ${WORK_DIR}/flow_attr_offline.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "attribution disagreement: offline trace_analyze report "
        "differs from the in-process profiler report "
        "(${WORK_DIR}/flow_attr_inproc.json vs flow_attr_offline.json)")
endif()

execute_process(
    COMMAND ${CHECK_BIN} ${WORK_DIR}/flow_attr_trace.json
        --require-flow --stitched-flows --monotone-flows
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "trace_check rejected the attribution trace (rc=${rc})")
endif()

message(STATUS "flow_attr_check: in-process and offline attribution "
    "byte-identical; trace schema-clean with monotone stitched flows")
