/**
 * @file
 * Figure 6: MPlayer video-stream quality of service under the
 * stream-property coordination scheme (§3.2, scheme 1).
 *
 * Three configurations, as in the paper:
 *   256-256  — default weights: neither domain meets its frame rate;
 *   384-512  — weights raised after high bit-rate detection: both
 *              meet their required frame rates;
 *   384-640  — Domain-2 raised further, plus extra IXP dequeue
 *              threads for its receive queue: Domain-2 improves
 *              while Domain-1 is reduced toward (but not below) its
 *              20 fps floor.
 *
 * Domain-1 plays a 20 fps / 300 kbps stream, Domain-2 a 25 fps /
 * 1 Mbps stream (both over RTSP/UDP through the IXP).
 */

#include <cstdio>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    const auto opts =
        corm::bench::parseArgs(argc, argv, "fig6_mplayer_qos");
    corm::bench::banner("Figure 6",
                        "MPlayer video-stream QoS (frames/sec)");
    corm::bench::BenchReport report(opts);

    struct Config
    {
        const char *label;
        double w1, w2, bonus2;
    };
    const Config configs[] = {
        {"256-256", 256, 256, 0},
        {"384-512", 384, 512, 0},
        {"384-640", 384, 640, 2},
    };

    std::printf("%-10s | %9s %9s | %6s %6s | %7s %7s %7s\n", "Weights",
                "Dom1 fps", "Dom2 fps", "late1", "late2", "cpu1",
                "cpu2", "dom0");
    std::printf("  (Dom1 requires 20 fps, Dom2 requires 25 fps)\n");
    for (const auto &c : configs) {
        corm::platform::MplayerQosConfig cfg;
        cfg.weight1 = c.w1;
        cfg.weight2 = c.w2;
        cfg.ixpThreadBonus2 = c.bonus2;
        const auto merged = corm::bench::runMplayerTrials(cfg, opts);
        const auto &r = merged.mean;
        report.add(c.label, merged);
        std::printf("%-10s | %7.1f%s %7.1f%s | %6llu %6llu | %6.0f%% "
                    "%6.0f%% %6.0f%%\n",
                    c.label, r.fps1, r.fps1 >= 19.95 ? "*" : " ",
                    r.fps2, r.fps2 >= 24.95 ? "*" : " ",
                    static_cast<unsigned long long>(r.late1),
                    static_cast<unsigned long long>(r.late2), r.cpu1Pct,
                    r.cpu2Pct, r.dom0Pct);
    }
    std::printf("  (* = meets its required frame rate)\n");
    std::printf("\nPaper shape: default weights miss both floors; "
                "tuned weights translate stream-level properties\n"
                "into CPU allocations and both domains meet their "
                "frame rates; further raising Domain-2 keeps\n"
                "Domain-1 at its floor. Paper values: (15/18-ish), "
                "(22, 25.7), (~20, higher).\n");
    report.write();
    return 0;
}
