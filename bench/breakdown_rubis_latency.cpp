/**
 * @file
 * Latency breakdown: where RUBiS response time is spent, and where
 * coordination recovers it.
 *
 * The paper relies on offline profiles and cites E2Eprof-style
 * end-to-end monitoring (§4) as the future source of the component
 * dependencies its coordination consumes. This bench uses the
 * library's built-in request tracing to attribute every millisecond
 * of response time to a path segment — ingress (IXP pipeline, DMA,
 * ring, Dom0 relay, web stack), per-tier service + queueing,
 * inter-tier hops, egress — under base and coordinated runs.
 */

#include <cstdio>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    const auto opts = corm::bench::parseArgs(
        argc, argv, "breakdown_rubis_latency");
    corm::bench::banner("Latency breakdown",
                        "per-segment attribution of RUBiS response "
                        "time (means, ms)");

    corm::bench::BenchReport report(opts);
    const auto mbase = corm::bench::runRubis(false, opts);
    const auto mcoord = corm::bench::runRubis(true, opts);
    const auto &base = mbase.mean;
    const auto &coord = mcoord.mean;

    struct Row
    {
        const char *label;
        double b, c;
    };
    const Row rows[] = {
        {"ingress (IXP+ring+Dom0)", base.ingressMs, coord.ingressMs},
        {"web tier (svc+queue)", base.webMs, coord.webMs},
        {"app tier (svc+queue)", base.appMs, coord.appMs},
        {"db tier (svc+queue+lock)", base.dbMs, coord.dbMs},
        {"inter-tier hops", base.hopsMs, coord.hopsMs},
        {"egress (Dom0+IXP+wire)", base.egressMs, coord.egressMs},
        {"TOTAL (mean response)", base.meanResponseMs,
         coord.meanResponseMs},
    };
    std::printf("%-28s %10s %10s %9s\n", "segment", "base",
                "coord", "change");
    for (const auto &row : rows) {
        std::printf("%-28s %10.1f %10.1f %+8.1f%%\n", row.label, row.b,
                    row.c,
                    row.b > 0.0 ? 100.0 * (row.c - row.b) / row.b
                                : 0.0);
    }
    std::printf("\ndb write-lock wait: mean %.0f -> %.0f ms, max "
                "%.0f -> %.0f ms\n",
                base.dbLockWaitMeanMs, coord.dbLockWaitMeanMs,
                base.dbLockWaitMaxMs, coord.dbLockWaitMaxMs);
    std::printf("\nReading: coordination buys its improvement at the "
                "bottleneck — application-tier queueing and the\n"
                "inter-tier hops (which embed the destination VCPU's "
                "wake latency) — and pays some of it back in\n"
                "ingress/egress and web-tier time as Dom0 and the "
                "web server cede relative weight: a redistribution\n"
                "of waiting toward where it hurts least, which is "
                "exactly the mechanism's intent.\n");
    report.add("base", mbase);
    report.add("coord", mcoord);
    report.write();
    return 0;
}
