/**
 * @file
 * Tune-to-effect latency decomposition from the causal trace spans.
 *
 * Runs the coordinated RUBiS scenario with tracing on and groups the
 * recorded events by causal span (one span per policy decision) to
 * attribute every microsecond between "classifier decided to Tune"
 * and "remote scheduler changed the weight" to a protocol leg:
 *
 *     decide -> send        policy/sender-side queueing
 *     send -> deliver       mailbox transit (the paper's §2.3 PCI
 *                           coordination-channel latency)
 *     deliver -> apply      receiver-side translation into scheduler
 *                           units
 *     apply -> ack          ack return leg (reliable mode only)
 *
 * Three modes: the paper's fire-and-forget Tunes, Tunes over the
 * ack+retry reliable sender on a clean channel, and reliable Tunes
 * under seeded loss+duplication weather — showing what delivery
 * guarantees cost in decision-to-effect latency.
 *
 * The decomposition runs one in-process trial per mode with a fixed
 * seed, so the table is deterministic and independent of --jobs.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/flowprofile.hpp"
#include "obs/trace.hpp"

namespace {

using corm::obs::TraceEvent;
using corm::obs::TraceId;
using corm::sim::Summary;

/** Per-span timeline reassembled from the recorder's event list. */
struct Span
{
    bool haveDecide = false;
    corm::sim::Tick decideTs = 0;
    /** Delivered tune copies as (send, deliver) pairs. */
    std::vector<std::pair<corm::sim::Tick, corm::sim::Tick>> hops;
    bool haveApply = false;
    corm::sim::Tick applyTs = 0;
    bool haveAck = false;
    corm::sim::Tick ackEnd = 0;
    int retries = 0;
    int duplicates = 0;
};

/** Aggregated decomposition of one mode's spans. */
struct Breakdown
{
    Summary decideToSend;   ///< us
    Summary sendToDeliver;  ///< us
    Summary deliverToApply; ///< us
    Summary applyToAck;     ///< us
    Summary total;          ///< us, decide -> apply (or ack return)
    std::uint64_t spans = 0;
    std::uint64_t completed = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t retries = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t events = 0;
};

double
usBetween(corm::sim::Tick a, corm::sim::Tick b)
{
    return b >= a ? static_cast<double>(b - a) / 1e3
                  : -static_cast<double>(a - b) / 1e3;
}

/**
 * Rebuild spans from the event list. Flow events (s/t/f) are always
 * emitted immediately after their companion slice/instant on the
 * same track, so the companion is the preceding event — an invariant
 * of our own instrumentation, checked here via the companion names.
 */
std::map<TraceId, Span>
collectSpans(const std::vector<TraceEvent> &events)
{
    std::map<TraceId, Span> spans;
    for (std::size_t i = 1; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        if (e.phase != 's' && e.phase != 't' && e.phase != 'f')
            continue;
        const TraceEvent &companion = events[i - 1];
        Span &sp = spans[e.flow];
        const std::string &n = companion.name;
        if (n.rfind("decide:", 0) == 0) {
            sp.haveDecide = true;
            sp.decideTs = companion.ts;
        } else if (n == "hop:tune") {
            sp.hops.emplace_back(companion.ts,
                                 companion.ts + companion.dur);
        } else if (n == "tune:apply") {
            if (!sp.haveApply) {
                sp.haveApply = true;
                sp.applyTs = companion.ts;
            }
        } else if (n == "hop:ack") {
            sp.haveAck = true;
            sp.ackEnd = companion.ts + companion.dur;
        } else if (n.rfind("retry:", 0) == 0) {
            ++sp.retries;
        } else if (n.rfind("hop:dup:", 0) == 0) {
            ++sp.duplicates;
        }
    }
    return spans;
}

Breakdown
decompose(const std::vector<TraceEvent> &events)
{
    Breakdown b;
    b.events = events.size();
    for (const auto &[id, sp] : collectSpans(events)) {
        if (!sp.haveDecide)
            continue; // ack-only stragglers of registration traffic
        ++b.spans;
        b.retries += static_cast<std::uint64_t>(sp.retries);
        b.duplicates += static_cast<std::uint64_t>(sp.duplicates);
        if (!sp.haveApply || sp.hops.empty()) {
            ++b.abandoned;
            continue;
        }
        ++b.completed;
        // The first delivered copy is the one the receiver applied;
        // later copies are duplicates the endpoint suppressed.
        const auto &[sendTs, deliverTs] = sp.hops.front();
        b.decideToSend.record(usBetween(sp.decideTs, sendTs));
        b.sendToDeliver.record(usBetween(sendTs, deliverTs));
        b.deliverToApply.record(usBetween(deliverTs, sp.applyTs));
        corm::sim::Tick effect = sp.applyTs;
        if (sp.haveAck) {
            b.applyToAck.record(usBetween(sp.applyTs, sp.ackEnd));
            effect = sp.ackEnd;
        }
        b.total.record(usBetween(sp.decideTs, effect));
    }
    return b;
}

Breakdown
runMode(const corm::bench::BenchOptions &opts, bool reliable,
        bool faulty, std::uint64_t &events_executed,
        corm::obs::FlowProfiler &prof)
{
    corm::platform::RubisScenarioConfig cfg;
    cfg.coordination = true;
    cfg.warmup = 5 * corm::sim::sec;
    cfg.measure = 20 * corm::sim::sec;
    corm::bench::applyWindow(opts, cfg.warmup, cfg.measure);
    if (opts.seedSet)
        corm::platform::applyTrialSeed(cfg, opts.trial.seed);
    cfg.reliableTunes = reliable;
    if (faulty) {
        cfg.testbed.coordFaults.lossProb = 0.10;
        cfg.testbed.coordFaults.dupProb = 0.05;
    }
    corm::obs::TraceRecorder rec;
    cfg.testbed.trace = &rec;
    const auto r = corm::platform::runRubisScenario(cfg);
    events_executed += r.eventsExecuted;
    prof.ingest(rec);
    return decompose(rec.events());
}

/**
 * The FlowProfiler's view of the same spans: per-leg aggregate
 * attribution with tail percentiles, and the single slowest flow
 * with its blame — the EXPERIMENTS.md attribution table.
 */
void
printAttribution(const char *label,
                 const corm::obs::FlowProfiler &prof)
{
    using corm::obs::FlowLeg;
    using corm::obs::flowLegCount;
    using corm::obs::flowLegName;
    std::printf("\n%s — flow attribution:\n", label);
    std::printf("  %-8s %8s %12s %10s %10s %10s\n", "leg", "flows",
                "sum ms", "p50 us", "p99 us", "p999 us");
    for (std::size_t i = 0; i < flowLegCount; ++i) {
        const auto &d = prof.leg(static_cast<FlowLeg>(i));
        if (d.count == 0)
            continue;
        std::printf("  %-8s %8llu %12.2f %10.1f %10.1f %10.1f\n",
                    flowLegName(static_cast<FlowLeg>(i)),
                    static_cast<unsigned long long>(d.count),
                    static_cast<double>(d.sumNs) / 1e6,
                    d.hist.quantile(0.50), d.hist.quantile(0.99),
                    d.hist.quantile(0.999));
    }
    const auto top = prof.slowest(1);
    if (!top.empty()) {
        std::printf("  slowest flow: %.2f ms, blamed %s "
                    "(%llu retries, %llu hops)\n",
                    static_cast<double>(top.front().totalNs()) / 1e6,
                    top.front().blame(),
                    static_cast<unsigned long long>(
                        top.front().retries),
                    static_cast<unsigned long long>(
                        top.front().hops));
    }
}

void
printLeg(const char *label, const Summary &s)
{
    if (s.count() == 0) {
        std::printf("  %-22s %10s\n", label, "-");
        return;
    }
    std::printf("  %-22s %10.1f %10.1f %10.1f %8llu\n", label,
                s.mean(), s.min(), s.max(),
                static_cast<unsigned long long>(s.count()));
}

void
printMode(const char *label, const Breakdown &b)
{
    std::printf("\n%s:\n", label);
    std::printf("  %-22s %10s %10s %10s %8s\n", "leg (us)", "mean",
                "min", "max", "n");
    printLeg("decide -> send", b.decideToSend);
    printLeg("send -> deliver", b.sendToDeliver);
    printLeg("deliver -> apply", b.deliverToApply);
    printLeg("apply -> ack", b.applyToAck);
    printLeg("TOTAL decide->effect", b.total);
    std::printf("  spans %llu, completed %llu, abandoned %llu, "
                "retries %llu, duplicates %llu\n",
                static_cast<unsigned long long>(b.spans),
                static_cast<unsigned long long>(b.completed),
                static_cast<unsigned long long>(b.abandoned),
                static_cast<unsigned long long>(b.retries),
                static_cast<unsigned long long>(b.duplicates));
}

void
reportMode(corm::bench::BenchReport &report, const char *label,
           const Breakdown &b)
{
    report.addScalars(
        label,
        {{"decide_to_send_us", b.decideToSend.mean()},
         {"send_to_deliver_us", b.sendToDeliver.mean()},
         {"deliver_to_apply_us", b.deliverToApply.mean()},
         {"apply_to_ack_us", b.applyToAck.mean()},
         {"total_us_mean", b.total.mean()},
         {"total_us_max", b.total.max()},
         {"spans", static_cast<double>(b.spans)},
         {"completed", static_cast<double>(b.completed)},
         {"abandoned", static_cast<double>(b.abandoned)},
         {"retries", static_cast<double>(b.retries)},
         {"duplicates", static_cast<double>(b.duplicates)}});
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = corm::bench::parseArgs(
        argc, argv, "breakdown_coord_latency");
    corm::bench::banner(
        "Coordination latency breakdown",
        "decide -> send -> deliver -> apply decomposition of Tune "
        "spans (us)");

    corm::bench::BenchReport report(opts);
    std::uint64_t events = 0;
    corm::obs::FlowProfiler profFf, profRel, profFaulty;
    const Breakdown ff = runMode(opts, false, false, events, profFf);
    const Breakdown rel = runMode(opts, true, false, events, profRel);
    const Breakdown relFaulty =
        runMode(opts, true, true, events, profFaulty);

    printMode("fire-and-forget (paper baseline)", ff);
    printMode("reliable (ack + retry), clean channel", rel);
    printMode("reliable, 10% loss + 5% duplication", relFaulty);
    printAttribution("fire-and-forget", profFf);
    printAttribution("reliable, clean", profRel);
    printAttribution("reliable, 10% loss + 5% dup", profFaulty);

    std::printf(
        "\nReading: the mailbox transit dominates the decide-to-"
        "effect latency of a fire-and-forget Tune; adding\n"
        "delivery guarantees costs one ack return on a clean "
        "channel, and under loss the retry timeout (not the\n"
        "wire) sets the tail — the coordination channel stays "
        "usable exactly because Tunes tolerate loss.\n");

    // Machine-check of that reading (the EXPERIMENTS.md attribution
    // claim): under loss the slowest flow must be retry-timeout
    // bound — blamed on the retry leg, or abandoned outright after
    // the retry budget. A clean reliable channel must have no flow
    // blamed on retries at all.
    using corm::obs::FlowLeg;
    bool attributionHolds = true;
    const auto topFaulty = profFaulty.slowest(1);
    if (topFaulty.empty()
        || (std::strcmp(topFaulty.front().blame(), "retry") != 0
            && std::strcmp(topFaulty.front().blame(), "abandoned")
                != 0)) {
        attributionHolds = false;
        std::fprintf(stderr,
                     "breakdown_coord_latency: ATTRIBUTION CLAIM "
                     "BROKEN: faulty-cell slowest flow blamed %s, "
                     "expected retry/abandoned\n",
                     topFaulty.empty() ? "(none)"
                                       : topFaulty.front().blame());
    }
    if (profFaulty.blameCount("retry")
            + profFaulty.blameCount("abandoned")
        == 0) {
        attributionHolds = false;
        std::fprintf(stderr,
                     "breakdown_coord_latency: ATTRIBUTION CLAIM "
                     "BROKEN: 10%% loss left no retry-blamed "
                     "flows\n");
    }
    if (profRel.blameCount("retry") != 0
        || profFf.blameCount("retry") != 0) {
        attributionHolds = false;
        std::fprintf(stderr,
                     "breakdown_coord_latency: ATTRIBUTION CLAIM "
                     "BROKEN: clean channel has retry-blamed "
                     "flows\n");
    }

    reportMode(report, "fire_and_forget", ff);
    reportMode(report, "reliable", rel);
    reportMode(report, "reliable_faulty", relFaulty);
    report.addScalars(
        "reliable_faulty_attribution",
        {{"flows", static_cast<double>(profFaulty.flows().size())},
         {"blame_retry",
          static_cast<double>(profFaulty.blameCount("retry"))},
         {"blame_abandoned",
          static_cast<double>(profFaulty.blameCount("abandoned"))},
         {"retry_sum_ms",
          static_cast<double>(
              profFaulty.leg(FlowLeg::retry).sumNs)
              / 1e6},
         {"retry_p999_us",
          profFaulty.leg(FlowLeg::retry).hist.quantile(0.999)},
         {"slowest_total_ms",
          topFaulty.empty()
              ? 0.0
              : static_cast<double>(topFaulty.front().totalNs())
                  / 1e6},
         {"slowest_blamed_retry",
          attributionHolds ? 1.0 : 0.0}});
    report.addScalars("run",
                      {{"events_executed_total",
                        static_cast<double>(events)}},
                      events);
    report.write();
    if (!attributionHolds) {
        std::fprintf(stderr, "breakdown_coord_latency: FAILED "
                             "(attribution claim)\n");
        return 1;
    }
    return 0;
}
