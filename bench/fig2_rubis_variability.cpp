/**
 * @file
 * Figure 2: RUBiS variation in minimum–maximum response latencies,
 * uncoordinated (the paper's motivating measurement, §1).
 *
 * Reproduces the observation that, with no coordination between the
 * IXP's queue-centric and the x86's VM-centric managers, requests of
 * the same type see large min–max spreads.
 */

#include <cstdio>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    const auto opts =
        corm::bench::parseArgs(argc, argv, "fig2_rubis_variability");
    corm::bench::banner("Figure 2",
                        "RUBiS min-max response-time variation "
                        "(no coordination)");

    corm::bench::BenchReport report(opts);
    const auto merged = corm::bench::runRubis(false, opts);
    const auto &r = merged.mean;

    std::printf("%-26s %8s %8s %8s %9s %8s\n", "Request Type", "min(ms)",
                "max(ms)", "mean(ms)", "spread(x)", "stddev");
    for (const auto &t : r.types) {
        if (t.count == 0)
            continue;
        std::printf("%-26s %8.0f %8.0f %8.0f %9.1f %8.0f\n",
                    t.name.c_str(), t.minMs, t.maxMs, t.meanMs,
                    t.minMs > 0.0 ? t.maxMs / t.minMs : 0.0,
                    t.stddevMs);
    }
    std::printf("\nShape check: substantial min-max variation for every "
                "request type, as in the paper's Fig. 2.\n");
    report.add("base", merged);
    report.write();
    return 0;
}
