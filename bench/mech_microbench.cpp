/**
 * @file
 * Mechanism microbenchmarks (google-benchmark): host-side cost of
 * the simulation kernel and the coordination mechanisms, plus the
 * simulated end-to-end latency of Tune and Trigger delivery.
 *
 * These quantify §3.3's "low-level coordination mechanisms" at the
 * implementation level: message encode/decode, channel send/apply,
 * scheduler boost, and the event kernel that carries them.
 */

#include <benchmark/benchmark.h>

#include "coord/channel.hpp"
#include "coord/fabric.hpp"
#include "coord/reliable.hpp"
#include "coord/message.hpp"
#include "platform/scenarios.hpp"
#include "platform/testbed.hpp"
#include "sim/simulator.hpp"
#include "xen/sched.hpp"

namespace {

using namespace corm;

void
BM_EventScheduleDispatch(benchmark::State &state)
{
    sim::Simulator simulator;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        simulator.schedule(1, [&fired] { ++fired; });
        simulator.runFor(2);
    }
    benchmark::DoNotOptimize(fired);
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventScheduleDispatch);

void
BM_EventScheduleFireBatch(benchmark::State &state)
{
    // Steady-state schedule/fire throughput: keep a 64-event window
    // in flight so the heap stays warm (the drain() fast path).
    constexpr int kWindow = 64;
    sim::Simulator simulator;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < kWindow; ++i)
            simulator.schedule(static_cast<sim::Tick>(i + 1),
                               [&fired] { ++fired; });
        simulator.runFor(kWindow + 1);
    }
    benchmark::DoNotOptimize(fired);
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kWindow,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventScheduleFireBatch);

void
BM_EventScheduleCancel(benchmark::State &state)
{
    // The cancel-heavy pattern of timeout guards: schedule far-future
    // events that almost always get cancelled before firing. The
    // tombstone + amortized-compaction path of the event kernel.
    constexpr int kWindow = 64;
    sim::Simulator simulator;
    sim::EventId ids[kWindow] = {};
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < kWindow; ++i)
            ids[i] = simulator.schedule(1 * sim::sec,
                                        [&fired] { ++fired; });
        for (int i = 0; i < kWindow; ++i)
            simulator.cancel(ids[i]);
        simulator.runFor(1);
    }
    benchmark::DoNotOptimize(fired);
    state.counters["ops/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kWindow,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventScheduleCancel);

void
BM_TimerChurn(benchmark::State &state)
{
    // Watchdog-style churn: every "packet" reschedules its timeout —
    // cancel the pending timer, schedule a new one, occasionally let
    // one fire. Mixes live and tombstoned entries in the heap.
    sim::Simulator simulator;
    sim::EventId timeout = sim::invalidEventId;
    std::uint64_t fired = 0;
    int tick = 0;
    for (auto _ : state) {
        simulator.cancel(timeout);
        timeout = simulator.schedule(10 * sim::msec,
                                     [&fired] { ++fired; });
        if (++tick % 16 == 0)
            simulator.runFor(1 * sim::msec);
    }
    benchmark::DoNotOptimize(fired);
    state.counters["ops/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimerChurn);

void
BM_PeriodicTick(benchmark::State &state)
{
    // Cost per tick of the PeriodicEvent helper (scheduler
    // accounting, pollers and samplers all ride on it).
    constexpr int kTicksPerIter = 64;
    sim::Simulator simulator;
    std::uint64_t ticks = 0;
    sim::PeriodicEvent pe(simulator, 1 * sim::msec,
                          [&ticks] { ++ticks; });
    for (auto _ : state)
        simulator.runFor(kTicksPerIter * sim::msec);
    benchmark::DoNotOptimize(ticks);
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kTicksPerIter,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PeriodicTick);

void
BM_MessageEncodeDecode(benchmark::State &state)
{
    coord::CoordMessage m;
    m.type = coord::MsgType::tune;
    m.src = 2;
    m.dst = 1;
    m.entity = 7;
    m.value = 32.0;
    for (auto _ : state) {
        const auto w0 = m.encodeWord0();
        const auto w1 = m.encodeWord1();
        const auto w2 = m.encodeWord2();
        auto d = coord::CoordMessage::decode(w0, w1, w2);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_MessageEncodeDecode);

void
BM_TuneSendToApply(benchmark::State &state)
{
    // Full simulated path: policy-side send -> mailbox latency ->
    // island applyTune. Measures host cost per simulated tune.
    platform::Testbed tb;
    auto &guest = tb.addGuest("bench-vm", net::IpAddr{10, 0, 8, 2});
    tb.run(1 * sim::sec);
    coord::CoordMessage m;
    m.type = coord::MsgType::tune;
    m.src = tb.ixp().id();
    m.dst = tb.x86().id();
    m.entity = guest.entity;
    m.value = 1.0;
    for (auto _ : state) {
        tb.channel().send(m);
        tb.run(tb.params().coordLatency * 2);
    }
    benchmark::DoNotOptimize(guest.dom->weight());
}
BENCHMARK(BM_TuneSendToApply);

void
BM_TriggerBoost(benchmark::State &state)
{
    sim::Simulator simulator;
    xen::CreditScheduler sched(simulator, 2);
    xen::Domain a(sched, 1, "a", 256);
    xen::Domain b(sched, 2, "b", 256);
    a.submit(1 * sim::sec, xen::JobKind::user);
    b.submit(1 * sim::sec, xen::JobKind::user);
    simulator.runFor(5 * sim::msec);
    for (auto _ : state) {
        sched.boost(b);
        simulator.runFor(100 * sim::usec);
    }
    benchmark::DoNotOptimize(sched.stats().boosts.value());
}
BENCHMARK(BM_TriggerBoost);

void
BM_SchedulerSaturatedSecond(benchmark::State &state)
{
    // Host cost of simulating one saturated scheduler-second with
    // the configured number of CPU-bound domains.
    const int doms = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulator simulator;
        xen::CreditScheduler sched(simulator, 2);
        std::vector<std::unique_ptr<xen::Domain>> domains;
        std::function<void(xen::Domain &)> pump =
            [&pump](xen::Domain &d) {
                d.submit(2 * sim::msec, xen::JobKind::user,
                         [&pump, &d] { pump(d); });
            };
        for (int i = 0; i < doms; ++i) {
            domains.push_back(std::make_unique<xen::Domain>(
                sched, static_cast<std::uint32_t>(i + 1),
                "d" + std::to_string(i), 256.0));
            pump(*domains.back());
        }
        state.ResumeTiming();
        simulator.runFor(1 * sim::sec);
        benchmark::DoNotOptimize(sched.totalBusy());
    }
}
BENCHMARK(BM_SchedulerSaturatedSecond)->Arg(2)->Arg(4)->Arg(8);

void
BM_RubisSimulatedSecond(benchmark::State &state)
{
    // Host cost of one simulated second of the full coordinated
    // RUBiS platform — the end-to-end "how expensive is this
    // simulator" number.
    platform::RubisScenarioConfig cfg;
    cfg.coordination = true;
    cfg.warmup = 0;
    cfg.measure = 0;
    for (auto _ : state) {
        state.PauseTiming();
        // One fresh testbed per iteration keeps state comparable.
        state.ResumeTiming();
        platform::RubisScenarioConfig c = cfg;
        c.warmup = 1 * sim::sec;
        c.measure = 1 * sim::sec;
        auto r = platform::runRubisScenario(c);
        benchmark::DoNotOptimize(r.throughputRps);
    }
}
BENCHMARK(BM_RubisSimulatedSecond)->Unit(benchmark::kMillisecond);

void
BM_FabricMeshSend(benchmark::State &state)
{
    // Host cost per simulated fabric message across N islands.
    const int n = static_cast<int>(state.range(0));
    sim::Simulator simulator;
    coord::CoordFabric fabric(simulator, coord::FabricTopology::mesh,
                              10 * sim::usec);
    struct Sink : coord::ResourceIsland
    {
        coord::IslandId id_;
        std::string name_ = "sink";
        explicit Sink(coord::IslandId i) : id_(i) {}
        coord::IslandId id() const override { return id_; }
        const std::string &name() const override { return name_; }
        void applyTune(coord::EntityId, double) override {}
        void applyTrigger(coord::EntityId) override {}
    };
    std::vector<std::unique_ptr<Sink>> sinks;
    for (int i = 0; i < n; ++i) {
        sinks.push_back(std::make_unique<Sink>(
            static_cast<coord::IslandId>(i + 1)));
        fabric.attach(*sinks.back());
    }
    coord::CoordMessage m;
    m.type = coord::MsgType::tune;
    m.src = 1;
    m.dst = static_cast<coord::IslandId>(n);
    m.value = 1.0;
    for (auto _ : state) {
        fabric.send(m);
        simulator.runFor(20 * sim::usec);
    }
    benchmark::DoNotOptimize(fabric.stats().delivered.value());
}
BENCHMARK(BM_FabricMeshSend)->Arg(2)->Arg(16)->Arg(64);

void
BM_ReliableRegistrationLossy(benchmark::State &state)
{
    // Cost of one acknowledged registration through a 30%-lossy
    // channel, retries included.
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulator simulator;
        platform::Testbed *unused = nullptr;
        (void)unused;
        struct Sink : coord::ResourceIsland
        {
            coord::IslandId id_;
            std::string name_ = "sink";
            explicit Sink(coord::IslandId i) : id_(i) {}
            coord::IslandId id() const override { return id_; }
            const std::string &name() const override { return name_; }
            void applyTune(coord::EntityId, double) override {}
            void applyTrigger(coord::EntityId) override {}
        };
        Sink a(1), b(2);
        coord::CoordChannel ch(simulator, a, b, 100 * sim::usec);
        ch.setLossProbability(0.3);
        coord::ReliableAnnouncer::Params params;
        params.retryTimeout = 500 * sim::usec;
        coord::ReliableAnnouncer ann(simulator, ch, params);
        coord::EntityBinding bind;
        bind.ref = {1, 1};
        bind.ip = net::IpAddr(10, 0, 0, 1);
        state.ResumeTiming();
        ann.announce(2, bind);
        simulator.runFor(20 * sim::msec);
        benchmark::DoNotOptimize(ann.acked());
    }
}
BENCHMARK(BM_ReliableRegistrationLossy);

} // namespace

BENCHMARK_MAIN();
