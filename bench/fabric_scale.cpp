/**
 * @file
 * Scale-out fabric sweep: islands x topology x link weather.
 *
 * The paper's prototype coordinates three islands over a single
 * PCIe mailbox; this bench asks what happens when the same
 * coordination protocol has to span many islands. Each cell runs
 * the sharded-RUBiS fabric scenario (root classifier island, N-1
 * shard islands, shared tier entities) on one fabric topology and
 * one link-weather setting, and reports the scale-out cost metric
 * — hub wire messages per applied (logical) tune — alongside hub
 * queue depth and convergence time.
 *
 * The claim under test: a hierarchical (tree) fabric with hub
 * aggregation needs measurably fewer messages per applied tune than
 * a star at large island counts, because intermediate hubs coalesce
 * per-entity deltas within the aggregation window. The bench
 * self-checks that claim at the largest swept island count and
 * exits non-zero if it does not hold, and also requires the exact
 * delta-sum invariant (sum of applied + abandoned deltas equals the
 * policy intent, bit-for-bit) in every cell.
 *
 * Custom flags, consumed before the shared bench CLI:
 *
 *   --islands N[,N...]    island counts to sweep (default 2,8,16)
 *   --topology T[,T...]   topologies to sweep (default star,mesh,tree)
 *
 * The slow ctest profile passes --islands 2,8,16,64. The workload
 * window is fixed by the scenario (not --warmup-sec/--measure-sec)
 * so the gated baseline stays comparable across invocations.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "coord/fabric.hpp"
#include "obs/trace.hpp"

namespace {

struct Weather
{
    const char *label;
    corm::interconnect::FaultPlanParams faults;
};

/** Split "2,8,16" into integers; exits on garbage. */
std::vector<int>
parseIntList(const char *arg, const char *flag)
{
    std::vector<int> out;
    const char *p = arg;
    while (*p != '\0') {
        char *end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v < 2 || v > 4096) {
            std::fprintf(stderr,
                         "fabric_scale: bad %s value in '%s' "
                         "(want 2..4096)\n",
                         flag, arg);
            std::exit(2);
        }
        out.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
    }
    if (out.empty()) {
        std::fprintf(stderr, "fabric_scale: empty %s list\n", flag);
        std::exit(2);
    }
    return out;
}

std::vector<corm::coord::FabricTopology>
parseTopologyList(const char *arg)
{
    std::vector<corm::coord::FabricTopology> out;
    std::string s(arg);
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string tok = s.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        corm::coord::FabricTopology t;
        if (!corm::coord::parseFabricTopology(tok, t)) {
            std::fprintf(stderr,
                         "fabric_scale: unknown topology '%s' "
                         "(star|mesh|tree)\n",
                         tok.c_str());
            std::exit(2);
        }
        out.push_back(t);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** Mean of a member across trials. */
template <typename R, typename Fn>
double
meanOf(const std::vector<R> &rs, Fn f)
{
    if (rs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : rs)
        sum += static_cast<double>(f(r));
    return sum / static_cast<double>(rs.size());
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off the sweep flags the shared CLI does not know, then
    // hand the rest to parseArgs (which exits on unknown options).
    std::vector<int> islandCounts = {2, 8, 16};
    std::vector<corm::coord::FabricTopology> topologies = {
        corm::coord::FabricTopology::star,
        corm::coord::FabricTopology::mesh,
        corm::coord::FabricTopology::tree,
    };
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--islands") && i + 1 < argc) {
            islandCounts = parseIntList(argv[++i], "--islands");
        } else if (!std::strcmp(argv[i], "--topology")
                   && i + 1 < argc) {
            topologies = parseTopologyList(argv[++i]);
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    const auto opts = corm::bench::parseArgs(
        static_cast<int>(passthrough.size()), passthrough.data(),
        "fabric_scale");

    corm::bench::banner("Fabric scale",
                        "sharded RUBiS tiers across N islands: "
                        "topology x link weather");
    corm::bench::BenchReport report(opts);

    const Weather weathers[] = {
        {"clean", {}},
        {"faulty",
         []() {
             corm::interconnect::FaultPlanParams p;
             p.lossProb = 0.02;
             p.dupProb = 0.01;
             p.reorderProb = 0.01;
             return p;
         }()},
    };

    std::printf("%-18s | %7s %7s %9s | %6s %7s | %6s %6s\n", "cell",
                "hub/ap", "wire/ap", "applied", "hub q", "conv ms",
                "replay", "aband");

    // msgsPerAppliedTune means, keyed for the tree-vs-star check.
    double gridMsgs[2][3] = {}; // [weather][topology ordinal]
    bool gridSet[2][3] = {};
    int largestN = 0;
    for (int n : islandCounts)
        largestN = std::max(largestN, n);

    bool invariantsHold = true;
    for (int n : islandCounts) {
        for (const auto topo : topologies) {
            for (std::size_t w = 0; w < 2; ++w) {
                corm::platform::FabricScenarioConfig cfg;
                cfg.islands = n;
                cfg.fabric.topology = topo;
                cfg.fabric.treeFanout = 4;
                // The aggregation window is the tree's whole point;
                // star/mesh have no relay hubs so it is inert there.
                cfg.fabric.aggWindow = 300 * corm::sim::usec;
                cfg.fabric.faults = weathers[w].faults;
                cfg.fabric.faults.seed = opts.trial.seed ^ 0xfab;
                cfg.monitorLanes = false;

                // Capture (--trace/--monitor/--metrics) attaches to
                // trial 0 of the first swept cell, same contract as
                // shard_scale: the seed and schedule there are
                // --jobs-independent, so captured artefacts are
                // reproducible.
                const corm::bench::ObsCapture &obs = *opts.obs;
                const bool captureCell =
                    (!obs.tracePath.empty() || obs.metrics
                     || obs.monitor)
                    && n == islandCounts.front()
                    && topo == topologies.front() && w == 0;

                auto results = corm::platform::runTrials(
                    opts.trial, [&](int idx, std::uint64_t seed) {
                        corm::platform::FabricScenarioConfig c = cfg;
                        c.seed = seed;
                        corm::obs::TraceRecorder rec;
                        const bool cap = captureCell && idx == 0;
                        if (cap) {
                            if (!obs.tracePath.empty()) {
                                rec.setEnabled(true);
                                c.trace = &rec;
                            }
                            if (obs.monitor)
                                c.monitorLanes = true;
                            c.captureMetrics = obs.metrics;
                        }
                        auto r = corm::platform::runFabricScenario(c);
                        if (cap) {
                            if (c.trace)
                                opts.obs->traceJson = rec.json();
                            if (obs.metrics) {
                                opts.obs->metricsJson = r.metricsJson;
                                opts.obs->metricsText =
                                    r.metricsJson + "\n";
                            }
                            if (obs.monitor) {
                                opts.obs->healthReport =
                                    r.healthReport;
                                opts.obs->healthBreaches =
                                    r.healthBreaches;
                            }
                        }
                        return r;
                    });

                using R = corm::platform::FabricScenarioResult;
                const double msgsPer = meanOf(
                    results,
                    [](const R &r) { return r.msgsPerAppliedTune; });
                const double hubPer = meanOf(
                    results,
                    [](const R &r) { return r.hubMsgsPerAppliedTune; });
                const double applied = meanOf(
                    results, [](const R &r) { return r.appliedTunes; });
                const double wireTunes = meanOf(
                    results,
                    [](const R &r) { return r.wireTuneMessages; });
                const double hubQ = meanOf(results, [](const R &r) {
                    return r.hubQueueHighWater;
                });
                const double convMs = meanOf(
                    results, [](const R &r) { return r.convergenceMs; });
                const double replays = meanOf(
                    results, [](const R &r) { return r.linkReplays; });
                const double aband = meanOf(results, [](const R &r) {
                    return r.abandonedWire;
                });
                std::uint64_t events = 0;
                for (const auto &r : results) {
                    events += r.eventsExecuted;
                    if (!r.deltaSumsExact || !r.converged
                        || !r.bindingsOk || !r.triggersAccounted
                        || r.fabricDropped != 0) {
                        invariantsHold = false;
                        std::fprintf(
                            stderr,
                            "fabric_scale: INVARIANT VIOLATION "
                            "n=%d topo=%s weather=%s "
                            "(exact=%d conv=%d bind=%d trig=%d "
                            "dropped=%llu)\n",
                            n, corm::coord::fabricTopologyName(topo),
                            weathers[w].label, r.deltaSumsExact,
                            r.converged, r.bindingsOk,
                            r.triggersAccounted,
                            static_cast<unsigned long long>(
                                r.fabricDropped));
                    }
                }

                char label[64];
                std::snprintf(label, sizeof(label), "%s_n%d_%s",
                              corm::coord::fabricTopologyName(topo), n,
                              weathers[w].label);
                std::printf("%-18s | %7.3f %7.3f %9.0f | %6.0f "
                            "%7.1f | %6.0f %6.0f\n",
                            label, hubPer, msgsPer, applied, hubQ,
                            convMs, replays, aband);

                report.addScalars(
                    label,
                    {
                        {"hub_messages_per_applied_tune", hubPer},
                        {"hub_wire_messages",
                         meanOf(results,
                                [](const R &r) {
                                    return r.hubWireMessages;
                                })},
                        {"messages_per_applied_tune", msgsPer},
                        {"applied_tunes", applied},
                        {"wire_tune_messages", wireTunes},
                        {"wire_messages",
                         meanOf(results,
                                [](const R &r) {
                                    return r.wireMessages;
                                })},
                        {"hub_relays",
                         meanOf(results,
                                [](const R &r) {
                                    return r.hubRelays;
                                })},
                        {"agg_batches",
                         meanOf(results,
                                [](const R &r) {
                                    return r.aggBatches;
                                })},
                        {"agg_folded",
                         meanOf(results,
                                [](const R &r) {
                                    return r.aggFolded;
                                })},
                        {"hub_queue_depth", hubQ},
                        {"convergence_ms", convMs},
                        {"link_replays", replays},
                        {"abandoned_wire", aband},
                        {"mean_hops",
                         meanOf(results,
                                [](const R &r) {
                                    return r.meanHops;
                                })},
                        {"converged_fraction",
                         meanOf(results,
                                [](const R &r) {
                                    return r.converged ? 1.0 : 0.0;
                                })},
                    },
                    events);

                if (n == largestN) {
                    const int t = static_cast<int>(topo);
                    gridMsgs[w][t] = hubPer;
                    gridSet[w][t] = true;
                }
            }
        }
    }

    report.write();

    // The headline claim: at the largest island count (>= 8), the
    // hierarchical fabric must beat the star on hub messages per
    // applied tune in every weather cell where both ran: a star's
    // hub touches every wire message, a tree's root only its
    // children's folded batches.
    bool claimHolds = true;
    const int star = static_cast<int>(corm::coord::FabricTopology::star);
    const int tree = static_cast<int>(corm::coord::FabricTopology::tree);
    if (largestN >= 8) {
        for (std::size_t w = 0; w < 2; ++w) {
            if (!gridSet[w][star] || !gridSet[w][tree])
                continue;
            const double s = gridMsgs[w][star];
            const double t = gridMsgs[w][tree];
            std::printf("[scale-out @ n=%d %s] tree %.3f vs star %.3f "
                        "hub msgs/applied-tune (%s)\n",
                        largestN, weathers[w].label, t, s,
                        t < s ? "tree wins" : "CLAIM FAILS");
            if (t >= s)
                claimHolds = false;
        }
    }

    if (!invariantsHold) {
        std::fprintf(stderr,
                     "fabric_scale: FAILED (invariant violations)\n");
        return 1;
    }
    if (!claimHolds) {
        std::fprintf(stderr,
                     "fabric_scale: FAILED (tree did not beat star "
                     "at n=%d)\n",
                     largestN);
        return 1;
    }
    return 0;
}
