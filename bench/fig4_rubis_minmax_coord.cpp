/**
 * @file
 * Figure 4: RUBiS min–max response times, base vs coord-ixp-dom0.
 *
 * The paper's claim: "the coordinated case results in reduced
 * standard deviation for every request type serviced, sometimes by
 * up to 50%", with only slight minimum-latency overheads, and with
 * possible mis-application under fast read/write oscillation (one
 * browsing type's maximum can regress).
 */

#include <cstdio>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    const auto opts = corm::bench::parseArgs(
        argc, argv, "fig4_rubis_minmax_coord");
    corm::bench::banner("Figure 4",
                        "RUBiS min-max response times: base vs "
                        "coord-ixp-dom0");

    corm::bench::BenchReport report(opts);
    const auto mbase = corm::bench::runRubis(false, opts);
    const auto mcoord = corm::bench::runRubis(true, opts);
    const auto &base = mbase.mean;
    const auto &coord = mcoord.mean;

    std::printf("%-26s | %8s %8s %8s | %8s %8s %8s | %7s\n",
                "Request Type", "min", "max", "sd", "min", "max", "sd",
                "sd chg");
    std::printf("%-26s | %26s | %26s |\n", "", "----------- base (ms)",
                "---- coord-ixp-dom0 (ms)");
    int sd_reduced = 0, rows = 0;
    for (std::size_t i = 0; i < base.types.size(); ++i) {
        const auto &b = base.types[i];
        const auto &c = coord.types[i];
        if (b.count == 0 || c.count == 0)
            continue;
        const double chg =
            b.stddevMs > 0.0
                ? 100.0 * (c.stddevMs - b.stddevMs) / b.stddevMs
                : 0.0;
        ++rows;
        if (chg < 0.0)
            ++sd_reduced;
        std::printf("%-26s | %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f | "
                    "%+6.0f%%\n",
                    b.name.c_str(), b.minMs, b.maxMs, b.stddevMs,
                    c.minMs, c.maxMs, c.stddevMs, chg);
    }
    std::printf("\nStd-dev reduced for %d of %d request types; overall "
                "mean %0.0f ms -> %0.0f ms.\n",
                sd_reduced, rows, base.meanResponseMs,
                coord.meanResponseMs);
    std::printf("Paper shape: reduced deviation for every type (up to "
                "~50%%) at <=3%% min-latency overhead, with occasional\n"
                "mis-application under read/write oscillation (see "
                "ablation_oscillation).\n");
    report.add("base", mbase);
    report.add("coord", mcoord);
    report.write();
    return 0;
}
