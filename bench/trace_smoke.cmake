# Trace capture smoke + determinism check, run as a ctest.
#
# Runs the coordinated RUBiS bench with --trace on, validates the
# emitted Chrome trace-event JSON with the trace_check schema checker
# (requiring at least one complete multi-hop causal span — the
# classifier -> Tune -> apply chain), then reruns with --jobs 2 and
# requires the trace bytes to be identical: trace capture comes from
# trial 0 only, so parallelism must not perturb it.

execute_process(
    COMMAND ${BENCH_BIN} --trials 2 --warmup-sec 0.5 --measure-sec 2
        --jobs 1 --trace ${WORK_DIR}/trace_j1.json
        --json ${WORK_DIR}/trace_smoke_j1.json --metrics
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc1 OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "traced bench run failed (rc=${rc1})")
endif()

execute_process(
    COMMAND ${CHECK_BIN} ${WORK_DIR}/trace_j1.json --require-flow
    RESULT_VARIABLE rcc)
if(NOT rcc EQUAL 0)
    message(FATAL_ERROR "trace_check rejected the trace (rc=${rcc})")
endif()

execute_process(
    COMMAND ${BENCH_BIN} --trials 2 --warmup-sec 0.5 --measure-sec 2
        --jobs 2 --trace ${WORK_DIR}/trace_j2.json
        --json ${WORK_DIR}/trace_smoke_j2.json --metrics
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc2 OUTPUT_QUIET)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "traced --jobs 2 run failed (rc=${rc2})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/trace_j1.json ${WORK_DIR}/trace_j2.json
    RESULT_VARIABLE rcd)
if(NOT rcd EQUAL 0)
    message(FATAL_ERROR
        "determinism violation: trial-0 trace differs between "
        "--jobs 1 and --jobs 2 "
        "(${WORK_DIR}/trace_j1.json vs trace_j2.json)")
endif()

message(STATUS "trace_smoke: trace valid, flow spans present, "
    "byte-identical across --jobs")
