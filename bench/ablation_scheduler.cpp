/**
 * @file
 * Ablation: how much of the coordination win would a better
 * scheduler have absorbed?
 *
 * The paper ran on 2010's Xen credit1 (class-FIFO dispatch, §2.2),
 * whose scheduling-latency pathologies are part of what coordination
 * fixes. This bench reruns the RUBiS comparison under both dispatch
 * modes of our credit-scheduler model: the credit1-faithful
 * class-FIFO and the tighter credit-ordered variant.
 */

#include <cstdio>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    const auto opts =
        corm::bench::parseArgs(argc, argv, "ablation_scheduler");
    corm::bench::banner("Ablation: scheduler dispatch mode",
                        "coordination gain under classFifo (2010 "
                        "credit1) vs creditOrdered dispatch");
    corm::bench::BenchReport report(opts);

    std::printf("%-24s %12s %12s %10s %12s\n", "Scheduler", "base RT",
                "coord RT", "RT gain", "thr gain");
    for (const bool ordered : {false, true}) {
        corm::platform::RubisScenarioConfig b;
        b.testbed.sched.creditOrderedDispatch = ordered;
        b.warmup = 15 * corm::sim::sec;
        b.measure = 90 * corm::sim::sec;
        auto c = b;
        c.coordination = true;
        const auto mb = corm::bench::runRubisTrials(b, opts);
        const auto mc = corm::bench::runRubisTrials(c, opts);
        const auto &rb = mb.mean;
        const auto &rc = mc.mean;
        std::printf("%-24s %9.0f ms %9.0f ms %+8.1f%% %+10.1f%%\n",
                    ordered ? "creditOrdered (modern)"
                            : "classFifo (credit1)",
                    rb.meanResponseMs, rc.meanResponseMs,
                    100.0
                        * (rc.meanResponseMs - rb.meanResponseMs)
                        / rb.meanResponseMs,
                    100.0 * (rc.throughputRps - rb.throughputRps)
                        / rb.throughputRps);
        report.add(ordered ? "creditOrdered_base" : "classFifo_base",
                   mb);
        report.add(ordered ? "creditOrdered_coord" : "classFifo_coord",
                   mc);
    }
    std::printf("\nReading: the coordination win persists across "
                "dispatcher generations — most of it comes from\n"
                "tracking the request mix, not from any one "
                "scheduler's latency pathologies; the magnitude\n"
                "depends on the island's internal scheduler.\n");
    report.write();
    return 0;
}
