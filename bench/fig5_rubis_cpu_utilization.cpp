/**
 * @file
 * Figure 5: RUBiS per-VM CPU utilisation, no-coord vs coord-ixp-dom0.
 *
 * The paper shows small increases in CPU utilisation with
 * coordination — the application receives more CPU time to run —
 * with the guest-internal balance shifting from iowait/system toward
 * user time, and justifies the higher utilisation through the larger
 * platform-efficiency improvement (Table 2).
 */

#include <cstdio>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    const auto opts = corm::bench::parseArgs(
        argc, argv, "fig5_rubis_cpu_utilization");
    corm::bench::banner("Figure 5",
                        "RUBiS per-VM CPU utilisation (% of one core)");

    corm::bench::BenchReport report(opts);
    const auto mbase = corm::bench::runRubis(false, opts);
    const auto mcoord = corm::bench::runRubis(true, opts);
    const auto &base = mbase.mean;
    const auto &coord = mcoord.mean;

    std::printf("%-14s %10s %10s\n", "", "no-coord", "coord");
    std::printf("%-14s %9.1f%% %9.1f%%\n", "Web-Server", base.webCpuPct,
                coord.webCpuPct);
    std::printf("%-14s %9.1f%% %9.1f%%\n", "App-Server", base.appCpuPct,
                coord.appCpuPct);
    std::printf("%-14s %9.1f%% %9.1f%%\n", "DB-Server", base.dbCpuPct,
                coord.dbCpuPct);
    std::printf("%-14s %9.1f%% %9.1f%%   (control domain)\n", "Dom0",
                base.dom0CpuPct, coord.dom0CpuPct);
    std::printf("%-14s %9.1f%% %9.1f%%   (stacked guests)\n", "Total",
                base.webCpuPct + base.appCpuPct + base.dbCpuPct,
                coord.webCpuPct + coord.appCpuPct + coord.dbCpuPct);

    std::printf("\nGuest iowait (%% of one core):\n");
    std::printf("%-14s %9.1f%% %9.1f%%\n", "Web-Server",
                base.webIowaitPct, coord.webIowaitPct);
    std::printf("%-14s %9.1f%% %9.1f%%\n", "App-Server",
                base.appIowaitPct, coord.appIowaitPct);
    std::printf("%-14s %9.1f%% %9.1f%%\n", "DB-Server",
                base.dbIowaitPct, coord.dbIowaitPct);

    std::printf("\nPaper shape: slightly higher utilisation under "
                "coordination, justified by the platform-efficiency\n"
                "gain (Table 2 bench).\n");
    report.add("base", mbase);
    report.add("coord", mcoord);
    report.write();
    return 0;
}
