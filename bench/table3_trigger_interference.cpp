/**
 * @file
 * Table 3: trigger interference. The boosted network-streaming
 * domain gains frame rate while an uninvolved domain playing from
 * local disk (no IXP resources at all) pays a small penalty — still
 * a net gain in platform efficiency.
 */

#include <cstdio>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    const auto opts = corm::bench::parseArgs(
        argc, argv, "table3_trigger_interference");
    corm::bench::banner("Table 3", "MPlayer trigger interference");
    corm::bench::BenchReport report(opts);

    corm::platform::TriggerScenarioConfig base_cfg;
    base_cfg.trigger = false;
    const auto mbase = corm::bench::runTriggerTrials(base_cfg, opts);
    const auto &base = mbase.mean;

    corm::platform::TriggerScenarioConfig trig_cfg;
    trig_cfg.trigger = true;
    const auto mtrig = corm::bench::runTriggerTrials(trig_cfg, opts);
    const auto &trig = mtrig.mean;

    auto pct = [](double b, double w) {
        return b > 0.0 ? 100.0 * (w - b) / b : 0.0;
    };

    std::printf("%-22s %12s %12s %9s | %9s\n", "Guest Domain",
                "base fps", "w/ coord", "% change", "paper");
    std::printf("%-22s %12.1f %12.1f %+8.2f%% | %+8.2f%%\n",
                "Domain-1 (network)", base.fps1, trig.fps1,
                pct(base.fps1, trig.fps1), +9.77);
    std::printf("%-22s %12.1f %12.1f %+8.2f%% | %+8.2f%%\n",
                "Domain-2 (local disk)", base.fps2, trig.fps2,
                pct(base.fps2, trig.fps2), -6.25);

    std::printf("\nTriggers fired: %llu; boosts applied: %llu; IXP "
                "queue drops: %llu -> %llu.\n",
                static_cast<unsigned long long>(trig.triggersSent),
                static_cast<unsigned long long>(trig.boosts),
                static_cast<unsigned long long>(base.ixpQueueDrops),
                static_cast<unsigned long long>(trig.ixpQueueDrops));
    std::printf("Paper shape: the boosted domain gains ~10%%, the "
                "uninvolved domain degrades modestly; the paper "
                "expects\nthis overhead to shrink on more tightly "
                "coupled manycores (see ablation_scalability).\n");
    report.add("base", mbase);
    report.add("trigger", mtrig);
    report.write();
    return 0;
}
