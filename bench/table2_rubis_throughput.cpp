/**
 * @file
 * Table 2: RUBiS throughput, sessions completed, average session
 * time, and platform efficiency (throughput over mean CPU
 * utilisation), base vs coord-ixp-dom0.
 */

#include <cstdio>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    const auto opts = corm::bench::parseArgs(
        argc, argv, "table2_rubis_throughput");
    corm::bench::banner("Table 2", "RUBiS throughput results");

    corm::bench::BenchReport report(opts);
    const auto mbase = corm::bench::runRubis(false, opts);
    const auto mcoord = corm::bench::runRubis(true, opts);
    const auto &base = mbase.mean;
    const auto &coord = mcoord.mean;

    std::printf("%-24s %12s %16s %10s %10s\n", "", "base",
                "coord-ixp-dom0", "paper.b", "paper.c");
    std::printf("%-24s %9.1f /s %13.1f /s %7.0f /s %7.0f /s\n",
                "Throughput", base.throughputRps, coord.throughputRps,
                68.0, 95.0);
    std::printf("%-24s %12llu %16llu %10.0f %10.0f\n",
                "Sessions completed",
                static_cast<unsigned long long>(base.sessionsCompleted),
                static_cast<unsigned long long>(coord.sessionsCompleted),
                6.0, 11.0);
    std::printf("%-24s %10.1f s %14.1f s %8.0f s %8.0f s\n",
                "Avg session time", base.avgSessionSec,
                coord.avgSessionSec, 103.0, 73.0);
    std::printf("%-24s %12.2f %16.2f %10.2f %10.2f\n",
                "Platform efficiency", base.platformEfficiency,
                coord.platformEfficiency, 51.28, 58.20);
    std::printf("\nTune messages: %llu sent by the IXP policy, %llu "
                "applied by the x86 island.\n",
                static_cast<unsigned long long>(coord.tunesSent),
                static_cast<unsigned long long>(coord.tunesApplied));
    std::printf("Paper shape: coordination raises throughput and "
                "platform efficiency, completes more sessions, and\n"
                "shortens the average session.\n");
    report.add("base", mbase);
    report.add("coord", mcoord);
    report.write();
    return 0;
}
