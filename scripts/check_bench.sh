#!/bin/sh
# Run the bench regression gate by hand, outside ctest.
#
#   scripts/check_bench.sh [BUILD_DIR]            gate against baselines
#   scripts/check_bench.sh [BUILD_DIR] --update   refresh the baselines
#
# The gate reruns table2_rubis_throughput (1 trial, 0.5 s warm-up,
# 2 s measure), fabric_scale (default sweep), shard_scale (default
# islands x shards sweep), a capture-enabled shard_scale run
# (trace + monitor + metrics, pinning the observability overhead),
# flow_attr (flow-latency attribution counts and retry blame) and
# churn_scale (membership churn: exactly-once tune conservation and
# shard-count digest identity under join/leave/crash/migrate)
# with the committed fast configurations — the same windows the
# bench_gate_check, fabric_gate_check, shard_gate_check,
# shard_obs_gate_check, flow_attr_gate_check and churn_gate_check
# ctests use — and compares the gated metrics in their JSON reports
# against bench/baselines/*.json.
# --update recaptures the baseline from the fresh run, preserving the
# per-metric tolerance list below; commit the result when a metric
# shift is intentional.

set -e

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-$repo/build}
case "$build" in
  --update) build=$repo/build; update=1 ;;
esac
[ "$2" = "--update" ] && update=1

bench=$build/bench/table2_rubis_throughput
fabric=$build/bench/fabric_scale
shard=$build/bench/shard_scale
flow=$build/bench/flow_attr
churn=$build/bench/churn_scale
gate=$build/bench/bench_gate
baseline=$repo/bench/baselines/table2_rubis_throughput.json
fabric_baseline=$repo/bench/baselines/fabric_scale.json
shard_baseline=$repo/bench/baselines/shard_scale.json
obs_baseline=$repo/bench/baselines/shard_scale_obs.json
flow_baseline=$repo/bench/baselines/flow_attr.json
churn_baseline=$repo/bench/baselines/churn_scale.json

for bin in "$bench" "$fabric" "$shard" "$flow" "$churn" "$gate"; do
    if [ ! -x "$bin" ]; then
        echo "check_bench: missing $bin (build first: cmake --build $build)" >&2
        exit 2
    fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

(cd "$tmp" && "$bench" --trials 1 --warmup-sec 0.5 --measure-sec 2 \
    --json "$tmp/fresh.json" > /dev/null)
(cd "$tmp" && "$fabric" --trials 1 \
    --json "$tmp/fabric_fresh.json" > /dev/null)
(cd "$tmp" && "$shard" --trials 1 \
    --json "$tmp/shard_fresh.json" > /dev/null)
# Observability gate run: capture enabled, 48-island sweep, speedup
# self-check disarmed (tiny cells cannot amortise the barrier).
(cd "$tmp" && CORM_SHARD_SPEEDUP_MIN=0 "$shard" --trials 1 \
    --islands 48 --shards 1,4 --trace "$tmp/obs_trace.json" \
    --monitor --metrics \
    --json "$tmp/obs_fresh.json" > /dev/null)
# Flow-attribution run: the binary self-checks shard invariance,
# digest neutrality and in-process/offline agreement on every run.
(cd "$tmp" && CORM_SHARD_SPEEDUP_MIN=0 "$flow" --trials 1 \
    --islands 12 --shards 1,4 \
    --json "$tmp/flow_fresh.json" > /dev/null)
# Churn run: the binary self-checks tunes_lost == 0 and digest
# identity across shard counts on every cell before reporting.
(cd "$tmp" && "$churn" --trials 1 \
    --json "$tmp/churn_fresh.json" > /dev/null)

if [ -n "$update" ]; then
    # The gated metric list and its tolerances. Structural counters
    # (events, tunes) are tighter than the latency aggregates.
    "$gate" --init "$tmp/fresh.json" --out "$baseline" \
        results.base.throughput_rps.mean=0.15 \
        results.coord.throughput_rps.mean=0.15 \
        results.base.mean_response_ms.mean=0.20 \
        results.coord.mean_response_ms.mean=0.20 \
        results.coord.tunes_sent=0.25 \
        results.base.events_executed=0.10 \
        results.coord.events_executed=0.10
    echo "check_bench: baseline refreshed -> $baseline"
    # Fabric gate: structural message counts are exact replays, so
    # they run tight; the derived ratios get a little headroom.
    "$gate" --init "$tmp/fabric_fresh.json" --out "$fabric_baseline" \
        results.tree_n16_faulty.hub_messages_per_applied_tune=0.15 \
        results.tree_n16_faulty.messages_per_applied_tune=0.15 \
        results.tree_n16_faulty.applied_tunes=0.05 \
        results.tree_n16_faulty.hub_queue_depth=0.50 \
        results.tree_n16_faulty.convergence_ms=0.25 \
        results.star_n16_faulty.hub_messages_per_applied_tune=0.15 \
        results.star_n16_faulty.applied_tunes=0.05 \
        results.tree_n16_clean.hub_messages_per_applied_tune=0.15 \
        results.star_n16_clean.hub_messages_per_applied_tune=0.15
    echo "check_bench: baseline refreshed -> $fabric_baseline"
    # Shard gate: everything pinned here is a pure function of the
    # seed and the global event set — digests, window/boundary
    # counts, per-cell event totals — so the tolerances are zero
    # (exact replay). Wall time is deliberately not gated.
    "$gate" --init "$tmp/shard_fresh.json" --out "$shard_baseline" \
        results.tree_n64_s1.digest_hi=0 \
        results.tree_n64_s1.digest_lo=0 \
        results.tree_n64_s1.shard_windows=0 \
        results.tree_n64_s1.boundary_messages=0 \
        results.tree_n64_s1.applied_tunes=0 \
        results.tree_n64_s1.convergence_ms=0 \
        results.tree_n64_s1.events_executed=0 \
        results.tree_n64_s4.digest_hi=0 \
        results.tree_n64_s4.digest_lo=0 \
        results.tree_n64_s4.events_executed=0 \
        results.tree_n256_s4.digest_hi=0 \
        results.tree_n256_s4.digest_lo=0 \
        results.tree_n256_s4.shard_windows=0 \
        results.tree_n256_s4.boundary_messages=0 \
        results.tree_n256_s4.applied_tunes=0 \
        results.tree_n256_s4.convergence_ms=0 \
        results.tree_n256_s4.events_executed=0
    echo "check_bench: baseline refreshed -> $shard_baseline"
    # Observability gate: the capture counts and digests are exact
    # replays (zero tolerance); the captured/flight wall-time ratios
    # are machine-dependent, so they only guard against runaway
    # overhead, not small drift.
    "$gate" --init "$tmp/obs_fresh.json" --out "$obs_baseline" \
        results.obs_overhead.trace_events=0 \
        results.obs_overhead.health_breaches=0 \
        results.obs_overhead.digest_match=0 \
        results.obs_overhead.wall_ratio=2.0 \
        results.obs_overhead.flight_ratio=1.0 \
        results.tree_n48_s1.digest_hi=0 \
        results.tree_n48_s1.digest_lo=0 \
        results.tree_n48_s4.digest_hi=0 \
        results.tree_n48_s4.digest_lo=0 \
        results.tree_n48_s4.shard_windows=0 \
        results.tree_n48_s4.boundary_messages=0
    echo "check_bench: baseline refreshed -> $obs_baseline"
    # Flow-attribution gate: flow counts, leg blame tallies and the
    # retry signature are exact replays of the seeded schedule, so
    # every structural metric is pinned at zero tolerance.
    "$gate" --init "$tmp/flow_fresh.json" --out "$flow_baseline" \
        results.tree_clean.digest_hi=0 \
        results.tree_clean.digest_lo=0 \
        results.tree_clean.flows=0 \
        results.tree_clean.completed=0 \
        results.tree_clean.coalesced=0 \
        results.tree_clean.abandoned=0 \
        results.tree_clean.blame_retry=0 \
        results.tree_clean.trace_events=0 \
        results.tree_faulty.digest_hi=0 \
        results.tree_faulty.digest_lo=0 \
        results.tree_faulty.flows=0 \
        results.tree_faulty.completed=0 \
        results.tree_faulty.abandoned=0 \
        results.tree_faulty.blame_retry=0 \
        results.tree_faulty.blame_abandoned=0 \
        results.tree_faulty.retry_sum_ns=0 \
        results.tree_faulty.trace_events=0
    echo "check_bench: baseline refreshed -> $flow_baseline"
    # Churn gate: the applied/abandoned ledger, re-parent and
    # migration-forward counts and the digests are exact replays of
    # the seeded schedule, so every metric is pinned at zero
    # tolerance; tunes_lost is pinned at its only legal value, zero.
    "$gate" --init "$tmp/churn_fresh.json" --out "$churn_baseline" \
        results.tree_n16_c8_s1.digest_hi=0 \
        results.tree_n16_c8_s1.digest_lo=0 \
        results.tree_n16_c8_s1.applied_tunes=0 \
        results.tree_n16_c8_s1.abandoned_tunes=0 \
        results.tree_n16_c8_s1.tunes_lost=0 \
        results.tree_n16_c8_s1.churn_reparents=0 \
        results.tree_n16_c8_s1.mig_forwards=0 \
        results.tree_n64_c32_s1.digest_hi=0 \
        results.tree_n64_c32_s1.digest_lo=0 \
        results.tree_n64_c32_s1.applied_tunes=0 \
        results.tree_n64_c32_s1.abandoned_tunes=0 \
        results.tree_n64_c32_s1.tunes_lost=0 \
        results.tree_n64_c32_s1.events_executed=0 \
        results.tree_n64_c32_s4.digest_hi=0 \
        results.tree_n64_c32_s4.digest_lo=0 \
        results.tree_n64_c32_s4.applied_tunes=0 \
        results.tree_n64_c32_s4.abandoned_tunes=0 \
        results.tree_n64_c32_s4.tunes_lost=0 \
        results.tree_n64_c32_s4.churn_reparents=0 \
        results.tree_n64_c32_s4.mig_forwards=0 \
        results.tree_n64_c32_s4.churn_skipped=0 \
        results.tree_n64_c32_s4.route_epochs=0 \
        results.tree_n64_c32_s4.events_executed=0
    echo "check_bench: baseline refreshed -> $churn_baseline"
else
    "$gate" "$baseline" "$tmp/fresh.json"
    "$gate" "$fabric_baseline" "$tmp/fabric_fresh.json"
    "$gate" "$shard_baseline" "$tmp/shard_fresh.json"
    "$gate" "$obs_baseline" "$tmp/obs_fresh.json"
    "$gate" "$flow_baseline" "$tmp/flow_fresh.json"
    "$gate" "$churn_baseline" "$tmp/churn_fresh.json"
    echo "check_bench: gate passed"
fi
