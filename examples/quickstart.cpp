/**
 * @file
 * Quickstart: build the two-island platform, register a guest, and
 * drive the two coordination mechanisms — Tune and Trigger — by hand.
 *
 * This walks the public API end to end:
 *   1. assemble the x86–IXP testbed (islands, PCIe, channel,
 *      controller, messaging driver);
 *   2. deploy a guest VM — registration is announced to the IXP over
 *      the coordination channel, so the IXP learns which destination
 *      IP belongs to the guest;
 *   3. send a Tune (weight adjustment) and a Trigger (run-queue
 *      boost) from the IXP island and watch them take effect.
 */

#include <cstdio>

#include "coord/message.hpp"
#include "platform/report.hpp"
#include "platform/testbed.hpp"

int
main()
{
    using namespace corm;

    // 1. The platform: 2 x86 cores under the Xen credit scheduler,
    //    an IXP2850 island, PCIe between them.
    platform::Testbed tb;

    // 2. A guest VM. addGuest() creates the domain + ViF, places it
    //    under coordination management and registers it with the
    //    global controller in Dom0.
    auto &vm = tb.addGuest("demo-vm", net::IpAddr{10, 0, 0, 2},
                           /*weight=*/256.0);
    std::printf("deployed %s: entity id %u, initial weight %.0f\n",
                vm.dom->name().c_str(), vm.entity, vm.dom->weight());

    // Let the registration message cross the channel.
    tb.run(1 * sim::msec);
    std::printf("IXP learned %zu flow queue(s) from the controller\n",
                tb.ixp().flowQueueCount());

    // 3a. Tune: the IXP asks the x86 island to raise the guest's
    //     allocation. The x86 island translates the abstract delta
    //     into credit-scheduler weight points.
    coord::CoordMessage tune;
    tune.type = coord::MsgType::tune;
    tune.src = tb.ixp().id();
    tune.dst = tb.x86().id();
    tune.entity = vm.entity;
    tune.value = +128.0;
    tb.channel().send(tune);
    tb.run(1 * sim::msec); // channel latency ~120 us
    std::printf("after Tune(+128): weight %.0f (tunes applied: %llu)\n",
                vm.dom->weight(),
                static_cast<unsigned long long>(tb.x86().totalTunes()));

    // 3b. Trigger: give the guest CPU *now*. Submit some competing
    //     work first so the boost is visible.
    auto &rival = tb.addGuest("rival-vm", net::IpAddr{10, 0, 0, 3});
    for (int i = 0; i < 100; ++i) {
        rival.dom->submit(5 * sim::msec, xen::JobKind::user);
        vm.dom->submit(5 * sim::msec, xen::JobKind::user);
    }
    tb.run(50 * sim::msec);

    coord::CoordMessage trigger;
    trigger.type = coord::MsgType::trigger;
    trigger.src = tb.ixp().id();
    trigger.dst = tb.x86().id();
    trigger.entity = vm.entity;
    const sim::Tick busy_before = vm.dom->cpuUsage().totalBusy();
    tb.channel().send(trigger);
    tb.run(2 * sim::msec); // channel latency + a little execution
    const sim::Tick busy_after = vm.dom->cpuUsage().totalBusy();
    std::printf("after Trigger: guest ran %.2f ms within 2 ms of the "
                "trigger (boosts: %llu)\n",
                sim::toMillis(busy_after - busy_before),
                static_cast<unsigned long long>(
                    tb.scheduler().stats().boosts.value()));

    // Channel statistics.
    const auto &cs = tb.channel().stats();
    std::printf("channel: %llu sent, %llu delivered (mean latency "
                "%.0f us)\n",
                static_cast<unsigned long long>(cs.sent.value()),
                static_cast<unsigned long long>(cs.delivered.value()),
                cs.deliveryLatencyUs.mean());

    // The operator's view of the whole platform.
    std::printf("\n%s", platform::statusReport(tb).c_str());
    return 0;
}
