/**
 * @file
 * Example: streaming video QoS driven by the automated
 * stream-property policy (§3.2, scheme 1).
 *
 * Two MPlayer guests decode RTSP/UDP streams delivered through the
 * IXP. Instead of the static weight settings of the Fig. 6 bench,
 * this example attaches the StreamQosTunePolicy: when the IXP's
 * classifier reads a session's bit-/frame-rate from the RTSP setup,
 * the policy tunes the hosting VM's weight automatically.
 */

#include <cstdio>

#include "platform/scenarios.hpp"

int
main()
{
    using namespace corm;

    std::printf("Domain-1: 20 fps / 300 kbps; Domain-2: 25 fps / "
                "1 Mbps; Dom0 busy with device emulation.\n\n");
    std::printf("%-28s | %9s %9s | %10s %10s\n", "configuration",
                "Dom1 fps", "Dom2 fps", "w1 (end)", "w2 (end)");

    for (const bool auto_coord : {false, true}) {
        platform::MplayerQosConfig cfg;
        cfg.autoCoordination = auto_coord;
        // Stream-property thresholds: both streams qualify as
        // "high rate" (>= 20 fps); the 1 Mbps stream earns a larger
        // increase through the per-Mbps bonus.
        cfg.autoCfg.highFps = 19.0;
        cfg.autoCfg.highBitrateBps = 250e3;
        cfg.autoCfg.increaseDelta = +128.0;
        cfg.autoCfg.perMbpsBonus = +256.0;
        cfg.measure = 45 * sim::sec;
        const auto r = platform::runMplayerQos(cfg);
        std::printf("%-28s | %7.1f%s %7.1f%s | %10.0f %10.0f\n",
                    auto_coord ? "stream-qos policy (auto)"
                               : "default weights (256/256)",
                    r.fps1, r.fps1 >= 19.95 ? "*" : " ", r.fps2,
                    r.fps2 >= 24.95 ? "*" : " ", r.weight1End,
                    r.weight2End);
    }
    std::printf("  (* = meets its required frame rate)\n");
    std::printf("\nThe policy translated stream-level properties into "
                "CPU allocations without manual tuning — the\n"
                "automated version of the paper's Fig. 6 experiment "
                "(see bench/fig6_mplayer_qos for the manual one).\n");
    return 0;
}
