/**
 * @file
 * Example: system-level coordination from buffer monitoring (§3.2,
 * scheme 2) — no application knowledge required.
 *
 * A bursty UDP stream periodically fills a guest's packet buffer in
 * IXP DRAM. The BufferThresholdTriggerPolicy watches occupancy and
 * fires a Trigger (an immediate, interrupt-like notification) when
 * it crosses 128 KiB; the x86 island boosts the dequeuing guest so
 * the buffer drains before it overflows.
 */

#include <cstdio>

#include "platform/scenarios.hpp"

int
main()
{
    using namespace corm;

    for (const bool trigger : {false, true}) {
        platform::TriggerScenarioConfig cfg;
        cfg.trigger = trigger;
        cfg.measure = 45 * sim::sec;
        const auto r = platform::runTriggerScenario(cfg);

        std::printf("\n--- %s ---\n",
                    trigger ? "buffer-threshold triggers"
                            : "no coordination");
        std::printf("streaming guest   %5.1f fps (%llu frames skipped "
                    "late)\n",
                    r.fps1, static_cast<unsigned long long>(r.late1));
        std::printf("disk-play guest   %5.1f fps (uninvolved "
                    "bystander)\n",
                    r.fps2);
        std::printf("IXP buffer        peak %.0f KiB, %llu overflow "
                    "drops\n",
                    r.bufferPeakBytes / 1024.0,
                    static_cast<unsigned long long>(r.ixpQueueDrops));
        if (trigger) {
            std::printf("triggers          %llu fired -> %llu "
                        "run-queue boosts\n",
                        static_cast<unsigned long long>(r.triggersSent),
                        static_cast<unsigned long long>(r.boosts));
        }

        // A glimpse of the Fig. 7 sawtooth.
        std::printf("occupancy trace   ");
        const auto &pts = r.bufferSeries.data();
        for (std::size_t i = 0; i < pts.size();
             i += pts.size() / 16 + 1) {
            std::printf("%4.0fK ", pts[i].value / 1024.0);
        }
        std::printf("\n");
    }
    std::printf("\nFull series and the paper-shape summary: "
                "bench/fig7_buffer_trigger and "
                "bench/table3_trigger_interference.\n");
    return 0;
}
