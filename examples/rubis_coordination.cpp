/**
 * @file
 * Example: the RUBiS multi-tier web workload with and without the
 * request-type coordination scheme (§3.1 of the paper).
 *
 * An eBay-like auction site runs as three VMs (web, application,
 * database). Client requests enter through the IXP, whose deep
 * packet inspection classifies each request type; with coordination
 * enabled, the IXP sends per-request weight Tunes so the tiers a
 * request is about to use have CPU when the work arrives.
 */

#include <cstdio>

#include "platform/scenarios.hpp"

int
main()
{
    using namespace corm;

    for (const bool coordination : {false, true}) {
        platform::RubisScenarioConfig cfg;
        cfg.coordination = coordination;
        cfg.warmup = 10 * sim::sec;
        cfg.measure = 45 * sim::sec;
        const auto r = platform::runRubisScenario(cfg);

        std::printf("\n--- %s ---\n",
                    coordination ? "coord-ixp-dom0" : "base");
        std::printf("throughput       %7.1f req/s\n", r.throughputRps);
        std::printf("mean response    %7.0f ms (min %0.f ms)\n",
                    r.meanResponseMs, r.minResponseMs);
        std::printf("sessions         %7llu completed, avg %.1f s\n",
                    static_cast<unsigned long long>(
                        r.sessionsCompleted),
                    r.avgSessionSec);
        std::printf("efficiency       %7.2f req/s per busy core\n",
                    r.platformEfficiency);
        std::printf("tier CPU         web %.0f%%  app %.0f%%  db "
                    "%.0f%%  (dom0 %.0f%%)\n",
                    r.webCpuPct, r.appCpuPct, r.dbCpuPct, r.dom0CpuPct);
        std::printf("db lock waits    mean %.0f ms, max %.0f ms\n",
                    r.dbLockWaitMeanMs, r.dbLockWaitMaxMs);
        if (coordination) {
            std::printf("tunes            %llu sent; weights settled "
                        "web=%.0f app=%.0f db=%.0f\n",
                        static_cast<unsigned long long>(r.tunesSent),
                        r.webWeight, r.appWeight, r.dbWeight);
        }
    }
    std::printf("\nThe full paper-scale comparisons live in the bench/"
                " binaries (fig2, fig4, table1, table2, fig5).\n");
    return 0;
}
