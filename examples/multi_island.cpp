/**
 * @file
 * Example: coordination beyond two islands (§5's ongoing work).
 *
 * Builds a platform of several heterogeneous islands on a
 * coordination fabric — one x86/Xen compute island plus a set of
 * accelerator-style islands modelled by their coordination surface —
 * registers entities through the global controller, and runs a
 * platform-wide power cap across all of them.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/mplayer.hpp"
#include "coord/controller.hpp"
#include "coord/fabric.hpp"
#include "coord/policy.hpp"
#include "sim/simulator.hpp"
#include "xen/island.hpp"
#include "xen/sched.hpp"

namespace {

/**
 * A minimal accelerator island: fixed idle power plus a load knob
 * the coordination layer can tune down.
 */
class AcceleratorIsland : public corm::coord::ResourceIsland
{
  public:
    AcceleratorIsland(corm::coord::IslandId id, std::string name)
        : id_(id), name_(std::move(name))
    {}

    corm::coord::IslandId id() const override { return id_; }
    const std::string &name() const override { return name_; }

    void
    applyTune(corm::coord::EntityId, double delta) override
    {
        // Tune translation for this island: duty-cycle percentage.
        duty = std::clamp(duty + delta / 512.0, 0.1, 1.0);
    }

    void applyTrigger(corm::coord::EntityId) override {}

    double currentPowerWatts() const override
    {
        return 10.0 + 25.0 * duty;
    }

    double duty = 1.0;

  private:
    corm::coord::IslandId id_;
    std::string name_;
};

} // namespace

int
main()
{
    using namespace corm;

    sim::Simulator simulator;

    // Island 1: x86 compute under the credit scheduler.
    xen::CreditScheduler sched(simulator, 2);
    xen::XenIsland x86(simulator, 1, "x86-xen", sched);
    xen::Domain guest(sched, 1, "worker", 256);
    apps::mplayer::DiskPlayer load(guest, 12 * sim::msec);
    load.start();
    const auto guest_entity = x86.manage(guest);

    // Islands 2..4: accelerators, each with one tunable entity.
    std::vector<std::unique_ptr<AcceleratorIsland>> accels;
    for (int i = 0; i < 3; ++i) {
        accels.push_back(std::make_unique<AcceleratorIsland>(
            static_cast<coord::IslandId>(i + 2),
            "accel-" + std::to_string(i)));
    }

    // The fabric: a mesh, as hardware-supported queues would give.
    coord::CoordFabric fabric(simulator, coord::FabricTopology::mesh,
                              10 * sim::usec);
    fabric.attach(x86);
    for (auto &a : accels)
        fabric.attach(*a);

    coord::GlobalController controller;
    controller.registerIsland(x86);
    for (auto &a : accels)
        controller.registerIsland(*a);
    std::printf("platform: %zu islands on a mesh fabric\n",
                fabric.islandCount());

    // Platform-wide power cap: throttle accelerators before compute.
    double sampled = 0.0;
    coord::PowerCapPolicy::Config pc;
    pc.capWatts = 150.0;
    pc.stepDelta = 64.0;
    pc.maxReduction = 320.0;
    coord::PowerCapPolicy policy(pc, [&sampled] { return sampled; });
    policy.attachSender(
        1, [&fabric](const coord::CoordMessage &m) { fabric.send(m); });
    for (std::size_t i = 0; i < accels.size(); ++i) {
        policy.addEntity(
            coord::EntityRef{accels[i]->id(), 1},
            /*priority=*/static_cast<int>(i));
    }
    policy.addEntity(coord::EntityRef{x86.id(), guest_entity},
                     /*priority=*/100); // compute throttles last

    sim::PeriodicEvent power_loop(simulator, 250 * sim::msec, [&] {
        sampled = x86.currentPowerWatts();
        for (auto &a : accels)
            sampled += a->currentPowerWatts();
        policy.onPeriodic(simulator.now());
    });

    simulator.runUntil(5 * sim::sec);
    double total = x86.currentPowerWatts();
    for (auto &a : accels)
        total += a->currentPowerWatts();
    std::printf("after 5 s under a 150 W cap: platform draw %.1f W, "
                "accelerator duties %.2f / %.2f / %.2f\n",
                total, accels[0]->duty, accels[1]->duty,
                accels[2]->duty);
    std::printf("throttle actions %llu, restores %llu, fabric "
                "messages %llu (mean lat %.0f us)\n",
                static_cast<unsigned long long>(policy.throttles()),
                static_cast<unsigned long long>(policy.restores()),
                static_cast<unsigned long long>(
                    fabric.stats().delivered.value()),
                fabric.stats().deliveryLatencyUs.mean());
    std::printf("\nThe same Tune mechanism each island already "
                "implements carries the platform-wide power policy —\n"
                "the generality argument of the paper's conclusion.\n");
    return 0;
}
