# Empty dependencies file for buffer_trigger.
# This may be replaced when dependencies are built.
