file(REMOVE_RECURSE
  "CMakeFiles/buffer_trigger.dir/buffer_trigger.cpp.o"
  "CMakeFiles/buffer_trigger.dir/buffer_trigger.cpp.o.d"
  "buffer_trigger"
  "buffer_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
