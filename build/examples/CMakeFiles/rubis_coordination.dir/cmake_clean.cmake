file(REMOVE_RECURSE
  "CMakeFiles/rubis_coordination.dir/rubis_coordination.cpp.o"
  "CMakeFiles/rubis_coordination.dir/rubis_coordination.cpp.o.d"
  "rubis_coordination"
  "rubis_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubis_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
