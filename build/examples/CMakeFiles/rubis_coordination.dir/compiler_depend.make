# Empty compiler generated dependencies file for rubis_coordination.
# This may be replaced when dependencies are built.
