# Empty compiler generated dependencies file for mplayer_streaming.
# This may be replaced when dependencies are built.
