file(REMOVE_RECURSE
  "CMakeFiles/mplayer_streaming.dir/mplayer_streaming.cpp.o"
  "CMakeFiles/mplayer_streaming.dir/mplayer_streaming.cpp.o.d"
  "mplayer_streaming"
  "mplayer_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mplayer_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
