# Empty dependencies file for multi_island.
# This may be replaced when dependencies are built.
