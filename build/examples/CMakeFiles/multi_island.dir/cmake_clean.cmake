file(REMOVE_RECURSE
  "CMakeFiles/multi_island.dir/multi_island.cpp.o"
  "CMakeFiles/multi_island.dir/multi_island.cpp.o.d"
  "multi_island"
  "multi_island.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_island.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
