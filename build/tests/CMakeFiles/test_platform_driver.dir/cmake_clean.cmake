file(REMOVE_RECURSE
  "CMakeFiles/test_platform_driver.dir/test_platform_driver.cpp.o"
  "CMakeFiles/test_platform_driver.dir/test_platform_driver.cpp.o.d"
  "test_platform_driver"
  "test_platform_driver.pdb"
  "test_platform_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
