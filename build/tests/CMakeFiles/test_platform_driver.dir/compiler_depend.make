# Empty compiler generated dependencies file for test_platform_driver.
# This may be replaced when dependencies are built.
