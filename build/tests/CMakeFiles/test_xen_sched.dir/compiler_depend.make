# Empty compiler generated dependencies file for test_xen_sched.
# This may be replaced when dependencies are built.
