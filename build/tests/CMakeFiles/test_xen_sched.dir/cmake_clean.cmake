file(REMOVE_RECURSE
  "CMakeFiles/test_xen_sched.dir/test_xen_sched.cpp.o"
  "CMakeFiles/test_xen_sched.dir/test_xen_sched.cpp.o.d"
  "test_xen_sched"
  "test_xen_sched.pdb"
  "test_xen_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xen_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
