file(REMOVE_RECURSE
  "CMakeFiles/test_xen_island.dir/test_xen_island.cpp.o"
  "CMakeFiles/test_xen_island.dir/test_xen_island.cpp.o.d"
  "test_xen_island"
  "test_xen_island.pdb"
  "test_xen_island[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xen_island.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
