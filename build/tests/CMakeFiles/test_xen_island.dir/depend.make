# Empty dependencies file for test_xen_island.
# This may be replaced when dependencies are built.
