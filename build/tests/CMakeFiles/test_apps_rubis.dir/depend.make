# Empty dependencies file for test_apps_rubis.
# This may be replaced when dependencies are built.
