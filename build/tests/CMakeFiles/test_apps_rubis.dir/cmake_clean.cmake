file(REMOVE_RECURSE
  "CMakeFiles/test_apps_rubis.dir/test_apps_rubis.cpp.o"
  "CMakeFiles/test_apps_rubis.dir/test_apps_rubis.cpp.o.d"
  "test_apps_rubis"
  "test_apps_rubis.pdb"
  "test_apps_rubis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_rubis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
