file(REMOVE_RECURSE
  "CMakeFiles/test_platform_report.dir/test_platform_report.cpp.o"
  "CMakeFiles/test_platform_report.dir/test_platform_report.cpp.o.d"
  "test_platform_report"
  "test_platform_report.pdb"
  "test_platform_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
