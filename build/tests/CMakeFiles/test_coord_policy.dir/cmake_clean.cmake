file(REMOVE_RECURSE
  "CMakeFiles/test_coord_policy.dir/test_coord_policy.cpp.o"
  "CMakeFiles/test_coord_policy.dir/test_coord_policy.cpp.o.d"
  "test_coord_policy"
  "test_coord_policy.pdb"
  "test_coord_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coord_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
