# Empty compiler generated dependencies file for test_coord_policy.
# This may be replaced when dependencies are built.
