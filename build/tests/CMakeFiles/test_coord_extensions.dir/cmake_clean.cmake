file(REMOVE_RECURSE
  "CMakeFiles/test_coord_extensions.dir/test_coord_extensions.cpp.o"
  "CMakeFiles/test_coord_extensions.dir/test_coord_extensions.cpp.o.d"
  "test_coord_extensions"
  "test_coord_extensions.pdb"
  "test_coord_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coord_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
