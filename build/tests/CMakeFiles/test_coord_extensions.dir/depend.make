# Empty dependencies file for test_coord_extensions.
# This may be replaced when dependencies are built.
