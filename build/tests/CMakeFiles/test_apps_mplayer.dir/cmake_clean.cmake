file(REMOVE_RECURSE
  "CMakeFiles/test_apps_mplayer.dir/test_apps_mplayer.cpp.o"
  "CMakeFiles/test_apps_mplayer.dir/test_apps_mplayer.cpp.o.d"
  "test_apps_mplayer"
  "test_apps_mplayer.pdb"
  "test_apps_mplayer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_mplayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
