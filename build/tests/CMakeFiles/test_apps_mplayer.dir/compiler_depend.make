# Empty compiler generated dependencies file for test_apps_mplayer.
# This may be replaced when dependencies are built.
