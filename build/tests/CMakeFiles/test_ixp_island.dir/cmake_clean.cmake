file(REMOVE_RECURSE
  "CMakeFiles/test_ixp_island.dir/test_ixp_island.cpp.o"
  "CMakeFiles/test_ixp_island.dir/test_ixp_island.cpp.o.d"
  "test_ixp_island"
  "test_ixp_island.pdb"
  "test_ixp_island[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ixp_island.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
