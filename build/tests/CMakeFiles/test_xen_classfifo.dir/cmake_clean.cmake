file(REMOVE_RECURSE
  "CMakeFiles/test_xen_classfifo.dir/test_xen_classfifo.cpp.o"
  "CMakeFiles/test_xen_classfifo.dir/test_xen_classfifo.cpp.o.d"
  "test_xen_classfifo"
  "test_xen_classfifo.pdb"
  "test_xen_classfifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xen_classfifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
