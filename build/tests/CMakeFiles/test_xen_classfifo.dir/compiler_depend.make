# Empty compiler generated dependencies file for test_xen_classfifo.
# This may be replaced when dependencies are built.
