file(REMOVE_RECURSE
  "CMakeFiles/test_platform_testbed.dir/test_platform_testbed.cpp.o"
  "CMakeFiles/test_platform_testbed.dir/test_platform_testbed.cpp.o.d"
  "test_platform_testbed"
  "test_platform_testbed.pdb"
  "test_platform_testbed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
