# Empty compiler generated dependencies file for test_platform_testbed.
# This may be replaced when dependencies are built.
