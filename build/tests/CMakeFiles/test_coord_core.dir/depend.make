# Empty dependencies file for test_coord_core.
# This may be replaced when dependencies are built.
