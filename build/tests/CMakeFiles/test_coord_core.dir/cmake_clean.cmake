file(REMOVE_RECURSE
  "CMakeFiles/test_coord_core.dir/test_coord_core.cpp.o"
  "CMakeFiles/test_coord_core.dir/test_coord_core.cpp.o.d"
  "test_coord_core"
  "test_coord_core.pdb"
  "test_coord_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coord_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
