# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_sim_random[1]_include.cmake")
include("/root/repo/build/tests/test_sim_stats[1]_include.cmake")
include("/root/repo/build/tests/test_net_packet[1]_include.cmake")
include("/root/repo/build/tests/test_interconnect[1]_include.cmake")
include("/root/repo/build/tests/test_coord_core[1]_include.cmake")
include("/root/repo/build/tests/test_coord_policy[1]_include.cmake")
include("/root/repo/build/tests/test_ixp_island[1]_include.cmake")
include("/root/repo/build/tests/test_xen_sched[1]_include.cmake")
include("/root/repo/build/tests/test_xen_island[1]_include.cmake")
include("/root/repo/build/tests/test_apps_rubis[1]_include.cmake")
include("/root/repo/build/tests/test_apps_mplayer[1]_include.cmake")
include("/root/repo/build/tests/test_platform_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_integration_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_property_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_coord_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_platform_driver[1]_include.cmake")
include("/root/repo/build/tests/test_xen_classfifo[1]_include.cmake")
include("/root/repo/build/tests/test_platform_report[1]_include.cmake")
