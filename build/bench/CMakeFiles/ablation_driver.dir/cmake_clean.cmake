file(REMOVE_RECURSE
  "CMakeFiles/ablation_driver.dir/ablation_driver.cpp.o"
  "CMakeFiles/ablation_driver.dir/ablation_driver.cpp.o.d"
  "ablation_driver"
  "ablation_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
