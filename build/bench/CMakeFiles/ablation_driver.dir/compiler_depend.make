# Empty compiler generated dependencies file for ablation_driver.
# This may be replaced when dependencies are built.
