# Empty dependencies file for table1_rubis_response_times.
# This may be replaced when dependencies are built.
