file(REMOVE_RECURSE
  "CMakeFiles/table1_rubis_response_times.dir/table1_rubis_response_times.cpp.o"
  "CMakeFiles/table1_rubis_response_times.dir/table1_rubis_response_times.cpp.o.d"
  "table1_rubis_response_times"
  "table1_rubis_response_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rubis_response_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
