# Empty dependencies file for breakdown_rubis_latency.
# This may be replaced when dependencies are built.
