file(REMOVE_RECURSE
  "CMakeFiles/breakdown_rubis_latency.dir/breakdown_rubis_latency.cpp.o"
  "CMakeFiles/breakdown_rubis_latency.dir/breakdown_rubis_latency.cpp.o.d"
  "breakdown_rubis_latency"
  "breakdown_rubis_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakdown_rubis_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
