# Empty dependencies file for ablation_oscillation.
# This may be replaced when dependencies are built.
