file(REMOVE_RECURSE
  "CMakeFiles/ablation_oscillation.dir/ablation_oscillation.cpp.o"
  "CMakeFiles/ablation_oscillation.dir/ablation_oscillation.cpp.o.d"
  "ablation_oscillation"
  "ablation_oscillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oscillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
