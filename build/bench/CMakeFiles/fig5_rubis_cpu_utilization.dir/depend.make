# Empty dependencies file for fig5_rubis_cpu_utilization.
# This may be replaced when dependencies are built.
