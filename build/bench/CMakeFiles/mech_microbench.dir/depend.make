# Empty dependencies file for mech_microbench.
# This may be replaced when dependencies are built.
