file(REMOVE_RECURSE
  "CMakeFiles/mech_microbench.dir/mech_microbench.cpp.o"
  "CMakeFiles/mech_microbench.dir/mech_microbench.cpp.o.d"
  "mech_microbench"
  "mech_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mech_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
