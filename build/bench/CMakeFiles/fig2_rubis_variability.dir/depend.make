# Empty dependencies file for fig2_rubis_variability.
# This may be replaced when dependencies are built.
