file(REMOVE_RECURSE
  "CMakeFiles/fig2_rubis_variability.dir/fig2_rubis_variability.cpp.o"
  "CMakeFiles/fig2_rubis_variability.dir/fig2_rubis_variability.cpp.o.d"
  "fig2_rubis_variability"
  "fig2_rubis_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rubis_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
