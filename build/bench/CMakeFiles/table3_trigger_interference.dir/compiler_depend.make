# Empty compiler generated dependencies file for table3_trigger_interference.
# This may be replaced when dependencies are built.
