file(REMOVE_RECURSE
  "CMakeFiles/table3_trigger_interference.dir/table3_trigger_interference.cpp.o"
  "CMakeFiles/table3_trigger_interference.dir/table3_trigger_interference.cpp.o.d"
  "table3_trigger_interference"
  "table3_trigger_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_trigger_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
