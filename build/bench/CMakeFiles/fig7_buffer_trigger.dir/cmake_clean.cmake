file(REMOVE_RECURSE
  "CMakeFiles/fig7_buffer_trigger.dir/fig7_buffer_trigger.cpp.o"
  "CMakeFiles/fig7_buffer_trigger.dir/fig7_buffer_trigger.cpp.o.d"
  "fig7_buffer_trigger"
  "fig7_buffer_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_buffer_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
