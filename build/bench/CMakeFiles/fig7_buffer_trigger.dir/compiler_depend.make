# Empty compiler generated dependencies file for fig7_buffer_trigger.
# This may be replaced when dependencies are built.
