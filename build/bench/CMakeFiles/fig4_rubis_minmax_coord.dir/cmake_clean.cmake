file(REMOVE_RECURSE
  "CMakeFiles/fig4_rubis_minmax_coord.dir/fig4_rubis_minmax_coord.cpp.o"
  "CMakeFiles/fig4_rubis_minmax_coord.dir/fig4_rubis_minmax_coord.cpp.o.d"
  "fig4_rubis_minmax_coord"
  "fig4_rubis_minmax_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rubis_minmax_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
