# Empty compiler generated dependencies file for fig4_rubis_minmax_coord.
# This may be replaced when dependencies are built.
