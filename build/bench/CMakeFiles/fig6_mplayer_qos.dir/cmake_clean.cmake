file(REMOVE_RECURSE
  "CMakeFiles/fig6_mplayer_qos.dir/fig6_mplayer_qos.cpp.o"
  "CMakeFiles/fig6_mplayer_qos.dir/fig6_mplayer_qos.cpp.o.d"
  "fig6_mplayer_qos"
  "fig6_mplayer_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mplayer_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
