# Empty dependencies file for fig6_mplayer_qos.
# This may be replaced when dependencies are built.
