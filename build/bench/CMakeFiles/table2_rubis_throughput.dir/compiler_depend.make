# Empty compiler generated dependencies file for table2_rubis_throughput.
# This may be replaced when dependencies are built.
