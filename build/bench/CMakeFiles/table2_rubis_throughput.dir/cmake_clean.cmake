file(REMOVE_RECURSE
  "CMakeFiles/table2_rubis_throughput.dir/table2_rubis_throughput.cpp.o"
  "CMakeFiles/table2_rubis_throughput.dir/table2_rubis_throughput.cpp.o.d"
  "table2_rubis_throughput"
  "table2_rubis_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_rubis_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
