file(REMOVE_RECURSE
  "libcorm_ixp.a"
)
