# Empty dependencies file for corm_ixp.
# This may be replaced when dependencies are built.
