file(REMOVE_RECURSE
  "CMakeFiles/corm_ixp.dir/island.cpp.o"
  "CMakeFiles/corm_ixp.dir/island.cpp.o.d"
  "libcorm_ixp.a"
  "libcorm_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
