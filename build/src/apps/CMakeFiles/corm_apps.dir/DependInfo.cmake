
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/mplayer.cpp" "src/apps/CMakeFiles/corm_apps.dir/mplayer.cpp.o" "gcc" "src/apps/CMakeFiles/corm_apps.dir/mplayer.cpp.o.d"
  "/root/repo/src/apps/rubis.cpp" "src/apps/CMakeFiles/corm_apps.dir/rubis.cpp.o" "gcc" "src/apps/CMakeFiles/corm_apps.dir/rubis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xen/CMakeFiles/corm_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/ixp/CMakeFiles/corm_ixp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
