file(REMOVE_RECURSE
  "CMakeFiles/corm_apps.dir/mplayer.cpp.o"
  "CMakeFiles/corm_apps.dir/mplayer.cpp.o.d"
  "CMakeFiles/corm_apps.dir/rubis.cpp.o"
  "CMakeFiles/corm_apps.dir/rubis.cpp.o.d"
  "libcorm_apps.a"
  "libcorm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
