# Empty compiler generated dependencies file for corm_apps.
# This may be replaced when dependencies are built.
