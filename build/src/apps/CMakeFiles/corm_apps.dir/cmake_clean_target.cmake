file(REMOVE_RECURSE
  "libcorm_apps.a"
)
