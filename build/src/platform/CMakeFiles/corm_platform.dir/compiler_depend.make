# Empty compiler generated dependencies file for corm_platform.
# This may be replaced when dependencies are built.
