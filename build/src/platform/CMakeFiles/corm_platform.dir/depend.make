# Empty dependencies file for corm_platform.
# This may be replaced when dependencies are built.
