file(REMOVE_RECURSE
  "libcorm_platform.a"
)
