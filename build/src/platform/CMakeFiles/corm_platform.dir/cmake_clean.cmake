file(REMOVE_RECURSE
  "CMakeFiles/corm_platform.dir/scenarios.cpp.o"
  "CMakeFiles/corm_platform.dir/scenarios.cpp.o.d"
  "CMakeFiles/corm_platform.dir/testbed.cpp.o"
  "CMakeFiles/corm_platform.dir/testbed.cpp.o.d"
  "libcorm_platform.a"
  "libcorm_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
