file(REMOVE_RECURSE
  "CMakeFiles/corm_xen.dir/sched.cpp.o"
  "CMakeFiles/corm_xen.dir/sched.cpp.o.d"
  "libcorm_xen.a"
  "libcorm_xen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_xen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
