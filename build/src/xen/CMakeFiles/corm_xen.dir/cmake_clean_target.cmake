file(REMOVE_RECURSE
  "libcorm_xen.a"
)
