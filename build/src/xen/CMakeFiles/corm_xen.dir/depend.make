# Empty dependencies file for corm_xen.
# This may be replaced when dependencies are built.
