/**
 * @file
 * The island-to-island coordination channel.
 *
 * In the prototype (§2.3) part of the IXP's PCI configuration space
 * is set up as a message channel between the IXP and the x86 host;
 * this class models that channel as a pair of fixed-latency mailboxes
 * and dispatches decoded messages to the destination island's
 * ResourceIsland interface.
 *
 * The channel supports failure injection (message loss, extra delay)
 * so tests can verify that coordination degrades gracefully — a lost
 * Tune may only cost performance, never correctness.
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "coord/island.hpp"
#include "coord/message.hpp"
#include "interconnect/msgring.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace corm::coord {

/** Per-direction, per-type channel statistics. */
struct ChannelStats
{
    corm::sim::Counter sent;
    corm::sim::Counter delivered;
    corm::sim::Counter dropped;
    corm::sim::Counter tunes;
    corm::sim::Counter triggers;
    corm::sim::Counter registrations;
    /** Send-to-apply latency (microseconds). */
    corm::sim::Summary deliveryLatencyUs;
};

/**
 * Point-to-point coordination channel between two islands. Each
 * endpoint may send(); messages are delivered to the *other* island's
 * ResourceIsland interface after the channel latency.
 */
class CoordChannel
{
  public:
    /**
     * @param simulator Event engine.
     * @param side_a First endpoint (e.g. the IXP island).
     * @param side_b Second endpoint (e.g. the x86 island).
     * @param one_way_latency Mailbox latency per direction.
     * @param channel_name For stats and logs.
     */
    CoordChannel(corm::sim::Simulator &simulator, ResourceIsland &side_a,
                 ResourceIsland &side_b,
                 corm::sim::Tick one_way_latency,
                 std::string channel_name = "coord.pci")
        : sim(simulator), a(side_a), b(side_b),
          aToB(simulator, one_way_latency, channel_name + ".a2b"),
          bToA(simulator, one_way_latency, channel_name + ".b2a"),
          name_(std::move(channel_name)), lossRng(0x10551055ULL)
    {
        aToB.setReceiver([this](std::uint64_t w0, std::uint64_t w1) {
            deliver(b, CoordMessage::decode(w0, w1));
        });
        bToA.setReceiver([this](std::uint64_t w0, std::uint64_t w1) {
            deliver(a, CoordMessage::decode(w0, w1));
        });
    }

    /**
     * Send a message. Routing uses msg.dst: it must equal one of the
     * two endpoint island ids; messages to the sender's own island
     * are delivered immediately (no channel traversal).
     */
    void
    send(CoordMessage msg)
    {
        stats_.sent.add();
        if (lossProb > 0.0 && lossRng.chance(lossProb)) {
            stats_.dropped.add();
            return;
        }
        if (msg.dst == b.id()) {
            rememberSend(msg);
            aToB.send(msg.encodeWord0(), msg.encodeWord1());
        } else if (msg.dst == a.id()) {
            rememberSend(msg);
            bToA.send(msg.encodeWord0(), msg.encodeWord1());
        } else {
            // Unknown destination: count as dropped. A production
            // fabric would route; the two-island prototype cannot.
            stats_.dropped.add();
        }
    }

    /** Set channel one-way latency on both directions (ablations). */
    void
    setLatency(corm::sim::Tick one_way)
    {
        aToB.setLatency(one_way);
        bToA.setLatency(one_way);
    }

    /** Current one-way latency. */
    corm::sim::Tick oneWayLatency() const { return aToB.oneWayLatency(); }

    /** Probability in [0,1] that a sent message is silently lost. */
    void setLossProbability(double p) { lossProb = p; }

    /**
     * Observe delivered acks (registration reliability lives above
     * the channel; see coord/reliable.hpp).
     */
    void
    setAckObserver(std::function<void(const CoordMessage &)> fn)
    {
        ackObserver = std::move(fn);
    }

    /** Channel statistics. */
    const ChannelStats &stats() const { return stats_; }

    /** Channel name. */
    const std::string &name() const { return name_; }

  private:
    void
    rememberSend(const CoordMessage &msg)
    {
        // Track per-message send time via a small rotating slot map
        // keyed by an id derived from the message; precise enough for
        // latency summaries at coordination-message rates.
        pendingSendTime[(pendingHead++) % pendingSendTime.size()] =
            {msg.encodeWord0(), sim.now()};
    }

    void
    deliver(ResourceIsland &dst, const CoordMessage &msg)
    {
        stats_.delivered.add();
        // Look up the matching send time for latency accounting. A
        // used slot is invalidated via its key: no real message
        // encodes to word0 == 0 (the type field is non-zero).
        for (auto &slot : pendingSendTime) {
            if (slot.first == msg.encodeWord0()) {
                stats_.deliveryLatencyUs.record(
                    corm::sim::toMicros(sim.now() - slot.second));
                slot.first = 0;
                break;
            }
        }
        switch (msg.type) {
          case MsgType::tune:
            stats_.tunes.add();
            dst.applyTune(msg.entity, msg.value);
            break;
          case MsgType::trigger:
            stats_.triggers.add();
            dst.applyTrigger(msg.entity);
            break;
          case MsgType::registerEntity: {
            stats_.registrations.add();
            EntityBinding binding;
            binding.ref = EntityRef{msg.src, msg.entity};
            binding.ip = corm::net::IpAddr(
                static_cast<std::uint32_t>(
                    std::bit_cast<std::uint64_t>(msg.value)));
            dst.learnBinding(binding);
            // Registrations are acknowledged so the announcer can
            // retry losses (see coord/reliable.hpp). The ack names
            // the learning island as src and echoes the entity.
            CoordMessage ack;
            ack.type = MsgType::ack;
            ack.src = dst.id();
            ack.dst = msg.src;
            ack.entity = msg.entity;
            send(ack);
            break;
          }
          case MsgType::ack:
            if (ackObserver)
                ackObserver(msg);
            break;
        }
    }

    corm::sim::Simulator &sim;
    ResourceIsland &a;
    ResourceIsland &b;
    corm::interconnect::Mailbox aToB;
    corm::interconnect::Mailbox bToA;
    std::string name_;
    corm::sim::Rng lossRng;
    double lossProb = 0.0;
    std::function<void(const CoordMessage &)> ackObserver;
    ChannelStats stats_;
    std::array<std::pair<std::uint64_t, corm::sim::Tick>, 64>
        pendingSendTime{};
    std::size_t pendingHead = 0;
};

} // namespace corm::coord
