/**
 * @file
 * The island-to-island coordination channel.
 *
 * In the prototype (§2.3) part of the IXP's PCI configuration space
 * is set up as a message channel between the IXP and the x86 host;
 * this class models that channel as a pair of fixed-latency mailboxes
 * and dispatches decoded messages to the destination island's
 * ResourceIsland interface.
 *
 * The channel supports deterministic failure injection (loss,
 * duplication, reordering, latency spikes, burst outages; see
 * interconnect/faults.hpp) so tests and benches can verify that
 * coordination degrades gracefully — a lost Tune may only cost
 * performance, never correctness. Messages carrying a non-zero
 * reliable-delivery sequence number (coord/reliable.hpp) are
 * acknowledged by the receiving endpoint, which also suppresses
 * duplicate deliveries of the same (src, seq) so retransmissions and
 * fault-injected copies apply at most once.
 */

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "coord/island.hpp"
#include "coord/message.hpp"
#include "coord/transport.hpp"
#include "interconnect/faults.hpp"
#include "interconnect/msgring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace corm::coord {

/** Per-direction, per-type channel statistics. */
struct ChannelStats
{
    corm::sim::Counter sent;
    corm::sim::Counter delivered;
    corm::sim::Counter dropped;
    corm::sim::Counter tunes;
    corm::sim::Counter triggers;
    corm::sim::Counter registrations;
    /** Duplicate reliable deliveries suppressed at an endpoint. */
    corm::sim::Counter duplicates;
    /** Deliveries observed out of send order within a direction. */
    corm::sim::Counter reorders;
    /** Retransmissions performed by the reliable layer above. */
    corm::sim::Counter retries;
    /** Send-to-apply latency (microseconds). */
    corm::sim::Summary deliveryLatencyUs;
};

/** Aggregated fault-injection health of a channel. */
struct ChannelHealth
{
    std::uint64_t lost = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t spiked = 0;
    std::uint64_t outageDrops = 0;
    /** Scheduled outage time elapsed so far, microseconds. */
    double outageTimeUs = 0.0;
};

/**
 * Point-to-point coordination channel between two islands. Each
 * endpoint may send(); messages are delivered to the *other* island's
 * ResourceIsland interface after the channel latency.
 */
class CoordChannel : public CoordTransport
{
  public:
    /**
     * @param simulator Event engine.
     * @param side_a First endpoint (e.g. the IXP island).
     * @param side_b Second endpoint (e.g. the x86 island).
     * @param one_way_latency Mailbox latency per direction.
     * @param channel_name For stats and logs.
     */
    CoordChannel(corm::sim::Simulator &simulator, ResourceIsland &side_a,
                 ResourceIsland &side_b,
                 corm::sim::Tick one_way_latency,
                 std::string channel_name = "coord.pci")
        : sim(simulator), a(side_a), b(side_b),
          aToB(simulator, one_way_latency, channel_name + ".a2b"),
          bToA(simulator, one_way_latency, channel_name + ".b2a"),
          name_(std::move(channel_name))
    {
        aToB.setReceiver(
            [this](std::uint64_t w0, std::uint64_t w1, std::uint64_t w2,
                   std::uint64_t tag, std::uint64_t flow) {
                CoordMessage m = CoordMessage::decode(w0, w1, w2);
                m.trace = flow; // re-attach the side-band span id
                deliver(0, b, m, tag);
            });
        bToA.setReceiver(
            [this](std::uint64_t w0, std::uint64_t w1, std::uint64_t w2,
                   std::uint64_t tag, std::uint64_t flow) {
                CoordMessage m = CoordMessage::decode(w0, w1, w2);
                m.trace = flow;
                deliver(1, a, m, tag);
            });
        auto drop = [this](std::uint64_t tag) {
            stats_.dropped.add();
            pendingSendTime.erase(tag);
            if (CORM_TRACE_ACTIVE(rec_)) {
                rec_->instant(fabricTrack(), sim.now(), "hop:drop",
                              "coord");
            }
        };
        aToB.setDropObserver(drop);
        bToA.setDropObserver(drop);
    }

    CoordChannel(const CoordChannel &) = delete;
    CoordChannel &operator=(const CoordChannel &) = delete;

    /**
     * Send a message. Routing uses msg.dst: it must equal one of the
     * two endpoint island ids; messages to an unknown island are
     * counted as dropped (the two-island prototype cannot route).
     */
    void
    send(CoordMessage msg) override
    {
        stats_.sent.add();
        if (msg.dst == b.id()) {
            aToB.send(msg.encodeWord0(), msg.encodeWord1(),
                      msg.encodeWord2(), rememberSend(), msg.trace);
        } else if (msg.dst == a.id()) {
            bToA.send(msg.encodeWord0(), msg.encodeWord1(),
                      msg.encodeWord2(), rememberSend(), msg.trace);
        } else {
            // Unknown destination: count as dropped. A production
            // fabric would route; the two-island prototype cannot.
            stats_.dropped.add();
            log.warn("unroutable %s to island %u (endpoints %u, %u)",
                     msgTypeName(msg.type),
                     static_cast<unsigned>(msg.dst),
                     static_cast<unsigned>(a.id()),
                     static_cast<unsigned>(b.id()));
        }
    }

    /** Set channel one-way latency on both directions (ablations). */
    void
    setLatency(corm::sim::Tick one_way)
    {
        aToB.setLatency(one_way);
        bToA.setLatency(one_way);
    }

    /** Current one-way latency. */
    corm::sim::Tick oneWayLatency() const { return aToB.oneWayLatency(); }

    /**
     * Subject both directions to the weather described by @p params.
     * The channel owns the plan; the same seed replays the same fault
     * sequence. A plan with no enabled faults removes any previous
     * one.
     */
    void
    installFaultPlan(const corm::interconnect::FaultPlanParams &params)
    {
        if (!params.any()) {
            faults.reset();
            aToB.setFaultInjector(nullptr);
            bToA.setFaultInjector(nullptr);
            return;
        }
        faults =
            std::make_unique<corm::interconnect::FaultPlan>(params);
        aToB.setFaultInjector(&faults->aToB());
        bToA.setFaultInjector(&faults->bToA());
    }

    /**
     * Probability in [0,1] that a sent message is silently lost.
     * Sugar for installing a loss-only fault plan with a fixed seed;
     * kept for the simple loss-robustness tests and ablations.
     */
    void
    setLossProbability(double p)
    {
        corm::interconnect::FaultPlanParams params;
        params.seed = 0x10551055ULL;
        params.lossProb = p;
        installFaultPlan(params);
    }

    /** The installed fault plan, or nullptr for a perfect channel. */
    const corm::interconnect::FaultPlan *faultPlan() const
    {
        return faults.get();
    }

    /** Aggregated fault-injection health counters. */
    ChannelHealth
    health() const
    {
        ChannelHealth h;
        if (!faults)
            return h;
        h.lost = faults->lost();
        h.duplicated = faults->duplicated();
        h.reordered = faults->reordered();
        h.spiked = faults->spiked();
        h.outageDrops = faults->outageDrops();
        h.outageTimeUs =
            corm::sim::toMicros(faults->outageTimeUpTo(sim.now()));
        return h;
    }

    /**
     * Observe acks delivered to @p endpoint (one of the two island
     * ids). Observers are per endpoint, so one reliable sender per
     * island can coexist on the same channel without seeing the
     * other's acks. Installing a new observer for the same endpoint
     * replaces the old one.
     */
    void
    setAckObserver(IslandId endpoint,
                   std::function<void(const CoordMessage &)> fn) override
    {
        ackObservers[endpoint] = std::move(fn);
    }

    /**
     * Token-based multi-observer registration (CoordTransport):
     * several reliable senders can share one endpoint without
     * clobbering each other's single setAckObserver slot.
     */
    std::uint64_t
    addAckObserver(IslandId endpoint,
                   std::function<void(const CoordMessage &)> fn) override
    {
        const std::uint64_t token = ++ackToken_;
        ackMulti_[endpoint].push_back({token, std::move(fn)});
        return token;
    }

    void
    removeAckObserver(IslandId endpoint, std::uint64_t token) override
    {
        auto it = ackMulti_.find(endpoint);
        if (it == ackMulti_.end())
            return;
        auto &v = it->second;
        v.erase(std::remove_if(v.begin(), v.end(),
                               [token](const AckEntry &e) {
                                   return e.token == token;
                               }),
                v.end());
        if (v.empty())
            ackMulti_.erase(it);
    }

    /** Record a retransmission performed by the reliable layer. */
    void noteRetransmit() override { stats_.retries.add(); }

    /**
     * Observe lane activity on one direction (0 = a→b, 1 = b→a) —
     * the heartbeat feed for a health monitor's stall watchdog.
     * nullptr-able; replaces any previous observer.
     */
    void
    setActivityObserver(int dir,
                        corm::interconnect::Mailbox::ActivityFn fn)
    {
        (dir == 0 ? aToB : bToA).setActivityObserver(std::move(fn));
    }

    /**
     * Attach a trace recorder (nullptr detaches). The channel emits
     * per-hop transit slices on a fabric track, propagates causal
     * flow spans across deliveries, and installs the delivered
     * message's span id around the destination island's apply
     * dispatch (obs::TraceScope).
     */
    void setTrace(corm::obs::TraceRecorder *recorder) { rec_ = recorder; }

    /**
     * Mirror per-message send-to-apply latency (microseconds) into a
     * registry-owned histogram (nullptr detaches). The Summary in
     * stats() is kept for the text report.
     */
    void setDeliveryHistogram(corm::obs::Histogram *h)
    {
        deliveryHist = h;
    }

    /** Channel statistics. */
    const ChannelStats &stats() const { return stats_; }

    /** Channel name. */
    const std::string &name() const { return name_; }

  private:
    std::uint64_t
    rememberSend()
    {
        // Tag every send with a fresh monotonically increasing
        // sequence so two in-flight identical messages (repeated
        // tunes of the same entity/delta) keep distinct latency
        // records. The tag travels the mailbox as an opaque cookie;
        // drops erase their record, so the map stays bounded by the
        // number of in-flight messages.
        const std::uint64_t tag = ++sendTag;
        pendingSendTime.emplace(tag, sim.now());
        return tag;
    }

    /** True if (src, seq) was recently applied at endpoint @p dir. */
    bool
    seenRecently(int dir, const CoordMessage &msg)
    {
        // 16-bit src and 32-bit seq no longer fit a packed 32-bit
        // key; a uint64 holds (type, src, seq) with room to spare.
        // Callers guarantee seq != 0, so the key never collides with
        // an empty (zero-initialised) window slot.
        const std::uint64_t key =
            (static_cast<std::uint64_t>(msg.type) << 48)
            | (static_cast<std::uint64_t>(msg.src) << 32)
            | static_cast<std::uint64_t>(msg.seq);
        auto &window = seenWindow[dir];
        for (std::uint64_t k : window) {
            if (k == key)
                return true;
        }
        window[seenHead[dir]++ % window.size()] = key;
        return false;
    }

    void
    sendAckFor(ResourceIsland &learner, const CoordMessage &msg)
    {
        CoordMessage ack;
        ack.type = MsgType::ack;
        ack.src = learner.id();
        ack.dst = msg.src;
        ack.entity = msg.entity;
        ack.seq = msg.seq; // echo: the sender matches pending by seq
        ack.trace = msg.trace; // the return leg stays on the span
        send(ack);
    }

    /** Fabric track for per-direction hop slices (lazy). */
    int
    fabricTrack()
    {
        if (fabricTrk < 0)
            fabricTrk = rec_->track("fabric", name_);
        return fabricTrk;
    }

    /**
     * Trace one delivery: transit slice (first copies), duplicate
     * instant, and the message's flow-span hop. Kept out of line
     * ([[gnu::noinline]]) so deliver() — the per-message hot path —
     * does not carry this block's string/argument construction code
     * when tracing is off.
     */
    [[gnu::noinline]] void
    traceDelivery(int dir, const CoordMessage &msg,
                  corm::sim::Tick sendTick, bool firstCopy)
    {
        if (firstCopy) {
            // Transit slice: send time to delivery time.
            rec_->complete(
                fabricTrack(), sendTick, sim.now() - sendTick,
                std::string("hop:") + msgTypeName(msg.type), "coord",
                {{"dir", dir == 0 ? "a2b" : "b2a"},
                 {"entity", static_cast<std::uint64_t>(msg.entity)},
                 {"seq", static_cast<int>(msg.seq)}});
        }
        if (msg.trace == 0)
            return;
        if (!firstCopy) {
            rec_->instant(fabricTrack(), sim.now(),
                          std::string("hop:dup:")
                              + msgTypeName(msg.type),
                          "coord");
        }
        if (msg.type == MsgType::ack) {
            // The ack reaching the original sender is the last hop
            // of a reliable span.
            rec_->flowEnd(fabricTrack(), sim.now(), msg.trace,
                          "coord.span", "coord");
        } else {
            rec_->flowStep(fabricTrack(), sim.now(), msg.trace,
                           "coord.span", "coord");
        }
    }

    void
    deliver(int dir, ResourceIsland &dst, const CoordMessage &msg,
            std::uint64_t tag)
    {
        stats_.delivered.add();
        // Latency accounting by send tag. A duplicated delivery's
        // second copy misses the (erased) record and is not counted.
        bool firstCopy = false;
        corm::sim::Tick sendTick = 0;
        if (auto it = pendingSendTime.find(tag);
            it != pendingSendTime.end()) {
            firstCopy = true;
            sendTick = it->second;
            const double us =
                corm::sim::toMicros(sim.now() - sendTick);
            stats_.deliveryLatencyUs.record(us);
            if (deliveryHist)
                deliveryHist->record(us);
            pendingSendTime.erase(it);
        }
        if (CORM_TRACE_ACTIVE(rec_))
            traceDelivery(dir, msg, sendTick, firstCopy);
        // Observed reordering: tags are monotone per direction, so a
        // delivery below the direction's high-water mark overtook.
        if (tag > maxTagDelivered[dir]) {
            maxTagDelivered[dir] = tag;
        } else if (tag != 0) {
            stats_.reorders.add();
        }
        // Idempotent duplicate suppression for reliable messages:
        // retransmissions and fault-injected copies apply at most
        // once, but are re-acked so a sender whose ack was lost
        // stops retrying.
        if (msg.seq != 0 && msg.type != MsgType::ack
            && seenRecently(dir, msg)) {
            stats_.duplicates.add();
            sendAckFor(dst, msg);
            return;
        }
        // The destination island's effect events (weight change,
        // boost, thread-share change) join the span via the installed
        // flow context; a fire-and-forget message's apply is the
        // span's last leg (a reliable one still has the ack return).
        corm::obs::TraceScope span(rec_, msg.trace, msg.seq == 0);
        switch (msg.type) {
          case MsgType::tune:
            stats_.tunes.add();
            dst.applyTune(msg.entity, msg.value);
            if (msg.seq != 0)
                sendAckFor(dst, msg);
            break;
          case MsgType::trigger:
            stats_.triggers.add();
            dst.applyTrigger(msg.entity);
            if (msg.seq != 0)
                sendAckFor(dst, msg);
            break;
          case MsgType::registerEntity: {
            stats_.registrations.add();
            EntityBinding binding;
            binding.ref = EntityRef{msg.src, msg.entity};
            binding.ip = corm::net::IpAddr(
                static_cast<std::uint32_t>(
                    std::bit_cast<std::uint64_t>(msg.value)));
            dst.learnBinding(binding);
            // Registrations are acknowledged even without a seq so
            // the announcer can retry losses (see coord/reliable.hpp).
            sendAckFor(dst, msg);
            break;
          }
          case MsgType::ack: {
            auto it = ackObservers.find(msg.dst);
            if (it != ackObservers.end() && it->second)
                it->second(msg);
            dispatchAckMulti(msg);
            break;
          }
        }
    }

    /**
     * Dispatch an ack to the token observers at its endpoint. A
     * callback may register or unregister observers (even destroy
     * its own sender), so iterate a snapshot and re-check each
     * token's liveness before calling.
     */
    void
    dispatchAckMulti(const CoordMessage &msg)
    {
        auto mit = ackMulti_.find(msg.dst);
        if (mit == ackMulti_.end())
            return;
        const std::vector<AckEntry> snap = mit->second;
        for (const AckEntry &e : snap) {
            auto again = ackMulti_.find(msg.dst);
            if (again == ackMulti_.end())
                break;
            bool alive = false;
            for (const AckEntry &cur : again->second) {
                if (cur.token == e.token) {
                    alive = true;
                    break;
                }
            }
            if (alive && e.fn)
                e.fn(msg);
        }
    }

    corm::sim::Simulator &sim;
    ResourceIsland &a;
    ResourceIsland &b;
    corm::interconnect::Mailbox aToB;
    corm::interconnect::Mailbox bToA;
    std::string name_;
    std::unique_ptr<corm::interconnect::FaultPlan> faults;
    std::map<IslandId, std::function<void(const CoordMessage &)>>
        ackObservers;
    /** One token-registered ack observer (see addAckObserver). */
    struct AckEntry
    {
        std::uint64_t token = 0;
        std::function<void(const CoordMessage &)> fn;
    };
    std::map<IslandId, std::vector<AckEntry>> ackMulti_;
    std::uint64_t ackToken_ = 0;
    ChannelStats stats_;
    corm::obs::TraceRecorder *rec_ = nullptr;
    corm::obs::Histogram *deliveryHist = nullptr;
    int fabricTrk = -1;
    corm::sim::Logger log{"coord.channel"};
    std::map<std::uint64_t, corm::sim::Tick> pendingSendTime;
    std::uint64_t sendTag = 0;
    std::array<std::uint64_t, 2> maxTagDelivered{};
    /** Per-endpoint window of recently applied (type, src, seq) keys. */
    std::array<std::array<std::uint64_t, 64>, 2> seenWindow{};
    std::array<std::size_t, 2> seenHead{};
};

} // namespace corm::coord
