/**
 * @file
 * The coordination transport interface.
 *
 * The reliable-delivery layer (coord/reliable.hpp) was written
 * against the two-island CoordChannel; the N-island CoordFabric
 * needs the same ack/retry machinery. Both expose the same small
 * surface — send a message toward msg.dst, observe acks arriving at
 * an endpoint, account retransmissions — so ReliableSender and
 * ReliableAnnouncer are written against this interface and work
 * unchanged over either transport.
 */

#pragma once

#include <functional>

#include "coord/message.hpp"

namespace corm::coord {

/**
 * Abstract message transport between islands. Implementations route
 * by msg.dst, acknowledge sequenced messages at the receiving
 * endpoint, and deliver acks to the per-endpoint observers.
 */
class CoordTransport
{
  public:
    virtual ~CoordTransport() = default;

    /** Send @p msg toward msg.dst. */
    virtual void send(CoordMessage msg) = 0;

    /**
     * Observe acks delivered to @p endpoint. Installing a new
     * observer for the same endpoint replaces the old one; a null
     * function uninstalls it.
     */
    virtual void
    setAckObserver(IslandId endpoint,
                   std::function<void(const CoordMessage &)> fn) = 0;

    /** Record a retransmission performed by the reliable layer. */
    virtual void noteRetransmit() = 0;
};

} // namespace corm::coord
