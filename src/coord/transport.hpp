/**
 * @file
 * The coordination transport interface.
 *
 * The reliable-delivery layer (coord/reliable.hpp) was written
 * against the two-island CoordChannel; the N-island CoordFabric
 * needs the same ack/retry machinery. Both expose the same small
 * surface — send a message toward msg.dst, observe acks arriving at
 * an endpoint, account retransmissions — so ReliableSender and
 * ReliableAnnouncer are written against this interface and work
 * unchanged over either transport.
 */

#pragma once

#include <functional>

#include "coord/message.hpp"

namespace corm::coord {

/**
 * Abstract message transport between islands. Implementations route
 * by msg.dst, acknowledge sequenced messages at the receiving
 * endpoint, and deliver acks to the per-endpoint observers.
 */
class CoordTransport
{
  public:
    virtual ~CoordTransport() = default;

    /** Send @p msg toward msg.dst. */
    virtual void send(CoordMessage msg) = 0;

    /**
     * Observe acks delivered to @p endpoint. Installing a new
     * observer for the same endpoint replaces the old one; a null
     * function uninstalls it.
     */
    virtual void
    setAckObserver(IslandId endpoint,
                   std::function<void(const CoordMessage &)> fn) = 0;

    /**
     * Token-based multi-observer registration: unlike
     * setAckObserver's single slot, several observers can share one
     * endpoint (an announcer that lives the whole run plus a trigger
     * sender, say — both homed at the root). The returned token
     * unregisters exactly this observer via removeAckObserver.
     *
     * The default maps onto the single setAckObserver slot, so
     * transports (and test fakes) that predate the token API keep
     * working as long as only one observer per endpoint is live —
     * the pre-churn status quo. CoordFabric and CoordChannel
     * override with real multi-observer registries.
     */
    virtual std::uint64_t
    addAckObserver(IslandId endpoint,
                   std::function<void(const CoordMessage &)> fn)
    {
        setAckObserver(endpoint, std::move(fn));
        return 0;
    }

    /** Unregister the observer @p token named at @p endpoint. */
    virtual void
    removeAckObserver(IslandId endpoint, std::uint64_t /*token*/)
    {
        setAckObserver(endpoint, nullptr);
    }

    /** Record a retransmission performed by the reliable layer. */
    virtual void noteRetransmit() = 0;
};

} // namespace corm::coord
