/**
 * @file
 * Reliable delivery over the coordination channel.
 *
 * Tune and Trigger are fire-and-forget by design — a lost tune only
 * costs a little performance. Some coordination traffic is different:
 * if the IXP never learns a guest's binding, every packet for that
 * guest is unclassifiable forever. The registration leg of the §2.3
 * protocol therefore needs acknowledgement and retry.
 *
 * ReliableSender is the general layer any policy can opt into: it
 * stamps messages with a non-zero sequence number (the channel acks
 * sequenced messages and suppresses duplicate deliveries of the same
 * (src, seq) at the receiving endpoint), retries unacked messages
 * with exponential backoff up to a cap, and gives up after a bounded
 * number of attempts. One sender serves one source endpoint; acks are
 * observed through the channel's per-endpoint ack observer, so a
 * sender per island can coexist on the same channel.
 *
 * ReliableAnnouncer keeps the registration-specific behaviour on top:
 * one logical slot per (island, entity), where a re-announcement
 * supersedes the pending one (the newest binding wins).
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <utility>

#include "coord/message.hpp"
#include "coord/transport.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace corm::coord {

/**
 * Sequence-numbered ack/retry transport for one source endpoint.
 */
class ReliableSender
{
  public:
    struct Params
    {
        /** First resend if unacked after this long. */
        corm::sim::Tick retryTimeout = 5 * corm::sim::msec;
        /** Multiplier applied to the timeout after every attempt. */
        double backoffFactor = 2.0;
        /** Upper bound of the backed-off timeout. */
        corm::sim::Tick backoffCap = 40 * corm::sim::msec;
        /** Total attempts before giving up (>= 1). */
        int maxAttempts = 8;
        /**
         * Test hook: usable sequence values cycle in [1, seqSpace).
         * 0 means the full 32-bit space. Shrinking it (>= 2) keeps
         * the exhaustion-reclaim path reachable in tests now that
         * the real space is practically inexhaustible.
         */
        SeqNum seqSpace = 0;
    };

    /** Final fate of one reliable send. */
    enum class Outcome { acked, abandoned, superseded };

    /** Completion callback: outcome plus the message it concerns. */
    using OutcomeFn =
        std::function<void(Outcome, const CoordMessage &)>;

    /**
     * @param simulator Event engine.
     * @param channel Transport the messages travel (channel or
     *                fabric; see coord/transport.hpp).
     * @param self Source endpoint island; acks to it are observed.
     * @param params Retry parameters.
     */
    ReliableSender(corm::sim::Simulator &simulator,
                   CoordTransport &channel, IslandId self)
        : ReliableSender(simulator, channel, self, Params{})
    {}

    ReliableSender(corm::sim::Simulator &simulator,
                   CoordTransport &channel, IslandId self, Params params)
        : sim(simulator), chan(channel), selfId(self), cfg(params)
    {
        // Token registration: several senders (and an announcer) can
        // share one endpoint. Transports without the token API fall
        // back to the single setAckObserver slot (see transport.hpp).
        ackToken = chan.addAckObserver(
            selfId, [this](const CoordMessage &m) { onAck(m); });
    }

    ~ReliableSender()
    {
        for (auto &[seq, st] : pending)
            sim.cancel(st.retryEvent);
        chan.removeAckObserver(selfId, ackToken);
    }

    ReliableSender(const ReliableSender &) = delete;
    ReliableSender &operator=(const ReliableSender &) = delete;

    /**
     * Send @p m reliably: stamps a fresh sequence number, retries
     * until acked or out of attempts. @p m.src should equal the
     * sender's endpoint (acks route back to msg.src).
     *
     * @return The sequence number assigned (usable with cancel()).
     */
    SeqNum
    send(CoordMessage m, OutcomeFn done = {})
    {
        const SeqNum seq = allocSeq();
        m.seq = seq;
        Pending &st = pending[seq];
        st.msg = m;
        st.attempts = 0;
        st.timeout = cfg.retryTimeout;
        st.allocIndex = allocCounter++;
        st.done = std::move(done);
        transmit(seq);
        return seq;
    }

    /**
     * Withdraw a pending send (a newer message supersedes it). Safe
     * to call with a seq that already completed.
     */
    void
    cancel(SeqNum seq)
    {
        auto it = pending.find(seq);
        if (it == pending.end())
            return;
        finish(it, Outcome::superseded);
    }

    /**
     * Abandon every pending send addressed to @p dst — the departed-
     * destination path: when an island leaves or crashes the retry
     * timers toward it must be cancelled through finish() with a
     * proper abandon note, not left firing into an unroutable lane
     * inflating the transport's drop counters. Returns how many
     * sends were abandoned.
     */
    std::size_t
    abandonDestination(IslandId dst)
    {
        std::size_t n = 0;
        for (auto it = pending.begin(); it != pending.end();) {
            if (it->second.msg.dst != dst) {
                ++it;
                continue;
            }
            abandonedCount.add();
            logger.debug("abandoning %s seq %u: island %u departed",
                         msgTypeName(it->second.msg.type),
                         static_cast<unsigned>(it->first),
                         static_cast<unsigned>(dst));
            if (CORM_TRACE_ACTIVE(rec_)
                && it->second.msg.trace != 0) {
                rec_->instant(myTrack(), sim.now(), "abandon", "coord",
                              {{"seq", static_cast<int>(it->first)},
                               {"departed", 1}});
                rec_->flowEnd(myTrack(), sim.now(),
                              it->second.msg.trace, "coord.span",
                              "coord");
            }
            if (onAbandon)
                onAbandon(it->second.msg);
            // finish() erases the entry; restart after the mutation
            // (done callbacks may themselves touch `pending`).
            const SeqNum seq = it->first;
            finish(it, Outcome::abandoned);
            it = pending.upper_bound(seq);
            ++n;
        }
        return n;
    }

    /** Sends not yet acked, abandoned, or cancelled. */
    std::size_t pendingCount() const { return pending.size(); }

    /** Sends acknowledged. */
    std::uint64_t acked() const { return ackedCount.value(); }

    /** Retransmissions performed. */
    std::uint64_t retries() const { return retryCount.value(); }

    /** Sends abandoned after maxAttempts. */
    std::uint64_t abandoned() const { return abandonedCount.value(); }

    /** Acks that arrived after their send completed (e.g. gave up). */
    std::uint64_t lateAcks() const { return lateAckCount.value(); }

    /** Endpoint this sender transmits from. */
    IslandId endpoint() const { return selfId; }

    /**
     * Attach a trace recorder (nullptr detaches): retransmissions
     * and abandonments become instants on a per-endpoint "coord"
     * track, stepping the message's causal span so retried legs stay
     * on one chain.
     */
    void setTrace(corm::obs::TraceRecorder *recorder) { rec_ = recorder; }

    /**
     * Observer of abandoned sends (for a health monitor): invoked
     * with a short description when a message runs out of attempts.
     * nullptr-able; replaces any previous observer.
     */
    using AbandonFn = std::function<void(const CoordMessage &)>;
    void setAbandonObserver(AbandonFn fn)
    {
        onAbandon = std::move(fn);
    }

  private:
    struct Pending
    {
        CoordMessage msg;
        int attempts = 0;
        corm::sim::Tick timeout = 0;
        corm::sim::EventId retryEvent = corm::sim::invalidEventId;
        /** Monotonic allocation order, for oldest-first reclaim. */
        std::uint64_t allocIndex = 0;
        OutcomeFn done;
    };

    SeqNum
    allocSeq()
    {
        // Usable values cycle in [1, space); 0 stays the
        // fire-and-forget marker. The scan skips seqs still in
        // flight and visits at most pending.size() + 1 values, so it
        // terminates whenever at least one value is free.
        const std::uint64_t space = cfg.seqSpace
            ? static_cast<std::uint64_t>(cfg.seqSpace)
            : (std::uint64_t{1} << 32);
        if (static_cast<std::uint64_t>(pending.size()) + 1 < space) {
            for (;;) {
                nextSeq = static_cast<SeqNum>(
                    (static_cast<std::uint64_t>(nextSeq) + 1) % space);
                if (nextSeq == 0)
                    continue;
                if (!pending.count(nextSeq))
                    return nextSeq;
            }
        }
        // Every usable seq is in flight — only reachable with a
        // shrunken test seq space or a catastrophically dead channel.
        // Reclaim the OLDEST in-flight send as a proper Abandoned
        // completion through finish(): its retry timer is cancelled,
        // the abandon observer fires, and the accounting stays
        // consistent (no silently orphaned Pending).
        auto oldest = pending.begin();
        for (auto it = std::next(pending.begin()); it != pending.end();
             ++it)
            if (it->second.allocIndex < oldest->second.allocIndex)
                oldest = it;
        const SeqNum seq = oldest->first;
        logger.warn("sequence space exhausted at endpoint %u; "
                    "abandoning oldest in-flight seq %u",
                    static_cast<unsigned>(selfId),
                    static_cast<unsigned>(seq));
        abandonedCount.add();
        if (CORM_TRACE_ACTIVE(rec_) && oldest->second.msg.trace != 0) {
            rec_->instant(myTrack(), sim.now(), "abandon", "coord",
                          {{"seq", static_cast<int>(seq)},
                           {"exhausted", 1}});
            rec_->flowEnd(myTrack(), sim.now(), oldest->second.msg.trace,
                          "coord.span", "coord");
        }
        if (onAbandon)
            onAbandon(oldest->second.msg);
        finish(oldest, Outcome::abandoned);
        return seq;
    }

    void
    finish(std::map<SeqNum, Pending>::iterator it, Outcome o)
    {
        sim.cancel(it->second.retryEvent);
        OutcomeFn done = std::move(it->second.done);
        const CoordMessage msg = it->second.msg;
        pending.erase(it);
        if (done)
            done(o, msg);
    }

    void
    transmit(SeqNum seq)
    {
        auto it = pending.find(seq);
        if (it == pending.end())
            return;
        Pending &st = it->second;
        if (st.attempts >= cfg.maxAttempts) {
            abandonedCount.add();
            logger.debug("abandoning %s seq %u to island %u after %d "
                         "attempts",
                         msgTypeName(st.msg.type),
                         static_cast<unsigned>(seq),
                         static_cast<unsigned>(st.msg.dst),
                         st.attempts);
            if (CORM_TRACE_ACTIVE(rec_) && st.msg.trace != 0) {
                rec_->instant(myTrack(), sim.now(), "abandon", "coord",
                              {{"seq", static_cast<int>(seq)},
                               {"attempts", st.attempts}});
                rec_->flowEnd(myTrack(), sim.now(), st.msg.trace,
                              "coord.span", "coord");
            }
            if (onAbandon)
                onAbandon(st.msg);
            finish(it, Outcome::abandoned);
            return;
        }
        ++st.attempts;
        if (st.attempts > 1) {
            retryCount.add();
            chan.noteRetransmit();
            if (CORM_TRACE_ACTIVE(rec_) && st.msg.trace != 0) {
                rec_->instant(
                    myTrack(), sim.now(),
                    std::string("retry:") + msgTypeName(st.msg.type),
                    "coord",
                    {{"seq", static_cast<int>(seq)},
                     {"attempt", st.attempts}});
                rec_->flowStep(myTrack(), sim.now(), st.msg.trace,
                               "coord.span", "coord");
            }
        }
        chan.send(st.msg);
        st.retryEvent =
            sim.schedule(st.timeout, [this, seq] { transmit(seq); });
        const double next = static_cast<double>(st.timeout)
            * (cfg.backoffFactor > 1.0 ? cfg.backoffFactor : 1.0);
        st.timeout = std::min(
            cfg.backoffCap,
            static_cast<corm::sim::Tick>(next));
    }

    void
    onAck(const CoordMessage &m)
    {
        if (m.seq == 0)
            return; // legacy unsequenced ack; nothing to match
        auto it = pending.find(m.seq);
        if (it == pending.end()) {
            lateAckCount.add();
            return;
        }
        ackedCount.add();
        finish(it, Outcome::acked);
    }

    /** Per-endpoint reliable-layer track (lazy). */
    int
    myTrack()
    {
        if (trk < 0)
            trk = rec_->track(
                "coord", "reliable@" + std::to_string(selfId));
        return trk;
    }

    corm::sim::Simulator &sim;
    CoordTransport &chan;
    IslandId selfId;
    std::uint64_t ackToken = 0;
    Params cfg;
    corm::obs::TraceRecorder *rec_ = nullptr;
    AbandonFn onAbandon;
    int trk = -1;
    corm::sim::Logger logger{"coord.reliable"};
    std::map<SeqNum, Pending> pending;
    SeqNum nextSeq = 0;
    std::uint64_t allocCounter = 0;
    corm::sim::Counter ackedCount;
    corm::sim::Counter retryCount;
    corm::sim::Counter abandonedCount;
    corm::sim::Counter lateAckCount;
};

/**
 * Retries registration announcements until acknowledged.
 *
 * Usage: install as (part of) the GlobalController's announce
 * transport. announce() sends the registration through a
 * ReliableSender; a re-announcement of the same (island, entity)
 * supersedes the pending one so the newest binding wins.
 *
 * Registration bring-up predates any traffic, so the default retry
 * policy is a constant aggressive timeout (backoffFactor 1); set
 * backoffFactor > 1 for exponential backoff.
 */
class ReliableAnnouncer
{
  public:
    struct Params
    {
        /** Resend if unacked after this long. */
        corm::sim::Tick retryTimeout = 5 * corm::sim::msec;
        /** Total attempts before giving up (>= 1). */
        int maxAttempts = 8;
        /** Timeout multiplier per attempt (1 = constant). */
        double backoffFactor = 1.0;
        /** Upper bound of the backed-off timeout. */
        corm::sim::Tick backoffCap = 40 * corm::sim::msec;
    };

    /**
     * @param simulator Event engine.
     * @param channel Transport the announcements travel.
     * @param params Retry parameters.
     */
    ReliableAnnouncer(corm::sim::Simulator &simulator,
                      CoordTransport &channel)
        : ReliableAnnouncer(simulator, channel, Params{})
    {}

    ReliableAnnouncer(corm::sim::Simulator &simulator,
                      CoordTransport &channel, Params params)
        : sim(simulator), chan(channel), cfg(params)
    {}

    ReliableAnnouncer(const ReliableAnnouncer &) = delete;
    ReliableAnnouncer &operator=(const ReliableAnnouncer &) = delete;

    /**
     * Announce @p binding to the island @p to over the channel,
     * retrying until acknowledged. All announcements of one
     * announcer must originate from the same source island
     * (binding.ref.island); the first call pins it.
     */
    void
    announce(IslandId to, const EntityBinding &binding)
    {
        CoordMessage m;
        m.type = MsgType::registerEntity;
        m.src = binding.ref.island;
        m.dst = to;
        m.entity = binding.ref.entity;
        m.value = std::bit_cast<double>(
            static_cast<std::uint64_t>(binding.ip.v));

        if (!sender) {
            ReliableSender::Params sp;
            sp.retryTimeout = cfg.retryTimeout;
            sp.maxAttempts = cfg.maxAttempts;
            sp.backoffFactor = cfg.backoffFactor;
            sp.backoffCap = cfg.backoffCap;
            sender = std::make_unique<ReliableSender>(
                sim, chan, binding.ref.island, sp);
            sender->setTrace(rec_);
            sender->setAbandonObserver(onAbandon);
        }

        const std::uint64_t k = key(to, binding.ref.entity);
        if (auto it = slots.find(k); it != slots.end())
            sender->cancel(it->second); // re-announcement supersedes
        slots[k] = sender->send(
            m, [this](ReliableSender::Outcome o, const CoordMessage &msg) {
                if (o == ReliableSender::Outcome::superseded)
                    return; // announce() is installing the new seq
                slots.erase(key(msg.dst, msg.entity));
            });
    }

    /**
     * Abandon pending announcements to a departed island; their
     * slots clear through the completion callback, so a later
     * re-join announces fresh. Returns how many were abandoned.
     */
    std::size_t
    abandonDestination(IslandId to)
    {
        return sender ? sender->abandonDestination(to) : 0;
    }

    /** Announcements not yet acknowledged. */
    std::size_t
    pendingCount() const
    {
        return sender ? sender->pendingCount() : 0;
    }

    /** Announcements acknowledged. */
    std::uint64_t acked() const { return sender ? sender->acked() : 0; }

    /** Retransmissions performed. */
    std::uint64_t
    retries() const
    {
        return sender ? sender->retries() : 0;
    }

    /** Announcements abandoned after maxAttempts. */
    std::uint64_t
    abandoned() const
    {
        return sender ? sender->abandoned() : 0;
    }

    /** Acks that arrived after their announcement gave up. */
    std::uint64_t
    lateAcks() const
    {
        return sender ? sender->lateAcks() : 0;
    }

    /** Attach a trace recorder to the underlying sender. */
    void
    setTrace(corm::obs::TraceRecorder *recorder)
    {
        rec_ = recorder;
        if (sender)
            sender->setTrace(recorder);
    }

    /** Observe abandoned announcements (forwarded to the sender). */
    void
    setAbandonObserver(ReliableSender::AbandonFn fn)
    {
        onAbandon = std::move(fn);
        if (sender)
            sender->setAbandonObserver(onAbandon);
    }

  private:
    static std::uint64_t
    key(IslandId to, EntityId entity)
    {
        return (static_cast<std::uint64_t>(to) << 32) | entity;
    }

    corm::sim::Simulator &sim;
    CoordTransport &chan;
    Params cfg;
    corm::obs::TraceRecorder *rec_ = nullptr;
    ReliableSender::AbandonFn onAbandon;
    std::unique_ptr<ReliableSender> sender;
    /** Logical (island, entity) slot -> in-flight sequence number. */
    std::map<std::uint64_t, SeqNum> slots;
};

} // namespace corm::coord
