/**
 * @file
 * Reliable entity announcement over the coordination channel.
 *
 * Tune and Trigger are fire-and-forget by design — a lost tune only
 * costs a little performance. Registration is different: if the IXP
 * never learns a guest's binding, every packet for that guest is
 * unclassifiable forever. The registration leg of the §2.3 protocol
 * therefore needs acknowledgement and retry, which is what the
 * unused-looking `MsgType::ack` exists for: the receiving island's
 * channel endpoint acks each registration, and the announcer retries
 * until acked or out of attempts.
 */

#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "coord/channel.hpp"
#include "coord/message.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace corm::coord {

/**
 * Retries registration announcements until acknowledged.
 *
 * Usage: install as (part of) the GlobalController's announce
 * transport. announce() sends the registration and arms a retry
 * timer; the CoordChannel acks registrations on delivery, and the
 * announcer observes acks through the channel's ack observer hook.
 */
class ReliableAnnouncer
{
  public:
    struct Params
    {
        /** Resend if unacked after this long. */
        corm::sim::Tick retryTimeout = 5 * corm::sim::msec;
        /** Total attempts before giving up (>= 1). */
        int maxAttempts = 8;
    };

    /**
     * @param simulator Event engine.
     * @param channel Channel the announcements travel.
     * @param params Retry parameters.
     */
    ReliableAnnouncer(corm::sim::Simulator &simulator,
                      CoordChannel &channel)
        : ReliableAnnouncer(simulator, channel, Params{})
    {}

    ReliableAnnouncer(corm::sim::Simulator &simulator,
                      CoordChannel &channel, Params params)
        : sim(simulator), chan(channel), cfg(params)
    {
        chan.setAckObserver(
            [this](const CoordMessage &m) { onAck(m); });
    }

    ~ReliableAnnouncer()
    {
        for (auto &[key, st] : pending)
            sim.cancel(st.retryEvent);
    }

    ReliableAnnouncer(const ReliableAnnouncer &) = delete;
    ReliableAnnouncer &operator=(const ReliableAnnouncer &) = delete;

    /**
     * Announce @p binding to the island @p to over the channel,
     * retrying until acknowledged.
     */
    void
    announce(IslandId to, const EntityBinding &binding)
    {
        CoordMessage m;
        m.type = MsgType::registerEntity;
        m.src = binding.ref.island;
        m.dst = to;
        m.entity = binding.ref.entity;
        m.value = std::bit_cast<double>(
            static_cast<std::uint64_t>(binding.ip.v));

        auto &st = pending[key(to, binding.ref.entity)];
        sim.cancel(st.retryEvent); // re-announcement supersedes
        st.msg = m;
        st.attempts = 0;
        transmit(key(to, binding.ref.entity));
    }

    /** Announcements not yet acknowledged. */
    std::size_t pendingCount() const { return pending.size(); }

    /** Announcements acknowledged. */
    std::uint64_t acked() const { return ackedCount.value(); }

    /** Retransmissions performed. */
    std::uint64_t retries() const { return retryCount.value(); }

    /** Announcements abandoned after maxAttempts. */
    std::uint64_t abandoned() const { return abandonedCount.value(); }

  private:
    struct Pending
    {
        CoordMessage msg;
        int attempts = 0;
        corm::sim::EventId retryEvent = corm::sim::invalidEventId;
    };

    static std::uint64_t
    key(IslandId to, EntityId entity)
    {
        return (static_cast<std::uint64_t>(to) << 32) | entity;
    }

    void
    transmit(std::uint64_t k)
    {
        auto it = pending.find(k);
        if (it == pending.end())
            return;
        Pending &st = it->second;
        if (st.attempts >= cfg.maxAttempts) {
            abandonedCount.add();
            pending.erase(it);
            return;
        }
        ++st.attempts;
        if (st.attempts > 1)
            retryCount.add();
        chan.send(st.msg);
        st.retryEvent =
            sim.schedule(cfg.retryTimeout, [this, k] { transmit(k); });
    }

    void
    onAck(const CoordMessage &m)
    {
        // The ack's src is the island that learned the binding.
        auto it = pending.find(key(m.src, m.entity));
        if (it == pending.end())
            return;
        sim.cancel(it->second.retryEvent);
        pending.erase(it);
        ackedCount.add();
    }

    corm::sim::Simulator &sim;
    CoordChannel &chan;
    Params cfg;
    std::map<std::uint64_t, Pending> pending;
    corm::sim::Counter ackedCount;
    corm::sim::Counter retryCount;
    corm::sim::Counter abandonedCount;
};

} // namespace corm::coord
