/**
 * @file
 * The global controller and platform entity directory.
 *
 * Per §2.3 of the paper: "At system initialization time, all
 * scheduling islands register with a global controller (the first
 * privileged domain to boot up and have complete knowledge of the
 * system platform — in our prototype, a part of Xen Dom0). When guest
 * VMs containing application components are deployed across the
 * platform's scheduling islands, they register with Dom0."
 *
 * The controller keeps the authoritative registry of islands and
 * entity bindings and announces each binding to every other island,
 * which is how the IXP learns which destination IP belongs to which
 * x86 VM before its classifier can steer coordination.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "coord/island.hpp"
#include "coord/types.hpp"

namespace corm::coord {

/**
 * Global registry of islands and entities. The controller itself is
 * hosted on one island (Dom0 on the x86 island in the prototype);
 * announcements to remote islands travel a caller-provided transport
 * so their cost is borne by the coordination channel model.
 */
class GlobalController
{
  public:
    /**
     * Transport used to announce a binding to a remote island.
     * Defaults to direct delivery (zero cost) until the platform
     * wires the coordination channel in.
     */
    using AnnounceFn =
        std::function<void(ResourceIsland &to, const EntityBinding &)>;

    GlobalController()
    {
        announce = [](ResourceIsland &to, const EntityBinding &b) {
            to.learnBinding(b);
        };
    }

    /** Install the announcement transport (e.g. channel-mediated). */
    void setAnnounceTransport(AnnounceFn fn) { announce = std::move(fn); }

    /**
     * Register an island. Id must be unique; re-registration of the
     * same object is idempotent.
     * @return false if a *different* island already owns the id.
     */
    bool
    registerIsland(ResourceIsland &island)
    {
        auto [it, inserted] = islands.emplace(island.id(), &island);
        if (!inserted && it->second != &island)
            return false;
        return true;
    }

    /**
     * Register an entity binding and announce it to all islands other
     * than its manager.
     * @return false if the binding's island is unknown.
     */
    bool
    registerEntity(const EntityBinding &binding)
    {
        if (islands.find(binding.ref.island) == islands.end())
            return false;
        bindings[key(binding.ref)] = binding;
        for (auto &[id, island] : islands) {
            if (id != binding.ref.island)
                announce(*island, binding);
        }
        return true;
    }

    /** Look up an island by id (null if unknown). */
    ResourceIsland *
    island(IslandId id) const
    {
        auto it = islands.find(id);
        return it == islands.end() ? nullptr : it->second;
    }

    /** Look up a binding by entity reference (null if unknown). */
    const EntityBinding *
    binding(const EntityRef &ref) const
    {
        auto it = bindings.find(key(ref));
        return it == bindings.end() ? nullptr : &it->second;
    }

    /** Find the binding owning @p ip (null if none). */
    const EntityBinding *
    bindingByIp(corm::net::IpAddr ip) const
    {
        for (const auto &[k, b] : bindings) {
            if (b.ip == ip)
                return &b;
        }
        return nullptr;
    }

    /** Number of registered islands. */
    std::size_t islandCount() const { return islands.size(); }

    /** Number of registered entities. */
    std::size_t entityCount() const { return bindings.size(); }

    /** All bindings, for inventory dumps. */
    std::vector<EntityBinding>
    allBindings() const
    {
        std::vector<EntityBinding> out;
        out.reserve(bindings.size());
        for (const auto &[k, b] : bindings)
            out.push_back(b);
        return out;
    }

  private:
    static std::uint64_t
    key(const EntityRef &ref)
    {
        return (static_cast<std::uint64_t>(ref.island) << 32)
            | ref.entity;
    }

    std::map<IslandId, ResourceIsland *> islands;
    std::map<std::uint64_t, EntityBinding> bindings;
    AnnounceFn announce;
};

} // namespace corm::coord
