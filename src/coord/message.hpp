/**
 * @file
 * Coordination message formats and their wire encoding.
 *
 * The paper identifies two standard mechanisms (§3.3):
 *
 *  * **Tune** — request a fine-grained resource adjustment of an
 *    entity in a remote island: an entity identifier plus a signed
 *    numeric value, translated at the receiver into that island's
 *    own scheduler units (credit-weight deltas in Xen, poll-interval
 *    or thread-count adjustments on the IXP).
 *  * **Trigger** — an immediate, interrupt-like notification asking
 *    the remote island to run a particular entity as soon as
 *    possible (preemptive semantics; a run-queue boost in Xen).
 *
 * Registration messages implement the §2.3 protocol by which islands
 * and entities make themselves known to the global controller.
 *
 * Messages are deliberately tiny — three 64-bit words — matching the
 * paper's observation that coordination state fits in the "small
 * additional amounts of information" that future hardware-level
 * signalling could carry. The wire layout:
 *
 *     word0  [63:32] seq (32)   [31:16] src (16)   [15:0] dst (16)
 *     word1  [63:56] type (8)   [55:32] reserved   [31:0] entity (32)
 *     word2  value (IEEE-754 double bits)
 *
 * The 16-bit island ids and 32-bit sequence space exist so dense
 * fabrics (1024+ islands, long reliable bursts) never wrap an id or
 * seq lane; the reserved byte lanes in word1 leave room for future
 * header growth without another re-lay.
 */

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "coord/types.hpp"

namespace corm::coord {

/** Kinds of coordination message. */
enum class MsgType : std::uint8_t
{
    registerEntity = 1, ///< announce an entity binding
    tune = 2,           ///< signed resource adjustment request
    trigger = 3,        ///< immediate service request (preemptive)
    ack = 4,            ///< acknowledgement (registration handshake)
};

/** Human-readable message-type name. */
constexpr const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::registerEntity: return "register";
      case MsgType::tune: return "tune";
      case MsgType::trigger: return "trigger";
      case MsgType::ack: return "ack";
    }
    return "?";
}

/**
 * A decoded coordination message. `value` carries the tune delta for
 * tune messages and the registered IP address (as integer) for
 * registration messages; it is unused for triggers and acks.
 *
 * `seq` is the reliable-delivery sequence number (coord/reliable.hpp):
 * 0 marks a fire-and-forget message; a non-zero seq asks the
 * receiving channel endpoint to acknowledge (the ack echoes the seq)
 * and to suppress duplicate deliveries of the same (src, seq).
 */
struct CoordMessage
{
    MsgType type = MsgType::ack;
    IslandId src = 0;
    IslandId dst = 0;
    EntityId entity = invalidEntity;
    SeqNum seq = 0;
    double value = 0.0;

    /**
     * Causal span id (obs::TraceId) linking this message to the
     * policy decision that produced it. Carried out-of-band next to
     * the wire words (like the mailbox tag), NOT encoded into them:
     * the wire format stays the paper's few small words, and
     * decode() leaves this 0 — the channel re-attaches it from the
     * mailbox's side-band on delivery. 0 means "untraced".
     */
    std::uint64_t trace = 0;

    /**
     * Number of logical messages this one stands for. The fabric's
     * hub aggregation (coord/fabric.hpp) folds N same-entity Tune
     * deltas into one batch whose value is the exact sum and whose
     * coalesced count is the sum of the contributors' counts, so the
     * applied-Tune accounting stays exact across re-aggregation.
     * Out-of-band like `trace`: decode() leaves it 1.
     */
    std::uint32_t coalesced = 1;

    /** Pack seq/src/dst into the first wire word. */
    std::uint64_t
    encodeWord0() const
    {
        return (static_cast<std::uint64_t>(seq) << 32)
            | (static_cast<std::uint64_t>(src) << 16)
            | static_cast<std::uint64_t>(dst);
    }

    /** Pack type/entity into the second wire word. */
    std::uint64_t
    encodeWord1() const
    {
        return (static_cast<std::uint64_t>(type) << 56)
            | static_cast<std::uint64_t>(entity);
    }

    /** Pack the value into the third wire word. */
    std::uint64_t
    encodeWord2() const
    {
        return std::bit_cast<std::uint64_t>(value);
    }

    /** Rebuild a message from its three wire words. */
    static CoordMessage
    decode(std::uint64_t word0, std::uint64_t word1,
           std::uint64_t word2)
    {
        CoordMessage m;
        m.seq = static_cast<SeqNum>((word0 >> 32) & 0xffffffffu);
        m.src = static_cast<IslandId>((word0 >> 16) & 0xffff);
        m.dst = static_cast<IslandId>(word0 & 0xffff);
        m.type = static_cast<MsgType>((word1 >> 56) & 0xff);
        m.entity = static_cast<EntityId>(word1 & 0xffffffffu);
        m.value = std::bit_cast<double>(word2);
        return m;
    }
};

/**
 * Modelled wire size of one coordination message: the three 64-bit
 * payload words. Serialization-latency models (interconnect links,
 * DESIGN.md §10) and docs quote this constant rather than a magic
 * number, so the header size tracks the wire layout above.
 */
inline constexpr std::size_t coordWireBytes = 3 * sizeof(std::uint64_t);

} // namespace corm::coord
