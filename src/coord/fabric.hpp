/**
 * @file
 * Multi-island coordination fabric.
 *
 * The prototype's CoordChannel is point-to-point because the paper's
 * platform has exactly two islands; §5's ongoing work — "evaluations
 * of the scalability of such mechanisms to large-scale multicore
 * platforms ... distributed coordination algorithms across multiple
 * island resource managers" — needs an N-island transport. The
 * fabric provides three topologies:
 *
 *  * **star** — every message relays through a hub island (the
 *    global controller's home, Dom0-style). Two hops for any
 *    non-hub pair; the hub is a serialisation point.
 *  * **mesh** — direct island-to-island delivery, one hop. What
 *    §3.3's "hardware-supported queues / fast on-chip shared memory"
 *    would provide.
 *  * **tree** — a fanout-k hierarchy rooted at the hub. Messages
 *    relay along the unique tree path; hub (non-leaf) nodes
 *    additionally *aggregate* fire-and-forget Tune deltas per
 *    (destination, entity) within a configurable window and forward
 *    one batch message whose value is the exact sum (coalesced
 *    counts track how many logical Tunes it stands for). Triggers,
 *    registrations and sequenced messages bypass aggregation on the
 *    low-latency path.
 *
 * Unlike the earlier toy fabric, every edge is a real pair of
 * interconnect Mailboxes: per-link FaultPlan weather applies below
 * the message semantics, a link-layer replay budget (modelling PCIe
 * DLLP ACK/NAK retry) re-sends fault-eaten wire messages with
 * exponential backoff, causal trace spans are carried hop by hop,
 * and the mailboxes' activity observers feed health-monitor stall
 * watchdogs (see forEachLane). Delivery semantics match
 * CoordChannel: Tune/Trigger dispatch to the destination island,
 * sequenced messages are acknowledged and deduplicated at the
 * endpoint, registrations install bindings and are always acked.
 *
 * Membership is dynamic (DESIGN.md §13): islands join() and leave()
 * at runtime, tree hubs crash() with their orphans re-parented to a
 * fallback after a detection window (or immediately via the
 * watchdog-driven reparentNow()), and entities migrate between
 * islands with migrateEntity() installing forwarding pointers so
 * in-flight tunes chase the entity to its new home. Every delta a
 * churn event strands — an unroutable send, a dead-route hop, a
 * delivery to a departed endpoint, a crashed hub's open aggregation
 * bucket — is attributed through the abandon observer, never
 * silently lost, and the route-independent endpoint dedup keys make
 * re-driven tunes apply exactly once across any re-parent or
 * migration.
 */

#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coord/island.hpp"
#include "coord/message.hpp"
#include "coord/transport.hpp"
#include "interconnect/faults.hpp"
#include "interconnect/msgring.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace corm::coord {

/** Fabric topology. */
enum class FabricTopology { star, mesh, tree };

/** Human-readable topology name. */
constexpr const char *
fabricTopologyName(FabricTopology t)
{
    switch (t) {
      case FabricTopology::star: return "star";
      case FabricTopology::mesh: return "mesh";
      case FabricTopology::tree: return "tree";
    }
    return "?";
}

/** Parse a topology name; returns false on an unknown name. */
inline bool
parseFabricTopology(const std::string &name, FabricTopology &out)
{
    if (name == "star") { out = FabricTopology::star; return true; }
    if (name == "mesh") { out = FabricTopology::mesh; return true; }
    if (name == "tree") { out = FabricTopology::tree; return true; }
    return false;
}

/** Fabric construction parameters. */
struct FabricParams
{
    FabricTopology topology = FabricTopology::mesh;
    /** One-way latency of every link. */
    corm::sim::Tick hopLatency = 120 * corm::sim::usec;
    /**
     * Hub island: the star centre / tree root. 0 (or an unattached
     * id) falls back to the lowest attached island id.
     */
    IslandId hub = 0;
    /** Children per node of the tree topology. */
    int treeFanout = 4;
    /**
     * Tune-aggregation window of tree hub nodes; 0 disables
     * aggregation. Only fire-and-forget (seq == 0) tunes aggregate.
     */
    corm::sim::Tick aggWindow = 0;
    /**
     * Link weather, applied to every link when any() — each link
     * derives its own pair of deterministic fault streams from
     * faults.seed and the link's endpoint ids, so runs replay
     * bit-identically under any --jobs fan-out.
     */
    corm::interconnect::FaultPlanParams faults;
    /**
     * Link-layer replay budget (PCIe DLLP ACK/NAK retry model): a
     * wire message eaten by link weather is re-sent on the same link
     * up to replayAttempts times, the first after replayTimeout and
     * exponentially backed off by replayBackoff up to replayCap;
     * exhausting the budget abandons the message (see
     * setAbandonObserver). 0 disables replay.
     */
    int replayAttempts = 4;
    corm::sim::Tick replayTimeout = 500 * corm::sim::usec;
    double replayBackoff = 2.0;
    corm::sim::Tick replayCap = 8 * corm::sim::msec;
    /**
     * Delay between a hub crash and its orphaned children re-binding
     * to the fallback parent — the detection window in which the
     * lane-stall watchdog fires. Due re-parents complete at
     * churnTick(); a monitor policy hook may call reparentNow()
     * earlier (watchdog-driven re-parenting).
     */
    corm::sim::Tick reparentDelay = 2 * corm::sim::msec;
    /**
     * Configured fallback parent for re-parenting after a hub
     * crash. 0 (or a departed id) falls back to the crashed hub's
     * own parent, then to the tree root.
     */
    IslandId fallbackParent = 0;
    /** Name prefix of the per-link mailboxes (stats, logs, lanes). */
    std::string name = "fabric";
};

/** Aggregate fabric statistics. */
struct FabricStats
{
    /** Logical send() calls accepted. */
    corm::sim::Counter sent;
    /** Dispatches at a final destination (dedup-suppressed incl.). */
    corm::sim::Counter delivered;
    corm::sim::Counter dropped; ///< unknown destination (unroutable)
    corm::sim::Counter hubRelays; ///< hops forwarded by a relay node
    /** Wire messages put on a link (relays and replays included). */
    corm::sim::Counter wireMessages;
    /** Wire messages that were tunes (the per-applied-Tune cost). */
    corm::sim::Counter wireTunes;
    /** Logical tunes applied at destinations (coalesced counts). */
    corm::sim::Counter appliedTunes;
    corm::sim::Counter linkDrops;   ///< wire sends eaten by weather
    corm::sim::Counter linkReplays; ///< link-layer retransmissions
    /** Wire messages abandoned after the replay budget. */
    corm::sim::Counter abandoned;
    /** Duplicate deliveries suppressed (wire dups + endpoint dedup). */
    corm::sim::Counter duplicates;
    /** Logical tunes folded into an already-open aggregation bucket. */
    corm::sim::Counter aggFolded;
    /** Aggregated batch messages emitted by hub nodes. */
    corm::sim::Counter aggBatches;
    /** Triggers relayed past an aggregating hub un-delayed. */
    corm::sim::Counter triggerBypass;
    /** Deliveries re-forwarded to a migrated entity's new home. */
    corm::sim::Counter migForwards;
    /** Retransmissions performed by the reliable layer above. */
    corm::sim::Counter retries;
    /** Send-to-apply latency (microseconds), end to end. */
    corm::sim::Summary deliveryLatencyUs;
    /** Link hops per first-copy delivery. */
    corm::sim::Summary hopsPerDelivery;
};

/**
 * An N-island coordination transport with configurable topology,
 * per-link fault weather, link-layer replay and (tree) hub-side
 * Tune aggregation. Implements CoordTransport, so ReliableSender /
 * ReliableAnnouncer run over it unchanged.
 */
class CoordFabric : public CoordTransport
{
  public:
    /** Compatibility constructor (star/mesh call sites). */
    CoordFabric(corm::sim::Simulator &simulator, FabricTopology topology,
                corm::sim::Tick hop_latency, IslandId hub = 0)
        : CoordFabric(simulator, makeParams(topology, hop_latency, hub))
    {}

    CoordFabric(corm::sim::Simulator &simulator, FabricParams params)
        : sim(simulator), cfg(std::move(params))
    {}

    CoordFabric(const CoordFabric &) = delete;
    CoordFabric &operator=(const CoordFabric &) = delete;

    /** Attach an island to the fabric (before traffic, ideally). */
    void
    attach(ResourceIsland &island)
    {
        islands[island.id()] = &island;
        dirty = true;
    }

    /** Number of attached islands. */
    std::size_t islandCount() const { return islands.size(); }

    /** Parameters in force. */
    const FabricParams &params() const { return cfg; }

    /** Per-hop latency. */
    corm::sim::Tick perHopLatency() const { return cfg.hopLatency; }

    /**
     * Send a message toward msg.dst, relaying along the topology's
     * path. Messages to an unknown destination (or from an
     * unattached source) are counted as dropped.
     */
    void
    send(CoordMessage msg) override
    {
        ensureBuilt();
        ShardState &st = stateFor(msg.src);
        st.stats.sent.add();
        if (!islands.count(msg.dst) || !islands.count(msg.src)) {
            // Routine under churn (a peer keeps sending to a
            // departed island for a beat), so debug, not warn. The
            // lost delta is attributed, not silently dropped.
            dropAttributed(msg.src, msg, msg.src, msg.dst);
            logger.debug("unroutable %s %u -> %u (%zu islands attached)",
                         msgTypeName(msg.type),
                         static_cast<unsigned>(msg.src),
                         static_cast<unsigned>(msg.dst),
                         islands.size());
            return;
        }
        if (msg.dst == msg.src) {
            // Loopback: no link; model one hop of latency. Stays on
            // the source's own simulator in sharded mode (a node is
            // never split across shards), so no boundary crossing.
            corm::sim::Simulator &s = simFor(msg.src);
            s.schedule(cfg.hopLatency, [this, msg, &s] {
                finalDeliver(msg, s.now() - cfg.hopLatency, 1);
            });
            return;
        }
        forwardFrom(msg.src, msg, simFor(msg.src).now(), 0);
    }

    /** Observe delivered acks at one endpoint (CoordTransport). */
    void
    setAckObserver(IslandId endpoint,
                   std::function<void(const CoordMessage &)> fn) override
    {
        ackObservers[endpoint] = std::move(fn);
    }

    /** Legacy catch-all ack observer (sees acks at every endpoint). */
    void
    setAckObserver(std::function<void(const CoordMessage &)> fn)
    {
        catchAllAckObserver = std::move(fn);
    }

    /**
     * Token-based multi-observer registration: several reliable
     * senders (an announcer that lives the whole run plus a trigger
     * sender, say) can share one endpoint without clobbering each
     * other. Tokens are unique per fabric.
     */
    std::uint64_t
    addAckObserver(IslandId endpoint,
                   std::function<void(const CoordMessage &)> fn) override
    {
        const std::uint64_t token = ++ackToken_;
        ackMulti_[endpoint].push_back({token, std::move(fn)});
        return token;
    }

    void
    removeAckObserver(IslandId endpoint, std::uint64_t token) override
    {
        auto it = ackMulti_.find(endpoint);
        if (it == ackMulti_.end())
            return;
        auto &v = it->second;
        v.erase(std::remove_if(v.begin(), v.end(),
                               [token](const AckEntry &e) {
                                   return e.token == token;
                               }),
                v.end());
        if (v.empty())
            ackMulti_.erase(it);
    }

    /**
     * Record a retransmission performed by the reliable layer. In
     * sharded mode the reliable senders all live at the hub (shard
     * 0), so charging shard 0's counter is race-free.
     */
    void noteRetransmit() override { states[0].stats.retries.add(); }

    /**
     * Observe wire messages abandoned after the link replay budget
     * (the fabric's "this delta is really gone" signal — scenarios
     * subtract abandoned deltas from the convergence intent).
     */
    using AbandonFn = std::function<void(const CoordMessage &)>;
    void setAbandonObserver(AbandonFn fn) { onAbandon = std::move(fn); }

    /**
     * Attach a trace recorder (nullptr detaches): per-link hop
     * slices, relay flow steps, aggregation fold/flush markers and
     * drop/replay/abandon instants. Spans survive multi-hop relays
     * because the id rides each mailbox's side-band.
     */
    void setTrace(corm::obs::TraceRecorder *recorder) { rec_ = recorder; }

    /**
     * Sharded-mode tracing: one window-local recorder per shard
     * (obs/shardcapture.hpp). During a window each shard's wire
     * instrumentation writes only its own recorder; the capture
     * merges them at barriers. Hop slices are emitted at transmit
     * time (the sender knows the delivery tick) on *directional*
     * lane tracks ("<name>.<from>-<to>"), so every track has exactly
     * one writing shard and the merged trace is byte-identical for
     * any shard count. Call after enableSharding().
     */
    void
    setShardTrace(const std::vector<corm::obs::TraceRecorder *> &recs)
    {
        assert(sharded() && recs.size() == states.size());
        for (std::size_t k = 0; k < states.size(); ++k)
            states[k].rec = recs[k];
    }

    /** One lane send/delivery, replayed canonically at a barrier. */
    struct LaneEvent
    {
        corm::sim::Tick when = 0;
        std::uint64_t lane = 0; ///< directional lane id
        std::uint64_t seq = 0;  ///< per-shard-state program order
        bool delivered = false; ///< false = entered the lane (sent)
    };

    /**
     * Record per-lane send/delivery activity shard-locally so the
     * health monitor's stall watchdogs can run at barrier time (see
     * drainLaneActivity). Off by default — recording costs a vector
     * push per wire attempt/delivery.
     */
    void setLaneActivityRecording(bool on) { laneActivity_ = on; }

    /**
     * Hand the window's lane activity to @p fn in canonical
     * (when, lane, delivered-before-sent, seq) order — placement
     * independent because a lane's sends are logged only by its
     * sender shard and its deliveries only by its receiver shard.
     * Runs on the coordinator at a window barrier.
     */
    void
    drainLaneActivity(const std::function<void(const LaneEvent &)> &fn)
    {
        laneScratch_.clear();
        for (auto &st : states) {
            laneScratch_.insert(laneScratch_.end(), st.laneLog.begin(),
                                st.laneLog.end());
            st.laneLog.clear();
        }
        std::sort(laneScratch_.begin(), laneScratch_.end(),
                  [](const LaneEvent &a, const LaneEvent &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.lane != b.lane)
                          return a.lane < b.lane;
                      if (a.delivered != b.delivered)
                          return a.delivered;
                      return a.seq < b.seq;
                  });
        for (const LaneEvent &e : laneScratch_)
            fn(e);
    }

    /**
     * Visit every directional lane as (name, lane id), in the
     * deterministic link-key order — the sharded counterpart of
     * forEachLane for monitor lane registration, where lane ids are
     * how drainLaneActivity identifies lanes.
     */
    void
    forEachLaneId(
        const std::function<void(const std::string &, std::uint64_t)>
            &fn)
    {
        ensureBuilt();
        for (auto &[key, link] : links) {
            fn(link->loToHi.name(), link->laneLoHi.id);
            fn(link->hiToLo.name(), link->laneHiLo.id);
        }
    }

    /**
     * Switch the fabric into sharded-parallel mode: islands are
     * partitioned across the engine's shard simulators per
     * @p shardOfNode (indexed by island id), and every wire hop is
     * carried as a boundary message through the engine instead of a
     * Mailbox — including same-shard hops, so the event-ordering
     * structure (and therefore every scenario digest) is identical
     * for any shard count. Call after every island is attached and
     * before any traffic. Constraints in sharded mode:
     *
     *  - the engine's lookahead must not exceed hopLatency (a hop is
     *    the minimum cross-shard interaction latency);
     *  - tracing uses per-shard window recorders (setShardTrace), not
     *    setTrace: a single recorder would race across workers. Lane
     *    monitoring runs off drainLaneActivity at barriers, not
     *    Mailbox observers (no Mailboxes are exercised);
     *  - send(msg) must execute on the shard owning msg.src, which
     *    falls out naturally when workload events are scheduled on
     *    the source island's shard simulator;
     *  - abandon notifications are queued per shard and handed to
     *    the abandon observer only at drainAbandoned(), which the
     *    runner must call from the engine's barrier probe.
     */
    void
    enableSharding(corm::sim::ShardedEngine &engine,
                   const std::vector<int> &shardOfNode)
    {
        engine_ = &engine;
        shardOf = shardOfNode;
        states.clear();
        states.resize(static_cast<std::size_t>(engine.shardCount()));
        ensureBuilt();
        // One hop is the minimum cross-shard latency; a larger
        // lookahead would let a shard run past an incoming message.
        assert(engine.lookahead() <= cfg.hopLatency);
        assert(rec_ == nullptr
               && "sharded mode traces via setShardTrace, not setTrace");
        for (int i = 0; i < engine.shardCount(); ++i) {
            engine.setSink(i, [this](const corm::sim::ShardMessage &m) {
                onLaneDeliver(m);
            });
        }
    }

    /** True once enableSharding() has been called. */
    bool sharded() const { return engine_ != nullptr; }

    /**
     * Sharded mode: deliver queued abandon notifications to the
     * abandon observer in canonical (when, lane, program-order)
     * order — the same placement-independent sort the boundary drain
     * uses, so observer-visible side effects (monitor abandon
     * events, for one) are identical for any shard count. Runs on
     * the coordinator thread at a window barrier.
     */
    void
    drainAbandoned()
    {
        abandonScratch_.clear();
        for (auto &st : states) {
            abandonScratch_.insert(abandonScratch_.end(),
                                   st.abandonedQueue.begin(),
                                   st.abandonedQueue.end());
            st.abandonedQueue.clear();
        }
        std::sort(abandonScratch_.begin(), abandonScratch_.end(),
                  [](const AbandonRecord &a, const AbandonRecord &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.lane != b.lane)
                          return a.lane < b.lane;
                      return a.seq < b.seq;
                  });
        for (const AbandonRecord &r : abandonScratch_) {
            if (onAbandon)
                onAbandon(r.msg);
        }
    }

    /**
     * Visit every link mailbox as (lane name, mailbox). The health
     * monitor wiring registers one stall-watchdog lane per direction
     * through this (see platform/scenarios.cpp); lane names are
     * "<name>.<from>-<to>".
     */
    void
    forEachLane(
        const std::function<void(const std::string &,
                                 corm::interconnect::Mailbox &)> &fn)
    {
        ensureBuilt();
        for (auto &[key, link] : links) {
            fn(link->loToHi.name(), link->loToHi);
            fn(link->hiToLo.name(), link->hiToLo);
        }
    }

    /**
     * Fabric statistics. In sharded mode the per-shard counters are
     * folded into one view on each call (harvest-time cost only);
     * call from the coordinator with no window in flight.
     */
    const FabricStats &
    stats() const
    {
        if (states.size() == 1)
            return states[0].stats;
        merged_ = FabricStats{};
        for (const ShardState &st : states)
            foldStats(merged_, st.stats);
        return merged_;
    }

    /** Link fault counters summed over every link and direction. */
    corm::interconnect::FaultPlanParams faultParams() const
    {
        return cfg.faults;
    }

    /** Aggregation buckets currently open (all hubs). */
    std::size_t
    aggPending() const
    {
        std::size_t n = 0;
        for (const ShardState &st : states)
            n += st.aggBuckets.size();
        return n;
    }

    /** High-water mark of open buckets at any single hub node. */
    std::size_t
    aggPendingHighWater() const
    {
        std::size_t m = 0;
        for (const ShardState &st : states)
            m = std::max(m, st.aggHighWater);
        return m;
    }

    /** Wire messages originated or forwarded by @p island. */
    std::uint64_t
    wireSendsFrom(IslandId island) const
    {
        return island < wireFrom.size() ? wireFrom[island] : 0;
    }

    /** Wire messages arriving at @p island (terminal or relayed). */
    std::uint64_t
    wireReceivedAt(IslandId island) const
    {
        return island < wireInto.size() ? wireInto[island] : 0;
    }

    /**
     * Total wire messages handled by @p island (sent + received):
     * the per-node load metric behind the hub-bottleneck claim.
     */
    std::uint64_t
    wireHandledAt(IslandId island) const
    {
        return wireSendsFrom(island) + wireReceivedAt(island);
    }

    /** Highest per-island wire-send load (the hub bottleneck). */
    std::uint64_t
    maxWireSends() const
    {
        std::uint64_t m = 0;
        for (const auto &[id, isl] : islands)
            m = std::max(m, wireSendsFrom(id));
        return m;
    }

    /** Highest in-flight queue depth seen on any link direction. */
    std::size_t
    maxLaneQueueHighWater()
    {
        ensureBuilt();
        std::size_t m = 0;
        for (auto &[key, link] : links) {
            m = std::max(m, link->loToHi.pendingHighWater());
            m = std::max(m, link->hiToLo.pendingHighWater());
        }
        return m;
    }

    /** Parent of @p island in the built tree (root maps to itself). */
    IslandId
    parentOf(IslandId island)
    {
        ensureBuilt();
        auto it = parent.find(island);
        return it == parent.end() ? island : it->second;
    }

    /** Link hops between two attached islands (0 for self). */
    int
    hopCount(IslandId from, IslandId to)
    {
        ensureBuilt();
        int hops = 0;
        IslandId at = from;
        while (at != to && hops <= 2 * static_cast<int>(islands.size())) {
            at = nextHopFrom(at, to);
            ++hops;
        }
        return hops;
    }

    // ------------------------------------------------------------------
    // Dynamic membership (churn). All of these run on the coordinator:
    // at a window barrier in sharded mode (pass the barrier tick as
    // `now`), or from an ordinary simulator event in legacy mode.
    // ------------------------------------------------------------------

    /** True while @p id is an attached (live) member. */
    bool attached(IslandId id) const { return islands.count(id) != 0; }

    /**
     * Route epoch: bumps on every membership or route change
     * (build, join, leave, crash, completed re-parent) — the epoch
     * announcements advertise so peers can supersede stale routes.
     */
    std::uint64_t routeEpoch() const { return routeEpoch_; }

    /** Lifetime churn tallies. */
    struct ChurnCounters
    {
        std::uint64_t joins = 0;
        std::uint64_t leaves = 0;
        std::uint64_t crashes = 0;
        std::uint64_t migrations = 0;
        std::uint64_t reparents = 0;
    };
    const ChurnCounters &churnCounters() const { return churn_; }

    /** Orphaned children still awaiting re-parenting. */
    std::size_t
    pendingReparentCount() const
    {
        return pendingReparents_.size();
    }

    /**
     * Runtime join: attach @p island to a live fabric and wire it in
     * incrementally (mesh: links to every member; star: a link to
     * the hub; tree: under the first BFS-order node with spare
     * fanout). Routes rebuild and the route epoch bumps — the
     * scenario layer re-announces bindings to the joiner through
     * ReliableAnnouncer supersede slots. Before the first build this
     * degenerates to attach().
     */
    void
    join(ResourceIsland &island, corm::sim::Tick now = 0)
    {
        if (dirty || islands.empty()) {
            attach(island);
            return;
        }
        const IslandId id = island.id();
        if (islands.count(id))
            return;
        ChurnScope scope(*this, now);
        islands[id] = &island;
        growNodeTables(static_cast<std::size_t>(id) + 1);
        switch (cfg.topology) {
          case FabricTopology::mesh:
            for (const auto &[other, isl] : islands)
                if (other != id)
                    ensureLink(other, id);
            break;
          case FabricTopology::star:
            if (id != hubId)
                ensureLink(hubId, id);
            break;
          case FabricTopology::tree:
            if (id != hubId) {
                const IslandId p = pickTreeParent();
                parent[id] = p;
                children[p].push_back(id);
                ensureLink(p, id);
            }
            break;
        }
        rebuildLiveRoutes();
        ++churn_.joins;
        ++routeEpoch_;
    }

    /**
     * Graceful leave: the island flushes its own open aggregation
     * buckets, peers' buckets destined to it flush immediately, its
     * links retire, and (tree) its children re-bind to the fallback
     * parent at once — a cooperative departure needs no detection
     * window. In-flight messages toward the departed island are
     * attributed as abandoned when they hit the dead route or the
     * missing endpoint, never silently lost.
     */
    void
    leave(IslandId id, corm::sim::Tick now = 0)
    {
        ensureBuilt();
        if (!islands.count(id))
            return;
        if (id == hubId) {
            logger.warn("leave(%u) ignored: the hub cannot depart",
                        static_cast<unsigned>(id));
            return;
        }
        ChurnScope scope(*this, now);
        flushBucketsWhere(id, /*includeDest=*/true);
        const IslandId fb = fallbackFor(id);
        const std::vector<IslandId> orphans = detachNode(id);
        for (IslandId c : orphans)
            applyReparent(c, fb);
        rebuildLiveRoutes();
        ++churn_.leaves;
        ++routeEpoch_;
    }

    /**
     * Crash failure: no flushes, no goodbyes. Open aggregation
     * buckets at the dead node are attributed as abandoned (a batch
     * proto carries the exact folded sum and coalesced count, so the
     * conservation ledger balances), its links retire, and (tree)
     * orphaned children queue for re-parenting after reparentDelay —
     * the window in which the lane-stall watchdog detects the dead
     * hub. churnTick() / reparentNow() complete the re-bind.
     */
    void
    crash(IslandId id, corm::sim::Tick now = 0)
    {
        ensureBuilt();
        if (!islands.count(id))
            return;
        if (id == hubId) {
            logger.warn("crash(%u) ignored: the hub cannot depart",
                        static_cast<unsigned>(id));
            return;
        }
        ChurnScope scope(*this, now);
        abandonOwnBuckets(id);
        const IslandId fb = fallbackFor(id);
        const std::vector<IslandId> orphans = detachNode(id);
        const corm::sim::Tick at = nowFor(id);
        for (IslandId c : orphans)
            pendingReparents_.push_back({c, fb, at + cfg.reparentDelay});
        rebuildLiveRoutes();
        ++churn_.crashes;
        ++routeEpoch_;
    }

    /**
     * Live entity migration: future deliveries addressed to
     * (src, entity) re-forward to @p dst. Dedup keys are checked at
     * the old home FIRST (lookup-only), so a retransmission whose
     * original applied pre-migration is re-acked, never re-applied —
     * and a miss forwards without claiming the key, leaving the new
     * home's dedup window authoritative. Open aggregation buckets
     * destined to the old home flush immediately so no delta lingers
     * under a stale address. The caller hands over coordination
     * state (weights, convergence intent) and re-announces bindings;
     * the fabric handles addressing.
     *
     * Precondition: @p dst must currently home its own (dst, entity)
     * address — or forward it to @p src, the "migrate back home"
     * case, where the state coming in IS the state that left. If
     * dst's address forwards anywhere else, the call is refused: two
     * distinct logical entity states would collide at one address,
     * and the forwarded state's deliveries would silently re-home.
     * Migrate the forwarded state back (or pick another destination)
     * first.
     */
    bool
    migrateEntity(IslandId src, IslandId dst, EntityId entity,
                  corm::sim::Tick now = 0)
    {
        ensureBuilt();
        if (src == dst || !islands.count(src) || !islands.count(dst))
            return false;
        const IslandId dstHome = resolveEntity(dst, entity);
        if (resolveEntity(src, entity) != src
            || (dstHome != dst && dstHome != src))
            return false;
        ChurnScope scope(*this, now);
        flushBucketsDestined(src, entity);
        // Path-compress: every chain ending at src re-points to dst,
        // so resolution is single-hop. A chain that re-points onto
        // its own origin (migrating merged state back home) becomes
        // a self-loop, which erases — the address is home again.
        for (auto &[key, to] : migrated_)
            if (to == src
                && static_cast<EntityId>(key & 0xffffffffu) == entity)
                to = dst;
        migrated_[migKey(src, entity)] = dst;
        migrated_.erase(migKey(dst, entity));
        ++churn_.migrations;
        return true;
    }

    /** Present home of @p entity declared at @p home (identity when
     *  never migrated). */
    IslandId
    currentHome(IslandId home, EntityId entity) const
    {
        return resolveEntity(home, entity);
    }

    /**
     * Complete re-parents whose delay has elapsed (dueAt <= now).
     * Call periodically — at window barriers in sharded mode, from a
     * scheduled event in legacy mode.
     */
    void churnTick(corm::sim::Tick now) { processReparents(now, false); }

    /**
     * Complete every pending re-parent immediately — the watchdog
     * path: a lane-stall breach told the policy layer the hub is
     * dead, so there is no need to wait out reparentDelay.
     */
    void reparentNow(corm::sim::Tick now) { processReparents(now, true); }

  private:
    /**
     * One link direction in sharded mode: the Mailbox's wire
     * semantics (fault stream, in-order clamp) reproduced over the
     * engine's boundary queues. The lane id is derived from the
     * endpoint ids alone — placement-independent, so the engine's
     * canonical (when, lane, seq) injection order does not change
     * with the shard count.
     */
    struct Lane
    {
        std::uint64_t id = 0;
        IslandId from = 0, to = 0;
        corm::interconnect::FaultInjector *faults = nullptr;
        corm::sim::Tick lastDelivery = 0; ///< in-order clamp
        std::uint64_t nextSeq = 0;        ///< per-lane send counter
    };

    struct Link
    {
        IslandId lo, hi;
        corm::interconnect::Mailbox loToHi;
        corm::interconnect::Mailbox hiToLo;
        std::unique_ptr<corm::interconnect::FaultPlan> weather;
        Lane laneLoHi, laneHiLo; ///< sharded-mode wire directions

        Link(corm::sim::Simulator &s, corm::sim::Tick lat, IslandId l,
             IslandId h, const std::string &prefix)
            : lo(l), hi(h),
              loToHi(s, lat,
                     prefix + "." + std::to_string(l) + "-"
                         + std::to_string(h)),
              hiToLo(s, lat,
                     prefix + "." + std::to_string(h) + "-"
                         + std::to_string(l))
        {}

        corm::interconnect::Mailbox &
        dir(IslandId from)
        {
            return from == lo ? loToHi : hiToLo;
        }

        Lane &
        laneFrom(IslandId from)
        {
            return from == lo ? laneLoHi : laneHiLo;
        }
    };

    /** One wire message in flight on one link. */
    struct Flight
    {
        CoordMessage msg;
        corm::sim::Tick originSentAt = 0; ///< logical send time
        corm::sim::Tick hopSentAt = 0;    ///< this hop's (re)send time
        IslandId from = 0, to = 0;
        int hopsSoFar = 0; ///< link hops completed before this one
        int attempts = 1;  ///< wire attempts on this link
        corm::sim::Tick timeout = 0;
    };

    /** An open hub aggregation bucket. */
    struct AggBucket
    {
        CoordMessage proto; ///< dst/entity template; value = sum
        IslandId node = 0, next = 0;
        corm::sim::Tick earliestOrigin = 0;
    };

    /**
     * Mutable fabric state owned by one shard. In legacy
     * (single-threaded) mode there is exactly one state, index 0,
     * and behaviour is unchanged from the pre-sharding fabric. In
     * sharded mode each shard's worker touches only its own state:
     * flights and aggregation buckets are keyed by nodes the shard
     * owns, tags only need to be unique within a shard, and the
     * stats counters are folded at harvest (see stats()).
     */
    /** One queued abandon with its canonical-ordering key. */
    struct AbandonRecord
    {
        CoordMessage msg;
        corm::sim::Tick when = 0; ///< abandon tick on the owner shard
        std::uint64_t lane = 0;   ///< lane the flight died on
        std::uint64_t seq = 0;    ///< per-shard-state program order
    };

    struct ShardState
    {
        std::map<std::uint64_t, Flight> flights;
        std::map<std::uint64_t, AggBucket> aggBuckets;
        std::uint64_t nextTag = 0;
        std::size_t aggHighWater = 0;
        /** Abandons awaiting drainAbandoned() (sharded mode only). */
        std::vector<AbandonRecord> abandonedQueue;
        std::uint64_t abandonSeq = 0;
        FabricStats stats;
        /** Window-local trace recorder (sharded capture only). */
        corm::obs::TraceRecorder *rec = nullptr;
        /** Lazy track ids on this shard's window recorder. */
        std::map<std::uint64_t, int> laneTracks;
        std::map<IslandId, int> nodeTracks;
        /** Window-local lane activity log (see drainLaneActivity). */
        std::vector<LaneEvent> laneLog;
        std::uint64_t laneLogSeq = 0;
    };

    static FabricParams
    makeParams(FabricTopology topology, corm::sim::Tick hop_latency,
               IslandId hub)
    {
        FabricParams p;
        p.topology = topology;
        p.hopLatency = hop_latency;
        p.hub = hub;
        return p;
    }

    static std::uint32_t
    linkKey(IslandId a, IslandId b)
    {
        const IslandId lo = std::min(a, b), hi = std::max(a, b);
        return (static_cast<std::uint32_t>(lo) << 16) | hi;
    }

    /** One orphaned child queued for re-binding after a hub crash. */
    struct PendingReparent
    {
        IslandId child = 0;
        IslandId fallback = 0;
        corm::sim::Tick dueAt = 0;
    };

    /**
     * Scoped barrier-time override: while a churn action runs at a
     * window barrier the shard sims are parked at placement-dependent
     * ticks, so nowFor() must serve the barrier tick instead — the
     * only placement-independent clock available there.
     */
    struct ChurnScope
    {
        CoordFabric &f;
        corm::sim::Tick saved;
        ChurnScope(CoordFabric &fab, corm::sim::Tick now)
            : f(fab), saved(fab.churnNow_)
        {
            if (fab.sharded() && now != 0)
                fab.churnNow_ = now;
        }
        ~ChurnScope() { f.churnNow_ = saved; }
    };

    /** Current tick for @p node's actions; the barrier tick during a
     *  sharded-mode churn action (see ChurnScope). */
    corm::sim::Tick
    nowFor(IslandId node)
    {
        return churnNow_ != 0 ? churnNow_ : simFor(node).now();
    }

    /** Grow the node-indexed tables to cover ids below @p span. */
    void
    growNodeTables(std::size_t span)
    {
        if (wireFrom.size() < span) {
            wireFrom.resize(span, 0);
            wireInto.resize(span, 0);
            aggDepth.resize(span, 0);
            seen.resize(span);
        }
    }

    /** makeLink unless the endpoint pair is already live (a re-join
     *  may reuse a pair whose old link was retired). */
    void
    ensureLink(IslandId a, IslandId b)
    {
        if (!links.count(linkKey(a, b)))
            makeLink(a, b);
    }

    /** Rebuild routes over the live membership, dropping stale
     *  entries that routed to or through departed nodes. */
    void
    rebuildLiveRoutes()
    {
        nextHop.clear();
        std::vector<IslandId> ids;
        for (const auto &[id, isl] : islands)
            ids.push_back(id);
        buildRoutes(ids);
    }

    /** First BFS-order tree node with spare fanout (join placement —
     *  deterministic for a given call sequence). */
    IslandId
    pickTreeParent() const
    {
        const std::size_t k =
            static_cast<std::size_t>(std::max(1, cfg.treeFanout));
        std::vector<IslandId> q{hubId};
        for (std::size_t i = 0; i < q.size(); ++i) {
            auto it = children.find(q[i]);
            if (it == children.end() || it->second.size() < k)
                return q[i];
            for (IslandId c : it->second)
                q.push_back(c);
        }
        return hubId;
    }

    /** Fallback parent for @p id's orphans: the configured fallback,
     *  else @p id's own parent, else the root. */
    IslandId
    fallbackFor(IslandId id) const
    {
        if (cfg.fallbackParent != 0 && cfg.fallbackParent != id
            && islands.count(cfg.fallbackParent))
            return cfg.fallbackParent;
        auto it = parent.find(id);
        if (it != parent.end() && islands.count(it->second))
            return it->second;
        return hubId;
    }

    /** True if climbing the parent chain from @p node reaches
     *  @p root (cycle-guarded; broken chains answer false). */
    bool
    inSubtree(IslandId node, IslandId root) const
    {
        std::size_t guard = 0;
        IslandId at = node;
        while (at != hubId && ++guard <= parent.size() + 1) {
            if (at == root)
                return true;
            auto it = parent.find(at);
            if (it == parent.end())
                return false;
            at = it->second;
        }
        return at == root;
    }

    /**
     * Remove @p id from membership, retire its links, unhook it from
     * its parent; returns its (tree) children, now orphaned. The
     * orphans keep their dangling parent entry until re-bound:
     * treeNextHop sees the broken chain and routes to the unroutable
     * sentinel, which attributes the message instead of throwing.
     */
    std::vector<IslandId>
    detachNode(IslandId id)
    {
        islands.erase(id);
        for (auto it = links.begin(); it != links.end();) {
            if (it->second->lo == id || it->second->hi == id) {
                retired.push_back(std::move(it->second));
                it = links.erase(it);
            } else {
                ++it;
            }
        }
        std::vector<IslandId> orphans;
        auto cit = children.find(id);
        if (cit != children.end()) {
            orphans = cit->second;
            children.erase(cit);
        }
        auto pit = parent.find(id);
        if (pit != parent.end()) {
            auto up = children.find(pit->second);
            if (up != children.end()) {
                auto &v = up->second;
                v.erase(std::remove(v.begin(), v.end(), id), v.end());
                if (v.empty())
                    children.erase(up);
            }
            parent.erase(pit);
        }
        return orphans;
    }

    /** Re-bind @p child under @p fallback (or the root when the
     *  fallback is gone or would create a cycle). */
    void
    applyReparent(IslandId child, IslandId fallback)
    {
        if (!islands.count(child))
            return; // departed while orphaned
        if (!islands.count(fallback))
            fallback = islands.count(cfg.fallbackParent)
                           ? cfg.fallbackParent
                           : hubId;
        if (fallback == child || inSubtree(fallback, child))
            fallback = hubId;
        parent[child] = fallback;
        children[fallback].push_back(child);
        ensureLink(fallback, child);
        ++churn_.reparents;
    }

    /** Complete pending re-parents (all of them when @p force). */
    void
    processReparents(corm::sim::Tick now, bool force)
    {
        if (pendingReparents_.empty())
            return;
        ChurnScope scope(*this, now);
        bool changed = false;
        auto it = pendingReparents_.begin();
        while (it != pendingReparents_.end()) {
            if (!force && it->dueAt > now) {
                ++it;
                continue;
            }
            applyReparent(it->child, it->fallback);
            it = pendingReparents_.erase(it);
            changed = true;
        }
        if (changed) {
            rebuildLiveRoutes();
            ++routeEpoch_;
        }
    }

    /**
     * Flush open buckets owned by @p id and (optionally) buckets at
     * other hubs destined to @p id, in deterministic key order. The
     * bucket keys embed the owning node, so keys are unique across
     * shard states.
     */
    void
    flushBucketsWhere(IslandId id, bool includeDest)
    {
        std::vector<std::uint64_t> keys;
        for (ShardState &st : states)
            for (const auto &[key, b] : st.aggBuckets)
                if (b.node == id || (includeDest && b.proto.dst == id))
                    keys.push_back(key);
        std::sort(keys.begin(), keys.end());
        for (std::uint64_t key : keys)
            flushBucket(key);
    }

    /** Flush open buckets anywhere destined to (@p dst, @p entity) —
     *  the migration path: no delta may linger under a stale
     *  address. */
    void
    flushBucketsDestined(IslandId dst, EntityId entity)
    {
        std::vector<std::uint64_t> keys;
        for (ShardState &st : states)
            for (const auto &[key, b] : st.aggBuckets)
                if (b.proto.dst == dst && b.proto.entity == entity)
                    keys.push_back(key);
        std::sort(keys.begin(), keys.end());
        for (std::uint64_t key : keys)
            flushBucket(key);
    }

    /** Attribute and discard every open bucket at a crashed node;
     *  the already-scheduled flush timers then find nothing. */
    void
    abandonOwnBuckets(IslandId id)
    {
        ShardState &st = stateFor(id);
        std::vector<std::uint64_t> keys;
        for (const auto &[key, b] : st.aggBuckets)
            if (b.node == id)
                keys.push_back(key);
        std::sort(keys.begin(), keys.end());
        for (std::uint64_t key : keys) {
            auto it = st.aggBuckets.find(key);
            AggBucket b = std::move(it->second);
            st.aggBuckets.erase(it);
            if (aggDepth[b.node] > 0)
                --aggDepth[b.node];
            st.stats.abandoned.add();
            if (!onAbandon)
                continue;
            if (sharded())
                st.abandonedQueue.push_back({b.proto, nowFor(id),
                                             laneIdOf(b.node, b.next),
                                             ++st.abandonSeq});
            else
                onAbandon(b.proto);
        }
    }

    /** (old home:16 << 32 | entity:32) forwarding-map key. */
    static std::uint64_t
    migKey(IslandId home, EntityId entity)
    {
        return (static_cast<std::uint64_t>(home) << 32) | entity;
    }

    /** Resolve (declared home, entity) through the forwarding map —
     *  single-hop thanks to path compression at migrateEntity(). */
    IslandId
    resolveEntity(IslandId home, EntityId entity) const
    {
        auto it = migrated_.find(migKey(home, entity));
        return it == migrated_.end() ? home : it->second;
    }

    /**
     * Count an unroutable / dead-route / departed-endpoint drop and,
     * for fire-and-forget tunes, hand the message to the abandon
     * observer so the lost delta is attributed in the conservation
     * ledger instead of silently vanishing. Sequenced messages are
     * not attributed here: their reliable sender owns the retry loop
     * and the terminal abandon.
     */
    void
    dropAttributed(IslandId owner, const CoordMessage &msg,
                   IslandId from, IslandId to)
    {
        ShardState &st = stateFor(owner);
        st.stats.dropped.add();
        if (msg.type != MsgType::tune || msg.seq != 0 || !onAbandon)
            return;
        if (sharded())
            st.abandonedQueue.push_back({msg, nowFor(from),
                                         laneIdOf(from, to),
                                         ++st.abandonSeq});
        else
            onAbandon(msg);
    }

    void
    ensureBuilt()
    {
        if (!dirty)
            return;
        dirty = false;
        // Retire (don't destroy) old links: their mailboxes may
        // still hold scheduled deliveries referencing themselves.
        for (auto &[key, link] : links)
            retired.push_back(std::move(link));
        links.clear();
        nextHop.clear();
        parent.clear();
        children.clear();
        if (islands.empty())
            return;

        std::vector<IslandId> ids;
        for (const auto &[id, isl] : islands)
            ids.push_back(id);
        hubId = islands.count(cfg.hub) ? cfg.hub : ids.front();

        // Size the node-indexed tables from the topology (islands is
        // an ordered map, so ids.back() is the highest attached id).
        // Grow-only: re-attachment rebuilds must not discard the
        // accumulated per-node tallies or dedup windows.
        growNodeTables(static_cast<std::size_t>(ids.back()) + 1);

        switch (cfg.topology) {
          case FabricTopology::mesh:
            for (std::size_t i = 0; i < ids.size(); ++i)
                for (std::size_t j = i + 1; j < ids.size(); ++j)
                    makeLink(ids[i], ids[j]);
            break;
          case FabricTopology::star:
            for (IslandId id : ids)
                if (id != hubId)
                    makeLink(hubId, id);
            break;
          case FabricTopology::tree: {
            // BFS-heap layout over the sorted ids, root first.
            std::vector<IslandId> order;
            order.push_back(hubId);
            for (IslandId id : ids)
                if (id != hubId)
                    order.push_back(id);
            const int k = std::max(1, cfg.treeFanout);
            for (std::size_t i = 1; i < order.size(); ++i) {
                const IslandId p = order[(i - 1) / k];
                parent[order[i]] = p;
                children[p].push_back(order[i]);
                makeLink(p, order[i]);
            }
            parent[hubId] = hubId;
            break;
          }
        }
        buildRoutes(ids);
        ++routeEpoch_;
    }

    void
    makeLink(IslandId a, IslandId b)
    {
        auto link = std::make_unique<Link>(sim, cfg.hopLatency,
                                           std::min(a, b),
                                           std::max(a, b), cfg.name);
        if (cfg.faults.any()) {
            // Per-link deterministic weather: the link's stream pair
            // derives from the master seed and the (lo, hi) ids, so
            // it is independent of construction order.
            corm::interconnect::FaultPlanParams p = cfg.faults;
            p.seed = corm::sim::SplitMix64(
                         cfg.faults.seed
                         ^ (0x9e3779b97f4a7c15ULL
                            * (static_cast<std::uint64_t>(
                                   linkKey(a, b))
                               + 1)))
                         .next();
            link->weather =
                std::make_unique<corm::interconnect::FaultPlan>(p);
            link->loToHi.setFaultInjector(&link->weather->aToB());
            link->hiToLo.setFaultInjector(&link->weather->bToA());
            link->laneLoHi.faults = &link->weather->aToB();
            link->laneHiLo.faults = &link->weather->bToA();
        }
        // Sharded-mode lane ids: (linkKey << 1) | direction bit —
        // a pure function of the endpoint ids, 64-bit so the 32-bit
        // link key shifts without truncation.
        link->laneLoHi.id =
            (static_cast<std::uint64_t>(linkKey(a, b)) << 1);
        link->laneLoHi.from = link->lo;
        link->laneLoHi.to = link->hi;
        link->laneHiLo.id =
            (static_cast<std::uint64_t>(linkKey(a, b)) << 1) | 1u;
        link->laneHiLo.from = link->hi;
        link->laneHiLo.to = link->lo;
        for (int d = 0; d < 2; ++d) {
            corm::interconnect::Mailbox &mb =
                d == 0 ? link->loToHi : link->hiToLo;
            const IslandId receiver = d == 0 ? link->hi : link->lo;
            mb.setReceiver([this, receiver](std::uint64_t w0,
                                            std::uint64_t w1,
                                            std::uint64_t w2,
                                            std::uint64_t tag,
                                            std::uint64_t flow) {
                onWireDeliver(receiver, w0, w1, w2, tag, flow);
            });
            mb.setDropObserver(
                [this](std::uint64_t tag) { onWireDrop(tag); });
        }
        links[linkKey(a, b)] = std::move(link);
    }

    void
    buildRoutes(const std::vector<IslandId> &ids)
    {
        for (IslandId from : ids) {
            for (IslandId to : ids) {
                if (from == to)
                    continue;
                IslandId next = to;
                switch (cfg.topology) {
                  case FabricTopology::mesh:
                    next = to;
                    break;
                  case FabricTopology::star:
                    next = (from == hubId) ? to : hubId;
                    break;
                  case FabricTopology::tree:
                    next = treeNextHop(from, to);
                    break;
                }
                nextHop[routeKey(from, to)] = next;
            }
        }
    }

    static std::uint32_t
    routeKey(IslandId from, IslandId to)
    {
        return (static_cast<std::uint32_t>(from) << 16) | to;
    }

    IslandId
    nextHopFrom(IslandId from, IslandId to) const
    {
        auto it = nextHop.find(routeKey(from, to));
        return it == nextHop.end() ? to : it->second;
    }

    /**
     * Next hop from @p from toward @p to along the tree path. While
     * a crashed hub's orphans await re-parenting their chains dangle;
     * a broken (or cyclic) chain answers @p from itself — the
     * unroutable sentinel, which no link ever matches, so wireSend
     * attributes the message instead of throwing here.
     */
    IslandId
    treeNextHop(IslandId from, IslandId to)
    {
        // Climb from `to` toward the root; if we pass `from`, the
        // hop below it is the downward next hop. Otherwise `to` is
        // not in from's subtree and the next hop is from's parent.
        IslandId at = to;
        IslandId below = to;
        std::size_t guard = 0;
        while (at != hubId) {
            auto it = parent.find(at);
            if (it == parent.end() || ++guard > parent.size())
                return from;
            const IslandId p = it->second;
            if (p == from)
                return at;
            below = at;
            at = p;
        }
        if (from == hubId)
            return below;
        auto it = parent.find(from);
        return it == parent.end() ? from : it->second;
    }

    bool isTreeHub(IslandId node) const { return children.count(node); }

    /**
     * Forward @p msg from @p node toward msg.dst: fold eligible
     * tunes into the node's aggregation bucket, everything else
     * straight onto the next link.
     */
    void
    forwardFrom(IslandId node, const CoordMessage &msg,
                corm::sim::Tick origin, int hopsSoFar)
    {
        const IslandId next = nextHopFrom(node, msg.dst);
        if (cfg.topology == FabricTopology::tree && cfg.aggWindow > 0
            && isTreeHub(node)) {
            if (msg.type == MsgType::tune && msg.seq == 0) {
                foldInto(node, next, msg, origin);
                return;
            }
            if (msg.type == MsgType::trigger)
                stateFor(node).stats.triggerBypass.add();
        }
        wireSend(node, next, msg, origin, hopsSoFar);
    }

    void
    foldInto(IslandId node, IslandId next, const CoordMessage &msg,
             corm::sim::Tick origin)
    {
        ShardState &sst = stateFor(node);
        // (node:16, dst:16, entity:32). The next hop needs no key
        // lane: routing is deterministic, so one (node, dst) pair
        // always forwards through the same next hop (kept in the
        // bucket for the flush).
        const std::uint64_t key =
            (static_cast<std::uint64_t>(node) << 48)
            | (static_cast<std::uint64_t>(msg.dst) << 32)
            | msg.entity;
        auto it = sst.aggBuckets.find(key);
        if (it == sst.aggBuckets.end()) {
            AggBucket &b = sst.aggBuckets[key];
            b.proto = msg;
            b.proto.src = node; // the batch originates at the hub
            b.node = node;
            b.next = next;
            b.earliestOrigin = origin;
            const std::size_t depth = ++aggDepth[node];
            sst.aggHighWater = std::max(sst.aggHighWater, depth);
            corm::obs::TraceRecorder *const r = recFor(sst);
            if (CORM_TRACE_ACTIVE(r) && msg.trace != 0) {
                r->instant(nodeTrackOn(sst, node), simFor(node).now(),
                           "agg:open", "coord",
                           {{"entity",
                             static_cast<std::uint64_t>(msg.entity)},
                            {"dst", static_cast<int>(msg.dst)}});
            }
            simFor(node).schedule(cfg.aggWindow,
                                  [this, key] { flushBucket(key); });
            return;
        }
        AggBucket &b = it->second;
        sst.stats.aggFolded.add();
        b.proto.value += msg.value;
        b.proto.coalesced += msg.coalesced;
        b.earliestOrigin = std::min(b.earliestOrigin, origin);
        corm::obs::TraceRecorder *const r = recFor(sst);
        if (CORM_TRACE_ACTIVE(r) && msg.trace != 0
            && msg.trace != b.proto.trace) {
            // The folded contributor's span ends here; the batch
            // carries the first contributor's span onward.
            r->instant(nodeTrackOn(sst, node), simFor(node).now(),
                       "agg:fold", "coord",
                       {{"entity",
                         static_cast<std::uint64_t>(msg.entity)}});
            r->flowEnd(nodeTrackOn(sst, node), simFor(node).now(),
                       msg.trace, "coord.span", "coord");
        }
    }

    void
    flushBucket(std::uint64_t key)
    {
        // The owning node rides in the key's top 16 bits, locating
        // the shard state on whichever thread the flush timer fires.
        const IslandId node = static_cast<IslandId>(key >> 48);
        ShardState &sst = stateFor(node);
        auto it = sst.aggBuckets.find(key);
        if (it == sst.aggBuckets.end())
            return;
        AggBucket b = std::move(it->second);
        sst.aggBuckets.erase(it);
        if (aggDepth[b.node] > 0)
            --aggDepth[b.node];
        sst.stats.aggBatches.add();
        corm::obs::TraceRecorder *const r = recFor(sst);
        if (CORM_TRACE_ACTIVE(r) && b.proto.trace != 0) {
            r->instant(
                nodeTrackOn(sst, b.node), nowFor(b.node),
                "agg:flush", "coord",
                {{"coalesced",
                  static_cast<std::uint64_t>(b.proto.coalesced)},
                 {"entity",
                  static_cast<std::uint64_t>(b.proto.entity)}});
        }
        wireSend(b.node, b.next, b.proto, b.earliestOrigin, 0);
    }

    void
    wireSend(IslandId from, IslandId to, const CoordMessage &msg,
             corm::sim::Tick origin, int hopsSoFar)
    {
        if (sharded()) {
            shardWireSend(from, to, msg, origin, hopsSoFar);
            return;
        }
        auto lk = links.find(linkKey(from, to));
        ShardState &st = states[0];
        if (lk == links.end()) {
            // Topology changed under an in-flight message: the next
            // hop is gone (or routing answered the unroutable
            // sentinel). Attribute rather than lose the delta.
            dropAttributed(from, msg, from, to);
            return;
        }
        const std::uint64_t tag = ++st.nextTag;
        Flight &f = st.flights[tag];
        f.msg = msg;
        f.originSentAt = origin;
        f.hopSentAt = sim.now();
        f.from = from;
        f.to = to;
        f.hopsSoFar = hopsSoFar;
        f.attempts = 1;
        f.timeout = cfg.replayTimeout;
        st.stats.wireMessages.add();
        if (msg.type == MsgType::tune)
            st.stats.wireTunes.add();
        ++wireFrom[from];
        lk->second->dir(from).send(msg.encodeWord0(), msg.encodeWord1(),
                                   msg.encodeWord2(), tag, msg.trace);
    }

    /**
     * Sharded replacement of wireSend + Mailbox::send: same flight
     * bookkeeping and fault semantics, but the delivery is a
     * boundary message posted through the engine. A successfully
     * transmitted flight is erased immediately — the flight record
     * only exists to feed drop/replay chains, and the payload rides
     * the boundary message itself, so the receiving shard never
     * touches this shard's flight map.
     */
    void
    shardWireSend(IslandId from, IslandId to, const CoordMessage &msg,
                  corm::sim::Tick origin, int hopsSoFar)
    {
        ShardState &st = stateFor(from);
        auto lk = links.find(linkKey(from, to));
        if (lk == links.end()) {
            dropAttributed(from, msg, from, to);
            return;
        }
        const std::uint64_t tag = ++st.nextTag;
        Flight &f = st.flights[tag];
        f.msg = msg;
        f.originSentAt = origin;
        f.hopSentAt = nowFor(from);
        f.from = from;
        f.to = to;
        f.hopsSoFar = hopsSoFar;
        f.attempts = 1;
        f.timeout = cfg.replayTimeout;
        st.stats.wireMessages.add();
        if (msg.type == MsgType::tune)
            st.stats.wireTunes.add();
        ++wireFrom[from];
        shardTransmit(st, *lk->second, tag);
    }

    /** One wire attempt of a sharded flight (first send or replay). */
    void
    shardTransmit(ShardState &st, Link &link, std::uint64_t tag)
    {
        auto it = st.flights.find(tag);
        Flight &f = it->second;
        Lane &lane = link.laneFrom(f.from);
        // Barrier-time churn actions (a leave's bucket flush, say)
        // transmit while the shard sims are parked at placement-
        // dependent ticks: nowFor serves the barrier tick there and
        // the owning sim's clock during a window.
        const corm::sim::Tick tnow = nowFor(f.from);
        // Mirror Mailbox's Activity::sent: logged before the fault
        // roll, so the stall watchdog sees attempts the weather ate.
        if (laneActivity_)
            st.laneLog.push_back(
                {tnow, lane.id, ++st.laneLogSeq, false});
        corm::interconnect::FaultAction act;
        if (lane.faults)
            act = lane.faults->apply(tnow);
        if (act.drop) {
            if (CORM_TRACE_ACTIVE(st.rec))
                st.rec->instant(laneTrackOn(st, lane), tnow,
                                "hop:drop", "coord");
            shardDrop(st, it, lane.id);
            return;
        }
        // Mirror Mailbox::send: base latency plus weather delay,
        // clamped to in-order delivery unless reordering was drawn.
        corm::sim::Tick when =
            tnow + cfg.hopLatency + act.extraDelay;
        if (!act.reorder) {
            when = std::max(when, lane.lastDelivery);
            lane.lastDelivery = when;
        }
        if (CORM_TRACE_ACTIVE(st.rec)) {
            // Legacy emits the hop slice at delivery time; here the
            // sender already knows the delivery tick, and emitting
            // at transmit keeps the slice on the sender's shard
            // (single-writer tracks). Same ts/dur either way. The
            // flow step on the lane track is the stitch between the
            // sender-side span and the receiver-side continuation.
            st.rec->complete(
                laneTrackOn(st, lane), tnow, when - tnow,
                std::string("hop:") + msgTypeName(f.msg.type), "coord",
                {{"entity", static_cast<std::uint64_t>(f.msg.entity)},
                 {"seq", static_cast<int>(f.msg.seq)},
                 {"hop", f.hopsSoFar + 1}});
            if (f.msg.trace != 0)
                st.rec->flowStep(laneTrackOn(st, lane), tnow,
                                 f.msg.trace, "coord.span", "coord");
        }
        corm::sim::ShardMessage e;
        e.when = when;
        e.seq = ++lane.nextSeq;
        e.lane = lane.id;
        e.node = f.to;
        e.hops = static_cast<std::uint16_t>(f.hopsSoFar);
        e.w0 = f.msg.encodeWord0();
        e.w1 = f.msg.encodeWord1();
        e.w2 = f.msg.encodeWord2();
        e.origin = f.originSentAt;
        e.flow = f.msg.trace;
        e.aux = f.msg.coalesced;
        engine_->post(shardOfNode(f.from), shardOfNode(f.to), e);
        if (act.duplicate && lane.faults) {
            // Second copy; the receiver counts it and drops it, the
            // same way a legacy duplicate finds its flight consumed.
            corm::sim::ShardMessage d = e;
            d.when = when + lane.faults->params().dupOffset;
            d.seq = ++lane.nextSeq;
            d.flags |= corm::sim::ShardMessage::flagDuplicate;
            engine_->post(shardOfNode(f.from), shardOfNode(f.to), d);
        }
        st.flights.erase(it);
    }

    /** Weather ate a sharded wire attempt: back off or abandon. */
    void
    shardDrop(ShardState &st,
              std::map<std::uint64_t, Flight>::iterator it,
              std::uint64_t laneId)
    {
        Flight &f = it->second;
        st.stats.linkDrops.add();
        if (f.attempts > cfg.replayAttempts) {
            shardAbandon(st, it, laneId);
            return;
        }
        const corm::sim::Tick wait = f.timeout;
        const double next = static_cast<double>(f.timeout)
            * (cfg.replayBackoff > 1.0 ? cfg.replayBackoff : 1.0);
        f.timeout = std::min(
            cfg.replayCap, static_cast<corm::sim::Tick>(next));
        const IslandId from = f.from;
        const std::uint64_t tag = it->first;
        simFor(from).schedule(
            wait, [this, from, tag] { shardReplay(from, tag); });
    }

    void
    shardReplay(IslandId from, std::uint64_t tag)
    {
        ShardState &st = stateFor(from);
        auto it = st.flights.find(tag);
        if (it == st.flights.end())
            return;
        Flight &f = it->second;
        auto lk = links.find(linkKey(f.from, f.to));
        if (lk == links.end()) {
            shardAbandon(st, it, 0);
            return;
        }
        ++f.attempts;
        f.hopSentAt = simFor(from).now();
        st.stats.linkReplays.add();
        st.stats.wireMessages.add();
        if (f.msg.type == MsgType::tune)
            st.stats.wireTunes.add();
        ++wireFrom[f.from];
        if (CORM_TRACE_ACTIVE(st.rec)) {
            Lane &lane = lk->second->laneFrom(f.from);
            st.rec->instant(laneTrackOn(st, lane), simFor(from).now(),
                            std::string("replay:")
                                + msgTypeName(f.msg.type),
                            "coord", {{"attempt", f.attempts}});
        }
        shardTransmit(st, *lk->second, tag);
    }

    /**
     * Replay budget exhausted on a sharded flight. The notification
     * is queued, not delivered: abandon observers mutate scenario
     * state and must only run on the coordinator (drainAbandoned).
     * @p laneId 0 means "derive from the flight's endpoints" (real
     * lane ids are never 0: linkKey is at least 1).
     */
    void
    shardAbandon(ShardState &st,
                 std::map<std::uint64_t, Flight>::iterator it,
                 std::uint64_t laneId)
    {
        const CoordMessage msg = it->second.msg;
        const IslandId from = it->second.from, to = it->second.to;
        st.flights.erase(it);
        st.stats.abandoned.add();
        if (laneId == 0)
            laneId = laneIdOf(from, to);
        const corm::sim::Tick when = simFor(from).now();
        if (CORM_TRACE_ACTIVE(st.rec)) {
            // Deliberately no flowEnd, same as abandonFlight: an
            // abandoned message's span dangles.
            st.rec->instant(
                laneTrackOn(st, laneId, from, to), when, "abandon",
                "coord",
                {{"entity", static_cast<std::uint64_t>(msg.entity)}});
        }
        if (onAbandon)
            st.abandonedQueue.push_back(
                {msg, when, laneId, ++st.abandonSeq});
    }

    /**
     * Sharded delivery sink: a boundary message reached its
     * destination shard. Runs on that shard's thread; the decoded
     * message rejoins the normal relay / final-delivery path.
     */
    void
    onLaneDeliver(const corm::sim::ShardMessage &e)
    {
        const IslandId node = e.node;
        ShardState &st = stateFor(node);
        // Mirror Mailbox's Activity::delivered: every arriving copy
        // counts, duplicates included.
        if (laneActivity_)
            st.laneLog.push_back({simFor(node).now(), e.lane,
                                  ++st.laneLogSeq, true});
        if (e.flags & corm::sim::ShardMessage::flagDuplicate) {
            st.stats.duplicates.add();
            if (CORM_TRACE_ACTIVE(st.rec)) {
                const CoordMessage m =
                    CoordMessage::decode(e.w0, e.w1, e.w2);
                st.rec->instant(nodeTrackOn(st, node),
                                simFor(node).now(),
                                std::string("hop:dup:")
                                    + msgTypeName(m.type),
                                "coord");
            }
            return;
        }
        ++wireInto[node];
        CoordMessage msg = CoordMessage::decode(e.w0, e.w1, e.w2);
        msg.trace = e.flow;
        msg.coalesced = e.aux;
        const int hops = e.hops + 1;
        if (node != msg.dst) {
            st.stats.hubRelays.add();
            if (CORM_TRACE_ACTIVE(st.rec) && msg.trace != 0)
                st.rec->flowStep(nodeTrackOn(st, node),
                                 simFor(node).now(), msg.trace,
                                 "coord.span", "coord");
            forwardFrom(node, msg, e.origin, hops);
            return;
        }
        if (CORM_TRACE_ACTIVE(st.rec) && msg.trace != 0) {
            // Final hop of the span (see onWireDeliver).
            if (msg.type == MsgType::ack || msg.seq == 0)
                st.rec->flowEnd(nodeTrackOn(st, node),
                                simFor(node).now(), msg.trace,
                                "coord.span", "coord");
            else
                st.rec->flowStep(nodeTrackOn(st, node),
                                 simFor(node).now(), msg.trace,
                                 "coord.span", "coord");
        }
        finalDeliver(msg, e.origin, hops);
    }

    void
    onWireDrop(std::uint64_t tag)
    {
        ShardState &st = states[0];
        auto it = st.flights.find(tag);
        if (it == st.flights.end())
            return; // a duplicate copy was eaten; nothing pending
        Flight &f = it->second;
        st.stats.linkDrops.add();
        if (CORM_TRACE_ACTIVE(rec_)) {
            rec_->instant(linkTrack(f.from, f.to), sim.now(),
                          "hop:drop", "coord");
        }
        if (f.attempts > cfg.replayAttempts) {
            abandonFlight(it);
            return;
        }
        const corm::sim::Tick wait = f.timeout;
        const double next = static_cast<double>(f.timeout)
            * (cfg.replayBackoff > 1.0 ? cfg.replayBackoff : 1.0);
        f.timeout = std::min(
            cfg.replayCap, static_cast<corm::sim::Tick>(next));
        sim.schedule(wait, [this, tag] { replayFlight(tag); });
    }

    void
    replayFlight(std::uint64_t tag)
    {
        ShardState &st = states[0];
        auto it = st.flights.find(tag);
        if (it == st.flights.end())
            return;
        Flight &f = it->second;
        auto lk = links.find(linkKey(f.from, f.to));
        if (lk == links.end()) {
            abandonFlight(it);
            return;
        }
        ++f.attempts;
        f.hopSentAt = sim.now();
        st.stats.linkReplays.add();
        st.stats.wireMessages.add();
        if (f.msg.type == MsgType::tune)
            st.stats.wireTunes.add();
        ++wireFrom[f.from];
        if (CORM_TRACE_ACTIVE(rec_)) {
            rec_->instant(linkTrack(f.from, f.to), sim.now(),
                          std::string("replay:")
                              + msgTypeName(f.msg.type),
                          "coord", {{"attempt", f.attempts}});
            if (f.msg.trace != 0)
                rec_->flowStep(linkTrack(f.from, f.to), sim.now(),
                               f.msg.trace, "coord.span", "coord");
        }
        lk->second->dir(f.from).send(f.msg.encodeWord0(),
                                     f.msg.encodeWord1(),
                                     f.msg.encodeWord2(), tag,
                                     f.msg.trace);
    }

    void
    abandonFlight(std::map<std::uint64_t, Flight>::iterator it)
    {
        const CoordMessage msg = it->second.msg;
        const IslandId from = it->second.from, to = it->second.to;
        states[0].flights.erase(it);
        states[0].stats.abandoned.add();
        logger.debug("abandoning %s for island %u on link %u-%u "
                     "after replay budget",
                     msgTypeName(msg.type),
                     static_cast<unsigned>(msg.dst),
                     static_cast<unsigned>(from),
                     static_cast<unsigned>(to));
        if (CORM_TRACE_ACTIVE(rec_)) {
            // Deliberately no flowEnd: an abandoned message's span
            // dangles (begin/steps without end), which is exactly
            // what the trace shows for information that was lost.
            rec_->instant(linkTrack(from, to), sim.now(), "abandon",
                          "coord",
                          {{"entity",
                            static_cast<std::uint64_t>(msg.entity)}});
        }
        if (onAbandon)
            onAbandon(msg);
    }

    void
    onWireDeliver(IslandId node, std::uint64_t w0, std::uint64_t w1,
                  std::uint64_t w2, std::uint64_t tag,
                  std::uint64_t flow)
    {
        ShardState &st = states[0];
        auto it = st.flights.find(tag);
        if (it == st.flights.end()) {
            // Second copy of a duplicated wire message: the first
            // copy consumed the flight record.
            st.stats.duplicates.add();
            if (CORM_TRACE_ACTIVE(rec_)) {
                CoordMessage m = CoordMessage::decode(w0, w1, w2);
                m.trace = flow;
                rec_->instant(nodeTrack(node), sim.now(),
                              std::string("hop:dup:")
                                  + msgTypeName(m.type),
                              "coord");
            }
            return;
        }
        Flight f = std::move(it->second);
        st.flights.erase(it);
        ++wireInto[node];
        const int hops = f.hopsSoFar + 1;
        CoordMessage msg = f.msg; // wire words + out-of-band fields
        if (CORM_TRACE_ACTIVE(rec_)) {
            rec_->complete(
                linkTrack(f.from, f.to), f.hopSentAt,
                sim.now() - f.hopSentAt,
                std::string("hop:") + msgTypeName(msg.type), "coord",
                {{"entity", static_cast<std::uint64_t>(msg.entity)},
                 {"seq", static_cast<int>(msg.seq)},
                 {"hop", hops}});
            // Stitch the hop onto its span (the channel convention:
            // flow ts = slice end). The sharded path emits this on
            // the lane track at transmit; without it here, legacy
            // fabric hops are invisible to per-link flow attribution
            // (obs/flowprofile.hpp).
            if (msg.trace != 0)
                rec_->flowStep(linkTrack(f.from, f.to), sim.now(),
                               msg.trace, "coord.span", "coord");
        }
        if (node != msg.dst) {
            st.stats.hubRelays.add();
            if (CORM_TRACE_ACTIVE(rec_) && msg.trace != 0)
                rec_->flowStep(nodeTrack(node), sim.now(),
                               msg.trace, "coord.span", "coord");
            forwardFrom(node, msg, f.originSentAt, hops);
            return;
        }
        if (CORM_TRACE_ACTIVE(rec_) && msg.trace != 0) {
            // Final hop of the span: an ack ending a reliable chain
            // or a fire-and-forget apply both terminate here; a
            // sequenced request still has its ack leg ahead.
            if (msg.type == MsgType::ack || msg.seq == 0)
                rec_->flowEnd(nodeTrack(node), sim.now(), msg.trace,
                              "coord.span", "coord");
            else
                rec_->flowStep(nodeTrack(node), sim.now(), msg.trace,
                               "coord.span", "coord");
        }
        finalDeliver(msg, f.originSentAt, hops);
    }

    void
    finalDeliver(const CoordMessage &msg, corm::sim::Tick origin,
                 int hops)
    {
        ShardState &sst = stateFor(msg.dst);
        auto dit = islands.find(msg.dst);
        if (dit == islands.end()) {
            // Destination departed while the message was in flight.
            dropAttributed(msg.dst, msg, msg.src, msg.dst);
            return;
        }
        ResourceIsland &dst = *dit->second;
        if (!migrated_.empty()
            && (msg.type == MsgType::tune
                || msg.type == MsgType::trigger)) {
            const IslandId home = resolveEntity(msg.dst, msg.entity);
            if (home != msg.dst) {
                // Live-migration forwarding. Dedup is consulted at
                // the old home FIRST (lookup-only): a retry whose
                // original applied here pre-migration is re-acked,
                // never forwarded — the exactly-once half the new
                // home cannot see. A miss forwards without claiming
                // the key, so the new home's window stays
                // authoritative for the forwarded copy.
                if (msg.seq != 0 && seenContains(msg.dst, msg)) {
                    sst.stats.duplicates.add();
                    sendAckFor(dst, msg);
                    return;
                }
                sst.stats.migForwards.add();
                CoordMessage onward = msg;
                onward.dst = home;
                forwardFrom(msg.dst, onward, origin, hops);
                return;
            }
        }
        sst.stats.delivered.add();
        sst.stats.deliveryLatencyUs.record(
            corm::sim::toMicros(simFor(msg.dst).now() - origin));
        sst.stats.hopsPerDelivery.record(static_cast<double>(hops));
        // Idempotent endpoint dedup of sequenced messages: a
        // reliable retransmission whose original got through applies
        // at most once but is re-acked so the sender stops retrying.
        if (msg.seq != 0 && msg.type != MsgType::ack
            && seenRecently(msg.dst, msg)) {
            sst.stats.duplicates.add();
            sendAckFor(dst, msg);
            return;
        }
        corm::obs::TraceScope span(recFor(sst), msg.trace,
                                   msg.seq == 0);
        switch (msg.type) {
          case MsgType::tune:
            sst.stats.appliedTunes.add(msg.coalesced);
            dst.applyTune(msg.entity, msg.value);
            if (msg.seq != 0)
                sendAckFor(dst, msg);
            break;
          case MsgType::trigger:
            dst.applyTrigger(msg.entity);
            if (msg.seq != 0)
                sendAckFor(dst, msg);
            break;
          case MsgType::registerEntity: {
            EntityBinding binding;
            binding.ref = EntityRef{msg.src, msg.entity};
            binding.ip = corm::net::IpAddr(
                static_cast<std::uint32_t>(
                    std::bit_cast<std::uint64_t>(msg.value)));
            dst.learnBinding(binding);
            // Registrations are acknowledged even without a seq so
            // the announcer can retry losses.
            sendAckFor(dst, msg);
            break;
          }
          case MsgType::ack: {
            auto it = ackObservers.find(msg.dst);
            if (it != ackObservers.end() && it->second)
                it->second(msg);
            dispatchAckMulti(msg);
            if (catchAllAckObserver)
                catchAllAckObserver(msg);
            break;
          }
        }
    }

    /**
     * Dispatch an ack to the token observers at its endpoint. A
     * callback may register or unregister observers (even destroy
     * its own sender), so iterate a snapshot and re-check each
     * token's liveness before calling — a callback belonging to a
     * sender an earlier callback destroyed must not run.
     */
    void
    dispatchAckMulti(const CoordMessage &msg)
    {
        auto mit = ackMulti_.find(msg.dst);
        if (mit == ackMulti_.end())
            return;
        const std::vector<AckEntry> snap = mit->second;
        for (const AckEntry &e : snap) {
            auto again = ackMulti_.find(msg.dst);
            if (again == ackMulti_.end())
                break;
            bool alive = false;
            for (const AckEntry &cur : again->second) {
                if (cur.token == e.token) {
                    alive = true;
                    break;
                }
            }
            if (alive && e.fn)
                e.fn(msg);
        }
    }

    void
    sendAckFor(ResourceIsland &learner, const CoordMessage &msg)
    {
        CoordMessage ack;
        ack.type = MsgType::ack;
        ack.src = learner.id();
        ack.dst = msg.src;
        ack.entity = msg.entity;
        ack.seq = msg.seq;     // echo: the sender matches by seq
        ack.trace = msg.trace; // the return legs stay on the span
        send(ack);
    }

    /**
     * Endpoint dedup key. The type is part of the key: two reliable
     * senders sharing a source endpoint (an announcer and a trigger
     * sender, say) each start their sequence space at 1, and a
     * window keyed on (src, seq) alone would eat the second sender's
     * first messages as replays of the first's. The packed lanes are
     * (type:8 << 48) | (src:16 << 32) | seq:32 — full-width, so no
     * two distinct (type, src, seq) triples ever alias. The key is
     * independent of the route taken, which is what makes dedup
     * stable across a re-parent: a tune re-driven under a new route
     * still matches the copy that slipped through the old one.
     */
    static std::uint64_t
    seenKey(const CoordMessage &msg)
    {
        return (static_cast<std::uint64_t>(msg.type) << 48)
            | (static_cast<std::uint64_t>(msg.src) << 32)
            | static_cast<std::uint64_t>(msg.seq);
    }

    /** True if (type, src, seq) was recently applied at @p endpoint;
     *  records the key on a miss. */
    bool
    seenRecently(IslandId endpoint, const CoordMessage &msg)
    {
        const std::uint64_t key = seenKey(msg);
        SeenWindow &w = seen[endpoint];
        for (std::uint64_t k : w.keys) {
            if (k == key)
                return true;
        }
        w.keys[w.head++ % w.keys.size()] = key;
        return false;
    }

    /** Lookup-only probe of the dedup window (no recording): the
     *  forwarding path, where the old home must not claim keys it
     *  never applied. */
    bool
    seenContains(IslandId endpoint, const CoordMessage &msg) const
    {
        const std::uint64_t key = seenKey(msg);
        const SeenWindow &w = seen[endpoint];
        for (std::uint64_t k : w.keys)
            if (k == key)
                return true;
        return false;
    }

    /** Per-link trace track (lazy). */
    int
    linkTrack(IslandId a, IslandId b)
    {
        const std::uint32_t key = linkKey(a, b);
        auto it = linkTracks.find(key);
        if (it != linkTracks.end())
            return it->second;
        const int trk = rec_->track(
            "fabric", cfg.name + "."
                          + std::to_string(std::min(a, b)) + "-"
                          + std::to_string(std::max(a, b)));
        linkTracks[key] = trk;
        return trk;
    }

    /** Per-island trace track (lazy): relays, aggregation, applies. */
    int
    nodeTrack(IslandId node)
    {
        auto it = nodeTracks.find(node);
        if (it != nodeTracks.end())
            return it->second;
        const int trk = rec_->track(
            "fabric", cfg.name + "@" + std::to_string(node));
        nodeTracks[node] = trk;
        return trk;
    }

    /**
     * The recorder instrumentation on @p st's shard writes to:
     * the legacy recorder when one is attached (legacy mode), else
     * the shard's window recorder (sharded capture), else null.
     */
    corm::obs::TraceRecorder *
    recFor(ShardState &st) const
    {
        return rec_ ? rec_ : st.rec;
    }

    /** nodeTrack on whichever recorder recFor resolves to. */
    int
    nodeTrackOn(ShardState &st, IslandId node)
    {
        if (!sharded())
            return nodeTrack(node);
        auto it = st.nodeTracks.find(node);
        if (it != st.nodeTracks.end())
            return it->second;
        const int trk = st.rec->track(
            "fabric", cfg.name + "@" + std::to_string(node));
        st.nodeTracks[node] = trk;
        return trk;
    }

    /**
     * Directional lane track on @p st's window recorder (sharded
     * capture only). Directional — unlike the legacy combined
     * "lo-hi" link track — so each lane track is written only by
     * its sender shard.
     */
    int
    laneTrackOn(ShardState &st, std::uint64_t laneId, IslandId from,
                IslandId to)
    {
        auto it = st.laneTracks.find(laneId);
        if (it != st.laneTracks.end())
            return it->second;
        const int trk = st.rec->track(
            "fabric", cfg.name + "." + std::to_string(from) + "-"
                          + std::to_string(to));
        st.laneTracks[laneId] = trk;
        return trk;
    }

    int
    laneTrackOn(ShardState &st, const Lane &lane)
    {
        return laneTrackOn(st, lane.id, lane.from, lane.to);
    }

    /** Directional lane id from the endpoint pair (see makeLink). */
    static std::uint64_t
    laneIdOf(IslandId from, IslandId to)
    {
        return (static_cast<std::uint64_t>(linkKey(from, to)) << 1)
            | (from < to ? 0u : 1u);
    }

    struct SeenWindow
    {
        std::array<std::uint64_t, 64> keys{};
        std::size_t head = 0;
    };

    /** Shard owning @p node (0 in legacy mode). */
    int
    shardOfNode(IslandId node) const
    {
        return static_cast<std::size_t>(node) < shardOf.size()
                   ? shardOf[node]
                   : 0;
    }

    ShardState &
    stateFor(IslandId node)
    {
        return states[static_cast<std::size_t>(shardOfNode(node))];
    }

    /** Simulator that @p node's events run on. */
    corm::sim::Simulator &
    simFor(IslandId node)
    {
        return engine_ ? engine_->sim(shardOfNode(node)) : sim;
    }

    /** Fold @p s into @p into (counter sums, Summary merges). */
    static void
    foldStats(FabricStats &into, const FabricStats &s)
    {
        into.sent.add(s.sent.value());
        into.delivered.add(s.delivered.value());
        into.dropped.add(s.dropped.value());
        into.hubRelays.add(s.hubRelays.value());
        into.wireMessages.add(s.wireMessages.value());
        into.wireTunes.add(s.wireTunes.value());
        into.appliedTunes.add(s.appliedTunes.value());
        into.linkDrops.add(s.linkDrops.value());
        into.linkReplays.add(s.linkReplays.value());
        into.abandoned.add(s.abandoned.value());
        into.duplicates.add(s.duplicates.value());
        into.aggFolded.add(s.aggFolded.value());
        into.aggBatches.add(s.aggBatches.value());
        into.triggerBypass.add(s.triggerBypass.value());
        into.migForwards.add(s.migForwards.value());
        into.retries.add(s.retries.value());
        into.deliveryLatencyUs.merge(s.deliveryLatencyUs);
        into.hopsPerDelivery.merge(s.hopsPerDelivery);
    }

    corm::sim::Simulator &sim;
    FabricParams cfg;
    IslandId hubId = 0;
    bool dirty = true;
    std::map<IslandId, ResourceIsland *> islands;
    std::map<std::uint32_t, std::unique_ptr<Link>> links;
    std::vector<std::unique_ptr<Link>> retired;
    std::map<std::uint32_t, IslandId> nextHop;
    std::map<IslandId, IslandId> parent;
    std::map<IslandId, std::vector<IslandId>> children;
    /** Per-shard mutable state; exactly one entry in legacy mode. */
    std::vector<ShardState> states = std::vector<ShardState>(1);
    mutable FabricStats merged_; ///< stats() scratch (sharded)
    corm::sim::ShardedEngine *engine_ = nullptr;
    std::vector<int> shardOf; ///< island id -> shard (sharded mode)
    // Node-indexed tallies, sized from the attached topology at
    // ensureBuilt() (highest island id + 1): the 16-bit id space is
    // too large for fixed flat tables, and small runs shouldn't pay
    // for islands they never attach. Each entry has a single writer
    // (the owner shard), and the vectors only grow, never shrink.
    std::vector<std::uint64_t> wireFrom;
    std::vector<std::uint64_t> wireInto;
    std::vector<std::size_t> aggDepth;
    std::vector<SeenWindow> seen;
    std::map<IslandId, std::function<void(const CoordMessage &)>>
        ackObservers;
    /** One token-registered ack observer (see addAckObserver). */
    struct AckEntry
    {
        std::uint64_t token = 0;
        std::function<void(const CoordMessage &)> fn;
    };
    std::map<IslandId, std::vector<AckEntry>> ackMulti_;
    std::uint64_t ackToken_ = 0;
    std::function<void(const CoordMessage &)> catchAllAckObserver;
    std::uint64_t routeEpoch_ = 0;
    ChurnCounters churn_;
    /** Barrier tick override while a churn action runs (ChurnScope). */
    corm::sim::Tick churnNow_ = 0;
    std::vector<PendingReparent> pendingReparents_;
    /** (old home, entity) -> new home forwarding pointers. */
    std::map<std::uint64_t, IslandId> migrated_;
    AbandonFn onAbandon;
    corm::obs::TraceRecorder *rec_ = nullptr;
    std::map<std::uint32_t, int> linkTracks;
    std::map<IslandId, int> nodeTracks;
    bool laneActivity_ = false;
    std::vector<LaneEvent> laneScratch_;     ///< drain scratch
    std::vector<AbandonRecord> abandonScratch_;
    corm::sim::Logger logger{"coord.fabric"};
};

} // namespace corm::coord
