/**
 * @file
 * Multi-island coordination fabric.
 *
 * The prototype's CoordChannel is point-to-point because the paper's
 * platform has exactly two islands; §5's ongoing work — "evaluations
 * of the scalability of such mechanisms to large-scale multicore
 * platforms ... distributed coordination algorithms across multiple
 * island resource managers" — needs an N-island transport. The
 * fabric provides two topologies:
 *
 *  * **star** — every message relays through a hub island (the
 *    global controller's home, Dom0-style). Two hops for any
 *    non-hub pair; the hub is a serialisation point.
 *  * **mesh** — direct island-to-island delivery, one hop. What
 *    §3.3's "hardware-supported queues / fast on-chip shared memory"
 *    would provide.
 *
 * Semantics match CoordChannel: Tune/Trigger dispatch to the
 * destination island, registrations install bindings and are
 * acknowledged.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "coord/island.hpp"
#include "coord/message.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace corm::coord {

/** Fabric topology. */
enum class FabricTopology { star, mesh };

/** Aggregate fabric statistics. */
struct FabricStats
{
    corm::sim::Counter sent;
    corm::sim::Counter delivered;
    corm::sim::Counter dropped; ///< unknown destination
    corm::sim::Counter hubRelays;
    /** Send-to-apply latency (microseconds). */
    corm::sim::Summary deliveryLatencyUs;
};

/**
 * An N-island coordination transport with configurable topology and
 * per-hop latency.
 */
class CoordFabric
{
  public:
    /**
     * @param simulator Event engine.
     * @param topology star (hub relay) or mesh (direct).
     * @param hop_latency One-way latency per hop.
     * @param hub Hub island id (star topology only).
     */
    CoordFabric(corm::sim::Simulator &simulator, FabricTopology topology,
                corm::sim::Tick hop_latency, IslandId hub = 0)
        : sim(simulator), topo(topology), hopLatency(hop_latency),
          hubId(hub)
    {}

    /** Attach an island to the fabric. */
    void attach(ResourceIsland &island) { islands[island.id()] = &island; }

    /** Number of attached islands. */
    std::size_t islandCount() const { return islands.size(); }

    /** Observe delivered acks (for ReliableAnnouncer-style use). */
    void
    setAckObserver(std::function<void(const CoordMessage &)> fn)
    {
        ackObserver = std::move(fn);
    }

    /**
     * Send a message toward msg.dst. Star topology relays through
     * the hub unless source or destination is the hub itself.
     */
    void
    send(const CoordMessage &msg)
    {
        stats_.sent.add();
        auto it = islands.find(msg.dst);
        if (it == islands.end()) {
            stats_.dropped.add();
            return;
        }
        int hops = 1;
        if (topo == FabricTopology::star && msg.src != hubId
            && msg.dst != hubId) {
            hops = 2;
            stats_.hubRelays.add();
        }
        const corm::sim::Tick sent_at = sim.now();
        ResourceIsland *dst = it->second;
        sim.schedule(hopLatency * static_cast<corm::sim::Tick>(hops),
                     [this, dst, msg, sent_at] {
                         stats_.delivered.add();
                         stats_.deliveryLatencyUs.record(
                             corm::sim::toMicros(sim.now() - sent_at));
                         dispatch(*dst, msg);
                     });
    }

    /** Fabric statistics. */
    const FabricStats &stats() const { return stats_; }

    /** Per-hop latency. */
    corm::sim::Tick perHopLatency() const { return hopLatency; }

  private:
    void
    dispatch(ResourceIsland &dst, const CoordMessage &msg)
    {
        switch (msg.type) {
          case MsgType::tune:
            dst.applyTune(msg.entity, msg.value);
            break;
          case MsgType::trigger:
            dst.applyTrigger(msg.entity);
            break;
          case MsgType::registerEntity: {
            EntityBinding binding;
            binding.ref = EntityRef{msg.src, msg.entity};
            binding.ip = corm::net::IpAddr(
                static_cast<std::uint32_t>(
                    std::bit_cast<std::uint64_t>(msg.value)));
            dst.learnBinding(binding);
            CoordMessage ack;
            ack.type = MsgType::ack;
            ack.src = dst.id();
            ack.dst = msg.src;
            ack.entity = msg.entity;
            send(ack);
            break;
          }
          case MsgType::ack:
            if (ackObserver)
                ackObserver(msg);
            break;
        }
    }

    corm::sim::Simulator &sim;
    FabricTopology topo;
    corm::sim::Tick hopLatency;
    IslandId hubId;
    std::map<IslandId, ResourceIsland *> islands;
    std::function<void(const CoordMessage &)> ackObserver;
    FabricStats stats_;
};

} // namespace corm::coord
