/**
 * @file
 * The ResourceIsland abstraction.
 *
 * This is the standard interface the paper argues future system
 * software should export (§5): every independently managed set of
 * resources — however heterogeneous its internal abstractions (VMs
 * and credits on x86, message queues and microengine threads on the
 * IXP) — presents the same small coordination surface: apply a Tune,
 * apply a Trigger, register entities, and report aggregate state.
 */

#pragma once

#include <cstdint>
#include <string>

#include "coord/types.hpp"

namespace corm::coord {

/**
 * Abstract base for a scheduling island's resource manager, as seen
 * by the coordination layer. Concrete implementations translate the
 * generic operations into their own scheduler's units — e.g. the x86
 * island maps Tune deltas onto Xen credit-scheduler weights and
 * Trigger onto a run-queue boost, while the IXP island maps Tune onto
 * per-queue microengine thread counts.
 */
class ResourceIsland
{
  public:
    virtual ~ResourceIsland() = default;

    /** Platform-wide island identifier. */
    virtual IslandId id() const = 0;

    /** Human-readable island name, e.g. "x86-xen" or "ixp2850". */
    virtual const std::string &name() const = 0;

    /**
     * Apply a Tune: adjust the resource allocation of @p entity by
     * the signed @p delta, in abstract units the island translates
     * (for Xen: credit-weight points; for the IXP: dequeue-thread
     * share). Unknown entities must be ignored (a stale tune racing
     * an entity teardown is legal and harmless).
     */
    virtual void applyTune(EntityId entity, double delta) = 0;

    /**
     * Apply a Trigger: give @p entity resources as soon as possible
     * (preemptive semantics). Unknown entities must be ignored.
     */
    virtual void applyTrigger(EntityId entity) = 0;

    /**
     * Learn about a remote entity binding (announced by the global
     * controller after registration), e.g. the IXP learning which
     * destination IP belongs to which x86 VM. Default: ignore.
     */
    virtual void learnBinding(const EntityBinding &binding)
    {
        (void)binding;
    }

    /**
     * Estimated instantaneous power draw of the island, in watts.
     * Used by the platform-level power-budgeting extension (§1,
     * use-case 2). Islands without a power model report 0.
     */
    virtual double currentPowerWatts() const { return 0.0; }
};

} // namespace corm::coord
