/**
 * @file
 * Identifier types shared by the coordination layer.
 *
 * An *island* is a set of platform resources under one independent
 * resource manager (the Xen credit scheduler for x86 cores, the IXP
 * runtime for microengines). An *entity* is a manageable unit inside
 * an island — a VM/domain on the x86 side, a flow queue on the IXP
 * side. Coordination messages name entities by (island, entity) pairs.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/packet.hpp"

namespace corm::coord {

/** Identifier of a scheduling island, unique platform-wide. */
using IslandId = std::uint16_t;

/** Maximum number of islands the 16-bit id space can address. */
inline constexpr std::size_t maxIslands = 65536;

/**
 * Reliable-delivery sequence number (coord/reliable.hpp). 0 marks a
 * fire-and-forget message; a dense sender would need 2^32 - 1
 * unacknowledged in-flight sends to wrap the space, so wrap-induced
 * dedup suppression is unreachable in practice.
 */
using SeqNum = std::uint32_t;

/** Identifier of a managed entity, unique within its island. */
using EntityId = std::uint32_t;

/** Sentinel entity id naming "no entity". */
inline constexpr EntityId invalidEntity = 0xffffffffu;

/** Fully qualified entity reference. */
struct EntityRef
{
    IslandId island = 0;
    EntityId entity = invalidEntity;

    bool
    operator==(const EntityRef &o) const
    {
        return island == o.island && entity == o.entity;
    }
};

/**
 * Registration record announced to the global controller when an
 * entity is deployed: which island manages it, its name, and the
 * network identity remote islands use to recognise its traffic
 * (the IXP classifies flows to VMs by destination IP, §3.2).
 */
struct EntityBinding
{
    EntityRef ref;
    std::string name;
    corm::net::IpAddr ip;
};

} // namespace corm::coord
