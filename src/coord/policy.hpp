/**
 * @file
 * Coordination policy framework and the policies the paper evaluates.
 *
 * A policy runs inside the *observer* island (the IXP in the
 * prototype), consumes that island's local observations — classified
 * request types, stream properties, buffer occupancy — and emits
 * Tune/Trigger messages toward entities in remote islands. Policies
 * are deliberately decoupled from the channel: they emit through an
 * injected sender so they can be unit-tested in isolation and reused
 * over any transport.
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "coord/message.hpp"
#include "coord/types.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace corm::coord {

/** Stream properties the IXP extracts from RTSP session setup. */
struct StreamInfo
{
    double bitrateBps = 0.0;
    double fps = 0.0;
};

/**
 * Base class for coordination policies. Subclasses override the
 * observation hooks they care about; all emission goes through
 * sendTune()/sendTrigger() so statistics are uniform.
 */
class CoordinationPolicy
{
  public:
    using SendFn = std::function<void(const CoordMessage &)>;

    /** @param policy_name For stats and logs. */
    explicit CoordinationPolicy(std::string policy_name)
        : name_(std::move(policy_name))
    {}

    virtual ~CoordinationPolicy() = default;

    /**
     * Attach the message transport and the observer island's id
     * (stamped into the src field of emitted messages).
     */
    void
    attachSender(IslandId self, SendFn fn)
    {
        selfIsland = self;
        sender = std::move(fn);
    }

    /**
     * Attach a trace recorder (nullptr detaches): every emitted
     * Tune/Trigger becomes the root of a causal span — a decision
     * slice on @p process's "policy" track plus a flow begin whose
     * id travels with the message (CoordMessage::trace) all the way
     * to the remote scheduler effect. @p clock stamps the events.
     */
    void
    attachTrace(corm::obs::TraceRecorder *recorder,
                const std::string &process,
                const corm::sim::Simulator *clock)
    {
        rec = recorder;
        traceClock = clock;
        traceTrack = -1;
        traceProcess = process;
    }

    /** A request of class @p request_class was classified for @p vm. */
    virtual void
    onRequestClassified(const EntityRef &vm, std::uint32_t request_class)
    {
        (void)vm;
        (void)request_class;
    }

    /** Stream properties learned/updated for @p vm. */
    virtual void
    onStreamInfo(const EntityRef &vm, const StreamInfo &info)
    {
        (void)vm;
        (void)info;
    }

    /** Buffer occupancy for @p vm sampled at @p now. */
    virtual void
    onBufferLevel(const EntityRef &vm, std::uint64_t bytes,
                  corm::sim::Tick now)
    {
        (void)vm;
        (void)bytes;
        (void)now;
    }

    /** Periodic hook (monitoring-driven policies). */
    virtual void onPeriodic(corm::sim::Tick now) { (void)now; }

    /** Policy name. */
    const std::string &name() const { return name_; }

    /** Tunes emitted so far. */
    std::uint64_t tunesSent() const { return tunes.value(); }

    /** Triggers emitted so far. */
    std::uint64_t triggersSent() const { return triggers.value(); }

  protected:
    /** Emit a Tune for @p target with signed @p delta. */
    void
    sendTune(const EntityRef &target, double delta)
    {
        if (!sender)
            return;
        CoordMessage m;
        m.type = MsgType::tune;
        m.src = selfIsland;
        m.dst = target.island;
        m.entity = target.entity;
        m.value = delta;
        tunes.add();
        // Guard before the call: the TraceArg list (a vector and its
        // strings) would otherwise be built per Tune even untraced.
        if (CORM_TRACE_ACTIVE(rec))
            beginSpan(m,
                      {{"entity", static_cast<std::uint64_t>(m.entity)},
                       {"delta", delta}});
        sender(m);
    }

    /** Emit a Trigger for @p target. */
    void
    sendTrigger(const EntityRef &target)
    {
        if (!sender)
            return;
        CoordMessage m;
        m.type = MsgType::trigger;
        m.src = selfIsland;
        m.dst = target.island;
        m.entity = target.entity;
        triggers.add();
        if (CORM_TRACE_ACTIVE(rec))
            beginSpan(
                m, {{"entity", static_cast<std::uint64_t>(m.entity)}});
        sender(m);
    }

  private:
    /** Root a causal span at this decision (no-op untraced). */
    void
    beginSpan(CoordMessage &m, std::vector<corm::obs::TraceArg> args)
    {
        if (!CORM_TRACE_ACTIVE(rec) || !traceClock)
            return;
        if (traceTrack < 0)
            traceTrack = rec->track(traceProcess, "policy:" + name_);
        m.trace = rec->newFlow();
        const corm::sim::Tick now = traceClock->now();
        rec->complete(traceTrack, now, 0,
                      std::string("decide:") + msgTypeName(m.type),
                      "coord", std::move(args));
        rec->flowBegin(traceTrack, now, m.trace, "coord.span",
                       "coord");
    }

    std::string name_;
    IslandId selfIsland = 0;
    SendFn sender;
    corm::obs::TraceRecorder *rec = nullptr;
    const corm::sim::Simulator *traceClock = nullptr;
    std::string traceProcess;
    int traceTrack = -1;
    corm::sim::Counter tunes;
    corm::sim::Counter triggers;
};

/**
 * The RUBiS coordination scheme (§3.1): a table maps each classified
 * request class to a set of weight adjustments for the application's
 * component VMs — browsing requests boost the web tier and shrink the
 * database tier, servlet/write requests do the reverse, and the
 * application server follows whichever tier is active.
 *
 * The paper applies tunes per request and observes occasional
 * mis-application when read/write request types oscillate faster than
 * the (PCIe-latency-delayed) tunes take effect. The optional damping
 * mode (an EWMA with a hysteresis band, our §5-style extension)
 * trades reaction speed against that oscillation; the
 * ablation_oscillation bench quantifies the trade.
 */
class RequestTypeTunePolicy : public CoordinationPolicy
{
  public:
    /** Weight adjustments to issue for one request class. */
    using Adjustments = std::vector<std::pair<EntityRef, double>>;

    /** Damping configuration (disabled by default, as in the paper). */
    struct Damping
    {
        bool enabled = false;
        /** EWMA smoothing factor in (0, 1]; 1 = undamped. */
        double alpha = 0.3;
        /** Minimum |EWMA - last sent| before a tune is emitted. */
        double hysteresis = 32.0;
    };

    RequestTypeTunePolicy() : RequestTypeTunePolicy(Damping{}) {}

    explicit RequestTypeTunePolicy(Damping damping)
        : CoordinationPolicy("rubis-request-tune"), damp(damping)
    {}

    /** Define the adjustments for @p request_class. */
    void
    setAdjustments(std::uint32_t request_class, Adjustments adj)
    {
        table[request_class] = std::move(adj);
    }

    void
    onRequestClassified(const EntityRef &vm,
                        std::uint32_t request_class) override
    {
        (void)vm; // adjustments name their own targets
        auto it = table.find(request_class);
        if (it == table.end())
            return;
        for (const auto &[target, delta] : it->second) {
            if (!damp.enabled) {
                sendTune(target, delta);
                continue;
            }
            auto &st = dampState[key(target)];
            st.ewma = damp.alpha * delta + (1.0 - damp.alpha) * st.ewma;
            if (std::abs(st.ewma - st.lastSent) >= damp.hysteresis) {
                sendTune(target, st.ewma - st.lastSent);
                st.lastSent = st.ewma;
            }
        }
    }

  private:
    struct DampState
    {
        double ewma = 0.0;
        double lastSent = 0.0;
    };

    static std::uint64_t
    key(const EntityRef &ref)
    {
        return (static_cast<std::uint64_t>(ref.island) << 32)
            | ref.entity;
    }

    std::map<std::uint32_t, Adjustments> table;
    Damping damp;
    std::map<std::uint64_t, DampState> dampState;
};

/**
 * The MPlayer stream-property scheme (§3.2, coordination scheme 1):
 * when the IXP learns a stream's bit- and frame-rate at RTSP session
 * setup, it tunes the hosting VM's weight up for high-rate streams
 * and down for low-rate ones, translating stream-level properties
 * into CPU allocations.
 */
class StreamQosTunePolicy : public CoordinationPolicy
{
  public:
    struct Config
    {
        /** Streams at or above these rates count as "high". */
        double highBitrateBps = 800e3;
        double highFps = 24.0;
        /** Weight delta for high-rate streams. */
        double increaseDelta = +128.0;
        /** Weight delta for low-rate streams. */
        double decreaseDelta = -64.0;
        /**
         * Scale the increase with how demanding the stream is:
         * extra delta per Mbit/s above the high threshold.
         */
        double perMbpsBonus = 128.0;
    };

    StreamQosTunePolicy() : StreamQosTunePolicy(Config{}) {}

    explicit StreamQosTunePolicy(Config config)
        : CoordinationPolicy("stream-qos-tune"), cfg(config)
    {}

    void
    onStreamInfo(const EntityRef &vm, const StreamInfo &info) override
    {
        const bool high = info.bitrateBps >= cfg.highBitrateBps
            || info.fps >= cfg.highFps;
        double delta = high ? cfg.increaseDelta : cfg.decreaseDelta;
        if (high && info.bitrateBps > cfg.highBitrateBps) {
            delta += cfg.perMbpsBonus
                * (info.bitrateBps - cfg.highBitrateBps) / 1e6;
        }
        // Only emit when the decision changes; stream properties are
        // per-session state, not per-packet noise.
        auto it = lastDelta.find(key(vm));
        if (it != lastDelta.end() && it->second == delta)
            return;
        lastDelta[key(vm)] = delta;
        sendTune(vm, delta);
    }

  private:
    static std::uint64_t
    key(const EntityRef &ref)
    {
        return (static_cast<std::uint64_t>(ref.island) << 32)
            | ref.entity;
    }

    Config cfg;
    std::map<std::uint64_t, double> lastDelta;
};

/**
 * The system-level buffer-monitoring scheme (§3.2, coordination
 * scheme 2): when a VM's packet-buffer occupancy in IXP DRAM crosses
 * a threshold, fire an immediate Trigger so the host boosts the
 * dequeuing VM before the frontend buffer overflows and drops
 * packets. A per-entity refractory gap prevents trigger storms while
 * occupancy hovers at the threshold.
 */
class BufferThresholdTriggerPolicy : public CoordinationPolicy
{
  public:
    struct Config
    {
        /** Occupancy (bytes) at which to fire; paper uses 128 KiB. */
        std::uint64_t thresholdBytes = 128 * 1024;
        /** Minimum spacing between triggers for one entity. */
        corm::sim::Tick minGap = 20 * corm::sim::msec;
        /**
         * If true, re-arm only after occupancy falls below the
         * threshold (edge triggering); if false, fire every minGap
         * while above it (level triggering). The trigger-semantics
         * ablation compares the two.
         */
        bool edgeTriggered = false;
    };

    BufferThresholdTriggerPolicy()
        : BufferThresholdTriggerPolicy(Config{})
    {}

    explicit BufferThresholdTriggerPolicy(Config config)
        : CoordinationPolicy("buffer-threshold-trigger"), cfg(config)
    {}

    void
    onBufferLevel(const EntityRef &vm, std::uint64_t bytes,
                  corm::sim::Tick now) override
    {
        auto &st = state[key(vm)];
        if (bytes < cfg.thresholdBytes) {
            st.armed = true;
            return;
        }
        if (cfg.edgeTriggered && !st.armed)
            return;
        if (st.lastFire != 0 && now - st.lastFire < cfg.minGap)
            return;
        st.lastFire = now;
        st.armed = false;
        sendTrigger(vm);
    }

  private:
    struct State
    {
        corm::sim::Tick lastFire = 0;
        bool armed = true;
    };

    static std::uint64_t
    key(const EntityRef &ref)
    {
        return (static_cast<std::uint64_t>(ref.island) << 32)
            | ref.entity;
    }

    Config cfg;
    std::map<std::uint64_t, State> state;
};

/**
 * Platform-level power budgeting (§1 use-case 2; §5 ongoing work):
 * keeps the sum of island power draws under a cap by tuning down the
 * lowest-priority entities, restoring them when headroom returns.
 * Power must be capped at *platform* level because slowing cores in
 * one island can strand work in another — which is exactly why this
 * runs as a coordination policy rather than inside any one island.
 */
class PowerCapPolicy : public CoordinationPolicy
{
  public:
    struct Config
    {
        double capWatts = 100.0;
        /** Hysteresis: restore only below this fraction of the cap. */
        double restoreFraction = 0.9;
        /** Weight step per control period. */
        double stepDelta = 64.0;
        /** Maximum cumulative reduction per entity. */
        double maxReduction = 256.0;
    };

    /** Reads the platform's current total power draw. */
    using PowerReader = std::function<double()>;

    PowerCapPolicy(Config config, PowerReader reader)
        : CoordinationPolicy("power-cap"), cfg(config),
          readPower(std::move(reader))
    {}

    /**
     * Register a throttleable entity; lower priority values are
     * throttled first.
     */
    void
    addEntity(const EntityRef &ref, int priority)
    {
        victims.push_back({ref, priority, 0.0});
        std::stable_sort(victims.begin(), victims.end(),
                         [](const Victim &a, const Victim &b) {
                             return a.priority < b.priority;
                         });
    }

    void
    onPeriodic(corm::sim::Tick now) override
    {
        (void)now;
        if (!readPower)
            return;
        const double power = readPower();
        if (power > cfg.capWatts) {
            // Throttle the lowest-priority entity with headroom.
            for (auto &v : victims) {
                if (v.reduced < cfg.maxReduction) {
                    sendTune(v.ref, -cfg.stepDelta);
                    v.reduced += cfg.stepDelta;
                    ++throttleActions;
                    return;
                }
            }
        } else if (power < cfg.capWatts * cfg.restoreFraction) {
            // Restore the highest-priority throttled entity first.
            for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
                if (it->reduced > 0.0) {
                    const double back =
                        std::min(cfg.stepDelta, it->reduced);
                    sendTune(it->ref, back);
                    it->reduced -= back;
                    ++restoreActions;
                    return;
                }
            }
        }
    }

    /** Number of throttle steps taken. */
    std::uint64_t throttles() const { return throttleActions; }

    /** Number of restore steps taken. */
    std::uint64_t restores() const { return restoreActions; }

  private:
    struct Victim
    {
        EntityRef ref;
        int priority;
        double reduced;
    };

    Config cfg;
    PowerReader readPower;
    std::vector<Victim> victims;
    std::uint64_t throttleActions = 0;
    std::uint64_t restoreActions = 0;
};

} // namespace corm::coord
