/**
 * @file
 * Deterministic simulated-time event tracing in Chrome trace-event
 * format (loadable in Perfetto / chrome://tracing).
 *
 * Event model (DESIGN.md §8):
 *
 *  * **tracks** — each island (and the coordination fabric between
 *    them) maps to a (process, thread) pair; components register
 *    their track lazily by name, so the pid/tid assignment follows
 *    deterministic first-registration order;
 *  * **slices** ('X') — spans with a simulated-time start and
 *    duration (e.g. a channel hop: ts = send time, dur = transit);
 *  * **instants** ('i') and **counters** ('C') — point events and
 *    sampled series (queue occupancy);
 *  * **flows** ('s'/'t'/'f') — the causal coordination spans: a
 *    TraceId allocated at policy decision time is carried with the
 *    message through the mailbox, retries and the remote island's
 *    translation into scheduler action, and each leg emits a flow
 *    event bound to the slice it sits on, so Perfetto draws one
 *    arrow chain from classifier decision to scheduler effect.
 *
 * Overhead policy: tracing costs nothing when off. At compile time,
 * defining CORM_OBS_NO_TRACE turns every CORM_TRACE_ACTIVE() site
 * into a constant-false branch the compiler deletes. At run time the
 * recorder is attached by pointer; a null pointer (the default
 * everywhere) short-circuits before any argument is evaluated. Hot
 * paths therefore pay one predictable branch.
 *
 * Determinism: all timestamps are simulated Ticks, all ids are
 * allocated from per-recorder counters, and events serialize in
 * emission order — so for a fixed (config, seed) the serialized
 * trace is byte-identical regardless of host threading (--jobs), as
 * long as each trial owns its recorder (the harness guarantees
 * this).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "sim/types.hpp"

namespace corm::obs {

/** Causal span id; 0 means "no flow". */
using TraceId = std::uint64_t;

/** True when tracing is compiled in (see the overhead policy). */
#ifdef CORM_OBS_NO_TRACE
inline constexpr bool traceCompiledIn = false;
#else
inline constexpr bool traceCompiledIn = true;
#endif

/** One trace-event argument; numbers serialize unquoted. */
struct TraceArg
{
    std::string key;
    std::string value;
    bool quoted = false;

    TraceArg(std::string k, double v) : key(std::move(k))
    {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        value = buf;
    }
    TraceArg(std::string k, std::uint64_t v)
        : key(std::move(k)), value(std::to_string(v))
    {}
    TraceArg(std::string k, int v)
        : key(std::move(k)), value(std::to_string(v))
    {}
    TraceArg(std::string k, std::string v)
        : key(std::move(k)), value(std::move(v)), quoted(true)
    {}
    TraceArg(std::string k, const char *v)
        : key(std::move(k)), value(v), quoted(true)
    {}
};

/** One recorded event (Chrome trace-event phases). */
struct TraceEvent
{
    char phase = 'i';        ///< X, i, C, s, t, f
    corm::sim::Tick ts = 0;  ///< simulated time
    corm::sim::Tick dur = 0; ///< X only
    int track = 0;           ///< index into the recorder's tracks
    TraceId flow = 0;        ///< s/t/f only
    std::string name;
    std::string category;
    std::vector<TraceArg> args;

    /**
     * Merge key, filled only when a merge clock is installed (see
     * TraceRecorder::setMergeClock): the emitting shard's simulated
     * time at emission plus a per-recorder monotone sequence. The
     * barrier-time merge sorts window buffers by
     * (emitTick, track name, emitSeq) — a placement-independent
     * total order, because every track is written by exactly one
     * shard (DESIGN.md §11).
     */
    corm::sim::Tick emitTick = 0;
    std::uint64_t emitSeq = 0;
};

/**
 * Records events and serializes them as Chrome trace-event JSON.
 * One recorder per trial; never shared across threads.
 */
class TraceRecorder
{
  public:
    /** Flow context installed around a message dispatch. */
    struct FlowContext
    {
        TraceId id = 0;
        /** True when the current dispatch is the flow's last leg. */
        bool final = false;
    };

    /** Runtime gate; a disabled recorder records nothing. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * Two-level verbosity. With detail off, instrumentation sites
     * tagged as dataplane detail — per-dispatch scheduler slices,
     * per-entity queue counter series — skip emission; coordination
     * spans, hops, applies and health events still record. The
     * flight recorder (obs/flight.hpp) runs with detail off so its
     * always-on window costs a fraction of full tracing; --trace
     * keeps the default (on) and records everything.
     */
    bool detail() const { return detail_; }
    void setDetail(bool on) { detail_ = on; }

    /**
     * Bound the retained window: keep (at least) the last @p cap
     * events, discarding the oldest beyond that. 0 (the default)
     * retains everything. The flight recorder (obs/flight.hpp) runs
     * every component's tracing into a small bounded window so it can
     * stay attached for a whole run at a fixed memory cost.
     *
     * Implementation note: the ring is an amortized vector — when the
     * buffer reaches 2×cap, the oldest half is erased in one move, so
     * steady-state cost stays O(1) per event and events() remains a
     * plain chronological vector.
     */
    void setCapacity(std::size_t cap) { capacity_ = cap; }

    /** Retained-window bound (0 = unbounded). */
    std::size_t capacity() const { return capacity_; }

    /** Events discarded past the retained window. */
    std::uint64_t droppedEvents() const { return dropped_; }

    /**
     * Register (or fetch) the track for (process, thread). Tracks
     * map to Perfetto pid/tid pairs; first registration order fixes
     * the numbering, so call sites must register deterministically
     * (they do: all registration happens from single-threaded
     * simulator callbacks).
     */
    int
    track(const std::string &process, const std::string &thread)
    {
        for (std::size_t i = 0; i < tracks.size(); ++i) {
            if (tracks[i].process == process
                && tracks[i].thread == thread)
                return static_cast<int>(i);
        }
        Track t;
        t.process = process;
        t.thread = thread;
        t.pid = 0;
        for (const Track &other : tracks) {
            if (other.process == process) {
                t.pid = other.pid;
                break;
            }
        }
        if (t.pid == 0)
            t.pid = ++nextPid;
        t.tid = 1;
        for (const Track &other : tracks) {
            if (other.process == process)
                ++t.tid;
        }
        tracks.push_back(t);
        return static_cast<int>(tracks.size() - 1);
    }

    /** Allocate a fresh causal span id (never 0). */
    TraceId newFlow() { return ++lastFlow; }

    /** Process name of a registered track. */
    const std::string &trackProcess(int trk) const
    {
        return tracks[static_cast<std::size_t>(trk)].process;
    }

    /** Thread name of a registered track. */
    const std::string &trackThread(int trk) const
    {
        return tracks[static_cast<std::size_t>(trk)].thread;
    }

    /**
     * Install the shard-local merge clock: every subsequent event is
     * stamped with (clock(), monotone seq) — see TraceEvent's merge
     * key. Window-local recorders under the sharded engine install
     * the owning shard simulator's now(); standalone recorders leave
     * it unset and pay nothing.
     */
    void setMergeClock(std::function<corm::sim::Tick()> clock)
    {
        mergeClock_ = std::move(clock);
    }

    /**
     * Re-emit @p e (recorded by a window-local recorder) into this
     * recorder under the (process, thread) track names, re-applying
     * the ends-exactly-once flow rule globally: window recorders can
     * only dedup flow ends within their own window, so the merged
     * recorder is the source of truth for which 'f' wins.
     */
    void absorb(const TraceEvent &e, const std::string &process,
                const std::string &thread)
    {
        if (!enabled_)
            return;
        TraceEvent copy = e;
        copy.track = track(process, thread);
        copy.emitTick = 0;
        copy.emitSeq = 0;
        if (copy.phase == 'f'
            && !endedFlows.insert(copy.flow).second)
            copy.phase = 't';
        push(std::move(copy));
    }

    /** Flow context of the in-progress dispatch (id 0 = none). */
    const FlowContext &currentFlow() const { return flowCtx; }

    /** Install/clear the dispatch flow context (see TraceScope). */
    void setCurrentFlow(FlowContext ctx) { flowCtx = ctx; }

    // Emission -----------------------------------------------------

    void
    complete(int trk, corm::sim::Tick ts, corm::sim::Tick dur,
             std::string name, std::string category,
             std::vector<TraceArg> args = {})
    {
        if (!enabled_)
            return;
        push({'X', ts, dur, trk, 0, std::move(name),
              std::move(category), std::move(args)});
    }

    void
    instant(int trk, corm::sim::Tick ts, std::string name,
            std::string category, std::vector<TraceArg> args = {})
    {
        if (!enabled_)
            return;
        push({'i', ts, 0, trk, 0, std::move(name),
              std::move(category), std::move(args)});
    }

    /** Counter sample: series @p series of counter @p name. */
    void
    counter(int trk, corm::sim::Tick ts, std::string name,
            std::string series, double value)
    {
        if (!enabled_)
            return;
        TraceEvent e;
        e.phase = 'C';
        e.ts = ts;
        e.track = trk;
        e.name = std::move(name);
        e.args.emplace_back(std::move(series), value);
        push(std::move(e));
    }

    void
    flowBegin(int trk, corm::sim::Tick ts, TraceId id, std::string name,
              std::string category)
    {
        flowEvent('s', trk, ts, id, std::move(name),
                  std::move(category));
    }

    void
    flowStep(int trk, corm::sim::Tick ts, TraceId id, std::string name,
             std::string category)
    {
        flowEvent('t', trk, ts, id, std::move(name),
                  std::move(category));
    }

    void
    flowEnd(int trk, corm::sim::Tick ts, TraceId id, std::string name,
            std::string category)
    {
        flowEvent('f', trk, ts, id, std::move(name),
                  std::move(category));
    }

    // Introspection ------------------------------------------------

    /** All recorded events, in emission order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Drop all recorded events (tracks and ids are kept). */
    void
    clear()
    {
        events_.clear();
        endedFlows.clear();
    }

    /**
     * Serialize as Chrome trace-event JSON: process/thread metadata
     * first, then every event in emission order. ts/dur are
     * microseconds (fractional; Ticks are nanoseconds).
     *
     * @p extra_key / @p extra_raw optionally splice one additional
     * top-level member (pre-serialized JSON) after the traceEvents
     * array — Perfetto and the schema checker ignore unknown
     * top-level members, so enriched snapshots (the flight recorder's
     * flow-attribution report) stay loadable traces. Empty key: the
     * historical byte-exact output.
     */
    void
    writeJson(std::ostream &out, const std::string &extra_key = {},
              const std::string &extra_raw = {}) const
    {
        JsonWriter j;
        j.beginObject();
        j.field("displayTimeUnit", std::string("ms"));
        j.beginArray("traceEvents");
        for (const Track &t : tracks) {
            metaEvent(j, "process_name", t.pid, 0, t.process);
            metaEvent(j, "thread_name", t.pid, t.tid, t.thread);
        }
        for (const TraceEvent &e : events_) {
            const Track &t =
                tracks[static_cast<std::size_t>(e.track)];
            j.beginObject();
            j.field("name", e.name);
            if (!e.category.empty())
                j.field("cat", e.category);
            j.field("ph", std::string(1, e.phase));
            j.fieldRaw("ts", micros(e.ts));
            if (e.phase == 'X')
                j.fieldRaw("dur", micros(e.dur));
            j.field("pid", t.pid);
            j.field("tid", t.tid);
            if (e.phase == 's' || e.phase == 't' || e.phase == 'f')
                j.field("id", e.flow);
            if (e.phase == 'i')
                j.field("s", std::string("t"));
            if (!e.args.empty()) {
                j.beginObject("args");
                for (const TraceArg &a : e.args) {
                    if (a.quoted)
                        j.field(a.key.c_str(), a.value);
                    else
                        j.fieldRaw(a.key.c_str(), a.value);
                }
                j.endObject();
            }
            j.endObject();
        }
        j.endArray();
        if (!extra_key.empty())
            j.fieldRaw(extra_key.c_str(), extra_raw);
        j.endObject();
        out << j.str() << "\n";
    }

    /** JSON trace as a string (see writeJson). */
    std::string
    json(const std::string &extra_key = {},
         const std::string &extra_raw = {}) const
    {
        std::ostringstream out;
        writeJson(out, extra_key, extra_raw);
        return out.str();
    }

  private:
    struct Track
    {
        std::string process;
        std::string thread;
        int pid = 0;
        int tid = 0;
    };

    void
    flowEvent(char phase, int trk, corm::sim::Tick ts, TraceId id,
              std::string name, std::string category)
    {
        if (!enabled_ || id == 0)
            return;
        // A span ends exactly once: retransmitted or duplicated final
        // legs (a re-acked Tune, a duplicated ack) would otherwise
        // each emit an end, splitting the causal chain. The first end
        // wins; later ones join the chain as ordinary steps.
        if (phase == 'f' && !endedFlows.insert(id).second)
            phase = 't';
        push({phase, ts, 0, trk, id, std::move(name),
              std::move(category), {}});
    }

    void
    push(TraceEvent &&e)
    {
        if (mergeClock_) {
            e.emitTick = mergeClock_();
            e.emitSeq = ++emitSeq_;
        }
        events_.push_back(std::move(e));
        if (capacity_ != 0 && events_.size() >= capacity_ * 2) {
            dropped_ += events_.size() - capacity_;
            events_.erase(events_.begin(),
                          events_.end()
                              - static_cast<std::ptrdiff_t>(capacity_));
        }
    }

    /** Ticks (ns) as a microsecond JSON number, byte-stable. */
    static std::string
    micros(corm::sim::Tick t)
    {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                      static_cast<unsigned long long>(t / 1000),
                      static_cast<unsigned long long>(t % 1000));
        return buf;
    }

    static void
    metaEvent(JsonWriter &j, const char *what, int pid, int tid,
              const std::string &value)
    {
        j.beginObject();
        j.field("name", std::string(what));
        j.field("ph", std::string("M"));
        j.field("pid", pid);
        j.field("tid", tid);
        j.beginObject("args");
        j.field("name", value);
        j.endObject();
        j.endObject();
    }

    bool enabled_ = true;
    bool detail_ = true;
    std::size_t capacity_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<Track> tracks;
    std::vector<TraceEvent> events_;
    std::set<TraceId> endedFlows;
    TraceId lastFlow = 0;
    FlowContext flowCtx;
    int nextPid = 0;
    std::function<corm::sim::Tick()> mergeClock_;
    std::uint64_t emitSeq_ = 0;
};

/**
 * RAII flow context: the channel installs the delivered message's
 * flow id around the destination island's apply dispatch, so the
 * island's own effect events (weight change, boost, thread-share
 * change) can join the causal chain without widening the
 * ResourceIsland interface.
 */
class TraceScope
{
  public:
    TraceScope(TraceRecorder *recorder, TraceId id, bool final_leg)
        : rec(recorder)
    {
        if (rec) {
            saved = rec->currentFlow();
            rec->setCurrentFlow({id, final_leg});
        }
    }

    ~TraceScope()
    {
        if (rec)
            rec->setCurrentFlow(saved);
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    TraceRecorder *rec;
    TraceRecorder::FlowContext saved;
};

} // namespace corm::obs

/**
 * True when tracing is compiled in AND @p rec is attached. Guards
 * every instrumentation block; with CORM_OBS_NO_TRACE the branch is
 * constant-false and the block (argument construction included) is
 * compiled out.
 */
#define CORM_TRACE_ACTIVE(rec)                                        \
    (corm::obs::traceCompiledIn && (rec) != nullptr)
