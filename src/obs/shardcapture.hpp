/**
 * @file
 * Window-local trace capture for the sharded engine, merged at
 * generation barriers (DESIGN.md §11).
 *
 * Under ShardedEngine, islands run concurrently inside a lookahead
 * window, so a single TraceRecorder would be a data race and — worse
 * for this codebase's contract — its emission order would depend on
 * shard placement. ShardCapture restores `--trace` under sharding
 * without giving up byte-identical output across `--shards 1/2/4`:
 *
 *  * each shard gets its own window-local TraceRecorder; during a
 *    window, instrumentation only ever touches the recorder of the
 *    shard it runs on (no locks, no sharing);
 *  * every event carries a merge key (emitting shard's simulated
 *    time + per-recorder monotone seq), stamped via the recorder's
 *    merge clock;
 *  * at each barrier — all workers parked — the coordinator sorts
 *    the union of the window buffers by (tick, track name, seq) and
 *    re-emits into the merged recorder. The order is placement
 *    independent because every track has exactly one writing shard
 *    (lane tracks belong to the sender's shard, node tracks to the
 *    node's shard, sender-object tracks to shard 0), and within one
 *    shard same-tick events execute in an order that is itself a
 *    pure function of the global event set;
 *  * flow 'f'-ends are deduplicated globally by the merged recorder
 *    (TraceRecorder::absorb), since a flow's legs span shards;
 *  * merged track registration happens in canonical sorted order,
 *    so pid/tid assignment is deterministic too.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/types.hpp"

namespace corm::obs {

/**
 * Owns the per-shard window recorders and performs the barrier-time
 * merge into a caller-supplied recorder. Construct before traffic
 * starts, call mergeWindow() from the engine's barrier probe (and
 * once after the run), read the merged recorder as usual.
 */
class ShardCapture
{
  public:
    /**
     * @param merged   destination recorder (the `--trace` target).
     * @param shards   shard count K.
     * @param shardNow per-shard simulated-time clock (shard k's
     *                 Simulator::now); called only from code running
     *                 on shard k, so no synchronization is needed.
     */
    ShardCapture(TraceRecorder *merged, int shards,
                 std::function<corm::sim::Tick(int)> shardNow)
        : merged_(merged)
    {
        recs_.reserve(static_cast<std::size_t>(shards));
        for (int k = 0; k < shards; ++k) {
            auto rec = std::make_unique<TraceRecorder>();
            rec->setEnabled(merged ? merged->enabled() : false);
            rec->setDetail(merged ? merged->detail() : true);
            rec->setMergeClock(
                [shardNow, k] { return shardNow(k); });
            recs_.push_back(std::move(rec));
        }
    }

    /** Shard @p k's window-local recorder. */
    TraceRecorder *shardRecorder(int k)
    {
        return recs_[static_cast<std::size_t>(k)].get();
    }

    int shards() const { return static_cast<int>(recs_.size()); }

    /** Events re-emitted into the merged recorder so far. */
    std::uint64_t mergedEvents() const { return mergedEvents_; }

    /**
     * Merge and clear every shard's window buffer. Must run with all
     * workers parked (a generation barrier or after runUntil).
     */
    void mergeWindow()
    {
        if (!merged_)
            return;
        order_.clear();
        for (std::size_t k = 0; k < recs_.size(); ++k) {
            const std::size_t n = recs_[k]->events().size();
            for (std::size_t i = 0; i < n; ++i)
                order_.push_back({k, i});
        }
        std::sort(order_.begin(), order_.end(),
                  [this](const Ref &a, const Ref &b) {
                      return before(at(a), a, at(b), b);
                  });
        for (const Ref &r : order_) {
            const TraceEvent &e = at(r);
            merged_->absorb(e, recs_[r.shard]->trackProcess(e.track),
                            recs_[r.shard]->trackThread(e.track));
            ++mergedEvents_;
        }
        for (auto &rec : recs_)
            rec->clear();
    }

  private:
    struct Ref
    {
        std::size_t shard;
        std::size_t index;
    };

    const TraceEvent &at(const Ref &r) const
    {
        return recs_[r.shard]->events()[r.index];
    }

    bool before(const TraceEvent &ea, const Ref &a,
                const TraceEvent &eb, const Ref &b) const
    {
        if (ea.emitTick != eb.emitTick)
            return ea.emitTick < eb.emitTick;
        const TraceRecorder &ra = *recs_[a.shard];
        const TraceRecorder &rb = *recs_[b.shard];
        if (const int c = ra.trackProcess(ea.track)
                              .compare(rb.trackProcess(eb.track)))
            return c < 0;
        if (const int c = ra.trackThread(ea.track)
                              .compare(rb.trackThread(eb.track)))
            return c < 0;
        if (ea.emitSeq != eb.emitSeq)
            return ea.emitSeq < eb.emitSeq;
        // Same (tick, track, seq) from two shards would mean a track
        // with two writers — excluded by construction; the tiebreak
        // only keeps the sort total.
        return a.shard < b.shard;
    }

    TraceRecorder *merged_;
    std::vector<std::unique_ptr<TraceRecorder>> recs_;
    std::vector<Ref> order_;
    std::uint64_t mergedEvents_ = 0;
};

} // namespace corm::obs
