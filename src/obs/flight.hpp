/**
 * @file
 * The flight recorder: an always-on, bounded trace of the recent
 * past.
 *
 * Full tracing (--trace) records every event of a run — fine for a
 * debugging session, wrong as a default: the vector grows without
 * bound and nobody asked for the file. The flight recorder flips the
 * trade: it keeps a TraceRecorder with a small ring capacity
 * (obs/trace.hpp setCapacity) attached to the same component hooks,
 * so steady-state cost is a fixed-size window of recent events — and
 * when the health watchdog (obs/monitor.hpp) fires, the window around
 * the incident is serialized immediately into a Perfetto-loadable
 * snapshot, *without* --trace ever having been requested. Black box,
 * not film camera.
 *
 * The snapshot is taken at breach time (not at dump-to-disk time)
 * because the ring keeps rotating: by run end the stall the watchdog
 * saw would have scrolled out of the window.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "obs/flowprofile.hpp"
#include "obs/trace.hpp"
#include "sim/types.hpp"

namespace corm::obs {

/** Bounded trace ring + first-incident snapshot. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = 4096)
    {
        rec_.setCapacity(capacity);
        // Incident forensics wants the coordination story, not every
        // dispatch slice and queue sample; detail-off keeps the
        // always-on cost down (measured in DESIGN.md §9).
        rec_.setDetail(false);
    }

    /**
     * The underlying recorder; attach it wherever a TraceRecorder*
     * is accepted (channel, islands, announcer, policies).
     */
    TraceRecorder &recorder() { return rec_; }
    const TraceRecorder &recorder() const { return rec_; }

    /**
     * Serialize the retained window now, labelled with @p reason.
     * Only the first snapshot sticks (the incident that tripped the
     * watchdog); later calls are counted but ignored, so a breach
     * storm costs one serialization.
     *
     * The snapshot carries a built-in "why": a flow-attribution
     * report (obs/flowprofile.hpp) over the incident window is
     * spliced in as a `flowProfile` top-level member — outcome and
     * blame tables plus the top-k slowest flows with per-leg
     * breakdowns. Perfetto ignores the extra member, so the snapshot
     * stays a loadable trace.
     */
    void
    snapshot(const std::string &reason, corm::sim::Tick now)
    {
        ++snapshotRequests_;
        if (!snapshotJson_.empty())
            return;
        snapshotReason_ = reason;
        snapshotAt_ = now;
        FlowProfiler prof;
        prof.ingest(rec_);
        snapshotJson_ =
            rec_.json("flowProfile", prof.reportJson(topK_));
    }

    bool hasSnapshot() const { return !snapshotJson_.empty(); }
    const std::string &snapshotJson() const { return snapshotJson_; }
    const std::string &snapshotReason() const { return snapshotReason_; }
    corm::sim::Tick snapshotAt() const { return snapshotAt_; }

    /** snapshot() calls, including ignored ones. */
    std::uint64_t snapshotRequests() const { return snapshotRequests_; }

    /** Events currently retained in the window. */
    std::size_t retained() const { return rec_.events().size(); }

    /** Events that scrolled out of the window. */
    std::uint64_t dropped() const { return rec_.droppedEvents(); }

    /** Slowest-flow count embedded in snapshots (default 5). */
    std::size_t topK() const { return topK_; }
    void setTopK(std::size_t k) { topK_ = k; }

  private:
    TraceRecorder rec_;
    std::size_t topK_ = 5;
    std::string snapshotJson_;
    std::string snapshotReason_;
    corm::sim::Tick snapshotAt_ = 0;
    std::uint64_t snapshotRequests_ = 0;
};

} // namespace corm::obs
