/**
 * @file
 * The online health monitor: SLO watchdogs, liveness heartbeats and
 * the flight-recorder trigger.
 *
 * Everything observability built so far (PR 3) is post-hoc — traces
 * and metric snapshots inspected after the run. CoRM's argument is
 * that independent island managers must notice *during* the run when
 * coordination degrades (a stalled mailbox, a retry storm, a latency
 * SLO blown), so this layer closes the loop:
 *
 *  * **SloRule** — a declarative threshold over a registry metric,
 *    parsed from text (`coord.channel.retries rate < 25 window 500ms`)
 *    so benches, tests and configs share one grammar. Aggregations:
 *    `value` (current), `rate` (windowed per-second delta of the
 *    sampled series), `mean`/`p50`/`p99` (histogram metrics: the
 *    distribution; scalar metrics: windowed over samples).
 *
 *  * **HealthMonitor** — drives a RegistrySampler from simulated
 *    time, evaluates the rules edge-triggered (one breach event per
 *    excursion, one recover when it clears), and watches per-lane
 *    heartbeats: a lane (one mailbox direction) that has *sends*
 *    outstanding but no delivery for longer than the stall timeout is
 *    declared stalled — the signature of a burst outage, and
 *    deliberately send-gated so an idle lane never false-alarms.
 *
 *  * **HealthEvent** — the typed record of a breach / recover /
 *    stall / abandon, appended to the monitor's log, mirrored as an
 *    instant into the flight recorder (and the full trace when one is
 *    attached), and optionally handed to a policy callback so
 *    coordination can degrade gracefully.
 *
 *  * On the first unhealthy event the monitor snapshots the flight
 *    recorder (obs/flight.hpp), so an un-traced run still yields a
 *    Perfetto window around its first incident.
 *
 * Overhead: one periodic simulator event per samplePeriod plus the
 * bounded flight ring; both are measured in DESIGN.md §9.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/series.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace corm::obs {

/** One declarative SLO threshold over a registry metric. */
struct SloRule
{
    enum class Agg : std::uint8_t { value, rate, mean, p50, p99 };
    enum class Op : std::uint8_t { lt, le, gt, ge };

    /** Canonical full metric name (`name{k=v}`; no spaces). */
    std::string metric;
    Agg agg = Agg::value;
    Op op = Op::lt;
    double threshold = 0.0;
    /** Window of rate/mean/percentile aggregation. */
    corm::sim::Tick window = 1 * corm::sim::sec;

    bool operator==(const SloRule &) const = default;

    /**
     * Parse `<metric> <agg> <op> <threshold> [window <N><unit>]`
     * (unit: ns/us/ms/s; default window 1s). False + @p err on
     * malformed input. parse(str()) round-trips exactly.
     */
    static bool parse(std::string_view text, SloRule &out,
                      std::string *err = nullptr);

    /** Canonical text form (always includes the window). */
    std::string str() const;
};

/** Typed record of one health transition. */
struct HealthEvent
{
    enum class Kind : std::uint8_t
    {
        breach,       ///< an SLO rule went unhealthy
        recover,      ///< that rule went healthy again
        stall,        ///< a lane had sends but no delivery too long
        stallRecover, ///< deliveries resumed on a stalled lane
        abandon       ///< the reliable layer gave up on a message
    };

    Kind kind = Kind::breach;
    corm::sim::Tick when = 0;
    /** Rule text, lane name, or abandon description. */
    std::string subject;
    double observed = 0.0;
    double threshold = 0.0;

    /** True for kinds that count against healthy(). */
    bool unhealthy() const
    {
        return kind == Kind::breach || kind == Kind::stall
            || kind == Kind::abandon;
    }

    /** One human-readable line. */
    std::string str() const;
};

/** Human-readable event kind. */
const char *healthEventKindName(HealthEvent::Kind k);

/**
 * Watchdog rules a platform run wants by default: the coordination
 * channel's apply-latency SLO, a retry-rate ceiling, and zero
 * abandoned registrations. Textual, so callers can append or edit.
 */
std::vector<std::string> defaultHealthRules();

/**
 * The watchdog. Construct with the simulator and the registry,
 * add rules, then start(); it samples and evaluates every
 * samplePeriod of *simulated* time, so runs stay deterministic.
 */
class HealthMonitor
{
  public:
    struct Params
    {
        /** Sampling / rule-evaluation cadence (simulated time). */
        corm::sim::Tick samplePeriod = 25 * corm::sim::msec;
        /** Ring capacity per time series. */
        std::size_t seriesCapacity = 512;
        /** Flight-recorder window, in trace events. */
        std::size_t flightCapacity = 4096;
        /**
         * A lane with a send outstanding and no delivery for this
         * long is stalled.
         */
        corm::sim::Tick stallTimeout = 100 * corm::sim::msec;
        /** Rules to install at construction (SloRule grammar). */
        std::vector<std::string> rules;
    };

    HealthMonitor(corm::sim::Simulator &simulator,
                  const MetricRegistry &registry);
    HealthMonitor(corm::sim::Simulator &simulator,
                  const MetricRegistry &registry, Params params);
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /** Install a parsed rule. */
    void addRule(const SloRule &rule);

    /** Parse and install; false + @p err on a malformed rule. */
    bool addRule(std::string_view text, std::string *err = nullptr);

    const std::vector<SloRule> &rules() const { return rules_; }

    /** Arm the periodic sampler (idempotent). */
    void start();

    /** Disarm the periodic sampler. */
    void stop();

    /**
     * One sample + rule-evaluation + stall-scan pass at @p now.
     * start() drives this from a periodic simulator event; sharded
     * runs call it directly from the engine's barrier probe instead
     * (all workers parked, window end as the evaluation time), since
     * a ticker event inside one shard would perturb that shard's
     * window planning and break cross-shard-count digest identity.
     */
    void poll(corm::sim::Tick now);

    // Liveness lanes -----------------------------------------------

    /** Register (or fetch) the heartbeat lane named @p name. */
    int lane(const std::string &name);

    /** A message entered lane @p id (even if faults ate it). */
    void laneSent(int id);

    /** A message left lane @p id at the receiver. */
    void laneDelivered(int id);

    /**
     * Explicit-time variants for barrier-time replay: sharded runs
     * log lane activity shard-locally during a window and feed it to
     * the monitor at the barrier, in canonical order, stamped with
     * the tick it actually happened at.
     */
    void laneSentAt(int id, corm::sim::Tick when);
    void laneDeliveredAt(int id, corm::sim::Tick when);

    /**
     * Retire lane @p id — a link departed with its island (churn).
     * A cleanly-departed lane deactivates silently (no spurious
     * stall breach for traffic that will never resume); a lane that
     * was already stalled emits its stallRecover first so the event
     * stream stays balanced. The stall scan skips retired lanes;
     * fresh traffic on the lane (an island re-joining over the same
     * endpoint pair) revives it automatically.
     */
    void retireLane(int id);

    /** Retire every lane whose name is absent from @p live — sugar
     *  for the churn path (names as registered via lane()). */
    void retireLanesExcept(const std::vector<std::string> &live);

    /** The reliable layer gave up on a message. */
    void noteAbandon(const std::string &who);

    /** Explicit-time variant of noteAbandon (see laneSentAt). */
    void noteAbandonAt(const std::string &who, corm::sim::Tick when);

    // Outputs --------------------------------------------------------

    /** All health transitions, in order. */
    const std::vector<HealthEvent> &events() const { return events_; }

    /** Unhealthy events (breach + stall + abandon) so far. */
    std::uint64_t breaches() const { return breaches_; }

    /** True while no unhealthy event has ever fired. */
    bool healthy() const { return breaches_ == 0; }

    /** Rules that referenced unknown metrics (reported once each). */
    const std::vector<std::string> &ruleErrors() const
    {
        return ruleErrors_;
    }

    FlightRecorder &flight() { return flight_; }
    const FlightRecorder &flight() const { return flight_; }

    /** The flight ring as a component-attachable recorder. */
    TraceRecorder *flightTrace() { return &flight_.recorder(); }

    const RegistrySampler &sampler() const { return sampler_; }

    /**
     * Invoked on every unhealthy event — the hook a coordination
     * policy uses to degrade gracefully (e.g. widen thresholds,
     * stop trusting a stalled channel).
     */
    void setPolicyCallback(std::function<void(const HealthEvent &)> fn)
    {
        policyCb_ = std::move(fn);
    }

    /**
     * Also mirror health instants into @p rec (the full --trace
     * recorder, when one is attached). The flight ring always gets
     * them.
     */
    void setMirrorTrace(TraceRecorder *rec) { mirror_ = rec; }

    /** Multi-line text log of every event plus a summary line. */
    std::string healthReport() const;

    /** Evaluations performed (one per rule per tick). */
    std::uint64_t evaluations() const { return evaluations_; }

  private:
    struct RuleState
    {
        SloRule rule;
        std::string text; ///< canonical form, cached for events
        bool breached = false;
        bool reportedMissing = false;
    };

    struct Lane
    {
        std::string name;
        /** Tick of the oldest send with no delivery after it; 0 = none
         *  outstanding (tick 0 never carries coordination traffic). */
        corm::sim::Tick oldestUnanswered = 0;
        bool stalled = false;
        /** Deactivated by retireLane(); skipped by the stall scan
         *  until traffic revives it. */
        bool retired = false;
        std::uint64_t sends = 0;
        std::uint64_t deliveries = 0;
    };

    void tick();
    bool evaluate(RuleState &rs, corm::sim::Tick now,
                  double &observed);
    void emit(HealthEvent ev);
    int monitorTrack();

    corm::sim::Simulator &sim;
    const MetricRegistry &reg;
    Params cfg;
    RegistrySampler sampler_;
    FlightRecorder flight_;
    TraceRecorder *mirror_ = nullptr;
    std::vector<RuleState> ruleStates_;
    std::vector<SloRule> rules_;
    std::vector<std::string> ruleErrors_;
    std::vector<Lane> lanes_;
    std::vector<HealthEvent> events_;
    std::function<void(const HealthEvent &)> policyCb_;
    std::uint64_t breaches_ = 0;
    std::uint64_t evaluations_ = 0;
    int trk_ = -1;
    int mirrorTrk_ = -1;
    std::unique_ptr<corm::sim::PeriodicEvent> ticker_;
};

} // namespace corm::obs
