/**
 * @file
 * Shared JSON emission and parsing for the observability layer.
 *
 * One writer serves every machine-readable artefact the repo
 * produces — the BENCH_*.json reports, the MetricRegistry snapshot
 * and the Chrome trace-event files — so they stay byte-stable and
 * format-consistent. The reader is a deliberately small
 * recursive-descent parser used by the trace schema checker and the
 * obs tests to validate our own output; it is not a general-purpose
 * JSON library (no surrogate-pair decoding, numbers parsed as
 * double).
 */

#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"

namespace corm::obs {

/** Escape @p v for inclusion in a double-quoted JSON string. */
inline std::string
jsonEscape(std::string_view v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/** Minimal append-only JSON writer (objects/arrays, auto commas). */
class JsonWriter
{
  public:
    void
    beginObject(const char *key = nullptr)
    {
        open(key, '{');
    }
    void
    endObject()
    {
        close('}');
    }
    void
    beginArray(const char *key = nullptr)
    {
        open(key, '[');
    }
    void
    endArray()
    {
        close(']');
    }

    void
    field(const char *key, double v)
    {
        prefix(key);
        char buf[64];
        // %.17g round-trips doubles; trim to something readable but
        // byte-stable across runs.
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        out << buf;
    }
    void
    field(const char *key, std::uint64_t v)
    {
        prefix(key);
        out << v;
    }
    void
    field(const char *key, int v)
    {
        prefix(key);
        out << v;
    }
    void
    field(const char *key, bool v)
    {
        prefix(key);
        out << (v ? "true" : "false");
    }
    void
    field(const char *key, const std::string &v)
    {
        prefix(key);
        out << '"' << jsonEscape(v) << '"';
    }

    /**
     * Splice pre-serialized JSON (an object or array rendered by
     * another writer) as the value of @p key. The caller guarantees
     * @p json_text is well formed; indentation is the caller's.
     */
    void
    fieldRaw(const char *key, const std::string &json_text)
    {
        prefix(key);
        out << json_text;
    }

    std::string str() const { return out.str(); }

  private:
    void
    prefix(const char *key)
    {
        if (needComma)
            out << ",";
        if (!depthStack.empty())
            out << "\n" << std::string(depthStack.size() * 2, ' ');
        // Keys are escaped like values: metric full names carry label
        // values verbatim, so a label containing '"', '\' or a newline
        // must still produce well-formed JSON that parses back to the
        // same key.
        if (key)
            out << '"' << jsonEscape(key) << "\": ";
        needComma = true;
    }

    void
    open(const char *key, char bracket)
    {
        prefix(key);
        out << bracket;
        depthStack.push_back(bracket);
        needComma = false;
    }

    void
    close(char bracket)
    {
        depthStack.pop_back();
        out << "\n" << std::string(depthStack.size() * 2, ' ')
            << bracket;
        needComma = true;
    }

    std::ostringstream out;
    std::vector<char> depthStack;
    bool needComma = false;
};

/** Serialize a cross-trial Summary as {mean,stddev,min,max,n}. */
inline void
jsonSummary(JsonWriter &j, const char *key,
            const corm::sim::Summary &s)
{
    j.beginObject(key);
    j.field("mean", s.mean());
    j.field("stddev", s.stddev());
    j.field("min", s.min());
    j.field("max", s.max());
    j.field("n", s.count());
    j.endObject();
}

//
// Parsing (self-validation only; see the file comment)
//

/** A parsed JSON value. */
struct JsonValue
{
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object
    };

    Kind kind = Kind::null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> items;                ///< array elements
    std::vector<std::pair<std::string, JsonValue>> members; ///< object

    bool isObject() const { return kind == Kind::object; }
    bool isArray() const { return kind == Kind::array; }
    bool isNumber() const { return kind == Kind::number; }
    bool isString() const { return kind == Kind::string; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *
    get(std::string_view key) const
    {
        if (kind != Kind::object)
            return nullptr;
        for (const auto &[k, v] : members) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

/** Recursive-descent JSON parser state. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : in(text) {}

    /** Parse the whole input into @p out; false + error() on failure. */
    bool
    parse(JsonValue &out)
    {
        if (!value(out))
            return false;
        skipWs();
        if (pos != in.size()) {
            fail("trailing characters after document");
            return false;
        }
        return true;
    }

    const std::string &error() const { return err; }

  private:
    void
    skipWs()
    {
        while (pos < in.size()
               && (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n'
                   || in[pos] == '\r'))
            ++pos;
    }

    void
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(pos);
    }

    bool
    literal(std::string_view word)
    {
        if (in.substr(pos, word.size()) != word) {
            fail("bad literal");
            return false;
        }
        pos += word.size();
        return true;
    }

    bool
    stringBody(std::string &out)
    {
        if (pos >= in.size() || in[pos] != '"') {
            fail("expected string");
            return false;
        }
        ++pos;
        while (pos < in.size() && in[pos] != '"') {
            char c = in[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= in.size()) {
                fail("truncated escape");
                return false;
            }
            char e = in[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > in.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = in[pos++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape");
                        return false;
                    }
                }
                // ASCII suffices for our own output; others pass
                // through as '?' rather than UTF-8 encoding.
                out += v < 0x80 ? static_cast<char>(v) : '?';
                break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
        if (pos >= in.size()) {
            fail("unterminated string");
            return false;
        }
        ++pos; // closing quote
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos >= in.size()) {
            fail("unexpected end of input");
            return false;
        }
        char c = in[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::object;
            skipWs();
            if (pos < in.size() && in[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!stringBody(key))
                    return false;
                skipWs();
                if (pos >= in.size() || in[pos] != ':') {
                    fail("expected ':'");
                    return false;
                }
                ++pos;
                JsonValue v;
                if (!value(v))
                    return false;
                out.members.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos < in.size() && in[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < in.size() && in[pos] == '}') {
                    ++pos;
                    return true;
                }
                fail("expected ',' or '}'");
                return false;
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::array;
            skipWs();
            if (pos < in.size() && in[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                JsonValue v;
                if (!value(v))
                    return false;
                out.items.push_back(std::move(v));
                skipWs();
                if (pos < in.size() && in[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < in.size() && in[pos] == ']') {
                    ++pos;
                    return true;
                }
                fail("expected ',' or ']'");
                return false;
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::string;
            return stringBody(out.str);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::boolean;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::boolean;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::null;
            return literal("null");
        }
        // Number.
        const std::size_t start = pos;
        if (pos < in.size() && (in[pos] == '-' || in[pos] == '+'))
            ++pos;
        while (pos < in.size()
               && (std::isdigit(static_cast<unsigned char>(in[pos]))
                   || in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E'
                   || in[pos] == '-' || in[pos] == '+'))
            ++pos;
        if (pos == start) {
            fail("unexpected character");
            return false;
        }
        out.kind = JsonValue::Kind::number;
        out.num = std::strtod(std::string(in.substr(start, pos - start))
                                  .c_str(),
                              nullptr);
        return true;
    }

    std::string_view in;
    std::size_t pos = 0;
    std::string err;
};

/** Parse @p text; false + @p error (if non-null) on malformed input. */
inline bool
parseJson(std::string_view text, JsonValue &out,
          std::string *error = nullptr)
{
    JsonParser p(text);
    const bool ok = p.parse(out);
    if (!ok && error)
        *error = p.error();
    return ok;
}

} // namespace corm::obs
