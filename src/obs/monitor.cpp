/**
 * @file
 * Health-monitor implementation (see obs/monitor.hpp).
 */

#include "obs/monitor.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace corm::obs {

namespace {

const char *
aggName(SloRule::Agg a)
{
    switch (a) {
      case SloRule::Agg::value: return "value";
      case SloRule::Agg::rate: return "rate";
      case SloRule::Agg::mean: return "mean";
      case SloRule::Agg::p50: return "p50";
      case SloRule::Agg::p99: return "p99";
    }
    return "?";
}

const char *
opName(SloRule::Op o)
{
    switch (o) {
      case SloRule::Op::lt: return "<";
      case SloRule::Op::le: return "<=";
      case SloRule::Op::gt: return ">";
      case SloRule::Op::ge: return ">=";
    }
    return "?";
}

bool
compare(SloRule::Op o, double observed, double threshold)
{
    switch (o) {
      case SloRule::Op::lt: return observed < threshold;
      case SloRule::Op::le: return observed <= threshold;
      case SloRule::Op::gt: return observed > threshold;
      case SloRule::Op::ge: return observed >= threshold;
    }
    return false;
}

/** Split on runs of spaces/tabs. */
std::vector<std::string>
tokenize(std::string_view text)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && (text[i] == ' ' || text[i] == '\t'))
            ++i;
        std::size_t j = i;
        while (j < text.size() && text[j] != ' ' && text[j] != '\t')
            ++j;
        if (j > i)
            out.emplace_back(text.substr(i, j - i));
        i = j;
    }
    return out;
}

/** Parse "<number><unit>" with unit ns/us/ms/s into Ticks. */
bool
parseDuration(const std::string &tok, corm::sim::Tick &out)
{
    char *end = nullptr;
    const double n = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || n < 0)
        return false;
    const std::string unit(end);
    double scale = 0;
    if (unit == "ns")
        scale = 1.0;
    else if (unit == "us")
        scale = static_cast<double>(corm::sim::usec);
    else if (unit == "ms")
        scale = static_cast<double>(corm::sim::msec);
    else if (unit == "s")
        scale = static_cast<double>(corm::sim::sec);
    else
        return false;
    out = static_cast<corm::sim::Tick>(n * scale);
    return true;
}

/** Render @p t with the largest unit that divides it evenly. */
std::string
formatDuration(corm::sim::Tick t)
{
    char buf[40];
    if (t % corm::sim::sec == 0)
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "s",
                      t / corm::sim::sec);
    else if (t % corm::sim::msec == 0)
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "ms",
                      t / corm::sim::msec);
    else if (t % corm::sim::usec == 0)
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "us",
                      t / corm::sim::usec);
    else
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "ns", t);
    return buf;
}

} // namespace

bool
SloRule::parse(std::string_view text, SloRule &out, std::string *err)
{
    auto fail = [&](const char *what) {
        if (err)
            *err = std::string(what) + " in rule '"
                + std::string(text) + "'";
        return false;
    };
    const auto tok = tokenize(text);
    if (tok.size() != 4 && tok.size() != 6)
        return fail("expected <metric> <agg> <op> <threshold> "
                    "[window <duration>]");
    SloRule r;
    r.metric = tok[0];
    if (tok[1] == "value")
        r.agg = Agg::value;
    else if (tok[1] == "rate")
        r.agg = Agg::rate;
    else if (tok[1] == "mean")
        r.agg = Agg::mean;
    else if (tok[1] == "p50")
        r.agg = Agg::p50;
    else if (tok[1] == "p99")
        r.agg = Agg::p99;
    else
        return fail("unknown aggregation");
    if (tok[2] == "<")
        r.op = Op::lt;
    else if (tok[2] == "<=")
        r.op = Op::le;
    else if (tok[2] == ">")
        r.op = Op::gt;
    else if (tok[2] == ">=")
        r.op = Op::ge;
    else
        return fail("unknown comparison");
    char *end = nullptr;
    r.threshold = std::strtod(tok[3].c_str(), &end);
    if (end == tok[3].c_str() || *end != '\0')
        return fail("bad threshold");
    if (tok.size() == 6) {
        if (tok[4] != "window")
            return fail("expected 'window'");
        if (!parseDuration(tok[5], r.window) || r.window == 0)
            return fail("bad window duration");
    }
    out = r;
    return true;
}

std::string
SloRule::str() const
{
    char num[48];
    std::snprintf(num, sizeof(num), "%.10g", threshold);
    return metric + " " + aggName(agg) + " " + opName(op) + " " + num
        + " window " + formatDuration(window);
}

const char *
healthEventKindName(HealthEvent::Kind k)
{
    switch (k) {
      case HealthEvent::Kind::breach: return "breach";
      case HealthEvent::Kind::recover: return "recover";
      case HealthEvent::Kind::stall: return "stall";
      case HealthEvent::Kind::stallRecover: return "stall-recover";
      case HealthEvent::Kind::abandon: return "abandon";
    }
    return "?";
}

std::string
HealthEvent::str() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "t=%.6fs %-13s observed=%.10g threshold=%.10g ",
                  corm::sim::toSeconds(when),
                  healthEventKindName(kind), observed, threshold);
    return buf + subject;
}

std::vector<std::string>
defaultHealthRules()
{
    return {
        // The paper's coordination premise: a Tune must land fast.
        // 5 ms p99 leaves ~40x headroom over the 120 us mailbox.
        "coord.channel.delivery_latency_us{channel=coord.pci} p99 "
        "< 5000",
        // A retry storm means the channel is eating messages.
        "coord.channel.retries{channel=coord.pci} rate < 100 "
        "window 500ms",
        // An abandoned registration blinds the classifier forever.
        "reg.abandoned value < 1",
    };
}

HealthMonitor::HealthMonitor(corm::sim::Simulator &simulator,
                             const MetricRegistry &registry)
    : HealthMonitor(simulator, registry, Params())
{}

HealthMonitor::HealthMonitor(corm::sim::Simulator &simulator,
                             const MetricRegistry &registry,
                             Params params)
    : sim(simulator), reg(registry), cfg(std::move(params)),
      sampler_(registry, {cfg.seriesCapacity}),
      flight_(cfg.flightCapacity)
{
    for (const std::string &text : cfg.rules) {
        std::string err;
        if (!addRule(text, &err))
            ruleErrors_.push_back(err);
    }
}

HealthMonitor::~HealthMonitor() = default;

void
HealthMonitor::addRule(const SloRule &rule)
{
    RuleState rs;
    rs.rule = rule;
    rs.text = rule.str();
    ruleStates_.push_back(std::move(rs));
    rules_.push_back(rule);
}

bool
HealthMonitor::addRule(std::string_view text, std::string *err)
{
    SloRule r;
    if (!SloRule::parse(text, r, err))
        return false;
    addRule(r);
    return true;
}

void
HealthMonitor::start()
{
    if (ticker_)
        return;
    ticker_ = std::make_unique<corm::sim::PeriodicEvent>(
        sim, cfg.samplePeriod, [this] { tick(); });
}

void
HealthMonitor::stop()
{
    ticker_.reset();
}

int
HealthMonitor::lane(const std::string &name)
{
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        if (lanes_[i].name == name)
            return static_cast<int>(i);
    }
    Lane l;
    l.name = name;
    lanes_.push_back(std::move(l));
    return static_cast<int>(lanes_.size() - 1);
}

void
HealthMonitor::laneSent(int id)
{
    laneSentAt(id, sim.now());
}

void
HealthMonitor::laneSentAt(int id, corm::sim::Tick when)
{
    Lane &l = lanes_[static_cast<std::size_t>(id)];
    l.retired = false; // fresh traffic revives a retired lane
    ++l.sends;
    if (l.oldestUnanswered == 0)
        l.oldestUnanswered = when;
}

void
HealthMonitor::laneDelivered(int id)
{
    laneDeliveredAt(id, sim.now());
}

void
HealthMonitor::laneDeliveredAt(int id, corm::sim::Tick when)
{
    Lane &l = lanes_[static_cast<std::size_t>(id)];
    l.retired = false;
    ++l.deliveries;
    const corm::sim::Tick now = when;
    if (l.stalled) {
        // Ongoing stall (found by tick()) just healed.
        l.stalled = false;
        HealthEvent ev;
        ev.kind = HealthEvent::Kind::stallRecover;
        ev.when = now;
        ev.subject = "lane " + l.name;
        ev.observed = corm::sim::toMicros(now - l.oldestUnanswered)
            / 1000.0;
        ev.threshold =
            corm::sim::toMicros(cfg.stallTimeout) / 1000.0;
        emit(std::move(ev));
    } else if (l.oldestUnanswered != 0
               && now - l.oldestUnanswered > cfg.stallTimeout) {
        // Retroactive detection: the gap straddled two sampler
        // ticks, but the delivery itself proves how long the lane
        // was dark. Fires regardless of samplePeriod, so short
        // outages are never missed between ticks.
        HealthEvent ev;
        ev.kind = HealthEvent::Kind::stall;
        ev.when = now;
        ev.subject = "lane " + l.name;
        ev.observed = corm::sim::toMicros(now - l.oldestUnanswered)
            / 1000.0;
        ev.threshold =
            corm::sim::toMicros(cfg.stallTimeout) / 1000.0;
        emit(std::move(ev));
    }
    l.oldestUnanswered = 0;
}

void
HealthMonitor::retireLane(int id)
{
    Lane &l = lanes_[static_cast<std::size_t>(id)];
    if (l.retired)
        return;
    if (l.stalled) {
        // The lane died mid-stall (hub crash): balance the event
        // stream with the recover its deliveries can no longer emit.
        l.stalled = false;
        HealthEvent ev;
        ev.kind = HealthEvent::Kind::stallRecover;
        ev.when = sim.now();
        ev.subject = "lane " + l.name;
        ev.observed = l.oldestUnanswered != 0
            ? corm::sim::toMicros(sim.now() - l.oldestUnanswered)
                / 1000.0
            : 0.0;
        ev.threshold = corm::sim::toMicros(cfg.stallTimeout) / 1000.0;
        emit(std::move(ev));
    }
    // A clean departure drops any outstanding send silently: the
    // in-flight messages are attributed by the transport, and a
    // stall breach for traffic that can never resume is noise.
    l.oldestUnanswered = 0;
    l.retired = true;
}

void
HealthMonitor::retireLanesExcept(const std::vector<std::string> &live)
{
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        if (lanes_[i].retired)
            continue;
        bool found = false;
        for (const std::string &name : live) {
            if (lanes_[i].name == name) {
                found = true;
                break;
            }
        }
        if (!found)
            retireLane(static_cast<int>(i));
    }
}

void
HealthMonitor::noteAbandon(const std::string &who)
{
    noteAbandonAt(who, sim.now());
}

void
HealthMonitor::noteAbandonAt(const std::string &who,
                             corm::sim::Tick when)
{
    HealthEvent ev;
    ev.kind = HealthEvent::Kind::abandon;
    ev.when = when;
    ev.subject = who;
    emit(std::move(ev));
}

bool
HealthMonitor::evaluate(RuleState &rs, corm::sim::Tick now,
                        double &observed)
{
    const SloRule &r = rs.rule;
    const Histogram *hist = reg.findHistogram(r.metric);
    const SeriesRing *ring = sampler_.series(r.metric);

    double current = 0.0;
    if (!reg.value(r.metric, current)) {
        if (!rs.reportedMissing) {
            rs.reportedMissing = true;
            ruleErrors_.push_back("rule '" + rs.text
                                  + "' references unknown metric '"
                                  + r.metric + "'");
        }
        observed = 0.0;
        return true; // an unknown metric never breaches
    }

    switch (r.agg) {
      case SloRule::Agg::value:
        observed = current;
        break;
      case SloRule::Agg::rate:
        observed = ring ? ring->rate(now, r.window) : 0.0;
        break;
      case SloRule::Agg::mean:
        observed = hist ? hist->mean()
                        : (ring ? ring->windowMean(now, r.window)
                                : current);
        break;
      case SloRule::Agg::p50:
      case SloRule::Agg::p99: {
        const double q = r.agg == SloRule::Agg::p50 ? 0.50 : 0.99;
        // Histogram metrics answer from the full distribution;
        // scalar metrics from the sampled window.
        if (hist)
            observed = hist->count() ? hist->quantile(q) : 0.0;
        else
            observed =
                ring ? ring->percentile(q, now, r.window) : 0.0;
        break;
      }
    }
    return compare(r.op, observed, r.threshold);
}

void
HealthMonitor::tick()
{
    poll(sim.now());
}

void
HealthMonitor::poll(corm::sim::Tick now)
{
    sampler_.sample(now);

    for (RuleState &rs : ruleStates_) {
        ++evaluations_;
        double observed = 0.0;
        const bool ok = evaluate(rs, now, observed);
        if (!ok && !rs.breached) {
            rs.breached = true;
            HealthEvent ev;
            ev.kind = HealthEvent::Kind::breach;
            ev.when = now;
            ev.subject = rs.text;
            ev.observed = observed;
            ev.threshold = rs.rule.threshold;
            emit(std::move(ev));
        } else if (ok && rs.breached) {
            rs.breached = false;
            HealthEvent ev;
            ev.kind = HealthEvent::Kind::recover;
            ev.when = now;
            ev.subject = rs.text;
            ev.observed = observed;
            ev.threshold = rs.rule.threshold;
            emit(std::move(ev));
        }
    }

    for (Lane &l : lanes_) {
        if (!l.retired && !l.stalled && l.oldestUnanswered != 0
            && now - l.oldestUnanswered > cfg.stallTimeout) {
            l.stalled = true;
            HealthEvent ev;
            ev.kind = HealthEvent::Kind::stall;
            ev.when = now;
            ev.subject = "lane " + l.name;
            ev.observed =
                corm::sim::toMicros(now - l.oldestUnanswered)
                / 1000.0;
            ev.threshold =
                corm::sim::toMicros(cfg.stallTimeout) / 1000.0;
            emit(std::move(ev));
        }
    }
}

int
HealthMonitor::monitorTrack()
{
    if (trk_ < 0)
        trk_ = flight_.recorder().track("monitor", "health");
    return trk_;
}

void
HealthMonitor::emit(HealthEvent ev)
{
    const bool bad = ev.unhealthy();
    if (bad)
        ++breaches_;

    // Instant into the flight ring first, so the snapshot below
    // contains the event that triggered it; mirror into the full
    // trace when one is attached.
    const std::string name =
        std::string(healthEventKindName(ev.kind)) + ":" + ev.subject;
    flight_.recorder().instant(monitorTrack(), ev.when, name, "health",
                               {{"observed", ev.observed},
                                {"threshold", ev.threshold}});
    if (CORM_TRACE_ACTIVE(mirror_)) {
        if (mirrorTrk_ < 0)
            mirrorTrk_ = mirror_->track("monitor", "health");
        mirror_->instant(mirrorTrk_, ev.when, name, "health",
                         {{"observed", ev.observed},
                          {"threshold", ev.threshold}});
    }
    if (bad)
        flight_.snapshot(name, ev.when);

    events_.push_back(ev);
    if (bad && policyCb_)
        policyCb_(events_.back());
}

std::string
HealthMonitor::healthReport() const
{
    std::ostringstream out;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "[health] rules %zu, lanes %zu, events %zu "
                  "(unhealthy %" PRIu64 "), flight retained %zu "
                  "(dropped %" PRIu64 ")\n",
                  rules_.size(), lanes_.size(), events_.size(),
                  breaches_, flight_.retained(), flight_.dropped());
    out << buf;
    for (const std::string &e : ruleErrors_)
        out << "  rule-error: " << e << "\n";
    for (const HealthEvent &ev : events_)
        out << "  " << ev.str() << "\n";
    return out.str();
}

} // namespace corm::obs
