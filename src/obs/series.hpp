/**
 * @file
 * Time-series sampling of the metric registry.
 *
 * The registry (obs/metrics.hpp) is a snapshot: values as of "now".
 * The online monitor needs trajectories — is the retry counter
 * *accelerating*, what was the p99 *over the last 500 ms* — so the
 * RegistrySampler polls every registered metric on a simulated-time
 * cadence into fixed-capacity ring buffers (SeriesRing) that support
 * windowed rate, min/max/mean and percentile views.
 *
 * Memory is bounded by construction: capacity × metrics samples,
 * regardless of run length. Sampling is pull-based and runs from a
 * simulator callback, so for a fixed (config, seed) the sampled
 * series are deterministic like everything else.
 *
 * The sampler also renders a self-contained HTML dashboard (inline
 * SVG sparklines, no external assets or scripts) so a bench run can
 * drop a browsable view of its own telemetry next to BENCH_*.json.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/types.hpp"

namespace corm::obs {

/**
 * Fixed-capacity ring of (tick, value) samples with windowed views.
 * Pushes past the capacity overwrite the oldest sample.
 */
class SeriesRing
{
  public:
    struct Sample
    {
        corm::sim::Tick when = 0;
        double value = 0.0;
    };

    explicit SeriesRing(std::size_t capacity = 256)
        : cap(capacity == 0 ? 1 : capacity)
    {}

    void
    push(corm::sim::Tick when, double value)
    {
        if (buf.size() < cap) {
            buf.push_back({when, value});
        } else {
            buf[head] = {when, value};
            head = (head + 1) % cap;
        }
        ++pushed_;
    }

    /** Samples currently retained. */
    std::size_t size() const { return buf.size(); }

    /** Samples ever pushed (retained or not). */
    std::uint64_t pushed() const { return pushed_; }

    std::size_t capacity() const { return cap; }

    /** Sample @p i with 0 = oldest retained. */
    const Sample &
    at(std::size_t i) const
    {
        return buf[(head + i) % buf.size()];
    }

    /** Newest sample; size() must be > 0. */
    const Sample &latest() const { return at(buf.size() - 1); }

    /**
     * Per-second rate of change over [now - window, now], for
     * cumulative counters: the value delta between the newest sample
     * and the window's base sample, divided by their time span. The
     * base is the last sample at or before the window start when one
     * is retained (so short windows still straddle the boundary), the
     * oldest retained sample otherwise. 0 with fewer than two
     * samples.
     */
    double
    rate(corm::sim::Tick now, corm::sim::Tick window) const
    {
        if (buf.size() < 2)
            return 0.0;
        const corm::sim::Tick start =
            now >= window ? now - window : 0;
        std::size_t base = 0;
        for (std::size_t i = 0; i < buf.size(); ++i) {
            if (at(i).when <= start)
                base = i;
            else
                break;
        }
        const Sample &b = at(base);
        const Sample &h = latest();
        if (h.when <= b.when)
            return 0.0;
        return (h.value - b.value)
            / corm::sim::toSeconds(h.when - b.when);
    }

    /** Mean of the sampled values in (now - window, now]. */
    double
    windowMean(corm::sim::Tick now, corm::sim::Tick window) const
    {
        double sum = 0.0;
        std::size_t n = 0;
        eachInWindow(now, window, [&](double v) {
            sum += v;
            ++n;
        });
        return n ? sum / static_cast<double>(n) : 0.0;
    }

    /**
     * The @p q quantile (q in [0, 1]) of the sampled values in
     * (now - window, now]; 0 when the window holds no samples.
     */
    double
    percentile(double q, corm::sim::Tick now,
               corm::sim::Tick window) const
    {
        std::vector<double> vals;
        vals.reserve(buf.size());
        eachInWindow(now, window, [&](double v) { vals.push_back(v); });
        if (vals.empty())
            return 0.0;
        q = std::clamp(q, 0.0, 1.0);
        const std::size_t idx = std::min(
            vals.size() - 1,
            static_cast<std::size_t>(
                q * static_cast<double>(vals.size() - 1) + 0.5));
        std::nth_element(vals.begin(),
                         vals.begin() + static_cast<std::ptrdiff_t>(idx),
                         vals.end());
        return vals[idx];
    }

    /** Min and max of the retained samples (0,0 when empty). */
    double
    minRetained() const
    {
        double m = 0.0;
        for (std::size_t i = 0; i < buf.size(); ++i)
            m = i == 0 ? at(i).value : std::min(m, at(i).value);
        return m;
    }
    double
    maxRetained() const
    {
        double m = 0.0;
        for (std::size_t i = 0; i < buf.size(); ++i)
            m = i == 0 ? at(i).value : std::max(m, at(i).value);
        return m;
    }

  private:
    // Half-open (start, now]: a window of length W at cadence W/k
    // holds exactly k samples. The boundary sample itself still
    // serves as rate()'s base, which wants the straddling pair.
    template <typename Fn>
    void
    eachInWindow(corm::sim::Tick now, corm::sim::Tick window,
                 Fn &&fn) const
    {
        const corm::sim::Tick start =
            now >= window ? now - window : 0;
        for (std::size_t i = 0; i < buf.size(); ++i) {
            const Sample &s = at(i);
            if ((s.when > start || start == 0) && s.when <= now)
                fn(s.value);
        }
    }

    std::size_t cap;
    std::size_t head = 0; ///< index of the oldest sample once full
    std::uint64_t pushed_ = 0;
    std::vector<Sample> buf;
};

/**
 * Polls every metric in a MetricRegistry into per-metric SeriesRings.
 * Counters and gauges record their value; histograms record their
 * running p50/p99 (and observation count under the bare name) so the
 * dashboard and the rate()-style rules see scalar series uniformly.
 *
 * Drive sample() from a sim::PeriodicEvent — the sampler itself owns
 * no simulator state, which keeps it testable in isolation.
 */
class RegistrySampler
{
  public:
    struct Params
    {
        /** Ring capacity per series (bounds memory). */
        std::size_t capacity = 256;
    };

    // Two ctors rather than `Params params = {}`: GCC rejects a
    // brace default for a nested struct with member initializers
    // (same workaround as ReliableSender).
    explicit RegistrySampler(const MetricRegistry &registry)
        : RegistrySampler(registry, Params())
    {}

    RegistrySampler(const MetricRegistry &registry, Params params)
        : reg(registry), cfg(params)
    {}

    /** Poll every registered metric at simulated time @p now. */
    void
    sample(corm::sim::Tick now)
    {
        ++samples_;
        reg.forEach([&](const MetricRegistry::Sample &s) {
            ring(s.fullName).push(now, s.value);
            if (s.hist != nullptr && s.hist->count() > 0) {
                ring(s.fullName + ":p50")
                    .push(now, s.hist->quantile(0.50));
                ring(s.fullName + ":p99")
                    .push(now, s.hist->quantile(0.99));
            }
        });
    }

    /** Times sample() ran. */
    std::uint64_t samplesTaken() const { return samples_; }

    /** Series for canonical @p full_name, or nullptr before data. */
    const SeriesRing *
    series(const std::string &full_name) const
    {
        auto it = rings.find(full_name);
        return it == rings.end() ? nullptr : &it->second;
    }

    /** Number of distinct series collected so far. */
    std::size_t seriesCount() const { return rings.size(); }

    /** Visit every series in sorted name order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[name, r] : rings)
            fn(name, r);
    }

    /**
     * Render all series as one self-contained HTML page: a table of
     * latest/min/max per series plus an inline SVG sparkline each.
     * No scripts, no external assets — open the file, see the run.
     */
    void
    writeDashboard(std::ostream &out, const std::string &title) const
    {
        out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            << "<title>" << htmlEscape(title) << "</title>\n"
            << "<style>\n"
            << "body{font-family:monospace;background:#fafafa;"
            << "margin:1em}\n"
            << "h1{font-size:1.2em}\n"
            << "table{border-collapse:collapse}\n"
            << "td,th{border:1px solid #ccc;padding:2px 8px;"
            << "text-align:right}\n"
            << "td.name{text-align:left}\n"
            << "polyline{fill:none;stroke:#07c;stroke-width:1}\n"
            << "</style></head><body>\n"
            << "<h1>" << htmlEscape(title) << "</h1>\n"
            << "<table><tr><th>series</th><th>latest</th><th>min</th>"
            << "<th>max</th><th>samples</th><th>sparkline</th></tr>\n";
        for (const auto &[name, r] : rings) {
            if (r.size() == 0)
                continue;
            char buf[64];
            out << "<tr><td class=\"name\">" << htmlEscape(name)
                << "</td>";
            std::snprintf(buf, sizeof(buf), "%.6g", r.latest().value);
            out << "<td>" << buf << "</td>";
            std::snprintf(buf, sizeof(buf), "%.6g", r.minRetained());
            out << "<td>" << buf << "</td>";
            std::snprintf(buf, sizeof(buf), "%.6g", r.maxRetained());
            out << "<td>" << buf << "</td>";
            out << "<td>" << r.pushed() << "</td><td>";
            sparkline(out, r);
            out << "</td></tr>\n";
        }
        out << "</table></body></html>\n";
    }

    /** Dashboard HTML as a string (see writeDashboard). */
    std::string
    dashboardHtml(const std::string &title) const
    {
        std::ostringstream out;
        writeDashboard(out, title);
        return out.str();
    }

  private:
    SeriesRing &
    ring(const std::string &name)
    {
        auto it = rings.find(name);
        if (it == rings.end())
            it = rings
                     .emplace(name,
                              SeriesRing(cfg.capacity))
                     .first;
        return it->second;
    }

    static std::string
    htmlEscape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '<')
                out += "&lt;";
            else if (c == '>')
                out += "&gt;";
            else if (c == '&')
                out += "&amp;";
            else if (c == '"')
                out += "&quot;";
            else
                out += c;
        }
        return out;
    }

    static void
    sparkline(std::ostream &out, const SeriesRing &r)
    {
        constexpr double w = 240.0, h = 28.0, pad = 2.0;
        const double lo = r.minRetained(), hi = r.maxRetained();
        const double span = hi > lo ? hi - lo : 1.0;
        const corm::sim::Tick t0 = r.at(0).when;
        const corm::sim::Tick t1 = r.latest().when;
        const double tspan =
            t1 > t0 ? static_cast<double>(t1 - t0) : 1.0;
        out << "<svg width=\"" << static_cast<int>(w) << "\" height=\""
            << static_cast<int>(h) << "\"><polyline points=\"";
        char buf[48];
        for (std::size_t i = 0; i < r.size(); ++i) {
            const auto &s = r.at(i);
            const double x = pad
                + (w - 2 * pad) * static_cast<double>(s.when - t0)
                    / tspan;
            const double y = h - pad
                - (h - 2 * pad) * (s.value - lo) / span;
            std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x, y);
            out << buf;
        }
        out << "\"/></svg>";
    }

    const MetricRegistry &reg;
    Params cfg;
    std::uint64_t samples_ = 0;
    std::map<std::string, SeriesRing> rings;
};

} // namespace corm::obs
