/**
 * @file
 * Typed metric registry: counters, gauges and fixed log-scale
 * histograms behind one names/labels scheme.
 *
 * Every subsystem in the repo keeps ad-hoc counter structs
 * (ChannelStats, SchedStats, IxpStats, ...). Those structs stay — the
 * tests and scenario extractors read them directly — but the registry
 * gives them a uniform external face: a metric is a dotted name plus
 * sorted key=value labels (e.g. `coord.channel.sent{channel=coord.pci}`),
 * serialized deterministically (sorted by full name) into the text
 * report and the BENCH_*.json files.
 *
 * Two registration styles:
 *
 *  * owned metrics (counter()/gauge()/histogram()) for new code that
 *    wants the registry to hold the storage;
 *  * callback metrics (counterFn()/gaugeFn()) that sample an existing
 *    component counter at serialization time, so legacy stats structs
 *    are exposed without duplicating their accounting.
 *
 * Registering the same full name twice with the same type returns the
 * existing metric (idempotent); with a different type it throws
 * std::logic_error — a name collision is a programming error, not a
 * runtime condition.
 *
 * Histograms use fixed log2 buckets: bucket 0 holds values < 1,
 * bucket i (i >= 1) holds values in [2^(i-1), 2^i). Fixed edges make
 * cross-run and cross-trial comparison trivial and serialization
 * byte-stable.
 */

#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace corm::obs {

/** Metric label set: key=value pairs, canonically sorted by key. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Kinds of metric the registry holds. */
enum class MetricKind : std::uint8_t
{
    counter,
    gauge,
    histogram
};

/** Human-readable metric kind. */
constexpr const char *
metricKindName(MetricKind k)
{
    switch (k) {
      case MetricKind::counter: return "counter";
      case MetricKind::gauge: return "gauge";
      case MetricKind::histogram: return "histogram";
    }
    return "?";
}

/** A registry-owned monotonic counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { v += n; }
    std::uint64_t value() const { return v; }

  private:
    std::uint64_t v = 0;
};

/** A registry-owned instantaneous gauge. */
class Gauge
{
  public:
    void set(double value) { v = value; }
    double value() const { return v; }

  private:
    double v = 0.0;
};

/**
 * A registry-owned histogram with fixed log2 bucket edges: bucket 0
 * counts values < 1, bucket i counts values in [2^(i-1), 2^i). The
 * 64 buckets cover the full double range we care about (2^63).
 */
class Histogram
{
  public:
    static constexpr std::size_t bucketCount = 64;

    /** Record one observation (negative values clamp to bucket 0). */
    void
    record(double value)
    {
        ++total;
        sum += value;
        lo = total == 1 ? value : std::min(lo, value);
        hi = total == 1 ? value : std::max(hi, value);
        ++buckets_[bucketFor(value)];
    }

    /** Index of the bucket @p value falls in. */
    static std::size_t
    bucketFor(double value)
    {
        if (!(value >= 1.0))
            return 0; // also catches NaN and negatives
        // floor(log2(v)) + 1: v in [2^(i-1), 2^i) -> bucket i. Read
        // the exponent straight from the IEEE-754 bits: record() sits
        // on the coordination channel's per-delivery path, where a
        // libm log2() call would be the most expensive instruction.
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof bits);
        const auto exp =
            static_cast<std::size_t>((bits >> 52) & 0x7ff);
        return std::min(exp - 1023 + 1, bucketCount - 1);
    }

    /** Inclusive upper edge label of bucket @p i (bucket 0 = "<1"). */
    static double
    bucketUpperEdge(std::size_t i)
    {
        return i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
    }

    std::uint64_t count() const { return total; }
    double mean() const
    {
        return total ? sum / static_cast<double>(total) : 0.0;
    }
    double min() const { return total ? lo : 0.0; }
    double max() const { return total ? hi : 0.0; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    /** Highest non-empty bucket index + 1 (0 when empty). */
    std::size_t
    usedBuckets() const
    {
        std::size_t n = bucketCount;
        while (n > 0 && buckets_[n - 1] == 0)
            --n;
        return n;
    }

  private:
    std::array<std::uint64_t, bucketCount> buckets_{};
    std::uint64_t total = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * The registry: a deterministic name -> metric map. Not thread-safe;
 * each trial owns its registry, like its Simulator.
 */
class MetricRegistry
{
  public:
    /** Canonical full name: `name{k1=v1,k2=v2}` with sorted keys. */
    static std::string
    fullName(const std::string &name, Labels labels)
    {
        std::sort(labels.begin(), labels.end());
        std::string out = name;
        if (!labels.empty()) {
            out += '{';
            bool first = true;
            for (const auto &[k, v] : labels) {
                if (!first)
                    out += ',';
                first = false;
                out += k;
                out += '=';
                out += v;
            }
            out += '}';
        }
        return out;
    }

    /** Register (or fetch) an owned counter. */
    Counter &
    counter(const std::string &name, const Labels &labels = {})
    {
        Entry &e = entry(name, labels, MetricKind::counter);
        if (!e.ownedCounter)
            e.ownedCounter = std::make_unique<Counter>();
        return *e.ownedCounter;
    }

    /** Register (or fetch) an owned gauge. */
    Gauge &
    gauge(const std::string &name, const Labels &labels = {})
    {
        Entry &e = entry(name, labels, MetricKind::gauge);
        if (!e.ownedGauge)
            e.ownedGauge = std::make_unique<Gauge>();
        return *e.ownedGauge;
    }

    /** Register (or fetch) an owned histogram. */
    Histogram &
    histogram(const std::string &name, const Labels &labels = {})
    {
        Entry &e = entry(name, labels, MetricKind::histogram);
        if (!e.ownedHistogram)
            e.ownedHistogram = std::make_unique<Histogram>();
        return *e.ownedHistogram;
    }

    /**
     * Register a callback counter sampling an existing component
     * counter at serialization time. Re-registration replaces the
     * callback (components may be rebuilt between runs).
     */
    void
    counterFn(const std::string &name, const Labels &labels,
              std::function<std::uint64_t()> fn)
    {
        entry(name, labels, MetricKind::counter).readCounter =
            std::move(fn);
    }

    /** Register a callback gauge (see counterFn). */
    void
    gaugeFn(const std::string &name, const Labels &labels,
            std::function<double()> fn)
    {
        entry(name, labels, MetricKind::gauge).readGauge = std::move(fn);
    }

    /** Number of registered metrics. */
    std::size_t size() const { return metrics.size(); }

    /** True if @p name (canonical form) is registered. */
    bool
    has(const std::string &name, const Labels &labels = {}) const
    {
        return metrics.count(fullName(name, labels)) != 0;
    }

    /**
     * Serialize every metric as text, one `name value` line, sorted
     * by full name. Histograms render count/mean/min/max plus their
     * non-empty buckets.
     */
    void
    writeText(std::ostream &out) const
    {
        for (const auto &[name, e] : metrics) {
            switch (e.kind) {
              case MetricKind::counter:
                out << name << " " << counterValue(e) << "\n";
                break;
              case MetricKind::gauge: {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.10g", gaugeValue(e));
                out << name << " " << buf << "\n";
                break;
              }
              case MetricKind::histogram: {
                const Histogram &h = *e.ownedHistogram;
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              " count=%llu mean=%.10g min=%.10g "
                              "max=%.10g",
                              static_cast<unsigned long long>(h.count()),
                              h.mean(), h.min(), h.max());
                out << name << buf;
                for (std::size_t i = 0; i < h.usedBuckets(); ++i) {
                    if (h.bucket(i) == 0)
                        continue;
                    std::snprintf(
                        buf, sizeof(buf), " le(%.10g)=%llu",
                        Histogram::bucketUpperEdge(i),
                        static_cast<unsigned long long>(h.bucket(i)));
                    out << buf;
                }
                out << "\n";
                break;
              }
            }
        }
    }

    /**
     * Serialize every metric into @p j as one JSON object keyed by
     * full metric name (sorted, so the output is byte-stable).
     */
    void
    writeJson(JsonWriter &j) const
    {
        j.beginObject();
        for (const auto &[name, e] : metrics) {
            switch (e.kind) {
              case MetricKind::counter:
                j.field(name.c_str(), counterValue(e));
                break;
              case MetricKind::gauge:
                j.field(name.c_str(), gaugeValue(e));
                break;
              case MetricKind::histogram: {
                const Histogram &h = *e.ownedHistogram;
                j.beginObject(name.c_str());
                j.field("count", h.count());
                j.field("mean", h.mean());
                j.field("min", h.min());
                j.field("max", h.max());
                j.beginArray("buckets");
                for (std::size_t i = 0; i < h.usedBuckets(); ++i) {
                    if (h.bucket(i) == 0)
                        continue;
                    j.beginObject();
                    j.field("le", Histogram::bucketUpperEdge(i));
                    j.field("n", h.bucket(i));
                    j.endObject();
                }
                j.endArray();
                j.endObject();
                break;
              }
            }
        }
        j.endObject();
    }

    /** JSON snapshot as a string (see writeJson). */
    std::string
    jsonSnapshot() const
    {
        JsonWriter j;
        writeJson(j);
        return j.str();
    }

  private:
    struct Entry
    {
        MetricKind kind = MetricKind::counter;
        std::unique_ptr<Counter> ownedCounter;
        std::unique_ptr<Gauge> ownedGauge;
        std::unique_ptr<Histogram> ownedHistogram;
        std::function<std::uint64_t()> readCounter;
        std::function<double()> readGauge;
    };

    Entry &
    entry(const std::string &name, const Labels &labels, MetricKind kind)
    {
        const std::string key = fullName(name, labels);
        auto [it, inserted] = metrics.try_emplace(key);
        if (inserted) {
            it->second.kind = kind;
        } else if (it->second.kind != kind) {
            throw std::logic_error(
                "metric '" + key + "' re-registered as "
                + metricKindName(kind) + " but exists as "
                + metricKindName(it->second.kind));
        }
        return it->second;
    }

    static std::uint64_t
    counterValue(const Entry &e)
    {
        if (e.readCounter)
            return e.readCounter();
        return e.ownedCounter ? e.ownedCounter->value() : 0;
    }

    static double
    gaugeValue(const Entry &e)
    {
        if (e.readGauge)
            return e.readGauge();
        return e.ownedGauge ? e.ownedGauge->value() : 0.0;
    }

    std::map<std::string, Entry> metrics;
};

} // namespace corm::obs
