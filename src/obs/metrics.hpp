/**
 * @file
 * Typed metric registry: counters, gauges and fixed log-scale
 * histograms behind one names/labels scheme.
 *
 * Every subsystem in the repo keeps ad-hoc counter structs
 * (ChannelStats, SchedStats, IxpStats, ...). Those structs stay — the
 * tests and scenario extractors read them directly — but the registry
 * gives them a uniform external face: a metric is a dotted name plus
 * sorted key=value labels (e.g. `coord.channel.sent{channel=coord.pci}`),
 * serialized deterministically (sorted by full name) into the text
 * report and the BENCH_*.json files.
 *
 * Two registration styles:
 *
 *  * owned metrics (counter()/gauge()/histogram()) for new code that
 *    wants the registry to hold the storage;
 *  * callback metrics (counterFn()/gaugeFn()) that sample an existing
 *    component counter at serialization time, so legacy stats structs
 *    are exposed without duplicating their accounting.
 *
 * Registering the same full name twice with the same type returns the
 * existing metric (idempotent); with a different type it throws
 * std::logic_error — a name collision is a programming error, not a
 * runtime condition.
 *
 * Histograms use fixed log2 buckets: bucket 0 holds values < 1,
 * bucket i (i >= 1) holds values in [2^(i-1), 2^i). Fixed edges make
 * cross-run and cross-trial comparison trivial and serialization
 * byte-stable.
 */

#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace corm::obs {

/** Metric label set: key=value pairs, canonically sorted by key. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Kinds of metric the registry holds. */
enum class MetricKind : std::uint8_t
{
    counter,
    gauge,
    histogram
};

/** Human-readable metric kind. */
constexpr const char *
metricKindName(MetricKind k)
{
    switch (k) {
      case MetricKind::counter: return "counter";
      case MetricKind::gauge: return "gauge";
      case MetricKind::histogram: return "histogram";
    }
    return "?";
}

/** A registry-owned monotonic counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { v += n; }
    std::uint64_t value() const { return v; }

  private:
    std::uint64_t v = 0;
};

/** A registry-owned instantaneous gauge. */
class Gauge
{
  public:
    void set(double value) { v = value; }
    double value() const { return v; }

  private:
    double v = 0.0;
};

/**
 * A registry-owned histogram with fixed log2 bucket edges: bucket 0
 * counts values < 1, bucket i counts values in [2^(i-1), 2^i). The
 * 64 buckets cover the full double range we care about (2^63).
 */
class Histogram
{
  public:
    static constexpr std::size_t bucketCount = 64;

    /** Record one observation (negative values clamp to bucket 0). */
    void
    record(double value)
    {
        ++total;
        sum += value;
        lo = total == 1 ? value : std::min(lo, value);
        hi = total == 1 ? value : std::max(hi, value);
        ++buckets_[bucketFor(value)];
    }

    /** Index of the bucket @p value falls in. */
    static std::size_t
    bucketFor(double value)
    {
        if (!(value >= 1.0))
            return 0; // also catches NaN and negatives
        // floor(log2(v)) + 1: v in [2^(i-1), 2^i) -> bucket i. Read
        // the exponent straight from the IEEE-754 bits: record() sits
        // on the coordination channel's per-delivery path, where a
        // libm log2() call would be the most expensive instruction.
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof bits);
        const auto exp =
            static_cast<std::size_t>((bits >> 52) & 0x7ff);
        return std::min(exp - 1023 + 1, bucketCount - 1);
    }

    /** Inclusive upper edge label of bucket @p i (bucket 0 = "<1"). */
    static double
    bucketUpperEdge(std::size_t i)
    {
        return i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
    }

    std::uint64_t count() const { return total; }
    double mean() const
    {
        return total ? sum / static_cast<double>(total) : 0.0;
    }
    double min() const { return total ? lo : 0.0; }
    double max() const { return total ? hi : 0.0; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    /**
     * Estimate the @p q quantile (q in [0, 1]) from the log2 buckets:
     * find the bucket holding the target rank and interpolate
     * linearly between its edges by rank position. The estimate is
     * clamped to the recorded [min, max], so p0/p100 are exact and a
     * single-observation histogram reports that observation for
     * every quantile.
     */
    double
    quantile(double q) const
    {
        if (total == 0)
            return 0.0;
        q = std::clamp(q, 0.0, 1.0);
        const double want = q * static_cast<double>(total);
        std::uint64_t target =
            static_cast<std::uint64_t>(std::ceil(want));
        target = std::clamp<std::uint64_t>(target, 1, total);
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < bucketCount; ++i) {
            if (buckets_[i] == 0)
                continue;
            cum += buckets_[i];
            if (cum < target)
                continue;
            const double lower =
                i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i - 1));
            const double upper = bucketUpperEdge(i);
            const std::uint64_t rank =
                target - (cum - buckets_[i]); // 1-based within bucket
            const double frac = static_cast<double>(rank)
                / static_cast<double>(buckets_[i]);
            return std::clamp(lower + (upper - lower) * frac, lo, hi);
        }
        return hi;
    }

    /** Highest non-empty bucket index + 1 (0 when empty). */
    std::size_t
    usedBuckets() const
    {
        std::size_t n = bucketCount;
        while (n > 0 && buckets_[n - 1] == 0)
            --n;
        return n;
    }

  private:
    std::array<std::uint64_t, bucketCount> buckets_{};
    std::uint64_t total = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * The registry: a deterministic name -> metric map. Not thread-safe;
 * each trial owns its registry, like its Simulator.
 */
class MetricRegistry
{
  public:
    /** Canonical full name: `name{k1=v1,k2=v2}` with sorted keys. */
    static std::string
    fullName(const std::string &name, Labels labels)
    {
        std::sort(labels.begin(), labels.end());
        std::string out = name;
        if (!labels.empty()) {
            out += '{';
            bool first = true;
            for (const auto &[k, v] : labels) {
                if (!first)
                    out += ',';
                first = false;
                out += k;
                out += '=';
                out += v;
            }
            out += '}';
        }
        return out;
    }

    /** Register (or fetch) an owned counter. */
    Counter &
    counter(const std::string &name, const Labels &labels = {})
    {
        Entry &e = entry(name, labels, MetricKind::counter);
        if (!e.ownedCounter)
            e.ownedCounter = std::make_unique<Counter>();
        return *e.ownedCounter;
    }

    /** Register (or fetch) an owned gauge. */
    Gauge &
    gauge(const std::string &name, const Labels &labels = {})
    {
        Entry &e = entry(name, labels, MetricKind::gauge);
        if (!e.ownedGauge)
            e.ownedGauge = std::make_unique<Gauge>();
        return *e.ownedGauge;
    }

    /** Register (or fetch) an owned histogram. */
    Histogram &
    histogram(const std::string &name, const Labels &labels = {})
    {
        Entry &e = entry(name, labels, MetricKind::histogram);
        if (!e.ownedHistogram)
            e.ownedHistogram = std::make_unique<Histogram>();
        return *e.ownedHistogram;
    }

    /**
     * Register a callback counter sampling an existing component
     * counter at serialization time. Re-registration replaces the
     * callback (components may be rebuilt between runs).
     */
    void
    counterFn(const std::string &name, const Labels &labels,
              std::function<std::uint64_t()> fn)
    {
        entry(name, labels, MetricKind::counter).readCounter =
            std::move(fn);
    }

    /** Register a callback gauge (see counterFn). */
    void
    gaugeFn(const std::string &name, const Labels &labels,
            std::function<double()> fn)
    {
        entry(name, labels, MetricKind::gauge).readGauge = std::move(fn);
    }

    /** Number of registered metrics. */
    std::size_t size() const { return metrics.size(); }

    /** True if @p name (canonical form) is registered. */
    bool
    has(const std::string &name, const Labels &labels = {}) const
    {
        return metrics.count(fullName(name, labels)) != 0;
    }

    /**
     * One metric as seen by a consumer: identity plus the sampled
     * scalar (counters/gauges: the value; histograms: the count) and,
     * for histograms, the distribution itself.
     */
    struct Sample
    {
        const std::string &fullName;
        const std::string &name;     ///< bare name, labels stripped
        const Labels &labels;
        MetricKind kind;
        double value = 0.0;
        const Histogram *hist = nullptr; ///< histograms only
    };

    /**
     * Visit every metric in sorted full-name order with its current
     * value. The callback-metric reads happen here, so forEach is the
     * sampling point the time-series layer (obs/series.hpp) polls on
     * a simulated cadence.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[key, e] : metrics) {
            Sample s{key, e.name, e.labels, e.kind, 0.0, nullptr};
            switch (e.kind) {
              case MetricKind::counter:
                s.value = static_cast<double>(counterValue(e));
                break;
              case MetricKind::gauge:
                s.value = gaugeValue(e);
                break;
              case MetricKind::histogram:
                s.hist = e.ownedHistogram.get();
                s.value = static_cast<double>(s.hist->count());
                break;
            }
            fn(s);
        }
    }

    /**
     * Current scalar value of the metric registered under canonical
     * @p full_name (histograms: observation count). False when the
     * name is unknown — the watchdog treats that as a rule error, not
     * a crash.
     */
    bool
    value(const std::string &full_name, double &out) const
    {
        auto it = metrics.find(full_name);
        if (it == metrics.end())
            return false;
        const Entry &e = it->second;
        switch (e.kind) {
          case MetricKind::counter:
            out = static_cast<double>(counterValue(e));
            return true;
          case MetricKind::gauge:
            out = gaugeValue(e);
            return true;
          case MetricKind::histogram:
            out = static_cast<double>(e.ownedHistogram->count());
            return true;
        }
        return false;
    }

    /** Histogram registered under @p full_name, or nullptr. */
    const Histogram *
    findHistogram(const std::string &full_name) const
    {
        auto it = metrics.find(full_name);
        if (it == metrics.end()
            || it->second.kind != MetricKind::histogram)
            return nullptr;
        return it->second.ownedHistogram.get();
    }

    /**
     * Serialize every metric as text, one `name value` line, sorted
     * by full name. Histograms render count/mean/min/max plus their
     * non-empty buckets.
     */
    void
    writeText(std::ostream &out) const
    {
        for (const auto &[name, e] : metrics) {
            switch (e.kind) {
              case MetricKind::counter:
                out << name << " " << counterValue(e) << "\n";
                break;
              case MetricKind::gauge: {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.10g", gaugeValue(e));
                out << name << " " << buf << "\n";
                break;
              }
              case MetricKind::histogram: {
                // Quantile estimates, not raw bucket dumps: the
                // log2 buckets stay available in the JSON snapshot,
                // but a human reading the text report wants the tail.
                const Histogram &h = *e.ownedHistogram;
                char buf[224];
                std::snprintf(buf, sizeof(buf),
                              " count=%llu mean=%.10g min=%.10g "
                              "max=%.10g p50=%.10g p99=%.10g "
                              "p999=%.10g\n",
                              static_cast<unsigned long long>(h.count()),
                              h.mean(), h.min(), h.max(),
                              h.quantile(0.50), h.quantile(0.99),
                              h.quantile(0.999));
                out << name << buf;
                break;
              }
            }
        }
    }

    /**
     * Serialize every metric into @p j as one JSON object keyed by
     * full metric name (sorted, so the output is byte-stable).
     */
    void
    writeJson(JsonWriter &j) const
    {
        j.beginObject();
        for (const auto &[name, e] : metrics) {
            switch (e.kind) {
              case MetricKind::counter:
                j.field(name.c_str(), counterValue(e));
                break;
              case MetricKind::gauge:
                j.field(name.c_str(), gaugeValue(e));
                break;
              case MetricKind::histogram: {
                const Histogram &h = *e.ownedHistogram;
                j.beginObject(name.c_str());
                j.field("count", h.count());
                j.field("mean", h.mean());
                j.field("min", h.min());
                j.field("max", h.max());
                j.field("p50", h.quantile(0.50));
                j.field("p99", h.quantile(0.99));
                j.field("p999", h.quantile(0.999));
                j.beginArray("buckets");
                for (std::size_t i = 0; i < h.usedBuckets(); ++i) {
                    if (h.bucket(i) == 0)
                        continue;
                    j.beginObject();
                    j.field("le", Histogram::bucketUpperEdge(i));
                    j.field("n", h.bucket(i));
                    j.endObject();
                }
                j.endArray();
                j.endObject();
                break;
              }
            }
        }
        j.endObject();
    }

    /** JSON snapshot as a string (see writeJson). */
    std::string
    jsonSnapshot() const
    {
        JsonWriter j;
        writeJson(j);
        return j.str();
    }

    /**
     * Sanitize a dotted metric name into the Prometheus identifier
     * charset [a-zA-Z_:][a-zA-Z0-9_:]*: dots (and anything else
     * outside the charset) become underscores.
     */
    static std::string
    promName(const std::string &name)
    {
        std::string out = name;
        for (std::size_t i = 0; i < out.size(); ++i) {
            char &c = out[i];
            const bool alpha = (c >= 'a' && c <= 'z')
                || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
            const bool digit = c >= '0' && c <= '9';
            if (!(alpha || (digit && i > 0)))
                c = '_';
        }
        return out;
    }

    /** Escape a Prometheus label value: \ , " and newline. */
    static std::string
    promEscape(const std::string &v)
    {
        std::string out;
        out.reserve(v.size());
        for (char c : v) {
            if (c == '\\')
                out += "\\\\";
            else if (c == '"')
                out += "\\\"";
            else if (c == '\n')
                out += "\\n";
            else
                out += c;
        }
        return out;
    }

    /**
     * Serialize as Prometheus text exposition format. Counters and
     * gauges become one sample each; histograms expand into the
     * conventional cumulative `_bucket{le=...}` series plus `_sum`
     * and `_count`. Label values are escaped, so values containing
     * '"', '\' or newlines round-trip through a Prometheus parser.
     */
    void
    writeProm(std::ostream &out) const
    {
        char buf[96];
        auto labelBlock = [&](const Labels &labels,
                              const char *extra_key = nullptr,
                              const std::string &extra_val = {}) {
            std::string s;
            if (labels.empty() && !extra_key)
                return s;
            s += '{';
            bool first = true;
            for (const auto &[k, v] : labels) {
                if (!first)
                    s += ',';
                first = false;
                s += promName(k);
                s += "=\"";
                s += promEscape(v);
                s += '"';
            }
            if (extra_key) {
                if (!first)
                    s += ',';
                s += extra_key;
                s += "=\"";
                s += promEscape(extra_val);
                s += '"';
            }
            s += '}';
            return s;
        };
        for (const auto &[key, e] : metrics) {
            const std::string pn = promName(e.name);
            out << "# TYPE " << pn << ' ' << metricKindName(e.kind)
                << '\n';
            switch (e.kind) {
              case MetricKind::counter:
                out << pn << labelBlock(e.labels) << ' '
                    << counterValue(e) << '\n';
                break;
              case MetricKind::gauge:
                std::snprintf(buf, sizeof(buf), "%.10g", gaugeValue(e));
                out << pn << labelBlock(e.labels) << ' ' << buf << '\n';
                break;
              case MetricKind::histogram: {
                const Histogram &h = *e.ownedHistogram;
                std::uint64_t cum = 0;
                for (std::size_t i = 0; i < h.usedBuckets(); ++i) {
                    if (h.bucket(i) == 0)
                        continue;
                    cum += h.bucket(i);
                    std::snprintf(buf, sizeof(buf), "%.10g",
                                  Histogram::bucketUpperEdge(i));
                    out << pn << "_bucket"
                        << labelBlock(e.labels, "le", buf) << ' ' << cum
                        << '\n';
                }
                out << pn << "_bucket"
                    << labelBlock(e.labels, "le", "+Inf") << ' '
                    << h.count() << '\n';
                std::snprintf(buf, sizeof(buf), "%.10g",
                              h.mean() * static_cast<double>(h.count()));
                out << pn << "_sum" << labelBlock(e.labels) << ' ' << buf
                    << '\n';
                out << pn << "_count" << labelBlock(e.labels) << ' '
                    << h.count() << '\n';
                break;
              }
            }
        }
    }

    /** Prometheus text snapshot as a string (see writeProm). */
    std::string
    promSnapshot() const
    {
        std::ostringstream out;
        writeProm(out);
        return out.str();
    }

  private:
    struct Entry
    {
        MetricKind kind = MetricKind::counter;
        std::string name; ///< bare name (no labels)
        Labels labels;    ///< sorted
        std::unique_ptr<Counter> ownedCounter;
        std::unique_ptr<Gauge> ownedGauge;
        std::unique_ptr<Histogram> ownedHistogram;
        std::function<std::uint64_t()> readCounter;
        std::function<double()> readGauge;
    };

    Entry &
    entry(const std::string &name, const Labels &labels, MetricKind kind)
    {
        const std::string key = fullName(name, labels);
        auto [it, inserted] = metrics.try_emplace(key);
        if (inserted) {
            it->second.kind = kind;
            it->second.name = name;
            it->second.labels = labels;
            std::sort(it->second.labels.begin(),
                      it->second.labels.end());
        } else if (it->second.kind != kind) {
            throw std::logic_error(
                "metric '" + key + "' re-registered as "
                + metricKindName(kind) + " but exists as "
                + metricKindName(it->second.kind));
        }
        return it->second;
    }

    static std::uint64_t
    counterValue(const Entry &e)
    {
        if (e.readCounter)
            return e.readCounter();
        return e.ownedCounter ? e.ownedCounter->value() : 0;
    }

    static double
    gaugeValue(const Entry &e)
    {
        if (e.readGauge)
            return e.readGauge();
        return e.ownedGauge ? e.ownedGauge->value() : 0.0;
    }

    std::map<std::string, Entry> metrics;
};

} // namespace corm::obs
