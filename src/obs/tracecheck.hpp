/**
 * @file
 * Structural validation of the Chrome trace-event JSON our
 * TraceRecorder emits (and Perfetto loads).
 *
 * Shared between the `trace_check` CLI (bench/trace_check.cpp, used
 * by the trace_smoke ctest against real bench output) and the unit
 * tests, which exercise the edge cases a healthy bench never
 * produces: empty traces, flows missing their ack leg, double
 * begins.
 *
 * Checked invariants: a traceEvents array; per-event ph/name/pid/tid;
 * ts on timed events; dur on complete events; positive ids on flow
 * events; per-flow exactly one begin, at most one end, events in
 * non-decreasing timestamp order — and, when @p require_flow is set,
 * at least one complete begin → step → end chain (the causal
 * coordination span the tracing tentpole exists to show). Optional
 * extras (TraceCheckParams): an exact declared-track count, and the
 * cross-shard stitching rule — a flow ending on a different track
 * than it began must carry a step tying the two together, the
 * invariant the sharded barrier-time trace merge must preserve.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace corm::obs {

/** Result of one trace validation. */
struct TraceCheckResult
{
    std::size_t events = 0;        ///< entries in traceEvents
    std::size_t timed = 0;         ///< non-metadata events
    std::size_t tracks = 0;        ///< thread_name metadata tracks
    std::size_t flows = 0;         ///< distinct flow ids
    std::size_t complete = 0;      ///< flows with begin and end
    std::size_t multiHop = 0;      ///< complete flows with >= 1 step
    std::size_t maxSteps = 0;      ///< most steps in any complete flow
    std::size_t dangling = 0;      ///< begun flows that never ended
    /** Complete flows ending on a different track than they began —
     *  the cross-shard spans the sharded capture merge stitches. */
    std::size_t crossTrack = 0;
    /** Individual backwards steps along flow chains (counted always;
     *  each becomes its own violation under monotone_flows). */
    std::size_t monotoneViolations = 0;
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

/** Knobs of one trace validation (all checks off by default). */
struct TraceCheckParams
{
    /** Demand one complete begin -> step -> end causal chain. */
    bool require_flow = false;
    /** With require_flow: deepest complete chain must have >= this
     *  many steps (the multi-hop relay check). */
    std::size_t min_steps = 1;
    /** Nonzero: the trace must declare exactly this many tracks
     *  (thread_name metadata entries). */
    std::size_t expect_tracks = 0;
    /**
     * Cross-shard stitching check: every flow that begins ('s') on
     * one track and ends ('f') on a different track must carry at
     * least one step ('t') — the hop that ties the sender-side span
     * to the receiver-side continuation. A merge that lost the lane
     * flow-steps produces exactly this signature: teleporting spans.
     * Also demands at least one such cross-track flow, so an empty
     * or single-track trace cannot vacuously pass.
     */
    bool require_stitched = false;
    /**
     * Monotone-flows validation: timestamps must be non-decreasing
     * along every flow's step chain — dangling and abandoned chains
     * included, which the coarse per-flow ordering check also covers
     * but reports once per flow. Under this knob every individual
     * backwards step is its own violation, naming the event index
     * and the timestamps involved, so a sharded merge that
     * misordered one window is pinpointed rather than summarized.
     */
    bool monotone_flows = false;
};

/**
 * Validate a parsed trace document. @p require_flow additionally
 * demands one complete multi-hop causal chain; @p min_steps raises
 * the bar from "at least one step" to "at least one complete flow
 * with >= min_steps steps" — the multi-hop relay check: a span that
 * crossed an N-link fabric path shows one step per intermediate
 * relay, so a tree scenario's trace must contain deeper chains than
 * the two-island channel's begin -> step -> end.
 */
inline TraceCheckResult
checkTrace(const JsonValue &doc, const TraceCheckParams &params)
{
    TraceCheckResult r;
    auto violation = [&r](const std::string &what) {
        r.violations.push_back(what);
    };
    auto eventViolation = [&](const char *what, std::size_t index) {
        violation("event " + std::to_string(index) + ": " + what);
    };

    if (!doc.isObject()) {
        violation("top level is not an object");
        return r;
    }
    const JsonValue *events = doc.get("traceEvents");
    if (!events || !events->isArray()) {
        violation("missing traceEvents array");
        return r;
    }
    r.events = events->items.size();

    struct FlowChain
    {
        int begins = 0;
        int steps = 0;
        int ends = 0;
        double lastTs = 0.0;
        bool ordered = true; ///< events appeared in non-decreasing ts
        // Track identity of the begin and end legs, for the
        // cross-shard stitching check.
        double beginPid = 0.0, beginTid = 0.0;
        double endPid = 0.0, endTid = 0.0;
    };
    std::map<double, FlowChain> chains;

    for (std::size_t i = 0; i < events->items.size(); ++i) {
        const JsonValue &e = events->items[i];
        if (!e.isObject()) {
            eventViolation("not an object", i);
            continue;
        }
        const JsonValue *ph = e.get("ph");
        if (!ph || !ph->isString() || ph->str.size() != 1) {
            eventViolation("missing/odd ph", i);
            continue;
        }
        const char p = ph->str[0];
        const JsonValue *name = e.get("name");
        if (!name || !name->isString() || name->str.empty())
            eventViolation("missing name", i);
        const JsonValue *pid = e.get("pid");
        const JsonValue *tid = e.get("tid");
        if (!pid || !pid->isNumber() || !tid || !tid->isNumber())
            eventViolation("missing pid/tid", i);

        if (p == 'M') { // metadata carries no timestamp
            if (name && name->isString()
                && name->str == "thread_name")
                ++r.tracks;
            continue;
        }
        ++r.timed;
        const JsonValue *ts = e.get("ts");
        if (!ts || !ts->isNumber()) {
            eventViolation("timed event without numeric ts", i);
            continue;
        }
        if (p == 'X') {
            const JsonValue *dur = e.get("dur");
            if (!dur || !dur->isNumber() || dur->num < 0)
                eventViolation("complete event without dur", i);
        } else if (p == 's' || p == 't' || p == 'f') {
            const JsonValue *id = e.get("id");
            if (!id || !id->isNumber() || id->num <= 0) {
                eventViolation("flow event without positive id", i);
                continue;
            }
            FlowChain &c = chains[id->num];
            const bool first = c.begins + c.steps + c.ends == 0;
            if (!first && ts->num < c.lastTs) {
                c.ordered = false;
                ++r.monotoneViolations;
                if (params.monotone_flows) {
                    char buf[160];
                    std::snprintf(buf, sizeof(buf),
                                  "event %zu: flow %.0f steps "
                                  "backwards in ts (%.3f -> %.3f us)",
                                  i, id->num, c.lastTs, ts->num);
                    violation(buf);
                }
            }
            c.lastTs = ts->num;
            if (p == 's') {
                ++c.begins;
                if (pid && pid->isNumber() && tid && tid->isNumber()) {
                    c.beginPid = pid->num;
                    c.beginTid = tid->num;
                }
            } else if (p == 't') {
                ++c.steps;
            } else {
                ++c.ends;
                if (pid && pid->isNumber() && tid && tid->isNumber()) {
                    c.endPid = pid->num;
                    c.endTid = tid->num;
                }
            }
        } else if (p != 'i' && p != 'C') {
            eventViolation("unknown phase", i);
        }
    }

    r.flows = chains.size();
    char idbuf[40];
    for (const auto &[id, c] : chains) {
        std::snprintf(idbuf, sizeof(idbuf), "%.0f", id);
        if (c.begins != 1)
            violation("flow " + std::string(idbuf) + " has "
                      + std::to_string(c.begins) + " begins");
        if (c.ends > 1)
            violation("flow " + std::string(idbuf) + " has "
                      + std::to_string(c.ends) + " ends");
        if (!c.ordered)
            violation("flow " + std::string(idbuf)
                      + " events out of ts order");
        if (c.begins == 1 && c.ends == 1) {
            ++r.complete;
            if (c.steps > 0)
                ++r.multiHop;
            r.maxSteps = std::max(
                r.maxSteps, static_cast<std::size_t>(c.steps));
            const bool moved = c.beginPid != c.endPid
                || c.beginTid != c.endTid;
            if (moved) {
                ++r.crossTrack;
                if (params.require_stitched && c.steps == 0)
                    violation("flow " + std::string(idbuf)
                              + " ends on a different track with no "
                                "stitching step");
            }
        } else if (c.begins >= 1 && c.ends == 0) {
            // Begun but never ended: not a violation (a message
            // abandoned at a hub legitimately leaves its span
            // dangling), but surfaced so callers can assert on it.
            ++r.dangling;
        }
    }

    if (params.require_flow && r.multiHop == 0)
        violation("no complete multi-hop flow "
                  "(begin -> step -> end) found");
    if (params.require_flow && params.min_steps > 1
        && r.maxSteps < params.min_steps)
        violation("deepest complete flow has "
                  + std::to_string(r.maxSteps) + " steps, need >= "
                  + std::to_string(params.min_steps)
                  + " (multi-hop relay chain missing)");
    if (params.expect_tracks != 0 && r.tracks != params.expect_tracks)
        violation("expected " + std::to_string(params.expect_tracks)
                  + " tracks, found " + std::to_string(r.tracks));
    if (params.require_stitched && r.crossTrack == 0)
        violation("no cross-track flow found "
                  "(nothing to stitch)");
    return r;
}

/** Compatibility overload (require_flow / min_steps only). */
inline TraceCheckResult
checkTrace(const JsonValue &doc, bool require_flow,
           std::size_t min_steps = 1)
{
    TraceCheckParams p;
    p.require_flow = require_flow;
    p.min_steps = min_steps;
    return checkTrace(doc, p);
}

/** Parse @p text and validate; malformed JSON is a violation. */
inline TraceCheckResult
checkTraceText(std::string_view text, const TraceCheckParams &params)
{
    JsonValue doc;
    std::string err;
    if (!parseJson(text, doc, &err)) {
        TraceCheckResult r;
        r.violations.push_back("malformed JSON: " + err);
        return r;
    }
    return checkTrace(doc, params);
}

/** Compatibility overload (require_flow / min_steps only). */
inline TraceCheckResult
checkTraceText(std::string_view text, bool require_flow,
               std::size_t min_steps = 1)
{
    TraceCheckParams p;
    p.require_flow = require_flow;
    p.min_steps = min_steps;
    return checkTraceText(text, p);
}

} // namespace corm::obs
