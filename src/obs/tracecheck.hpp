/**
 * @file
 * Structural validation of the Chrome trace-event JSON our
 * TraceRecorder emits (and Perfetto loads).
 *
 * Shared between the `trace_check` CLI (bench/trace_check.cpp, used
 * by the trace_smoke ctest against real bench output) and the unit
 * tests, which exercise the edge cases a healthy bench never
 * produces: empty traces, flows missing their ack leg, double
 * begins.
 *
 * Checked invariants: a traceEvents array; per-event ph/name/pid/tid;
 * ts on timed events; dur on complete events; positive ids on flow
 * events; per-flow exactly one begin, at most one end, events in
 * non-decreasing timestamp order — and, when @p require_flow is set,
 * at least one complete begin → step → end chain (the causal
 * coordination span the tracing tentpole exists to show).
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace corm::obs {

/** Result of one trace validation. */
struct TraceCheckResult
{
    std::size_t events = 0;        ///< entries in traceEvents
    std::size_t timed = 0;         ///< non-metadata events
    std::size_t flows = 0;         ///< distinct flow ids
    std::size_t complete = 0;      ///< flows with begin and end
    std::size_t multiHop = 0;      ///< complete flows with >= 1 step
    std::size_t maxSteps = 0;      ///< most steps in any complete flow
    std::size_t dangling = 0;      ///< begun flows that never ended
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

/**
 * Validate a parsed trace document. @p require_flow additionally
 * demands one complete multi-hop causal chain; @p min_steps raises
 * the bar from "at least one step" to "at least one complete flow
 * with >= min_steps steps" — the multi-hop relay check: a span that
 * crossed an N-link fabric path shows one step per intermediate
 * relay, so a tree scenario's trace must contain deeper chains than
 * the two-island channel's begin -> step -> end.
 */
inline TraceCheckResult
checkTrace(const JsonValue &doc, bool require_flow,
           std::size_t min_steps = 1)
{
    TraceCheckResult r;
    auto violation = [&r](const std::string &what) {
        r.violations.push_back(what);
    };
    auto eventViolation = [&](const char *what, std::size_t index) {
        violation("event " + std::to_string(index) + ": " + what);
    };

    if (!doc.isObject()) {
        violation("top level is not an object");
        return r;
    }
    const JsonValue *events = doc.get("traceEvents");
    if (!events || !events->isArray()) {
        violation("missing traceEvents array");
        return r;
    }
    r.events = events->items.size();

    struct FlowChain
    {
        int begins = 0;
        int steps = 0;
        int ends = 0;
        double lastTs = 0.0;
        bool ordered = true; ///< events appeared in non-decreasing ts
    };
    std::map<double, FlowChain> chains;

    for (std::size_t i = 0; i < events->items.size(); ++i) {
        const JsonValue &e = events->items[i];
        if (!e.isObject()) {
            eventViolation("not an object", i);
            continue;
        }
        const JsonValue *ph = e.get("ph");
        if (!ph || !ph->isString() || ph->str.size() != 1) {
            eventViolation("missing/odd ph", i);
            continue;
        }
        const char p = ph->str[0];
        const JsonValue *name = e.get("name");
        if (!name || !name->isString() || name->str.empty())
            eventViolation("missing name", i);
        const JsonValue *pid = e.get("pid");
        const JsonValue *tid = e.get("tid");
        if (!pid || !pid->isNumber() || !tid || !tid->isNumber())
            eventViolation("missing pid/tid", i);

        if (p == 'M') // metadata carries no timestamp
            continue;
        ++r.timed;
        const JsonValue *ts = e.get("ts");
        if (!ts || !ts->isNumber()) {
            eventViolation("timed event without numeric ts", i);
            continue;
        }
        if (p == 'X') {
            const JsonValue *dur = e.get("dur");
            if (!dur || !dur->isNumber() || dur->num < 0)
                eventViolation("complete event without dur", i);
        } else if (p == 's' || p == 't' || p == 'f') {
            const JsonValue *id = e.get("id");
            if (!id || !id->isNumber() || id->num <= 0) {
                eventViolation("flow event without positive id", i);
                continue;
            }
            FlowChain &c = chains[id->num];
            const bool first = c.begins + c.steps + c.ends == 0;
            if (!first && ts->num < c.lastTs)
                c.ordered = false;
            c.lastTs = ts->num;
            if (p == 's')
                ++c.begins;
            else if (p == 't')
                ++c.steps;
            else
                ++c.ends;
        } else if (p != 'i' && p != 'C') {
            eventViolation("unknown phase", i);
        }
    }

    r.flows = chains.size();
    char idbuf[40];
    for (const auto &[id, c] : chains) {
        std::snprintf(idbuf, sizeof(idbuf), "%.0f", id);
        if (c.begins != 1)
            violation("flow " + std::string(idbuf) + " has "
                      + std::to_string(c.begins) + " begins");
        if (c.ends > 1)
            violation("flow " + std::string(idbuf) + " has "
                      + std::to_string(c.ends) + " ends");
        if (!c.ordered)
            violation("flow " + std::string(idbuf)
                      + " events out of ts order");
        if (c.begins == 1 && c.ends == 1) {
            ++r.complete;
            if (c.steps > 0)
                ++r.multiHop;
            r.maxSteps = std::max(
                r.maxSteps, static_cast<std::size_t>(c.steps));
        } else if (c.begins >= 1 && c.ends == 0) {
            // Begun but never ended: not a violation (a message
            // abandoned at a hub legitimately leaves its span
            // dangling), but surfaced so callers can assert on it.
            ++r.dangling;
        }
    }

    if (require_flow && r.multiHop == 0)
        violation("no complete multi-hop flow "
                  "(begin -> step -> end) found");
    if (require_flow && min_steps > 1 && r.maxSteps < min_steps)
        violation("deepest complete flow has "
                  + std::to_string(r.maxSteps) + " steps, need >= "
                  + std::to_string(min_steps)
                  + " (multi-hop relay chain missing)");
    return r;
}

/** Parse @p text and validate; malformed JSON is a violation. */
inline TraceCheckResult
checkTraceText(std::string_view text, bool require_flow,
               std::size_t min_steps = 1)
{
    JsonValue doc;
    std::string err;
    if (!parseJson(text, doc, &err)) {
        TraceCheckResult r;
        r.violations.push_back("malformed JSON: " + err);
        return r;
    }
    return checkTrace(doc, require_flow, min_steps);
}

} // namespace corm::obs
