/**
 * @file
 * Flow-latency attribution: reassemble the causal coordination spans
 * a TraceRecorder captured (decide -> send -> deliver -> apply -> ack)
 * into per-flow leg breakdowns, and aggregate them into per-leg and
 * per-(link, message-type) log2 histograms with p50/p99/p999.
 *
 * The paper's argument (§2.3) is that coordination pays off only when
 * the end-to-end cost of a Tune/Trigger stays small against the
 * workload's timescale. The trace side-band (DESIGN.md §8, §11)
 * records *where* every flow went; this profiler answers *where it
 * spent its time* — splitting each flow into legs:
 *
 *   decide  policy decision slice (decide:* companion of the begin)
 *   queue   un-attributed dwell between legs: hub relay turnaround,
 *           aggregation-buffer hold, ack turnaround at the endpoint
 *   wire    transit of forward hops (hop:* slices, per link)
 *   retry   reliable-sender backoff waits and link-layer replay gaps
 *   apply   delivery-to-apply dispatch delay (tune:apply and
 *           trigger:apply companions)
 *   ack     transit of the ack return hop (hop:ack slices)
 *
 * and blaming each flow on its dominant leg. Flows folded into an
 * aggregate at a tree hub count as `coalesced`; flows whose span
 * dangles (a link-layer abandon deliberately emits no flow end) or
 * that carry an abandon marker count as `abandoned` — never silently
 * dropped. Flow fragments without a begin (a ring-buffer flight
 * window that evicted the decide leg) are counted as `orphans` and
 * excluded from leg accounting.
 *
 * Two feeders share one normalized event stream, so their reports are
 * byte-identical by construction:
 *
 *  * ingest(TraceRecorder) — the in-process path (benches, the
 *    flight recorder's breach snapshots);
 *  * ingestTraceJson(JsonValue) — the offline path
 *    (bench/trace_analyze.cpp over a merged Perfetto JSON file).
 *
 * The JSON serializer prints ts/dur as `<us>.<3-digit ns remainder>`,
 * so llround(value * 1000) recovers the original nanosecond Tick
 * exactly (sim ticks are far below 2^53/1000); every histogram input
 * is derived from those integers, never from intermediate doubles.
 *
 * Digest neutrality: the profiler only *reads* a recorder after (or
 * outside) the simulated run; it schedules nothing, allocates no sim
 * state and touches no RNG stream, so enabling attribution cannot
 * move a scenario digest. Determinism: flows accumulate into a
 * std::map keyed by flow id and links into a std::map keyed by
 * (track, type), so aggregation order — and the serialized report —
 * is independent of event interleaving beyond what the merged trace
 * itself fixes. A byte-identical trace yields a byte-identical
 * report, which is how the shard-count invariance of PR 8 carries
 * over to attribution.
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace corm::obs {

/** The fixed leg order of every report and blame tie-break. */
enum class FlowLeg : std::uint8_t
{
    decide = 0,
    queue,
    wire,
    retry,
    apply,
    ack
};

inline constexpr std::size_t flowLegCount = 6;

/** Canonical leg name (report keys, blame labels). */
constexpr const char *
flowLegName(FlowLeg leg)
{
    switch (leg) {
      case FlowLeg::decide: return "decide";
      case FlowLeg::queue: return "queue";
      case FlowLeg::wire: return "wire";
      case FlowLeg::retry: return "retry";
      case FlowLeg::apply: return "apply";
      case FlowLeg::ack: return "ack";
    }
    return "?";
}

/** How one reassembled flow terminated. */
enum class FlowOutcome : std::uint8_t
{
    completed, ///< begin and end seen, not folded
    coalesced, ///< folded into an aggregate at a tree hub
    abandoned, ///< abandon marker, or span left dangling
    orphan     ///< fragments without a begin (evicted window)
};

/** Canonical outcome name. */
constexpr const char *
flowOutcomeName(FlowOutcome o)
{
    switch (o) {
      case FlowOutcome::completed: return "completed";
      case FlowOutcome::coalesced: return "coalesced";
      case FlowOutcome::abandoned: return "abandoned";
      case FlowOutcome::orphan: return "orphan";
    }
    return "?";
}

/** One flow's reconstructed latency story. */
struct FlowBreakdown
{
    TraceId id = 0;
    FlowOutcome outcome = FlowOutcome::completed;
    /** Nanoseconds attributed to each leg (FlowLeg order). */
    std::uint64_t legNs[flowLegCount] = {};
    std::uint64_t beginTs = 0; ///< ns; flow-begin timestamp
    std::uint64_t lastTs = 0;  ///< ns; latest flow event seen
    std::uint64_t hops = 0;    ///< forward wire hops
    std::uint64_t retries = 0; ///< retransmit markers
    std::uint64_t dups = 0;    ///< duplicate deliveries observed

    /** End-to-end nanoseconds (begin to last event). */
    std::uint64_t totalNs() const
    {
        return lastTs > beginTs ? lastTs - beginTs : 0;
    }

    /**
     * Dominant leg: the largest leg in FlowLeg order (earliest wins
     * ties). Abandoned flows are blamed "abandoned" regardless — an
     * abandon's cost is unbounded retry wait by definition, and the
     * label must surface in breach forensics, not hide under `retry`.
     */
    const char *
    blame() const
    {
        if (outcome == FlowOutcome::abandoned)
            return "abandoned";
        std::size_t best = 0;
        for (std::size_t i = 1; i < flowLegCount; ++i) {
            if (legNs[i] > legNs[best])
                best = i;
        }
        return flowLegName(static_cast<FlowLeg>(best));
    }
};

/**
 * Reassembles coordination flows from trace events and aggregates
 * leg/link latency distributions. Feed with ingest() and/or
 * ingestTraceJson(), then read flows()/report()/reportJson().
 */
class FlowProfiler
{
  public:
    /** Aggregated distribution of one leg or link. */
    struct Dist
    {
        std::uint64_t count = 0;
        std::uint64_t sumNs = 0; ///< exact integer nanoseconds
        Histogram hist;          ///< microsecond observations

        void
        record(std::uint64_t ns)
        {
            ++count;
            sumNs += ns;
            hist.record(static_cast<double>(ns) / 1000.0);
        }
    };

    /** Per-(link track, message type) wire distribution. */
    using LinkKey = std::pair<std::string, std::string>;

    /**
     * Ingest every event of @p rec (the in-process feeder). Track
     * identity is "process/thread" — the same join the JSON feeder
     * reconstructs from trace metadata.
     */
    void
    ingest(const TraceRecorder &rec)
    {
        for (const TraceEvent &e : rec.events()) {
            Ev ev;
            ev.phase = e.phase;
            ev.ts = static_cast<std::uint64_t>(e.ts);
            ev.dur = static_cast<std::uint64_t>(e.dur);
            ev.track = internTrack(rec.trackProcess(e.track) + "/"
                                   + rec.trackThread(e.track));
            ev.flow = e.flow;
            ev.name = e.name;
            feed(std::move(ev));
        }
        dirty_ = true;
    }

    /**
     * Ingest a parsed Chrome trace-event document (the offline
     * feeder). Returns false (and fills @p err) when the document
     * lacks a traceEvents array or an event is malformed beyond
     * skipping. Timestamps are reconverted from the serialized
     * microsecond decimals to exact nanosecond integers.
     */
    bool
    ingestTraceJson(const JsonValue &doc, std::string *err = nullptr)
    {
        const JsonValue *events = doc.get("traceEvents");
        if (!events || !events->isArray()) {
            if (err)
                *err = "missing traceEvents array";
            return false;
        }
        // First pass: track names from metadata. writeJson emits all
        // metadata before any timed event, but a foreign trace may
        // interleave, so resolve names before decoding events.
        std::map<double, std::string> processes;
        std::map<std::pair<double, double>, std::string> threads;
        for (const JsonValue &e : events->items) {
            const JsonValue *ph = e.get("ph");
            if (!ph || !ph->isString() || ph->str != "M")
                continue;
            const JsonValue *name = e.get("name");
            const JsonValue *pid = e.get("pid");
            const JsonValue *tid = e.get("tid");
            const JsonValue *args = e.get("args");
            const JsonValue *value = args ? args->get("name") : nullptr;
            if (!name || !name->isString() || !pid || !pid->isNumber()
                || !tid || !tid->isNumber() || !value
                || !value->isString())
                continue;
            if (name->str == "process_name")
                processes[pid->num] = value->str;
            else if (name->str == "thread_name")
                threads[{pid->num, tid->num}] = value->str;
        }
        auto trackName = [&](double pid, double tid) {
            auto p = processes.find(pid);
            auto t = threads.find({pid, tid});
            const std::string proc =
                p != processes.end() ? p->second : "?";
            const std::string thr = t != threads.end() ? t->second : "?";
            return proc + "/" + thr;
        };
        for (const JsonValue &e : events->items) {
            if (!e.isObject())
                continue;
            const JsonValue *ph = e.get("ph");
            if (!ph || !ph->isString() || ph->str.size() != 1
                || ph->str == "M")
                continue;
            const JsonValue *name = e.get("name");
            const JsonValue *ts = e.get("ts");
            const JsonValue *pid = e.get("pid");
            const JsonValue *tid = e.get("tid");
            if (!name || !name->isString() || !ts || !ts->isNumber()
                || !pid || !pid->isNumber() || !tid || !tid->isNumber())
                continue;
            Ev ev;
            ev.phase = ph->str[0];
            ev.ts = exactNs(ts->num);
            const JsonValue *dur = e.get("dur");
            ev.dur = dur && dur->isNumber() ? exactNs(dur->num) : 0;
            ev.track = internTrack(trackName(pid->num, tid->num));
            const JsonValue *id = e.get("id");
            ev.flow = id && id->isNumber()
                ? static_cast<TraceId>(id->num)
                : 0;
            ev.name = name->str;
            feed(std::move(ev));
        }
        dirty_ = true;
        return true;
    }

    /** Parse @p text and ingest (see ingestTraceJson). */
    bool
    ingestTraceText(std::string_view text, std::string *err = nullptr)
    {
        JsonValue doc;
        std::string perr;
        if (!parseJson(text, doc, &perr)) {
            if (err)
                *err = "malformed JSON: " + perr;
            return false;
        }
        return ingestTraceJson(doc, err);
    }

    /** Reassembled flows keyed by id (profiles lazily). */
    const std::map<TraceId, FlowBreakdown> &
    flows() const
    {
        profileIfDirty();
        return flows_;
    }

    /** Aggregated leg distribution (profiles lazily). */
    const Dist &
    leg(FlowLeg l) const
    {
        profileIfDirty();
        return legs_[static_cast<std::size_t>(l)];
    }

    /** End-to-end latency distribution over non-orphan flows. */
    const Dist &
    total() const
    {
        profileIfDirty();
        return total_;
    }

    /** Per-(link, message type) wire distributions. */
    const std::map<LinkKey, Dist> &
    links() const
    {
        profileIfDirty();
        return links_;
    }

    /** Flows with the given outcome. */
    std::uint64_t
    outcomeCount(FlowOutcome o) const
    {
        profileIfDirty();
        return outcomes_[static_cast<std::size_t>(o)];
    }

    /** Flows blamed on @p label ("wire", "retry", ..., "abandoned"). */
    std::uint64_t
    blameCount(const std::string &label) const
    {
        profileIfDirty();
        auto it = blame_.find(label);
        return it == blame_.end() ? 0 : it->second;
    }

    /**
     * The @p k slowest non-orphan flows, by end-to-end time
     * descending, ties broken by ascending flow id (deterministic).
     */
    std::vector<FlowBreakdown>
    slowest(std::size_t k) const
    {
        profileIfDirty();
        std::vector<FlowBreakdown> out;
        out.reserve(flows_.size());
        for (const auto &[id, f] : flows_) {
            if (f.outcome != FlowOutcome::orphan)
                out.push_back(f);
        }
        std::sort(out.begin(), out.end(),
                  [](const FlowBreakdown &a, const FlowBreakdown &b) {
                      if (a.totalNs() != b.totalNs())
                          return a.totalNs() > b.totalNs();
                      return a.id < b.id;
                  });
        if (out.size() > k)
            out.resize(k);
        return out;
    }

    /**
     * Serialize the attribution report into @p j: outcome counts,
     * per-leg and total distributions, blame table, per-link wire
     * distributions, and the top-@p top_k slowest flows with their
     * leg breakdowns. Field order is fixed, so byte-equal traces
     * produce byte-equal reports.
     */
    void
    writeReport(JsonWriter &j, std::size_t top_k = 5) const
    {
        profileIfDirty();
        j.beginObject();
        j.field("flows", static_cast<std::uint64_t>(flows_.size()));
        j.field("completed", outcomeCount(FlowOutcome::completed));
        j.field("coalesced", outcomeCount(FlowOutcome::coalesced));
        j.field("abandoned", outcomeCount(FlowOutcome::abandoned));
        j.field("orphans", outcomeCount(FlowOutcome::orphan));
        j.beginObject("legs");
        for (std::size_t i = 0; i < flowLegCount; ++i)
            writeDist(j, flowLegName(static_cast<FlowLeg>(i)),
                      legs_[i]);
        j.endObject();
        writeDist(j, "total", total_);
        j.beginObject("blame");
        for (std::size_t i = 0; i < flowLegCount; ++i) {
            const char *name = flowLegName(static_cast<FlowLeg>(i));
            j.field(name, blameCount(name));
        }
        j.field("abandoned", blameCount("abandoned"));
        j.endObject();
        j.beginArray("links");
        for (const auto &[key, d] : links_) {
            j.beginObject();
            j.field("link", key.first);
            j.field("type", key.second);
            j.field("count", d.count);
            j.field("sum_ns", d.sumNs);
            j.field("p50_us", d.hist.quantile(0.50));
            j.field("p99_us", d.hist.quantile(0.99));
            j.field("p999_us", d.hist.quantile(0.999));
            j.field("max_us", d.hist.max());
            j.endObject();
        }
        j.endArray();
        j.beginArray("slowest");
        for (const FlowBreakdown &f : slowest(top_k)) {
            j.beginObject();
            j.field("id", static_cast<std::uint64_t>(f.id));
            j.field("outcome",
                    std::string(flowOutcomeName(f.outcome)));
            j.field("blame", std::string(f.blame()));
            j.field("total_ns", f.totalNs());
            j.beginObject("legs_ns");
            for (std::size_t i = 0; i < flowLegCount; ++i)
                j.field(flowLegName(static_cast<FlowLeg>(i)),
                        f.legNs[i]);
            j.endObject();
            j.field("hops", f.hops);
            j.field("retries", f.retries);
            j.field("dups", f.dups);
            j.field("begin_ts_ns", f.beginTs);
            j.endObject();
        }
        j.endArray();
        j.endObject();
    }

    /** The report as a standalone JSON string. */
    std::string
    reportJson(std::size_t top_k = 5) const
    {
        JsonWriter j;
        writeReport(j, top_k);
        return j.str();
    }

  private:
    /** Normalized event: the shared substrate of both feeders. */
    struct Ev
    {
        char phase = 'i';
        std::uint64_t ts = 0;  ///< ns
        std::uint64_t dur = 0; ///< ns, 'X' only
        int track = 0;
        TraceId flow = 0;
        std::string name;
    };

    /** Serialized "<us>.<ns%1000>" decimal back to integer ns. */
    static std::uint64_t
    exactNs(double micros)
    {
        return micros <= 0.0
            ? 0
            : static_cast<std::uint64_t>(std::llround(micros * 1000.0));
    }

    static bool
    startsWith(const std::string &s, std::string_view prefix)
    {
        return s.size() >= prefix.size()
            && s.compare(0, prefix.size(), prefix) == 0;
    }

    int
    internTrack(const std::string &name)
    {
        for (std::size_t i = 0; i < trackNames_.size(); ++i) {
            if (trackNames_[i] == name)
                return static_cast<int>(i);
        }
        trackNames_.push_back(name);
        return static_cast<int>(trackNames_.size() - 1);
    }

    void
    feed(Ev &&e)
    {
        evs_.push_back(std::move(e));
    }

    /** Working state of one flow while scanning the stream. */
    struct FlowWork
    {
        FlowBreakdown out;
        bool began = false;
        bool ended = false;
        bool coalesced = false;
        bool abandonMarked = false;
        std::uint64_t cursor = 0; ///< attribution frontier (ns)
        /** A retransmit marker opened a retry interval that the next
         *  wire hop's pre-gap still belongs to. */
        bool pendingRetry = false;
    };

    void
    profileIfDirty() const
    {
        if (!dirty_)
            return;
        dirty_ = false;
        flows_.clear();
        links_.clear();
        for (Dist &d : legs_)
            d = Dist{};
        total_ = Dist{};
        for (std::uint64_t &c : outcomes_)
            c = 0;
        blame_.clear();

        std::map<TraceId, FlowWork> work;
        for (std::size_t i = 0; i < evs_.size(); ++i) {
            const Ev &e = evs_[i];
            if (e.phase == 'X' && startsWith(e.name, "hop:")
                && !startsWith(e.name, "hop:dup:")) {
                // Per-link wire weather, flow-linked or not: every
                // first-copy transit slice, keyed (track, type).
                links_[{trackNames_[static_cast<std::size_t>(e.track)],
                        e.name.substr(4)}]
                    .record(e.dur);
            }
            if (e.phase != 's' && e.phase != 't' && e.phase != 'f')
                continue;
            if (e.flow == 0)
                continue;
            attribute(work[e.flow], e, i);
        }

        for (auto &[id, w] : work) {
            FlowBreakdown &f = w.out;
            f.id = id;
            if (!w.began)
                f.outcome = FlowOutcome::orphan;
            else if (w.abandonMarked || !w.ended)
                f.outcome = FlowOutcome::abandoned;
            else if (w.coalesced)
                f.outcome = FlowOutcome::coalesced;
            else
                f.outcome = FlowOutcome::completed;
            ++outcomes_[static_cast<std::size_t>(f.outcome)];
            if (f.outcome != FlowOutcome::orphan) {
                for (std::size_t l = 0; l < flowLegCount; ++l) {
                    if (f.legNs[l] != 0)
                        legs_[l].record(f.legNs[l]);
                }
                total_.record(f.totalNs());
                ++blame_[f.blame()];
            }
            flows_.emplace(id, f);
        }
    }

    /**
     * Fold one flow event (with its companion markers) into @p w.
     *
     * Companion rule: the recorder emits a flow event immediately
     * after the slice or instant it annotates, on the same track —
     * either at the marker's own timestamp (shard fabric hops, decide
     * slices, retry/abandon/fold instants) or at a transit slice's
     * *end* (the legacy channel emits hop slices at delivery with
     * ts = send tick). Scan backwards over consecutive same-track
     * non-flow events matching either convention; companion adjacency
     * survives the barrier-time shard merge because the pair shares
     * (emitTick, track) with consecutive emitSeqs (DESIGN.md §11).
     */
    void
    attribute(FlowWork &w, const Ev &e, std::size_t index) const
    {
        const Ev *hop = nullptr;     // forward or ack transit slice
        const Ev *decide = nullptr;  // decide:* slice
        bool retransmit = false;     // retry:* / replay:* instant
        bool abandon = false;        // abandon instant
        bool fold = false;           // agg:fold instant
        bool apply = false;          // tune:apply / trigger:apply
        bool dup = false;            // hop:dup:* instant
        for (std::size_t j = index; j-- > 0;) {
            const Ev &c = evs_[j];
            if (c.phase == 's' || c.phase == 't' || c.phase == 'f')
                break;
            if (c.track != e.track)
                break;
            const bool atTs = c.ts == e.ts;
            const bool endsAtTs =
                c.phase == 'X' && c.ts + c.dur == e.ts;
            if (!atTs && !endsAtTs)
                break;
            if (c.phase == 'X' && startsWith(c.name, "hop:")
                && !startsWith(c.name, "hop:dup:")) {
                hop = &c;
            } else if (c.phase == 'X'
                       && startsWith(c.name, "decide:")) {
                decide = &c;
            } else if (c.name == "tune:apply"
                       || c.name == "trigger:apply") {
                apply = true;
            } else if (startsWith(c.name, "retry:")
                       || startsWith(c.name, "replay:")) {
                retransmit = true;
            } else if (c.name == "abandon") {
                abandon = true;
            } else if (c.name == "agg:fold") {
                fold = true;
            } else if (startsWith(c.name, "hop:dup:")) {
                dup = true;
            }
        }

        FlowBreakdown &f = w.out;
        if (dup)
            ++f.dups;
        if (!w.began && f.lastTs == 0 && f.beginTs == 0
            && e.phase != 's') {
            // Orphan fragment (the window evicted the begin): anchor
            // the frontier at the first surviving event so leg gaps
            // measure within the fragment, not from time zero.
            f.beginTs = e.ts;
            w.cursor = e.ts;
        }
        if (e.phase == 's') {
            if (!w.began) {
                w.began = true;
                f.beginTs = e.ts;
                f.lastTs = std::max(f.lastTs, e.ts);
                w.cursor = e.ts;
                if (decide)
                    f.legNs[static_cast<std::size_t>(
                        FlowLeg::decide)] += decide->dur;
            }
            return;
        }

        auto addLeg = [&f](FlowLeg l, std::uint64_t ns) {
            f.legNs[static_cast<std::size_t>(l)] += ns;
        };
        const std::uint64_t gap =
            e.ts > w.cursor ? e.ts - w.cursor : 0;
        if (hop) {
            // Transit interval [hs, he]; the dwell before the hop is
            // backoff wait when a retransmit opened it, queueing
            // otherwise. Clamps keep overlapping markers from double
            // counting: only time past the frontier is attributed.
            const std::uint64_t hs = hop->ts;
            const std::uint64_t he = hop->ts + hop->dur;
            const std::uint64_t pre =
                hs > w.cursor ? hs - w.cursor : 0;
            const bool wasRetry = retransmit || w.pendingRetry;
            addLeg(wasRetry ? FlowLeg::retry : FlowLeg::queue, pre);
            const std::uint64_t from = std::max(hs, w.cursor);
            const std::uint64_t transit = he > from ? he - from : 0;
            const bool isAck = hop->name == "hop:ack";
            addLeg(isAck ? FlowLeg::ack : FlowLeg::wire, transit);
            if (!isAck)
                ++f.hops;
            if (retransmit)
                ++f.retries;
            w.pendingRetry = false;
            w.cursor = std::max(w.cursor, he);
        } else if (retransmit) {
            addLeg(FlowLeg::retry, gap);
            ++f.retries;
            w.pendingRetry = true;
            w.cursor = std::max(w.cursor, e.ts);
        } else if (apply) {
            addLeg(FlowLeg::apply, gap);
            w.cursor = std::max(w.cursor, e.ts);
        } else if (abandon) {
            addLeg(FlowLeg::retry, gap);
            w.abandonMarked = true;
            w.cursor = std::max(w.cursor, e.ts);
        } else if (fold) {
            addLeg(FlowLeg::queue, gap);
            w.coalesced = true;
            w.cursor = std::max(w.cursor, e.ts);
        } else {
            // Naked checkpoint: hub relay arrival or final delivery
            // on a node track. Wire time was attributed by the lane
            // hop; any residue is dwell.
            addLeg(FlowLeg::queue, gap);
            w.cursor = std::max(w.cursor, e.ts);
        }
        f.lastTs = std::max(f.lastTs, e.ts);
        if (e.phase == 'f')
            w.ended = true;
    }

    static void
    writeDist(JsonWriter &j, const char *key, const Dist &d)
    {
        j.beginObject(key);
        j.field("count", d.count);
        j.field("sum_ns", d.sumNs);
        j.field("p50_us", d.hist.quantile(0.50));
        j.field("p99_us", d.hist.quantile(0.99));
        j.field("p999_us", d.hist.quantile(0.999));
        j.field("max_us", d.hist.max());
        j.endObject();
    }

    std::vector<Ev> evs_;
    std::vector<std::string> trackNames_;
    mutable bool dirty_ = false;
    mutable std::map<TraceId, FlowBreakdown> flows_;
    mutable Dist legs_[flowLegCount];
    mutable Dist total_;
    mutable std::map<LinkKey, Dist> links_;
    mutable std::uint64_t outcomes_[4] = {};
    mutable std::map<std::string, std::uint64_t> blame_;
};

} // namespace corm::obs
