/**
 * @file
 * PCIe interconnect model: a serialising link with propagation
 * latency and finite bandwidth.
 *
 * The paper attributes part of its coordination mis-application to
 * "the relatively large latency of the PCIe-based messaging channel";
 * making the link a first-class parameterised model lets the
 * ablation benches sweep it from PCIe-class down to the QPI/HTX-class
 * latencies the paper anticipates for future tightly coupled
 * heterogeneous multicores.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace corm::interconnect {

/** Configuration of one link direction. */
struct LinkParams
{
    /** Propagation + protocol latency added to every transfer. */
    corm::sim::Tick latency = 2 * corm::sim::usec;
    /** Usable bandwidth in bytes per simulated second. */
    double bandwidthBytesPerSec = 1.0e9; // ~PCIe x4 gen1 effective
    /** Per-transfer framing overhead (TLP headers etc.). */
    std::uint32_t overheadBytes = 24;
};

/**
 * One direction of a point-to-point link. Transfers serialise: a
 * transfer occupies the wire for size/bandwidth and is delivered
 * latency after its serialisation completes. FIFO ordering is
 * preserved (PCIe posted-write semantics).
 */
class Link
{
  public:
    using DeliverFn = std::function<void()>;

    /**
     * @param simulator Event engine; must outlive the link.
     * @param params Latency/bandwidth parameters.
     * @param link_name For stats and logs, e.g. "pcie.ixp2host".
     */
    Link(corm::sim::Simulator &simulator, const LinkParams &params,
         std::string link_name)
        : sim(simulator), cfg(params), name_(std::move(link_name))
    {}

    /**
     * Transfer @p bytes across the link, invoking @p on_delivered at
     * the receiver once the last byte (plus latency) arrives.
     */
    void
    transfer(std::uint64_t bytes, DeliverFn on_delivered)
    {
        const std::uint64_t wire_bytes = bytes + cfg.overheadBytes;
        // Round the serialisation time *up* to whole ticks: truncation
        // would let sub-tick transfers (every coordination-sized
        // message on a fast link) occupy the wire for zero time,
        // i.e. infinite bandwidth. The epsilon keeps products that
        // are integral up to double rounding (e.g. 0.2 * 1e9) from
        // ceiling into the next tick.
        const double ticks = static_cast<double>(wire_bytes)
            / cfg.bandwidthBytesPerSec
            * static_cast<double>(corm::sim::sec);
        const auto ser = static_cast<corm::sim::Tick>(
            std::ceil(ticks * (1.0 - 1e-12)));

        // Serialisation starts when the wire frees up.
        const corm::sim::Tick start =
            std::max(wireFreeAt, sim.now());
        wireFreeAt = start + ser;
        busyTicks += ser;
        queueDelay.record(
            corm::sim::toMicros(start - sim.now()));
        bytesMoved += wire_bytes;
        transfers.add();

        sim.scheduleAt(wireFreeAt + cfg.latency,
                       std::move(on_delivered));
    }

    /** Link name. */
    const std::string &name() const { return name_; }

    /** Parameters in force. */
    const LinkParams &params() const { return cfg; }

    /** Total wire bytes moved (incl. framing overhead). */
    std::uint64_t totalBytes() const { return bytesMoved; }

    /** Total transfers issued. */
    std::uint64_t totalTransfers() const { return transfers.value(); }

    /** Cumulative time the wire was busy serialising. */
    corm::sim::Tick busyTime() const { return busyTicks; }

    /** Distribution of per-transfer queueing delay (microseconds). */
    const corm::sim::Summary &queueingDelay() const { return queueDelay; }

    /** Link utilisation over @p elapsed ticks, in [0, 1]. */
    double
    utilization(corm::sim::Tick elapsed) const
    {
        if (elapsed == 0)
            return 0.0;
        return static_cast<double>(busyTicks)
            / static_cast<double>(elapsed);
    }

  private:
    corm::sim::Simulator &sim;
    LinkParams cfg;
    std::string name_;
    corm::sim::Tick wireFreeAt = 0;
    corm::sim::Tick busyTicks = 0;
    std::uint64_t bytesMoved = 0;
    corm::sim::Counter transfers;
    corm::sim::Summary queueDelay;
};

/**
 * Full-duplex link: independent wires per direction, as on PCIe.
 * Direction 0 is device-to-host, direction 1 host-to-device.
 */
class DuplexLink
{
  public:
    DuplexLink(corm::sim::Simulator &simulator, const LinkParams &params,
               const std::string &base_name)
        : d2h(simulator, params, base_name + ".d2h"),
          h2d(simulator, params, base_name + ".h2d")
    {}

    /** Device-to-host direction. */
    Link &deviceToHost() { return d2h; }
    /** Host-to-device direction. */
    Link &hostToDevice() { return h2d; }

  private:
    Link d2h;
    Link h2d;
};

} // namespace corm::interconnect
