/**
 * @file
 * Deterministic fault injection for the island interconnect.
 *
 * The paper's coordination argument rests on Tune/Trigger/registration
 * messages surviving a "relatively large latency" PCIe channel between
 * independently managed islands (§2.3). To claim that coordination
 * "degrades gracefully" we must be able to subject the channel to the
 * fault modes a real shared interconnect exhibits — silent loss,
 * duplication (link-layer replay), reordering, latency spikes and
 * timed burst outages (bus resets, firmware stalls) — and do so
 * *reproducibly*: a FaultPlan is fully determined by its parameters
 * plus one 64-bit seed, so a faulty run replays bit-identically under
 * any `--jobs` fan-out (each trial owns its own plan instance).
 *
 * The plan is applied at the Mailbox layer (Mailbox::setFaultInjector)
 * rather than inside CoordChannel, so every message crossing a
 * direction experiences the same weather regardless of which layer
 * above produced it.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace corm::interconnect {

/**
 * Declarative description of the channel weather. Probabilities are
 * per message and independent per direction (each direction draws
 * from its own RNG stream forked from `seed`).
 */
struct FaultPlanParams
{
    /** Master seed; both direction streams derive from it. */
    std::uint64_t seed = 0xfa011705fa011705ULL;

    /** Probability a message is silently lost. */
    double lossProb = 0.0;
    /** Probability a delivered message is duplicated once. */
    double dupProb = 0.0;
    /**
     * Probability a message is held back so later sends overtake it
     * (delivered out of FIFO order, extra delay uniform in
     * (0, reorderWindow]).
     */
    double reorderProb = 0.0;
    /** Probability a message sees a latency spike of spikeLatency. */
    double spikeProb = 0.0;

    /** Maximum extra holding delay of a reordered message. */
    corm::sim::Tick reorderWindow = 500 * corm::sim::usec;
    /** Extra one-way delay of a latency spike. */
    corm::sim::Tick spikeLatency = 2 * corm::sim::msec;
    /** Extra delay of a duplicate's second copy. */
    corm::sim::Tick dupOffset = 50 * corm::sim::usec;

    /** A timed burst outage: every send inside the window is lost. */
    struct Outage
    {
        corm::sim::Tick start = 0;
        corm::sim::Tick duration = 0;
    };
    /** Scheduled outages (absolute simulated-time windows). */
    std::vector<Outage> outages;

    /** True if this plan can perturb any message. */
    bool
    any() const
    {
        return lossProb > 0.0 || dupProb > 0.0 || reorderProb > 0.0
            || spikeProb > 0.0 || !outages.empty();
    }
};

/** What the injector decided for one message. */
struct FaultAction
{
    /** Drop the message (loss or outage). */
    bool drop = false;
    /** Deliver a second copy dupOffset after the first. */
    bool duplicate = false;
    /** Exempt from FIFO ordering (later sends may overtake). */
    bool reorder = false;
    /** Extra one-way delay (reorder hold or latency spike). */
    corm::sim::Tick extraDelay = 0;
};

/** Injected-fault counters of one direction. */
struct FaultCounters
{
    corm::sim::Counter lost;
    corm::sim::Counter duplicated;
    corm::sim::Counter reordered;
    corm::sim::Counter spiked;
    corm::sim::Counter outageDrops;
};

/**
 * Per-direction fault stream. Each message consumes a fixed number of
 * RNG draws (one per enabled fault class), so the decision sequence
 * depends only on (params, seed, message index) — never on simulated
 * time or host scheduling.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlanParams &params, std::uint64_t seed)
        : cfg(params), rng(seed)
    {}

    /** Decide the fate of the message sent at @p now. */
    FaultAction
    apply(corm::sim::Tick now)
    {
        FaultAction act;
        for (const auto &o : cfg.outages) {
            if (now >= o.start && now < o.start + o.duration) {
                counters_.outageDrops.add();
                act.drop = true;
                return act;
            }
        }
        if (cfg.lossProb > 0.0 && rng.chance(cfg.lossProb)) {
            counters_.lost.add();
            act.drop = true;
            return act;
        }
        if (cfg.dupProb > 0.0 && rng.chance(cfg.dupProb)) {
            counters_.duplicated.add();
            act.duplicate = true;
        }
        if (cfg.reorderProb > 0.0 && rng.chance(cfg.reorderProb)) {
            counters_.reordered.add();
            act.reorder = true;
            act.extraDelay += 1
                + rng.uniformInt(std::max<corm::sim::Tick>(
                    1, cfg.reorderWindow));
        }
        if (cfg.spikeProb > 0.0 && rng.chance(cfg.spikeProb)) {
            counters_.spiked.add();
            act.extraDelay += cfg.spikeLatency;
        }
        return act;
    }

    /** Injected-fault counters. */
    const FaultCounters &counters() const { return counters_; }

    /** Parameters in force. */
    const FaultPlanParams &params() const { return cfg; }

  private:
    FaultPlanParams cfg;
    corm::sim::Rng rng;
    FaultCounters counters_;
};

/**
 * The full-duplex plan: one injector per direction, both derived from
 * the single master seed. Owned by whoever owns the channel (the
 * Testbed via CoordChannel::installFaultPlan).
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultPlanParams &params)
        : cfg(params),
          forward(params, corm::sim::SplitMix64(params.seed).next()),
          reverse(params,
                  corm::sim::SplitMix64(params.seed ^
                                        0x9e3779b97f4a7c15ULL)
                      .next())
    {}

    /** Injector of the a-to-b direction. */
    FaultInjector &aToB() { return forward; }
    /** Injector of the b-to-a direction. */
    FaultInjector &bToA() { return reverse; }

    /** Parameters in force. */
    const FaultPlanParams &params() const { return cfg; }

    /** Sum of a named counter across both directions. */
    std::uint64_t
    lost() const
    {
        return forward.counters().lost.value()
            + reverse.counters().lost.value();
    }
    std::uint64_t
    duplicated() const
    {
        return forward.counters().duplicated.value()
            + reverse.counters().duplicated.value();
    }
    std::uint64_t
    reordered() const
    {
        return forward.counters().reordered.value()
            + reverse.counters().reordered.value();
    }
    std::uint64_t
    spiked() const
    {
        return forward.counters().spiked.value()
            + reverse.counters().spiked.value();
    }
    std::uint64_t
    outageDrops() const
    {
        return forward.counters().outageDrops.value()
            + reverse.counters().outageDrops.value();
    }

    /** Total scheduled outage time that has elapsed by @p now. */
    corm::sim::Tick
    outageTimeUpTo(corm::sim::Tick now) const
    {
        corm::sim::Tick total = 0;
        for (const auto &o : cfg.outages) {
            if (now > o.start)
                total += std::min(now - o.start, o.duration);
        }
        return total;
    }

  private:
    FaultPlanParams cfg;
    FaultInjector forward;
    FaultInjector reverse;
};

} // namespace corm::interconnect
