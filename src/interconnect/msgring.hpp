/**
 * @file
 * Host–device message queues: descriptor rings plus a DMA engine.
 *
 * Models the Netronome/IXP messaging driver path described in §2 of
 * the paper: packet payloads are DMAed into a buffer-pool region of
 * reserved host memory, then a descriptor is appended to a message
 * queue which the host-side messaging driver drains either by
 * periodic polling or on a device interrupt.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "interconnect/faults.hpp"
#include "interconnect/pcie.hpp"
#include "net/packet.hpp"
#include "sim/callback.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace corm::interconnect {

/** Size of one message descriptor on the wire. */
inline constexpr std::uint32_t descriptorBytes = 32;

/**
 * A descriptor ring in reserved host memory, written by the device
 * (after payload DMA) and drained by the host messaging driver.
 * A full ring back-pressures the producer: postings fail and the
 * producer must retry, exactly the condition that lets the IXP-side
 * DRAM buffers grow (Fig. 7).
 */
class DescriptorRing
{
  public:
    /**
     * @param capacity Ring slots; posting to a full ring fails.
     * @param ring_name For stats and logs.
     */
    explicit DescriptorRing(std::size_t capacity, std::string ring_name)
        : cap(capacity), name_(std::move(ring_name))
    {}

    /**
     * Post a packet descriptor.
     * @return false if the ring is full (producer must retry).
     */
    bool
    post(corm::net::PacketPtr pkt)
    {
        if (ring.size() >= cap) {
            fullRejects.add();
            return false;
        }
        ring.push_back(std::move(pkt));
        posted.add();
        occupancyHigh = std::max(occupancyHigh, ring.size());
        if (onPost)
            onPost();
        return true;
    }

    /**
     * Install a post notification (the device-side doorbell that an
     * interrupt-mode host driver hooks; polling drivers leave it
     * unset). SmallCallback, not std::function: the doorbell fires
     * once per posted descriptor, and the typical [this]-capturing
     * handler stays inside the inline buffer with no heap traffic.
     */
    void setPostCallback(corm::sim::SmallCallback fn)
    {
        onPost = std::move(fn);
    }

    /** True if no descriptors are outstanding. */
    bool empty() const { return ring.empty(); }

    /** Outstanding descriptors. */
    std::size_t size() const { return ring.size(); }

    /** Ring capacity. */
    std::size_t capacity() const { return cap; }

    /** Oldest outstanding descriptor without consuming it. */
    const corm::net::PacketPtr &front() const { return ring.front(); }

    /** Dequeue the oldest outstanding descriptor (must not be empty). */
    corm::net::PacketPtr
    consume()
    {
        corm::net::PacketPtr p = std::move(ring.front());
        ring.pop_front();
        return p;
    }

    /** Ring name. */
    const std::string &name() const { return name_; }

    /** Total descriptors ever posted. */
    std::uint64_t totalPosted() const { return posted.value(); }

    /** Times a post failed on a full ring. */
    std::uint64_t totalFullRejects() const { return fullRejects.value(); }

    /** High-water mark of occupancy. */
    std::size_t highWater() const { return occupancyHigh; }

  private:
    std::size_t cap;
    std::string name_;
    std::deque<corm::net::PacketPtr> ring;
    corm::sim::SmallCallback onPost;
    corm::sim::Counter posted;
    corm::sim::Counter fullRejects;
    std::size_t occupancyHigh = 0;
};

/**
 * DMA engine: moves a packet's payload across a Link and then posts
 * its descriptor to a DescriptorRing. If the ring is full at
 * completion time the packet is handed back to the caller's reject
 * handler so the device can keep it queued in its own memory.
 */
class DmaEngine
{
  public:
    using RejectFn = std::function<void(corm::net::PacketPtr)>;
    using PostedFn = std::function<void()>;

    /**
     * @param link Wire the payload crosses.
     * @param ring Ring receiving the descriptor at completion.
     */
    DmaEngine(Link &link, DescriptorRing &ring)
        : wire(link), descriptors(ring)
    {}

    /**
     * Start a payload DMA.
     *
     * @param pkt Packet whose payload is moved.
     * @param on_posted Invoked after the descriptor lands in the ring.
     * @param on_reject Invoked instead if the ring was full.
     */
    void
    dma(corm::net::PacketPtr pkt, PostedFn on_posted, RejectFn on_reject)
    {
        const std::uint64_t bytes = pkt->bytes + descriptorBytes;
        auto captured = std::move(pkt);
        wire.transfer(bytes,
                      [this, p = std::move(captured),
                       posted = std::move(on_posted),
                       reject = std::move(on_reject)]() mutable {
                          if (descriptors.post(p)) {
                              completed.add();
                              if (posted)
                                  posted();
                          } else if (reject) {
                              reject(std::move(p));
                          }
                      });
    }

    /** DMAs that completed and posted successfully. */
    std::uint64_t totalCompleted() const { return completed.value(); }

  private:
    Link &wire;
    DescriptorRing &descriptors;
    corm::sim::Counter completed;
};

/**
 * The coordination mailbox: a low-rate small-message channel carved
 * out of the device's PCI configuration space (§2.3). Messages are
 * fixed-size, FIFO, and experience the mailbox latency — deliberately
 * modelled separately from the bulk-data link so the ablation benches
 * can study coordination-channel latency in isolation.
 *
 * Fault weather (loss, duplication, reordering, latency spikes,
 * outages) is injected here, below the message semantics, via an
 * optional FaultInjector — every word group crossing the direction
 * experiences the same conditions regardless of which layer above
 * produced it.
 */
class Mailbox
{
  public:
    /**
     * Receive handler. @p tag and @p flow are the sender-side
     * cookies passed to send(); duplicated deliveries repeat both.
     */
    using DeliverFn = std::function<void(
        std::uint64_t word0, std::uint64_t word1, std::uint64_t word2,
        std::uint64_t tag, std::uint64_t flow)>;
    /** Observer of messages consumed by the fault injector. */
    using DropFn = std::function<void(std::uint64_t tag)>;

    /** Liveness activity on this direction, as a health monitor
     *  sees it: a send enters the lane even when faults silently eat
     *  it (the sender cannot know), a delivery proves the lane moved.
     */
    enum class Activity : std::uint8_t { sent, dropped, delivered };
    /** Observer of lane activity (heartbeats for stall detection). */
    using ActivityFn = std::function<void(Activity)>;

    /**
     * @param simulator Event engine.
     * @param one_way_latency Send-to-deliver latency per message.
     * @param mailbox_name For stats and logs.
     */
    Mailbox(corm::sim::Simulator &simulator,
            corm::sim::Tick one_way_latency, std::string mailbox_name)
        : sim(simulator), latency(one_way_latency),
          name_(std::move(mailbox_name))
    {}

    /** Install the receiving side's handler. */
    void setReceiver(DeliverFn fn) { receiver = std::move(fn); }

    /** Observe sends the fault injector drops (for accounting). */
    void setDropObserver(DropFn fn) { onDrop = std::move(fn); }

    /** Observe lane activity (nullptr-able; replaces previous). */
    void setActivityObserver(ActivityFn fn)
    {
        onActivity = std::move(fn);
    }

    /**
     * Subject this direction to @p injector's weather (nullptr
     * restores the perfect channel). Not owned; must outlive the
     * mailbox or be reset first.
     */
    void setFaultInjector(FaultInjector *injector) { faults = injector; }

    /**
     * Send a three-word message; delivered to the receiver after the
     * mailbox latency. Messages never reorder unless a fault
     * injector explicitly holds one back. @p tag and @p flow are
     * opaque sender-side cookies handed back on delivery (the
     * channel uses them for per-message latency accounting and for
     * causal trace-span propagation, respectively).
     */
    void
    send(std::uint64_t word0, std::uint64_t word1, std::uint64_t word2,
         std::uint64_t tag = 0, std::uint64_t flow = 0)
    {
        sent.add();
        if (onActivity)
            onActivity(Activity::sent);
        FaultAction act;
        if (faults)
            act = faults->apply(sim.now());
        if (act.drop) {
            dropped.add();
            if (onDrop)
                onDrop(tag);
            if (onActivity)
                onActivity(Activity::dropped);
            return;
        }
        corm::sim::Tick when = sim.now() + latency + act.extraDelay;
        if (!act.reorder) {
            // FIFO: never deliver before the previously sent message.
            when = std::max(when, lastDelivery);
            lastDelivery = when;
        }
        deliverAt(when, word0, word1, word2, tag, flow);
        if (act.duplicate)
            deliverAt(when + (faults ? faults->params().dupOffset : 0),
                      word0, word1, word2, tag, flow);
    }

    /** Adjust latency (ablation sweeps). */
    void setLatency(corm::sim::Tick one_way) { latency = one_way; }

    /** Current one-way latency. */
    corm::sim::Tick oneWayLatency() const { return latency; }

    /** Messages sent. */
    std::uint64_t totalSent() const { return sent.value(); }

    /** Messages delivered (duplicates count once per copy). */
    std::uint64_t totalDelivered() const { return delivered.value(); }

    /** Messages consumed by the fault injector. */
    std::uint64_t totalDropped() const { return dropped.value(); }

    /** Copies accepted but not yet delivered (the wire queue). */
    std::size_t pendingDeliveries() const { return inFlight; }

    /** High-water mark of the in-flight queue depth. */
    std::size_t pendingHighWater() const { return inFlightHigh; }

    /** Mailbox name. */
    const std::string &name() const { return name_; }

  private:
    void
    deliverAt(corm::sim::Tick when, std::uint64_t word0,
              std::uint64_t word1, std::uint64_t word2,
              std::uint64_t tag, std::uint64_t flow)
    {
        ++inFlight;
        inFlightHigh = std::max(inFlightHigh, inFlight);
        sim.scheduleAt(when, [this, word0, word1, word2, tag, flow] {
            --inFlight;
            delivered.add();
            if (onActivity)
                onActivity(Activity::delivered);
            if (receiver)
                receiver(word0, word1, word2, tag, flow);
        });
    }

    corm::sim::Simulator &sim;
    corm::sim::Tick latency;
    std::string name_;
    DeliverFn receiver;
    DropFn onDrop;
    ActivityFn onActivity;
    FaultInjector *faults = nullptr;
    corm::sim::Tick lastDelivery = 0;
    corm::sim::Counter sent;
    corm::sim::Counter delivered;
    corm::sim::Counter dropped;
    std::size_t inFlight = 0;
    std::size_t inFlightHigh = 0;
};

} // namespace corm::interconnect
