/**
 * @file
 * The IXP scheduling island: the network processor's data path and
 * its coordination-facing resource manager (§2.1, Fig. 3).
 *
 * Data path (receive, i.e. wire → host):
 *
 *   wire → Rx stage → Rx classifier → per-VM flow queue (IXP DRAM)
 *        → weighted dequeuer (PCI-Rx microengines) → payload DMA
 *        → descriptor ring in host memory → host messaging driver
 *
 * Transmit (host → wire) runs the mirror path through the Tx stage.
 *
 * The island's own management knobs are exactly those the paper
 * describes: the number of microengine threads servicing each flow
 * queue and their polling intervals, which together set the ingress
 * bandwidth a VM sees (§2.1). A Tune arriving *at* this island
 * adjusts a queue's thread share; Tunes and Triggers *from* this
 * island are emitted by the attached coordination policies, driven by
 * the classifier (application knowledge) and the buffer monitor
 * (system-level knowledge).
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coord/island.hpp"
#include "coord/policy.hpp"
#include "coord/types.hpp"
#include "interconnect/msgring.hpp"
#include "interconnect/pcie.hpp"
#include "ixp/memory.hpp"
#include "ixp/stage.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace corm::ixp {

/** IXP island configuration. */
struct IxpParams
{
    MemoryModel mem;
    PacketCosts costs;

    /** Microengine threads on the Rx, classify and Tx stages. */
    int rxThreads = 8;
    int classifyThreads = 8;
    int txThreads = 8;

    /** Per-VM flow-queue capacity in IXP DRAM (bytes). */
    std::uint64_t vmQueueBytes = 1 * 1024 * 1024;

    /**
     * Default dequeue-thread share per VM queue and the polling
     * interval of a dequeuing thread: a queue drains at roughly
     * threads / pollInterval packets per second (§2.1's bandwidth
     * control knob).
     */
    double defaultQueueThreads = 1.0;
    corm::sim::Tick pollInterval = 100 * corm::sim::usec;

    /** Bounds on a queue's thread share. */
    double minQueueThreads = 0.25;
    double maxQueueThreads = 8.0;

    /**
     * Translation of a Tune delta into thread share: threads per
     * abstract tune unit (a +256 tune adds one thread).
     */
    double threadsPerTuneUnit = 1.0 / 256.0;

    /** Buffer-monitor sampling period (drives Fig. 7). */
    corm::sim::Tick monitorPeriod = 5 * corm::sim::msec;

    /** Retry backoff after a full descriptor ring rejects a DMA. */
    corm::sim::Tick dmaRetryBackoff = 50 * corm::sim::usec;

    /** Island power model (for the power-cap extension). */
    double idleWatts = 18.0;
    double activeWatts = 22.0;
};

/** Per-island aggregate statistics. */
struct IxpStats
{
    corm::sim::Counter wireRx;
    corm::sim::Counter wireTx;
    corm::sim::Counter classified;
    corm::sim::Counter unknownDst;
    corm::sim::Counter vmQueueDrops;
    corm::sim::Counter dmaRejects;
    corm::sim::Counter tunesApplied;
    corm::sim::Counter triggersApplied; ///< no-ops, counted (see below)
};

/**
 * The IXP island resource manager. Owns the pipeline stages and the
 * per-VM flow queues; implements the coordination-facing
 * ResourceIsland interface; hosts the coordination policies that
 * observe classification, stream and buffer events.
 */
class IxpIsland : public coord::ResourceIsland
{
  public:
    using WireTx = std::function<void(corm::net::PacketPtr)>;

    /**
     * @param simulator Event engine.
     * @param island_id Platform-wide island id.
     * @param island_name e.g. "ixp2850".
     * @param d2h_link Device-to-host PCIe direction (payload DMA).
     * @param host_ring Descriptor ring in host memory.
     * @param params Island configuration.
     */
    IxpIsland(corm::sim::Simulator &simulator, coord::IslandId island_id,
              std::string island_name, corm::interconnect::Link &d2h_link,
              corm::interconnect::DescriptorRing &host_ring,
              IxpParams params = {});

    ~IxpIsland() override;
    IxpIsland(const IxpIsland &) = delete;
    IxpIsland &operator=(const IxpIsland &) = delete;

    // Data path ----------------------------------------------------

    /** A packet arrived from the wire (external clients). */
    void injectFromWire(corm::net::PacketPtr pkt);

    /**
     * A packet arrived from the host for transmission to the wire.
     * The Tx classifier (Fig. 3) maps it to the sending guest's
     * per-VM queue, whose weighted dequeue threads pace its egress
     * bandwidth; packets from unknown sources bypass straight to the
     * Tx stage.
     */
    void enqueueTx(corm::net::PacketPtr pkt);

    /** Tx-queue occupancy in bytes for @p entity. */
    std::uint64_t txQueueBytes(coord::EntityId entity) const;

    /** Install the wire-side sink (delivery to external clients). */
    void setWireTx(WireTx fn) { wireTx = std::move(fn); }

    // Coordination -------------------------------------------------

    /** Attach a policy observing this island's events. */
    void attachPolicy(coord::CoordinationPolicy &policy)
    {
        policies.push_back(&policy);
    }

    /**
     * Attach a trace recorder (nullptr detaches). Tune applications
     * become slices on this island's track and the buffer monitor
     * emits per-entity occupancy counter series.
     */
    void
    setTrace(corm::obs::TraceRecorder *recorder)
    {
        rec = recorder;
        trk = -1;
    }

    coord::IslandId id() const override { return id_; }
    const std::string &name() const override { return name_; }

    /**
     * Tune toward this island adjusts the named queue's dequeue
     * thread share — the IXP-unit translation of the generic
     * mechanism ("poll time adjustments in an I/O scheduler", §3.3).
     */
    void applyTune(coord::EntityId entity, double delta) override;

    /**
     * Triggers toward the IXP are accepted but have no actuator in
     * the paper's schemes (triggers flow IXP → x86); counted so
     * misdirected coordination is visible in stats.
     */
    void applyTrigger(coord::EntityId entity) override;

    /**
     * Learn a guest VM binding from the global controller: creates
     * the per-VM flow queue keyed by the guest's IP. The queue
     * mirrors the guest's entity id so cross-island Tunes can name
     * it symmetrically.
     */
    void learnBinding(const coord::EntityBinding &binding) override;

    /** Power estimate for the platform power-budgeting extension. */
    double currentPowerWatts() const override;

    // Introspection --------------------------------------------------

    /** Occupancy in bytes of the flow queue serving @p entity. */
    std::uint64_t queueBytes(coord::EntityId entity) const;

    /** Dequeue thread share of the flow queue serving @p entity. */
    double queueThreads(coord::EntityId entity) const;

    /** Per-entity occupancy time series (Fig. 7 traces). */
    const corm::sim::TimeSeries *occupancySeries(
        coord::EntityId entity) const;

    /** Packets dropped at the flow queue serving @p entity. */
    std::uint64_t queueDrops(coord::EntityId entity) const;

    /** Island statistics. */
    const IxpStats &stats() const { return stats_; }

    /** Number of flow queues (bound guests). */
    std::size_t flowQueueCount() const { return queues.size(); }

  private:
    struct VmQueue
    {
        coord::EntityRef guest;       ///< remote (x86) entity
        corm::net::IpAddr ip;
        corm::net::PacketQueue q;     ///< receive direction (to host)
        corm::net::PacketQueue txq;   ///< transmit direction (to wire)
        double threads;               ///< dequeue-thread share (rx+tx)
        bool inFlight = false;        ///< rx dequeue+DMA outstanding
        bool backoff = false;         ///< waiting out a ring-full retry
        bool txInFlight = false;      ///< tx dequeue outstanding
        corm::sim::TimeSeries occupancy;

        VmQueue(const coord::EntityRef &g, corm::net::IpAddr addr,
                std::uint64_t byte_cap, double thread_share)
            : guest(g), ip(addr), q(0, byte_cap), txq(0, byte_cap),
              threads(thread_share)
        {}
    };

    void classify(corm::net::PacketPtr pkt);
    /** Island-level track for apply/monitor events (lazy). */
    int
    islandTrack()
    {
        if (trk < 0)
            trk = rec->track(name_, "coord-adapter");
        return trk;
    }
    void pumpQueue(VmQueue &vq);
    void pumpTxQueue(VmQueue &vq);
    VmQueue *queueForEntity(coord::EntityId entity);
    const VmQueue *queueForEntity(coord::EntityId entity) const;
    void monitorTick();

    corm::sim::Simulator &sim;
    coord::IslandId id_;
    std::string name_;
    IxpParams cfg;

    ServiceStage rxStage;
    ServiceStage classifyStage;
    ServiceStage txStage;
    corm::interconnect::DmaEngine dma;

    /** Flow queues keyed by guest entity id. */
    std::map<coord::EntityId, std::unique_ptr<VmQueue>> queues;
    /** IP → guest entity id (classifier lookup). */
    std::map<std::uint32_t, coord::EntityId> ipToEntity;

    std::vector<coord::CoordinationPolicy *> policies;
    corm::obs::TraceRecorder *rec = nullptr;
    int trk = -1;
    WireTx wireTx;
    std::unique_ptr<corm::sim::PeriodicEvent> monitor;
    IxpStats stats_;

    mutable corm::sim::Tick lastPowerQuery = 0;
    mutable corm::sim::Tick lastBusySnapshot = 0;
};

} // namespace corm::ixp
