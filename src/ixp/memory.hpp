/**
 * @file
 * IXP2850 memory-hierarchy and cycle cost model.
 *
 * Parameterised from the platform description in §2.1 of the paper:
 * 16 eight-way hyper-threaded RISC microengines at 1.4 GHz; per-engine
 * local memory and registers; 16 KB shared scratchpad; 256 MB external
 * SRAM holding packet *descriptor* queues; 256 MB external DRAM
 * holding packet *payload*. Access latency increases at each level.
 *
 * Packet-operation service times are derived from instruction counts
 * plus the memory references each operation makes. The 8 hardware
 * thread contexts per engine switch on every memory reference, hiding
 * memory latency; the pipeline stages therefore model one engine's
 * 8 threads as 8 parallel servers whose service time includes the
 * memory time (the classic latency-hiding approximation).
 */

#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace corm::ixp {

/** Cycle-accurate-ish cost parameters for the IXP2850. */
struct MemoryModel
{
    /** Microengine clock in Hz (§2.1: 1.4 GHz). */
    double clockHz = 1.4e9;

    /** Access latencies in cycles at each hierarchy level. */
    std::uint32_t localMemCycles = 3;
    std::uint32_t scratchpadCycles = 60;
    std::uint32_t sramCycles = 90;
    std::uint32_t dramCycles = 250;

    /** Bytes moved per DRAM burst reference. */
    std::uint32_t dramBurstBytes = 64;

    /** Convert a cycle count to simulated time. */
    corm::sim::Tick
    cyclesToTicks(double cycles) const
    {
        return static_cast<corm::sim::Tick>(
            cycles / clockHz * static_cast<double>(corm::sim::sec));
    }

    /** Cycles to stream @p bytes of payload through DRAM. */
    double
    dramTouchCycles(std::uint32_t bytes) const
    {
        const std::uint32_t bursts =
            (bytes + dramBurstBytes - 1) / dramBurstBytes;
        return static_cast<double>(bursts)
            * static_cast<double>(dramCycles);
    }
};

/**
 * Per-packet cycle budgets for the data-path operations, on top of
 * the memory model. Instruction-path counts are representative of
 * IXP microengine reference designs; each operation also touches the
 * descriptor (SRAM) and, where noted, the payload (DRAM).
 */
struct PacketCosts
{
    /** Receive: reassembly, buffer allocation, descriptor write. */
    std::uint32_t rxInstrCycles = 400;
    /** Transmit: descriptor read, TBUF fill. */
    std::uint32_t txInstrCycles = 350;
    /**
     * Classification: header parse plus deep packet inspection of
     * the first payload bytes (request line / session header).
     */
    std::uint32_t classifyInstrCycles = 600;
    /** Payload bytes the DPI engine reads from DRAM. */
    std::uint32_t dpiInspectBytes = 128;
    /** Enqueue/dequeue on a DRAM packet ring. */
    std::uint32_t ringOpInstrCycles = 150;
    /** PCI DMA descriptor setup. */
    std::uint32_t dmaSetupInstrCycles = 300;

    /** Service time of the Rx operation for a packet of @p bytes. */
    corm::sim::Tick
    rxTime(const MemoryModel &mem, std::uint32_t bytes) const
    {
        // Payload is written to DRAM on receive; descriptor to SRAM.
        const double cycles = rxInstrCycles + mem.sramCycles
            + mem.dramTouchCycles(bytes);
        return mem.cyclesToTicks(cycles);
    }

    /** Service time of the Tx operation. */
    corm::sim::Tick
    txTime(const MemoryModel &mem, std::uint32_t bytes) const
    {
        const double cycles = txInstrCycles + mem.sramCycles
            + mem.dramTouchCycles(bytes);
        return mem.cyclesToTicks(cycles);
    }

    /** Service time of classification (header + DPI bytes). */
    corm::sim::Tick
    classifyTime(const MemoryModel &mem) const
    {
        const double cycles = classifyInstrCycles + mem.sramCycles
            + mem.dramTouchCycles(dpiInspectBytes);
        return mem.cyclesToTicks(cycles);
    }

    /** Service time of a ring enqueue or dequeue. */
    corm::sim::Tick
    ringOpTime(const MemoryModel &mem) const
    {
        return mem.cyclesToTicks(
            static_cast<double>(ringOpInstrCycles) + mem.sramCycles);
    }

    /** Service time of initiating a PCI DMA for a packet. */
    corm::sim::Tick
    dmaSetupTime(const MemoryModel &mem) const
    {
        return mem.cyclesToTicks(
            static_cast<double>(dmaSetupInstrCycles) + mem.sramCycles);
    }
};

} // namespace corm::ixp
