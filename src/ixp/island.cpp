/**
 * @file
 * IXP island implementation. See island.hpp for the data-path notes.
 */

#include "ixp/island.hpp"

#include <algorithm>

namespace corm::ixp {

using corm::net::Packet;
using corm::net::PacketPtr;
using corm::sim::Tick;

IxpIsland::IxpIsland(corm::sim::Simulator &simulator,
                     coord::IslandId island_id, std::string island_name,
                     corm::interconnect::Link &d2h_link,
                     corm::interconnect::DescriptorRing &host_ring,
                     IxpParams params)
    : sim(simulator), id_(island_id), name_(std::move(island_name)),
      cfg(params),
      rxStage(simulator, name_ + ".rx", cfg.rxThreads,
              [this](const Packet &p) {
                  return cfg.costs.rxTime(cfg.mem, p.bytes);
              }),
      classifyStage(simulator, name_ + ".classify", cfg.classifyThreads,
                    [this](const Packet &) {
                        return cfg.costs.classifyTime(cfg.mem);
                    }),
      txStage(simulator, name_ + ".tx", cfg.txThreads,
              [this](const Packet &p) {
                  return cfg.costs.txTime(cfg.mem, p.bytes);
              }),
      dma(d2h_link, host_ring)
{
    rxStage.setOutput(
        [this](PacketPtr p) { classifyStage.push(std::move(p)); });
    classifyStage.setOutput(
        [this](PacketPtr p) { classify(std::move(p)); });
    txStage.setOutput([this](PacketPtr p) {
        stats_.wireTx.add();
        if (wireTx)
            wireTx(std::move(p));
    });
    monitor = std::make_unique<corm::sim::PeriodicEvent>(
        sim, cfg.monitorPeriod, [this] { monitorTick(); });
}

IxpIsland::~IxpIsland() = default;

void
IxpIsland::injectFromWire(PacketPtr pkt)
{
    stats_.wireRx.add();
    pkt->created = sim.now();
    rxStage.push(std::move(pkt));
}

void
IxpIsland::enqueueTx(PacketPtr pkt)
{
    // Tx classification: per-VM egress queues keyed by source guest
    // (Fig. 3's Tx classifier feeding the Tx scheduler). Tuning the
    // queue's thread share paces both directions of the guest's
    // bandwidth (§2.1).
    auto it = ipToEntity.find(pkt->flow.src.v);
    if (it == ipToEntity.end()) {
        txStage.push(std::move(pkt));
        return;
    }
    VmQueue &vq = *queues.at(it->second);
    if (!vq.txq.push(std::move(pkt))) {
        stats_.vmQueueDrops.add();
        return;
    }
    pumpTxQueue(vq);
}

void
IxpIsland::pumpTxQueue(VmQueue &vq)
{
    if (vq.txInFlight || vq.txq.empty())
        return;
    vq.txInFlight = true;
    const Tick service = static_cast<Tick>(
        static_cast<double>(cfg.pollInterval) / vq.threads)
        + cfg.costs.ringOpTime(cfg.mem);
    sim.schedule(service, [this, &vq] {
        vq.txInFlight = false;
        if (vq.txq.empty())
            return;
        txStage.push(vq.txq.pop());
        pumpTxQueue(vq);
    });
}

std::uint64_t
IxpIsland::txQueueBytes(coord::EntityId entity) const
{
    const VmQueue *vq = queueForEntity(entity);
    return vq == nullptr ? 0 : vq->txq.bytes();
}

void
IxpIsland::classify(PacketPtr pkt)
{
    auto it = ipToEntity.find(pkt->flow.dst.v);
    if (it == ipToEntity.end()) {
        stats_.unknownDst.add();
        return;
    }
    VmQueue &vq = *queues.at(it->second);
    stats_.classified.add();

    // Surface application knowledge to the attached policies — the
    // deep-packet-inspection results the coordination schemes use.
    switch (pkt->tag.kind) {
      case corm::net::AppTag::Kind::httpRequest:
        for (auto *p : policies)
            p->onRequestClassified(vq.guest, pkt->tag.value);
        break;
      case corm::net::AppTag::Kind::rtspSetup: {
        // Session setup carries the SDP-equivalent stream metadata.
        auto info = std::static_pointer_cast<coord::StreamInfo>(
            pkt->context);
        if (info) {
            for (auto *p : policies)
                p->onStreamInfo(vq.guest, *info);
        }
        break;
      }
      default:
        break;
    }

    if (!vq.q.push(std::move(pkt))) {
        stats_.vmQueueDrops.add();
        return;
    }
    pumpQueue(vq);
}

void
IxpIsland::pumpQueue(VmQueue &vq)
{
    if (vq.inFlight || vq.backoff || vq.q.empty())
        return;
    vq.inFlight = true;

    // A dequeuing thread visits the queue every pollInterval; the
    // aggregate drain rate scales with the queue's thread share.
    const Tick service = static_cast<Tick>(
        static_cast<double>(cfg.pollInterval) / vq.threads)
        + cfg.costs.ringOpTime(cfg.mem)
        + cfg.costs.dmaSetupTime(cfg.mem);

    sim.schedule(service, [this, &vq] {
        if (vq.q.empty()) {
            // Tune/teardown races can empty the queue meanwhile.
            vq.inFlight = false;
            return;
        }
        PacketPtr p = vq.q.pop();
        dma.dma(std::move(p),
                /*on_posted=*/[this, &vq] {
                    vq.inFlight = false;
                    pumpQueue(vq);
                },
                /*on_reject=*/[this, &vq](PacketPtr rejected) {
                    // Host descriptor ring full: keep the packet at
                    // the queue head and retry after a backoff. This
                    // is how host-side stalls grow the IXP DRAM
                    // buffers (Fig. 7).
                    stats_.dmaRejects.add();
                    vq.q.pushFront(std::move(rejected));
                    vq.inFlight = false;
                    vq.backoff = true;
                    sim.schedule(cfg.dmaRetryBackoff, [this, &vq] {
                        vq.backoff = false;
                        pumpQueue(vq);
                    });
                });
    });
}

void
IxpIsland::applyTune(coord::EntityId entity, double delta)
{
    VmQueue *vq = queueForEntity(entity);
    if (vq == nullptr)
        return;
    stats_.tunesApplied.add();
    const double before = vq->threads;
    vq->threads = std::clamp(
        vq->threads + delta * cfg.threadsPerTuneUnit,
        cfg.minQueueThreads, cfg.maxQueueThreads);
    if (CORM_TRACE_ACTIVE(rec)) {
        const auto flow = rec->currentFlow();
        rec->complete(
            islandTrack(), sim.now(), 0, "tune:apply", "ixp",
            {{"entity", static_cast<std::uint64_t>(entity)},
             {"delta", delta},
             {"threads_before", before},
             {"threads_after", vq->threads}});
        if (flow.id != 0) {
            if (flow.final) {
                rec->flowEnd(islandTrack(), sim.now(), flow.id,
                             "coord.span", "coord");
            } else {
                rec->flowStep(islandTrack(), sim.now(), flow.id,
                              "coord.span", "coord");
            }
        }
    }
}

void
IxpIsland::applyTrigger(coord::EntityId entity)
{
    stats_.triggersApplied.add();
    if (CORM_TRACE_ACTIVE(rec)) {
        const auto flow = rec->currentFlow();
        rec->instant(islandTrack(), sim.now(), "trigger:noop", "ixp",
                     {{"entity", static_cast<std::uint64_t>(entity)}});
        if (flow.id != 0 && flow.final) {
            rec->flowEnd(islandTrack(), sim.now(), flow.id,
                         "coord.span", "coord");
        }
    }
}

void
IxpIsland::learnBinding(const coord::EntityBinding &binding)
{
    // Mirror the guest's entity id for the queue that serves it.
    auto [it, inserted] = queues.try_emplace(
        binding.ref.entity,
        std::make_unique<VmQueue>(binding.ref, binding.ip,
                                  cfg.vmQueueBytes,
                                  cfg.defaultQueueThreads));
    if (!inserted) {
        // Re-registration updates the address.
        ipToEntity.erase(it->second->ip.v);
        it->second->ip = binding.ip;
        it->second->guest = binding.ref;
    }
    ipToEntity[binding.ip.v] = binding.ref.entity;
}

double
IxpIsland::currentPowerWatts() const
{
    // Busy thread-time across the three managed stages since the
    // last query approximates microengine activity.
    const Tick busy = rxStage.busyThreadTime()
        + classifyStage.busyThreadTime() + txStage.busyThreadTime();
    const Tick now = sim.now();
    double fraction = 0.0;
    if (now > lastPowerQuery) {
        const double denom = static_cast<double>(now - lastPowerQuery)
            * static_cast<double>(cfg.rxThreads + cfg.classifyThreads
                                  + cfg.txThreads);
        fraction = denom > 0.0
            ? static_cast<double>(busy - lastBusySnapshot) / denom
            : 0.0;
    }
    lastPowerQuery = now;
    lastBusySnapshot = busy;
    return cfg.idleWatts
        + cfg.activeWatts * std::clamp(fraction, 0.0, 1.0);
}

std::uint64_t
IxpIsland::queueBytes(coord::EntityId entity) const
{
    const VmQueue *vq = queueForEntity(entity);
    return vq == nullptr ? 0 : vq->q.bytes();
}

double
IxpIsland::queueThreads(coord::EntityId entity) const
{
    const VmQueue *vq = queueForEntity(entity);
    return vq == nullptr ? 0.0 : vq->threads;
}

const corm::sim::TimeSeries *
IxpIsland::occupancySeries(coord::EntityId entity) const
{
    const VmQueue *vq = queueForEntity(entity);
    return vq == nullptr ? nullptr : &vq->occupancy;
}

std::uint64_t
IxpIsland::queueDrops(coord::EntityId entity) const
{
    const VmQueue *vq = queueForEntity(entity);
    return vq == nullptr ? 0 : vq->q.totalDrops();
}

IxpIsland::VmQueue *
IxpIsland::queueForEntity(coord::EntityId entity)
{
    auto it = queues.find(entity);
    return it == queues.end() ? nullptr : it->second.get();
}

const IxpIsland::VmQueue *
IxpIsland::queueForEntity(coord::EntityId entity) const
{
    auto it = queues.find(entity);
    return it == queues.end() ? nullptr : it->second.get();
}

void
IxpIsland::monitorTick()
{
    for (auto &[entity, vq] : queues) {
        vq->occupancy.record(sim.now(),
                             static_cast<double>(vq->q.bytes()));
        if (CORM_TRACE_ACTIVE(rec) && rec->detail()) {
            rec->counter(islandTrack(), sim.now(),
                         "queue_bytes:" + std::to_string(entity),
                         "bytes",
                         static_cast<double>(vq->q.bytes()));
        }
        for (auto *p : policies)
            p->onBufferLevel(vq->guest, vq->q.bytes(), sim.now());
    }
}

} // namespace corm::ixp
