/**
 * @file
 * Microengine pipeline stages.
 *
 * A ServiceStage models a set of microengine hardware threads
 * assigned to one packet-processing task (Rx, Tx, classify): k
 * parallel servers draining a bounded input queue with a per-packet
 * service time. The thread count is the knob the IXP runtime tunes —
 * "quality of service for classified flows can be managed by tuning
 * the number of threads assigned to each flow" (§2.1).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace corm::ixp {

/**
 * A k-server queueing stage over packets. Service time per packet is
 * computed by a caller-supplied cost function (usually from
 * PacketCosts), divided among up to `threads` concurrent servers.
 */
class ServiceStage
{
  public:
    using CostFn = std::function<corm::sim::Tick(const corm::net::Packet &)>;
    using OutputFn = std::function<void(corm::net::PacketPtr)>;

    /**
     * @param simulator Event engine.
     * @param stage_name For stats and logs, e.g. "ixp.rx".
     * @param threads Hardware threads assigned (parallel servers).
     * @param cost Per-packet service-time function.
     * @param queue_packets Input queue bound in packets (0 = unbounded).
     */
    ServiceStage(corm::sim::Simulator &simulator, std::string stage_name,
                 int threads, CostFn cost, std::size_t queue_packets = 0)
        : sim(simulator), name_(std::move(stage_name)),
          threadCount(threads), costFn(std::move(cost)),
          input(queue_packets, 0)
    {}

    /** Install the downstream consumer. */
    void setOutput(OutputFn fn) { output = std::move(fn); }

    /**
     * Offer a packet to the stage.
     * @return false if the input queue dropped it.
     */
    bool
    push(corm::net::PacketPtr pkt)
    {
        if (!input.push(std::move(pkt)))
            return false;
        pump();
        return true;
    }

    /** Reassign the stage's thread count (IXP-side tuning). */
    void
    setThreads(int threads)
    {
        threadCount = threads < 1 ? 1 : threads;
        pump();
    }

    /** Threads currently assigned. */
    int threads() const { return threadCount; }

    /** Packets waiting (not in service). */
    std::size_t backlog() const { return input.size(); }

    /** Packets fully serviced. */
    std::uint64_t totalServiced() const { return serviced.value(); }

    /** Packets dropped at the input queue. */
    std::uint64_t totalDropped() const { return input.totalDrops(); }

    /** Cumulative busy thread-time (for utilisation estimates). */
    corm::sim::Tick busyThreadTime() const { return busyTime; }

    /** Stage name. */
    const std::string &name() const { return name_; }

  private:
    /** Start service on queued packets while threads are free. */
    void
    pump()
    {
        while (inService < threadCount && !input.empty()) {
            corm::net::PacketPtr pkt = input.pop();
            ++inService;
            const corm::sim::Tick t = costFn(*pkt);
            busyTime += t;
            sim.schedule(t, [this, p = std::move(pkt)]() mutable {
                --inService;
                serviced.add();
                // Emit before pumping so ordering downstream matches
                // service-completion order.
                if (output)
                    output(std::move(p));
                pump();
            });
        }
    }

    corm::sim::Simulator &sim;
    std::string name_;
    int threadCount;
    CostFn costFn;
    corm::net::PacketQueue input;
    OutputFn output;
    int inService = 0;
    corm::sim::Counter serviced;
    corm::sim::Tick busyTime = 0;
};

} // namespace corm::ixp
