/**
 * @file
 * The discrete-event simulation core.
 *
 * A Simulator owns a time-ordered queue of events. Components schedule
 * callbacks at absolute or relative simulated times; run() dispatches
 * them in (time, insertion) order, so simultaneous events execute in
 * the order they were scheduled — a property several scheduler tests
 * rely on. Events are cancellable via the id returned by schedule().
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

namespace corm::sim {

/** Identifier of a scheduled event, usable with Simulator::cancel(). */
using EventId = std::uint64_t;

/** EventId value that never names a live event. */
inline constexpr EventId invalidEventId = 0;

/**
 * Discrete-event simulator: a clock plus an ordered event queue.
 *
 * Not thread-safe by design; the entire platform model runs in one
 * thread of host execution, which keeps it deterministic.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to run.
     * @return Id usable with cancel().
     */
    EventId
    scheduleAt(Tick when, Callback cb)
    {
        if (when < currentTick)
            when = currentTick;
        const EventId id = ++nextId;
        queue.push(Event{when, id, std::move(cb)});
        ++liveEvents;
        return id;
    }

    /** Schedule a callback @p delay ticks from now. */
    EventId
    schedule(Tick delay, Callback cb)
    {
        return scheduleAt(currentTick + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event. Cancelling an already-fired
     * or already-cancelled event is a harmless no-op.
     */
    void
    cancel(EventId id)
    {
        if (id == invalidEventId)
            return;
        if (cancelled.insert(id).second && liveEvents > 0)
            --liveEvents;
    }

    /** Number of scheduled-and-not-yet-fired (nor cancelled) events. */
    std::size_t pendingEvents() const { return liveEvents; }

    /**
     * Run until the queue drains or simulated time would pass @p until.
     * The clock is left at @p until (or at the final event if the queue
     * drained earlier and stopRequested() was set).
     */
    void
    runUntil(Tick until)
    {
        drain(until);
        if (!stopFlag && currentTick < until)
            currentTick = until;
    }

    /** Run @p duration ticks of simulated time from now. */
    void runFor(Tick duration) { runUntil(currentTick + duration); }

    /**
     * Run until the event queue is completely drained; the clock is
     * left at the final event (it does not jump to infinity).
     */
    void runToCompletion() { drain(maxTick); }

    /**
     * Execute exactly one pending event (skipping cancelled ones).
     * @return true if an event ran, false if the queue was empty.
     */
    bool
    step()
    {
        while (!queue.empty()) {
            if (cancelled.erase(queue.top().id)) {
                queue.pop();
                continue;
            }
            Event ev = std::move(const_cast<Event &>(queue.top()));
            queue.pop();
            --liveEvents;
            currentTick = ev.when;
            ev.cb();
            return true;
        }
        return false;
    }

    /** Ask a running runUntil() loop to stop after the current event. */
    void requestStop() { stopFlag = true; }

    /** True if the last run ended due to requestStop(). */
    bool stopRequested() const { return stopFlag; }

  private:
    /** Execute events with when <= until, honouring cancellations. */
    void
    drain(Tick until)
    {
        stopFlag = false;
        while (!queue.empty() && !stopFlag) {
            const Event &top = queue.top();
            if (top.when > until)
                break;
            if (cancelled.erase(top.id)) {
                queue.pop();
                continue;
            }
            // Move the callback out before popping so the event can
            // safely schedule (and even cancel) other events.
            Event ev = std::move(const_cast<Event &>(top));
            queue.pop();
            --liveEvents;
            currentTick = ev.when;
            ev.cb();
        }
    }

    struct Event
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id; // FIFO among simultaneous events
        }
    };

    Tick currentTick = 0;
    EventId nextId = invalidEventId;
    bool stopFlag = false;
    std::size_t liveEvents = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::unordered_set<EventId> cancelled;
};

/**
 * RAII helper for a periodic event: fires a callback every @p period
 * ticks until stopped or destroyed. Used for scheduler ticks,
 * accounting periods, polling loops and monitors.
 */
class PeriodicEvent
{
  public:
    /**
     * @param simulator Owning simulator (must outlive this object).
     * @param period Interval between firings; must be > 0.
     * @param cb Callback invoked each period.
     * @param start_offset Delay before the first firing (default: one
     *        full period).
     */
    PeriodicEvent(Simulator &simulator, Tick period,
                  Simulator::Callback cb, Tick start_offset = 0)
        : sim(simulator), interval(period), callback(std::move(cb))
    {
        const Tick first = start_offset == 0 ? interval : start_offset;
        pending = sim.schedule(first, [this] { fire(); });
    }

    ~PeriodicEvent() { stop(); }

    PeriodicEvent(const PeriodicEvent &) = delete;
    PeriodicEvent &operator=(const PeriodicEvent &) = delete;

    /** Stop firing; safe to call repeatedly. */
    void
    stop()
    {
        sim.cancel(pending);
        pending = invalidEventId;
    }

    /** True while the periodic event is armed. */
    bool running() const { return pending != invalidEventId; }

  private:
    void
    fire()
    {
        pending = sim.schedule(interval, [this] { fire(); });
        callback();
    }

    Simulator &sim;
    Tick interval;
    Simulator::Callback callback;
    EventId pending = invalidEventId;
};

} // namespace corm::sim
