/**
 * @file
 * The discrete-event simulation core.
 *
 * A Simulator owns a time-ordered queue of events. Components schedule
 * callbacks at absolute or relative simulated times; run() dispatches
 * them in (time, insertion) order, so simultaneous events execute in
 * the order they were scheduled — a property several scheduler tests
 * rely on. Events are cancellable via the id returned by schedule().
 *
 * Hot-path design (this file is the innermost loop of every
 * experiment):
 *
 *  - The pending queue is a hand-rolled binary min-heap of 24-byte
 *    POD entries (time, sequence, slot). Sift operations move PODs,
 *    never callbacks.
 *  - Callbacks live in a slot table addressed by the heap entries.
 *    An EventId encodes (generation, slot); cancel() flips the
 *    slot's tombstone flag in O(1) — no hash lookup — and the
 *    tombstone is resolved when the heap entry reaches the top.
 *    Generations make stale ids (fired, cancelled, or reused slots)
 *    harmless no-ops, which also keeps pendingEvents() exact.
 *  - Callbacks are SmallCallback (sim/callback.hpp): common lambdas
 *    like [this]{...} are stored inline, with no heap allocation.
 *  - runs batch-pop all events that share a timestamp and dispatch
 *    the batch in insertion order, re-checking tombstones per event
 *    so a batch member may cancel another member.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/types.hpp"

namespace corm::sim {

/** Identifier of a scheduled event, usable with Simulator::cancel(). */
using EventId = std::uint64_t;

/** EventId value that never names a live event. */
inline constexpr EventId invalidEventId = 0;

/**
 * Discrete-event simulator: a clock plus an ordered event queue.
 *
 * Not thread-safe by design; the entire platform model runs in one
 * thread of host execution, which keeps it deterministic. Parallelism
 * lives one level up: independent trials each own a Simulator (see
 * platform/harness.hpp).
 */
class Simulator
{
  public:
    using Callback = SmallCallback;

    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to run.
     * @return Id usable with cancel().
     */
    EventId
    scheduleAt(Tick when, Callback cb)
    {
        if (when < currentTick)
            when = currentTick;
        const std::uint32_t slot = allocSlot(std::move(cb));
        heap.push_back(HeapEntry{when, ++nextSeq, slot});
        siftUp(heap.size() - 1);
        ++liveEvents;
        return makeId(slots[slot].generation, slot);
    }

    /** Schedule a callback @p delay ticks from now. */
    EventId
    schedule(Tick delay, Callback cb)
    {
        return scheduleAt(currentTick + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event. Cancelling an already-fired
     * or already-cancelled event is a harmless no-op: the generation
     * encoded in the id no longer matches the slot (or the slot is
     * already tombstoned), so accounting is untouched.
     */
    void
    cancel(EventId id)
    {
        const std::uint32_t slot = slotOf(id);
        if (slot >= slots.size())
            return; // invalidEventId and ids from other simulators
        Slot &s = slots[slot];
        if (s.generation != generationOf(id) ||
            s.state != SlotState::pending)
            return; // stale id: fired, cancelled, or slot reused
        s.state = SlotState::cancelled;
        s.cb.reset(); // release captures eagerly
        --liveEvents;
        ++deadEntries;
        // Amortized tombstone collection: once the majority of the
        // queue is dead, one O(n) sweep re-packs it. Charged to the
        // >= n/2 cancels that made it necessary, cancel stays O(1)
        // amortized and pop cost tracks the number of *live* events.
        if (deadEntries > 64 && deadEntries * 2 > heap.size())
            compact();
    }

    /** Number of scheduled-and-not-yet-fired (nor cancelled) events. */
    std::size_t pendingEvents() const { return liveEvents; }

    /**
     * Pre-size the heap and slot table for @p events concurrently
     * pending events, so large scenarios don't pay repeated
     * reallocation mid-run. Growing past the reservation stays legal.
     */
    void
    reserve(std::size_t events)
    {
        heap.reserve(events);
        slots.reserve(events);
        freeSlots.reserve(events);
        if (batch.capacity() < 64)
            batch.reserve(64);
    }

    /**
     * Time of the earliest live (non-cancelled) pending event, or
     * maxTick when none is pending. Tombstoned entries at the top of
     * the heap are retired on the way, so the answer never depends on
     * compaction timing — sharded window planning (sim/sharded.hpp)
     * relies on this being a pure function of the live event set.
     */
    Tick
    nextEventAt()
    {
        while (!heap.empty()) {
            const HeapEntry &top = heap.front();
            if (slots[top.slot].state != SlotState::cancelled)
                return top.when;
            freeSlot(top.slot);
            --deadEntries;
            popTop();
        }
        return maxTick;
    }

    /** Total events dispatched since construction (tombstones excluded). */
    std::uint64_t executedEvents() const { return executed; }

    /**
     * Run until the queue drains or simulated time would pass @p until.
     * The clock is left at @p until (or at the final event if the queue
     * drained earlier and stopRequested() was set).
     */
    void
    runUntil(Tick until)
    {
        drain(until);
        if (!stopFlag && currentTick < until)
            currentTick = until;
    }

    /** Run @p duration ticks of simulated time from now. */
    void runFor(Tick duration) { runUntil(currentTick + duration); }

    /**
     * Run until the event queue is completely drained; the clock is
     * left at the final event (it does not jump to infinity).
     */
    void runToCompletion() { drain(maxTick); }

    /**
     * Execute exactly one pending event (skipping cancelled ones).
     * @return true if an event ran, false if the queue was empty.
     */
    bool
    step()
    {
        while (!heap.empty()) {
            if (dispatch(popTop()))
                return true;
        }
        return false;
    }

    /** Ask a running runUntil() loop to stop after the current event. */
    void requestStop() { stopFlag = true; }

    /** True if the last run ended due to requestStop(). */
    bool stopRequested() const { return stopFlag; }

  private:
    /** One pending occurrence in the heap: small, trivially movable. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq; ///< global insertion order (FIFO tiebreak)
        std::uint32_t slot;
    };

    enum class SlotState : std::uint8_t { free, pending, cancelled };

    /** Callback storage + liveness for one in-flight event id. */
    struct Slot
    {
        Callback cb;
        std::uint32_t generation = 0;
        SlotState state = SlotState::free;
    };

    // EventId layout: high 32 bits generation, low 32 bits slot+1
    // (so invalidEventId = 0 never names a slot). A slot's
    // generation increments every time it is recycled; a wrap after
    // 2^32 reuses of one slot is accepted.
    static EventId
    makeId(std::uint32_t generation, std::uint32_t slot)
    {
        return (static_cast<EventId>(generation) << 32) |
               (static_cast<EventId>(slot) + 1);
    }

    static std::uint32_t
    slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
    }

    static std::uint32_t
    generationOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    std::uint32_t
    allocSlot(Callback cb)
    {
        std::uint32_t idx;
        if (!freeSlots.empty()) {
            idx = freeSlots.back();
            freeSlots.pop_back();
        } else {
            idx = static_cast<std::uint32_t>(slots.size());
            slots.emplace_back();
        }
        Slot &s = slots[idx];
        s.cb = std::move(cb);
        s.state = SlotState::pending;
        return idx;
    }

    void
    freeSlot(std::uint32_t idx)
    {
        Slot &s = slots[idx];
        ++s.generation; // invalidate every id minted for this use
        s.state = SlotState::free;
        freeSlots.push_back(idx);
    }

    /** (when, seq) lexicographic order; true if a fires before b. */
    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq; // FIFO among simultaneous events
    }

    void
    siftUp(std::size_t i)
    {
        HeapEntry e = heap[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!before(e, heap[parent]))
                break;
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = e;
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap.size();
        HeapEntry e = heap[i];
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && before(heap[child + 1], heap[child]))
                ++child;
            if (!before(heap[child], e))
                break;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = e;
    }

    /** Remove and return the earliest entry. Requires !heap.empty(). */
    HeapEntry
    popTop()
    {
        const HeapEntry top = heap.front();
        heap.front() = heap.back();
        heap.pop_back();
        if (!heap.empty())
            siftDown(0);
        return top;
    }

    /** Re-insert an entry (stop-request unwound a batch). */
    void
    pushEntry(const HeapEntry &e)
    {
        heap.push_back(e);
        siftUp(heap.size() - 1);
    }

    /**
     * Resolve one popped entry: free tombstones, else run the
     * callback. Returns true if a live event was dispatched. Takes
     * the entry by value: the callback may re-enter drain() and
     * reallocate the vectors a reference would point into.
     */
    bool
    dispatch(HeapEntry e)
    {
        Slot &s = slots[e.slot];
        if (s.state == SlotState::cancelled) {
            freeSlot(e.slot);
            --deadEntries;
            return false;
        }
        // Move the callback out and retire the id before running, so
        // the callback can freely schedule (and even cancel) events —
        // including ids that land in this same slot.
        Callback cb = std::move(s.cb);
        freeSlot(e.slot);
        --liveEvents;
        currentTick = e.when;
        ++executed;
        cb();
        return true;
    }

    /**
     * Drop every tombstoned entry from the heap and restore the heap
     * property bottom-up (Floyd heapify, O(n)). Entries parked in
     * the drain() batch scratch are not in the heap and keep their
     * share of deadEntries until dispatched.
     */
    void
    compact()
    {
        std::size_t kept = 0;
        for (const HeapEntry &e : heap) {
            if (slots[e.slot].state == SlotState::cancelled) {
                freeSlot(e.slot);
                --deadEntries;
            } else {
                heap[kept++] = e;
            }
        }
        heap.resize(kept);
        for (std::size_t i = kept / 2; i-- > 0;)
            siftDown(i);
    }

    /** Execute events with when <= until, honouring cancellations. */
    void
    drain(Tick until)
    {
        stopFlag = false;
        while (!heap.empty() && !stopFlag) {
            if (heap.front().when > until)
                break;
            HeapEntry first = popTop();
            if (heap.empty() || heap.front().when != first.when) {
                // Fast path: a lone event at this timestamp.
                dispatch(first);
                continue;
            }
            // Batch path: pop every already-queued event that shares
            // this timestamp, then dispatch in insertion order.
            // Events the batch schedules at the same timestamp join a
            // later batch (their seq is higher), preserving FIFO. The
            // scratch vector is shared across re-entrant runs (a
            // callback may call runFor()), so work with a base offset
            // and indices, never iterators.
            const Tick when = first.when;
            const std::size_t base = batch.size();
            batch.push_back(first);
            while (!heap.empty() && heap.front().when == when)
                batch.push_back(popTop());
            std::size_t i = base;
            for (; i < batch.size() && !stopFlag; ++i)
                dispatch(batch[i]);
            if (i < batch.size()) {
                // Stopped mid-batch: the rest stays pending.
                for (std::size_t j = i; j < batch.size(); ++j)
                    pushEntry(batch[j]);
            }
            batch.resize(base);
        }
    }

    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    bool stopFlag = false;
    std::size_t liveEvents = 0;
    std::size_t deadEntries = 0; ///< tombstones in heap or batch
    std::vector<HeapEntry> heap;
    std::vector<HeapEntry> batch; ///< drain() scratch, see above
    std::vector<Slot> slots;
    std::vector<std::uint32_t> freeSlots;
};

/**
 * RAII helper for a periodic event: fires a callback every @p period
 * ticks until stopped or destroyed. Used for scheduler ticks,
 * accounting periods, polling loops and monitors.
 */
class PeriodicEvent
{
  public:
    /**
     * @param simulator Owning simulator (must outlive this object).
     * @param period Interval between firings; must be > 0.
     * @param cb Callback invoked each period.
     * @param start_offset Delay before the first firing (default: one
     *        full period).
     */
    PeriodicEvent(Simulator &simulator, Tick period,
                  Simulator::Callback cb, Tick start_offset = 0)
        : sim(simulator), interval(period), callback(std::move(cb))
    {
        const Tick first = start_offset == 0 ? interval : start_offset;
        pending = sim.schedule(first, [this] { fire(); });
    }

    ~PeriodicEvent() { stop(); }

    PeriodicEvent(const PeriodicEvent &) = delete;
    PeriodicEvent &operator=(const PeriodicEvent &) = delete;

    /** Stop firing; safe to call repeatedly. */
    void
    stop()
    {
        sim.cancel(pending);
        pending = invalidEventId;
    }

    /** True while the periodic event is armed. */
    bool running() const { return pending != invalidEventId; }

  private:
    void
    fire()
    {
        pending = sim.schedule(interval, [this] { fire(); });
        callback();
    }

    Simulator &sim;
    Tick interval;
    Simulator::Callback callback;
    EventId pending = invalidEventId;
};

} // namespace corm::sim
