/**
 * @file
 * Lightweight component-tagged logging with simulated-time stamps.
 *
 * Intended for tracing platform behaviour during development and in
 * the examples; the benchmark harnesses run with logging off so their
 * output is exactly the paper-style tables.
 */

#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace corm::sim {

/** Log severity, in increasing order of importance. */
enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/**
 * Global log configuration. A single threshold applies to all
 * components; the simulator pointer (if set) adds time stamps.
 */
class LogConfig
{
  public:
    /** Access the process-wide configuration. */
    static LogConfig &
    instance()
    {
        static LogConfig config;
        return config;
    }

    /** Current threshold; messages below it are dropped. */
    LogLevel level() const { return threshold; }

    /** Set the threshold. */
    void setLevel(LogLevel level) { threshold = level; }

    /** Simulator whose clock stamps messages (may be null). */
    const Simulator *clock() const { return sim; }

    /** Attach/detach the time-stamping simulator. */
    void setClock(const Simulator *simulator) { sim = simulator; }

  private:
    LogLevel threshold = LogLevel::warn;
    const Simulator *sim = nullptr;
};

/**
 * Per-component logger; cheap to construct and copy. Formatting uses
 * printf-style varargs for zero dependencies.
 */
class Logger
{
  public:
    /** @param component Tag shown in every message, e.g. "xen.sched". */
    explicit Logger(std::string component)
        : tag(std::move(component))
    {}

    /** True if messages at @p level would currently be emitted. */
    static bool
    enabled(LogLevel level)
    {
        return level >= LogConfig::instance().level();
    }

    /** Emit a debug-level message. */
    template <typename... Args>
    void
    debug(const char *fmt, Args... args) const
    {
        emit(LogLevel::debug, fmt, args...);
    }

    /** Emit an info-level message. */
    template <typename... Args>
    void
    info(const char *fmt, Args... args) const
    {
        emit(LogLevel::info, fmt, args...);
    }

    /** Emit a warning. */
    template <typename... Args>
    void
    warn(const char *fmt, Args... args) const
    {
        emit(LogLevel::warn, fmt, args...);
    }

    /** Emit an error message. */
    template <typename... Args>
    void
    error(const char *fmt, Args... args) const
    {
        emit(LogLevel::error, fmt, args...);
    }

  private:
    template <typename... Args>
    void
    emit(LogLevel level, const char *fmt, Args... args) const
    {
        if (!enabled(level))
            return;
        static const char *names[] = {"DBG", "INF", "WRN", "ERR"};
        const auto *clk = LogConfig::instance().clock();
        const double t = clk ? toMillis(clk->now()) : 0.0;
        std::fprintf(stderr, "[%12.3f ms] %s %-16s ", t,
                     names[static_cast<int>(level)], tag.c_str());
        if constexpr (sizeof...(Args) == 0)
            std::fprintf(stderr, "%s", fmt);
        else
            std::fprintf(stderr, fmt, args...);
        std::fputc('\n', stderr);
    }

    std::string tag;
};

} // namespace corm::sim
