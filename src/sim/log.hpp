/**
 * @file
 * Lightweight component-tagged logging with simulated-time stamps.
 *
 * Intended for tracing platform behaviour during development and in
 * the examples; the benchmark harnesses run with logging off so their
 * output is exactly the paper-style tables.
 *
 * Thresholds are per component: a component tag like "xen.sched"
 * matches the most specific configured prefix ("xen.sched" beats
 * "xen" beats the global default). Configuration comes from
 * LogConfig::configure() — the same "level[,component=level,...]"
 * syntax the CORM_LOG environment variable and the benches'
 * --log-level flag accept, e.g. `CORM_LOG=coord=debug,xen.sched=info`.
 * Defaults are unchanged from the single-threshold days: global
 * `warn`, no component overrides.
 */

#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

/** printf-style format checking (no-op on non-GNU compilers). */
#if defined(__GNUC__) || defined(__clang__)
#define CORM_PRINTF(fmt_idx, first_arg)                               \
    __attribute__((format(printf, fmt_idx, first_arg)))
#else
#define CORM_PRINTF(fmt_idx, first_arg)
#endif

namespace corm::sim {

/** Log severity, in increasing order of importance. */
enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/** Parse a level name; false leaves @p out untouched. */
inline bool
parseLogLevel(std::string_view name, LogLevel &out)
{
    if (name == "debug")
        out = LogLevel::debug;
    else if (name == "info")
        out = LogLevel::info;
    else if (name == "warn")
        out = LogLevel::warn;
    else if (name == "error")
        out = LogLevel::error;
    else if (name == "off")
        out = LogLevel::off;
    else
        return false;
    return true;
}

/**
 * Global log configuration: a default threshold, optional
 * per-component-prefix overrides, and the simulator clock (if set)
 * that adds simulated-time stamps.
 */
class LogConfig
{
  public:
    /** Access the process-wide configuration. */
    static LogConfig &
    instance()
    {
        static LogConfig config;
        return config;
    }

    /** Global default threshold (components without an override). */
    LogLevel level() const { return threshold; }

    /** Set the global default threshold. */
    void
    setLevel(LogLevel level)
    {
        threshold = level;
        recomputeFloor();
    }

    /**
     * Override the threshold for every component whose tag equals
     * @p component or starts with "@p component." — "coord" covers
     * "coord.channel" and "coord.reliable"; the most specific
     * configured prefix wins.
     */
    void
    setComponentLevel(const std::string &component, LogLevel level)
    {
        components[component] = level;
        recomputeFloor();
    }

    /** Drop all component overrides (global threshold remains). */
    void
    clearComponentLevels()
    {
        components.clear();
        recomputeFloor();
    }

    /**
     * Apply a "level[,component=level,...]" spec: a bare level sets
     * the global default, `component=level` adds an override.
     * Example: "warn,coord=debug,xen.sched=info".
     * @return false (leaving prior settings partially applied) on
     * the first malformed entry.
     */
    bool
    configure(std::string_view spec)
    {
        std::size_t start = 0;
        while (start <= spec.size()) {
            std::size_t comma = spec.find(',', start);
            if (comma == std::string_view::npos)
                comma = spec.size();
            std::string_view item = spec.substr(start, comma - start);
            start = comma + 1;
            if (item.empty())
                continue;
            const std::size_t eq = item.find('=');
            LogLevel lvl{};
            if (eq == std::string_view::npos) {
                if (!parseLogLevel(item, lvl))
                    return false;
                setLevel(lvl);
            } else {
                std::string_view name = item.substr(0, eq);
                if (name.empty()
                    || !parseLogLevel(item.substr(eq + 1), lvl))
                    return false;
                setComponentLevel(std::string(name), lvl);
            }
        }
        return true;
    }

    /** Effective threshold for @p component (longest prefix match). */
    LogLevel
    levelFor(std::string_view component) const
    {
        const LogLevel *best = nullptr;
        std::size_t bestLen = 0;
        for (const auto &[prefix, lvl] : components) {
            if (prefix.size() < bestLen
                || component.substr(0, prefix.size()) != prefix)
                continue;
            // A prefix matches whole dotted segments only.
            if (component.size() > prefix.size()
                && component[prefix.size()] != '.')
                continue;
            best = &lvl;
            bestLen = prefix.size();
        }
        return best ? *best : threshold;
    }

    /**
     * The lowest threshold any component could see — the fast-path
     * gate: a message below this level is dropped without a
     * component lookup.
     */
    LogLevel floorLevel() const { return floor; }

    /** Simulator whose clock stamps messages (may be null). */
    const Simulator *clock() const { return sim; }

    /** Attach/detach the time-stamping simulator. */
    void setClock(const Simulator *simulator) { sim = simulator; }

  private:
    LogConfig()
    {
        if (const char *env = std::getenv("CORM_LOG"))
            configure(env);
    }

    void
    recomputeFloor()
    {
        floor = threshold;
        for (const auto &[prefix, lvl] : components) {
            if (lvl < floor)
                floor = lvl;
        }
    }

    LogLevel threshold = LogLevel::warn;
    LogLevel floor = LogLevel::warn;
    std::map<std::string, LogLevel> components;
    const Simulator *sim = nullptr;
};

/**
 * Per-component logger; cheap to construct and copy. Formatting uses
 * printf-style varargs for zero dependencies; format strings are
 * compiler-checked against their arguments (CORM_PRINTF).
 */
class Logger
{
  public:
    /** @param component Tag shown in every message, e.g. "xen.sched". */
    explicit Logger(std::string component)
        : tag(std::move(component))
    {}

    /** True if any component would currently emit at @p level. */
    static bool
    enabled(LogLevel level)
    {
        return level >= LogConfig::instance().floorLevel();
    }

    /** True if THIS component would currently emit at @p level. */
    bool
    enabledFor(LogLevel level) const
    {
        return level >= LogConfig::instance().levelFor(tag);
    }

    /** Emit a debug-level message. */
    void
    debug(const char *fmt, ...) const CORM_PRINTF(2, 3)
    {
        if (!shouldEmit(LogLevel::debug))
            return;
        va_list ap;
        va_start(ap, fmt);
        vemit(LogLevel::debug, fmt, ap);
        va_end(ap);
    }

    /** Emit an info-level message. */
    void
    info(const char *fmt, ...) const CORM_PRINTF(2, 3)
    {
        if (!shouldEmit(LogLevel::info))
            return;
        va_list ap;
        va_start(ap, fmt);
        vemit(LogLevel::info, fmt, ap);
        va_end(ap);
    }

    /** Emit a warning. */
    void
    warn(const char *fmt, ...) const CORM_PRINTF(2, 3)
    {
        if (!shouldEmit(LogLevel::warn))
            return;
        va_list ap;
        va_start(ap, fmt);
        vemit(LogLevel::warn, fmt, ap);
        va_end(ap);
    }

    /** Emit an error message. */
    void
    error(const char *fmt, ...) const CORM_PRINTF(2, 3)
    {
        if (!shouldEmit(LogLevel::error))
            return;
        va_list ap;
        va_start(ap, fmt);
        vemit(LogLevel::error, fmt, ap);
        va_end(ap);
    }

  private:
    bool
    shouldEmit(LogLevel level) const
    {
        // Two-stage gate: the global floor first (one comparison,
        // the common all-off case), the per-component prefix lookup
        // only when something might be on.
        return enabled(level) && enabledFor(level);
    }

    void
    vemit(LogLevel level, const char *fmt, va_list ap) const
    {
        static const char *names[] = {"DBG", "INF", "WRN", "ERR"};
        const auto *clk = LogConfig::instance().clock();
        const double t = clk ? toMillis(clk->now()) : 0.0;
        std::fprintf(stderr, "[%12.3f ms] %s %-16s ", t,
                     names[static_cast<int>(level)], tag.c_str());
        std::vfprintf(stderr, fmt, ap);
        std::fputc('\n', stderr);
    }

    std::string tag;
};

} // namespace corm::sim
