/**
 * @file
 * Seedable random number generation for workload models.
 *
 * The simulator must be deterministic for a given seed so every
 * experiment in EXPERIMENTS.md is exactly reproducible. We therefore
 * avoid std::random_device and the unspecified-across-platforms
 * std::*_distribution implementations, and ship a small self-contained
 * generator (xoshiro256++) plus the handful of distributions the
 * workload models need.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace corm::sim {

/**
 * SplitMix64 stream, used to expand a single 64-bit seed into the
 * 256-bit state of Xoshiro256pp. Also usable standalone for cheap
 * hashing-style randomness.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64 random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256++ pseudo-random generator (Blackman & Vigna). Fast,
 * high-quality, and fully specified, so results are identical on any
 * platform. One instance per independent random stream; derive
 * per-component streams from a master seed with fork().
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed the generator; the full state is expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x5eedc0de5eedc0deULL)
    {
        SplitMix64 sm(seed);
        for (auto &word : s)
            word = sm.next();
    }

    /** Minimum value, for UniformRandomBitGenerator conformance. */
    static constexpr result_type min() { return 0; }
    /** Maximum value, for UniformRandomBitGenerator conformance. */
    static constexpr result_type max() { return ~result_type(0); }

    /** Next 64 random bits. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(s[0] + s[3], 23) + s[0];
        const std::uint64_t t = s[1] << 17;

        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);

        return result;
    }

    /**
     * Derive an independent child stream. Uses the next output as the
     * child's seed; the parent stream advances by one draw.
     */
    Rng fork() { return Rng((*this)()); }

    /**
     * Stateless stream splitting: stream @p streamId under master
     * @p seed. Unlike fork(), any stream is computable without
     * drawing the others, which is what per-shard RNG streams in the
     * sharded engine need — stream k must not depend on how many
     * shards exist or in what order they were constructed. Uses the
     * same golden-ratio keying as harness::trialSeed so stream ids
     * and trial indices perturb the seed identically but over
     * disjoint inputs (callers pick disjoint id spaces).
     */
    static Rng
    stream(std::uint64_t seed, std::uint64_t streamId)
    {
        SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (streamId + 1)));
        return Rng(sm.next());
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 high-quality mantissa bits.
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        // Lemire's unbiased bounded generation.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            std::uint64_t t = (0 - n) % n;
            while (lo < t) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Bernoulli draw with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Exponential variate with the given mean (mean > 0). */
    double
    exponential(double mean)
    {
        // Guard against log(0).
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /** Exponentially distributed duration with the given mean. */
    Tick
    exponentialTicks(Tick mean)
    {
        return static_cast<Tick>(
            exponential(static_cast<double>(mean)));
    }

    /** Normal variate (Box–Muller, one value per call). */
    double
    normal(double mean, double stddev)
    {
        double u1 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        return mean + stddev * r * std::cos(theta);
    }

    /**
     * Truncated-at-zero normal duration. Service-demand jitter in the
     * workload models never goes negative.
     */
    Tick
    normalTicks(Tick mean, Tick stddev)
    {
        const double v = normal(static_cast<double>(mean),
                                static_cast<double>(stddev));
        return v <= 0.0 ? 0 : static_cast<Tick>(v);
    }

    /** Bounded Pareto variate (heavy-tailed demand bursts). */
    double
    boundedPareto(double alpha, double lo, double hi)
    {
        const double u = uniform();
        const double la = std::pow(lo, alpha);
        const double ha = std::pow(hi, alpha);
        return std::pow(-(u * ha - u * la - ha) / (ha * la),
                        -1.0 / alpha);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

/**
 * Discrete distribution over [0, n) defined by arbitrary non-negative
 * weights. Used for the RUBiS session transition matrix. Sampling is
 * O(n) on purpose: n is ~20 and clarity beats an alias table here.
 */
class DiscreteDist
{
  public:
    DiscreteDist() = default;

    /** Build from weights; zero-weight entries are never drawn. */
    explicit DiscreteDist(std::vector<double> w) : weights(std::move(w))
    {
        total = 0.0;
        for (double x : weights)
            total += x;
    }

    /** True if no entry can be drawn. */
    bool empty() const { return total <= 0.0; }

    /** Number of categories. */
    std::size_t size() const { return weights.size(); }

    /** Probability of category i. */
    double
    probability(std::size_t i) const
    {
        if (total <= 0.0 || i >= weights.size())
            return 0.0;
        return weights[i] / total;
    }

    /** Draw a category index. Requires !empty(). */
    std::size_t
    sample(Rng &rng) const
    {
        double x = rng.uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            x -= weights[i];
            if (x < 0.0)
                return i;
        }
        // Floating-point slop: return the last non-zero weight.
        for (std::size_t i = weights.size(); i-- > 0;) {
            if (weights[i] > 0.0)
                return i;
        }
        return 0;
    }

  private:
    std::vector<double> weights;
    double total = 0.0;
};

} // namespace corm::sim
