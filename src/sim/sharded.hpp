/**
 * @file
 * Sharded parallel event loop: conservative-lookahead PDES.
 *
 * One Simulator is single-threaded by design; --jobs parallelism
 * lives at the trial level (platform/harness.hpp). This file adds
 * the missing axis: intra-trial parallelism. A ShardedEngine owns K
 * Simulators ("shards"), each modelling a disjoint subset of the
 * platform's islands, and advances them concurrently in lockstep
 * windows under the classic conservative-lookahead rule: with every
 * cross-shard interaction carried by a modelled link of latency L, a
 * message sent at time t cannot take effect before t + L, so every
 * shard may safely execute all events up to
 *
 *     windowEnd = min(until, earliestPendingEventAnywhere + L)
 *
 * without ever seeing a message from the "future" of another shard.
 *
 * Cross-shard traffic crosses only at window barriers. During a
 * window each shard appends ShardMessage PODs to per-(src, dst)
 * boundary queues — single-writer per queue, read exclusively by the
 * coordinator while every worker is parked at the barrier, so the
 * mutex/condvar generation barrier provides all the happens-before
 * the queues need (no atomics in the hot path, clean under TSan).
 * Between windows the coordinator drains the queues, sorts each
 * destination's arrivals into the canonical (when, lane, seq) order
 * and injects them into the destination Simulator as batch events.
 *
 * Determinism contract: the window sequence is a pure function of
 * the global live-event set (Simulator::nextEventAt() deliberately
 * ignores tombstone timing), the canonical order is a pure function
 * of placement-independent lane ids and per-lane send sequences, and
 * a message's injection barrier is the window of its send time. None
 * of those depend on how islands are partitioned, so a scenario
 * digest is bit-identical for any shard count — the property the
 * shard-determinism ctests and the FabricFuzz extension enforce.
 *
 * Allocation discipline (this wraps the innermost loop): boundary
 * payloads live in per-destination ingress arenas that grow but are
 * never reshuffled, and injected batch events capture only
 * {engine, shard, offset, count} — 24 bytes, inside SmallCallback's
 * inline buffer — so parallel delivery performs no per-message heap
 * allocation.
 */

#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace corm::sim {

/**
 * One message crossing a shard boundary. POD: queues and arenas
 * shuffle these by memcpy. The payload words are opaque to the
 * engine — the fabric packs its wire words plus side-band fields
 * (origin timestamp, trace flow, coalesced count) the same way the
 * interconnect mailboxes carry (w0, w1, w2, tag, flow) tuples.
 */
struct ShardMessage
{
    /** Absolute delivery time at the destination shard. */
    Tick when = 0;
    /** Per-lane send sequence: canonical tiebreak within a lane. */
    std::uint64_t seq = 0;
    /**
     * Placement-independent lane id (one per link direction).
     * Canonical tiebreak between lanes delivering at the same tick —
     * deliberately NOT the source shard index, which would change
     * with the partition and break cross-shard-count determinism.
     * 64-bit: the fabric derives it from a 32-bit link key plus a
     * direction bit, which no longer fits 32 bits.
     */
    std::uint64_t lane = 0;
    /** Destination node, for the sink's routing context. */
    std::uint16_t node = 0;
    /** ShardMessage::flagDuplicate etc. */
    std::uint8_t flags = 0;
    /** Link hops completed before this one. */
    std::uint16_t hops = 0;
    /** Opaque payload words (the fabric's encoded wire message). */
    std::uint64_t w0 = 0, w1 = 0, w2 = 0;
    /** Side-band: logical origin timestamp of the message. */
    Tick origin = 0;
    /** Side-band: trace flow id. */
    std::uint64_t flow = 0;
    /** Side-band: payload multiplicity (coalesced tune count). */
    std::uint32_t aux = 1;

    /** Second copy of a weather-duplicated wire message. */
    static constexpr std::uint8_t flagDuplicate = 1;
};

/** Host-side counters of the sharded engine itself. */
struct ShardEngineStats
{
    std::uint64_t windows = 0;  ///< lookahead windows executed
    std::uint64_t messages = 0; ///< boundary messages carried
    std::uint64_t batches = 0;  ///< injection batch events scheduled
    std::size_t maxBoundaryDepth = 0; ///< deepest (src,dst) queue
    /**
     * Host nanoseconds the coordinator spent parked at barriers
     * waiting for the slowest worker — the load-imbalance signal
     * behind the shard_scale speedup numbers. Host time, hence
     * nondeterministic: report it, never digest or baseline it.
     */
    std::uint64_t barrierWaitNs = 0;
};

/**
 * K Simulators advancing concurrently under a conservative-lookahead
 * barrier. Shard 0 runs on the calling thread; shards 1..K-1 each
 * own a persistent worker. With K == 1 no threads are spawned and
 * the engine is an ordinary (windowed) single-threaded run — the
 * honest baseline the shard_scale bench compares against.
 *
 * Usage protocol: configure sinks/probe, schedule initial events on
 * the shard simulators, then runUntil()/runFor() from one thread.
 * Between runs the caller may freely touch any shard simulator (all
 * workers are parked). During a run, shard code must only touch its
 * own simulator and post() boundary messages.
 */
class ShardedEngine
{
  public:
    /** Destination-shard delivery callback (runs on that shard). */
    using Sink = std::function<void(const ShardMessage &)>;
    /**
     * Barrier probe: runs on the coordinator thread at every window
     * barrier (all shards quiescent at the window end, boundary
     * messages already injected). Return true to stop the run —
     * the sharded analogue of Simulator::requestStop(), used for
     * convergence polling. May inspect and schedule on any shard.
     */
    using Probe = std::function<bool(Tick)>;

    /**
     * @param shards Number of shards (>= 1).
     * @param lookahead Conservative lookahead L (> 0): the minimum
     *        cross-shard latency the model guarantees.
     * @param seed Master seed the per-shard RNG streams split from.
     */
    ShardedEngine(int shards, Tick lookahead,
                  std::uint64_t seed = 0x5eedc0de5eedc0deULL)
        : nShards_(shards > 1 ? shards : 1), lookahead_(lookahead)
    {
        assert(lookahead_ > 0 && "lookahead must be positive");
        sims_.reserve(static_cast<std::size_t>(nShards_));
        for (int i = 0; i < nShards_; ++i) {
            sims_.push_back(std::make_unique<Simulator>());
            rngs_.push_back(Rng::stream(
                seed, static_cast<std::uint64_t>(i)));
        }
        sinks_.resize(static_cast<std::size_t>(nShards_));
        postedBy_.assign(static_cast<std::size_t>(nShards_), 0);
        receivedBy_.assign(static_cast<std::size_t>(nShards_), 0);
        outbox_.resize(static_cast<std::size_t>(nShards_));
        for (auto &row : outbox_)
            row.resize(static_cast<std::size_t>(nShards_));
        ingress_.resize(static_cast<std::size_t>(nShards_));
        consumed_.assign(static_cast<std::size_t>(nShards_), 0);
        workers_.reserve(
            static_cast<std::size_t>(nShards_ > 1 ? nShards_ - 1 : 0));
        for (int i = 1; i < nShards_; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    }

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    ~ShardedEngine()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            quit_ = true;
        }
        cvWork_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    /** Number of shards. */
    int shardCount() const { return nShards_; }

    /** Simulator of @p shard. */
    Simulator &
    sim(int shard)
    {
        return *sims_[static_cast<std::size_t>(shard)];
    }

    /**
     * Independent RNG stream of @p shard, split statelessly from the
     * master seed (Rng::stream), so stream k is identical no matter
     * how many shards exist.
     */
    Rng &
    rng(int shard)
    {
        return rngs_[static_cast<std::size_t>(shard)];
    }

    /** Coordinator clock: end of the last completed window. */
    Tick now() const { return clock_; }

    /** Conservative lookahead the engine was built with. */
    Tick lookahead() const { return lookahead_; }

    /** Install the delivery callback of @p shard (before running). */
    void
    setSink(int shard, Sink s)
    {
        sinks_[static_cast<std::size_t>(shard)] = std::move(s);
    }

    /** Install the barrier probe (see Probe). */
    void setProbe(Probe p) { probe_ = std::move(p); }

    /** True if the last run was ended early by the probe. */
    bool stopped() const { return stopped_; }

    /**
     * Queue a boundary message from @p src to @p dst. Runs on shard
     * @p src (its worker thread, mid-window) or on the coordinator
     * between windows. The delivery time must respect the lookahead
     * contract: at or after the current window's end.
     */
    void
    post(int src, int dst, const ShardMessage &m)
    {
        assert(m.when >= windowEnd_ &&
               "boundary message violates the lookahead contract");
        outbox_[static_cast<std::size_t>(src)]
               [static_cast<std::size_t>(dst)]
                   .push_back(m);
        // Single-writer like the outbox row itself; read only at
        // barriers under the generation barrier's happens-before.
        ++postedBy_[static_cast<std::size_t>(src)];
    }

    /** Pre-size every shard simulator (Simulator::reserve). */
    void
    reserve(std::size_t eventsPerShard)
    {
        for (auto &s : sims_)
            s->reserve(eventsPerShard);
        for (auto &row : outbox_)
            for (auto &q : row)
                q.reserve(64);
    }

    /**
     * Advance every shard to @p until (or until the probe stops the
     * run), window by window. On return all shard clocks sit at
     * @p until unless the probe stopped early, in which case they
     * sit at the stopping window's end (== now()).
     */
    void
    runUntil(Tick until)
    {
        stopped_ = false;
        // Boundary messages posted between runs (scenario setup
        // traffic) sit in the outboxes, not in any simulator yet:
        // inject them before planning the first window.
        drainAndInject();
        for (;;) {
            Tick minNext = maxTick;
            for (auto &s : sims_)
                minNext = std::min(minNext, s->nextEventAt());
            if (minNext > until)
                break;
            const Tick wEnd = (until - minNext < lookahead_)
                                  ? until
                                  : minNext + lookahead_;
            runWindow(wEnd);
            ++stats_.windows;
            clock_ = wEnd;
            drainAndInject();
            if (probe_ && probe_(wEnd)) {
                stopped_ = true;
                return;
            }
        }
        // No pending event at or before `until` anywhere: advance
        // every clock without running anything.
        for (auto &s : sims_)
            s->runUntil(until);
        clock_ = until;
    }

    /** Run @p duration ticks from now(). */
    void runFor(Tick duration) { runUntil(clock_ + duration); }

    /** Total events dispatched across every shard simulator. */
    std::uint64_t
    eventsExecuted() const
    {
        std::uint64_t n = 0;
        for (const auto &s : sims_)
            n += s->executedEvents();
        return n;
    }

    /** Engine-level counters. */
    const ShardEngineStats &stats() const { return stats_; }

    // Per-shard self-observability. Deterministic for a fixed shard
    // count (they describe the partition, so they differ across
    // shard counts — report them per `shard{k}`, never digest them
    // across K). Read at barriers or between runs only.

    /** Boundary messages posted by @p shard so far. */
    std::uint64_t
    postedBy(int shard) const
    {
        return postedBy_[static_cast<std::size_t>(shard)];
    }

    /** Boundary messages injected into @p shard so far. */
    std::uint64_t
    receivedBy(int shard) const
    {
        return receivedBy_[static_cast<std::size_t>(shard)];
    }

  private:
    /** Canonical boundary order: (when, lane, seq). */
    static bool
    canonicalBefore(const ShardMessage &a, const ShardMessage &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.lane != b.lane)
            return a.lane < b.lane;
        return a.seq < b.seq;
    }

    void
    workerLoop(int idx)
    {
        std::uint64_t seenGen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lk(m_);
                cvWork_.wait(lk, [&] {
                    return quit_ || generation_ != seenGen;
                });
                if (quit_)
                    return;
                seenGen = generation_;
            }
            sims_[static_cast<std::size_t>(idx)]->runUntil(target_);
            {
                std::lock_guard<std::mutex> lk(m_);
                if (--running_ == 0)
                    cvDone_.notify_one();
            }
        }
    }

    /** Run every shard to @p wEnd; blocks until all are parked. */
    void
    runWindow(Tick wEnd)
    {
        windowEnd_ = wEnd;
        if (nShards_ == 1) {
            sims_[0]->runUntil(wEnd);
            return;
        }
        {
            std::lock_guard<std::mutex> lk(m_);
            target_ = wEnd;
            running_ = nShards_ - 1;
            ++generation_;
        }
        cvWork_.notify_all();
        sims_[0]->runUntil(wEnd); // shard 0 rides the caller's thread
        const auto parkedAt = std::chrono::steady_clock::now();
        std::unique_lock<std::mutex> lk(m_);
        cvDone_.wait(lk, [&] { return running_ == 0; });
        stats_.barrierWaitNs += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - parkedAt)
                .count());
    }

    /**
     * Barrier work: move every boundary message into its
     * destination's ingress arena in canonical order and schedule
     * one batch event per equal-timestamp run.
     */
    void
    drainAndInject()
    {
        for (int d = 0; d < nShards_; ++d) {
            const auto dd = static_cast<std::size_t>(d);
            auto &arena = ingress_[dd];
            if (!arena.empty() && consumed_[dd] == arena.size()) {
                // Fully drained: recycle the arena's memory. Indices
                // held by still-pending batch events would dangle,
                // hence the full-consumption check.
                arena.clear();
                consumed_[dd] = 0;
            }
            scratch_.clear();
            for (int s = 0; s < nShards_; ++s) {
                auto &q = outbox_[static_cast<std::size_t>(s)][dd];
                stats_.maxBoundaryDepth =
                    std::max(stats_.maxBoundaryDepth, q.size());
                scratch_.insert(scratch_.end(), q.begin(), q.end());
                q.clear();
            }
            if (scratch_.empty())
                continue;
            std::sort(scratch_.begin(), scratch_.end(),
                      canonicalBefore);
            const std::size_t base = arena.size();
            arena.insert(arena.end(), scratch_.begin(),
                         scratch_.end());
            stats_.messages += scratch_.size();
            receivedBy_[dd] += scratch_.size();
            std::size_t i = 0;
            while (i < scratch_.size()) {
                std::size_t j = i + 1;
                while (j < scratch_.size()
                       && scratch_[j].when == scratch_[i].when)
                    ++j;
                const std::size_t at = base + i;
                const std::uint32_t count =
                    static_cast<std::uint32_t>(j - i);
                sims_[dd]->scheduleAt(
                    scratch_[i].when, [this, d, at, count] {
                        deliverRun(d, at, count);
                    });
                ++stats_.batches;
                i = j;
            }
        }
    }

    /** Deliver @p count arena entries starting at @p at to @p d. */
    void
    deliverRun(int d, std::size_t at, std::uint32_t count)
    {
        const auto dd = static_cast<std::size_t>(d);
        Sink &sink = sinks_[dd];
        for (std::uint32_t k = 0; k < count; ++k)
            sink(ingress_[dd][at + k]);
        consumed_[dd] += count;
    }

    const int nShards_;
    const Tick lookahead_;
    std::vector<std::unique_ptr<Simulator>> sims_;
    std::vector<Rng> rngs_;
    std::vector<Sink> sinks_;
    Probe probe_;

    /** outbox_[src][dst]: written by src mid-window, drained at the
     *  barrier by the coordinator. */
    std::vector<std::vector<std::vector<ShardMessage>>> outbox_;
    /** Per-destination payload arena batch events index into. */
    std::vector<std::vector<ShardMessage>> ingress_;
    /** Arena entries already delivered (written by the owner shard). */
    std::vector<std::size_t> consumed_;
    std::vector<ShardMessage> scratch_; ///< coordinator sort buffer
    /** postedBy_[src]: written by src's thread (like its outbox row);
     *  receivedBy_[dst]: written by the coordinator at barriers. */
    std::vector<std::uint64_t> postedBy_;
    std::vector<std::uint64_t> receivedBy_;

    Tick clock_ = 0;
    Tick windowEnd_ = 0;
    bool stopped_ = false;
    ShardEngineStats stats_;

    // Generation barrier for the persistent workers.
    std::mutex m_;
    std::condition_variable cvWork_, cvDone_;
    std::uint64_t generation_ = 0;
    int running_ = 0;
    Tick target_ = 0;
    bool quit_ = false;
    std::vector<std::thread> workers_;
};

} // namespace corm::sim
