/**
 * @file
 * Small-buffer-optimized callback type for the event kernel.
 *
 * The simulator dispatches tens of millions of events per host
 * second, and almost every callback is a tiny lambda capturing a
 * `this` pointer or a couple of references. `std::function` is the
 * natural vocabulary type but its dispatch goes through two
 * indirections and its small-object buffer (16 bytes in libstdc++)
 * spills many of our real callbacks to the heap. SmallCallback keeps
 * a larger inline buffer, invokes through a single function pointer,
 * and only heap-allocates for captures that exceed the buffer.
 *
 * Callables that are trivially copyable and fit the buffer — which
 * is nearly every lambda in the simulation — carry no lifecycle
 * table at all: copy and move are a fixed-size memcpy and destroy is
 * a no-op, so shuffling such callbacks through the event queue costs
 * no indirect calls.
 *
 * Semantics match `std::function<void()>` where the simulator relies
 * on them: copyable, movable, empty-testable. Invoking an empty
 * SmallCallback is a no-op (the event kernel never stores empty
 * callbacks, and a no-op is a friendlier failure mode mid-simulation
 * than `std::bad_function_call`).
 */

#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace corm::sim {

/**
 * A move/copy-able owning wrapper over any `void()` callable, with a
 * 48-byte inline buffer (six captured pointers) so common simulation
 * lambdas never touch the allocator.
 */
class SmallCallback
{
  public:
    /** Captures up to this many bytes are stored inline. */
    static constexpr std::size_t inlineSize = 48;

    SmallCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (isTrivial<Fn>()) {
            // Zero the tail once so the whole-buffer memcpy in
            // copy/move never reads indeterminate bytes.
            if constexpr (sizeof(Fn) < inlineSize)
                std::memset(storage + sizeof(Fn), 0,
                            inlineSize - sizeof(Fn));
            ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
            // ops stays null: memcpy moves, no-op destroy.
        } else if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
            ops = &Manager<Fn>::opsTable;
        } else {
            *reinterpret_cast<Fn **>(storage) =
                new Fn(std::forward<F>(f));
            ops = &Manager<Fn>::opsTable;
        }
        call = &Manager<Fn>::invoke;
    }

    SmallCallback(const SmallCallback &other)
        : call(other.call), ops(other.ops)
    {
        if (!call)
            return;
        if (ops)
            ops->copyTo(other.storage, storage);
        else
            std::memcpy(storage, other.storage, inlineSize);
    }

    SmallCallback(SmallCallback &&other) noexcept
        : call(other.call), ops(other.ops)
    {
        if (!call)
            return;
        if (ops)
            ops->relocate(other.storage, storage);
        else
            std::memcpy(storage, other.storage, inlineSize);
        other.call = nullptr;
        other.ops = nullptr;
    }

    SmallCallback &
    operator=(const SmallCallback &other)
    {
        if (this != &other) {
            SmallCallback tmp(other);
            *this = std::move(tmp);
        }
        return *this;
    }

    SmallCallback &
    operator=(SmallCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            call = other.call;
            ops = other.ops;
            if (call) {
                if (ops)
                    ops->relocate(other.storage, storage);
                else
                    std::memcpy(storage, other.storage, inlineSize);
                other.call = nullptr;
                other.ops = nullptr;
            }
        }
        return *this;
    }

    ~SmallCallback() { reset(); }

    /** Invoke the callable; empty callbacks are a no-op. */
    void
    operator()()
    {
        if (call)
            call(storage);
    }

    /** True if a callable is held. */
    explicit operator bool() const { return call != nullptr; }

    /** Drop the held callable (if any). */
    void
    reset()
    {
        if (ops) {
            ops->destroy(storage);
            ops = nullptr;
        }
        call = nullptr;
    }

  private:
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    /** Inline + trivially copyable: no lifecycle table needed. */
    template <typename Fn>
    static constexpr bool
    isTrivial()
    {
        return fitsInline<Fn>() && std::is_trivially_copyable_v<Fn>;
    }

    /** Type-erased lifecycle operations (one static table per Fn). */
    struct Ops
    {
        /** Copy-construct a clone of @p src into @p dst storage. */
        void (*copyTo)(const void *src, void *dst);
        /** Move @p src into @p dst storage and destroy @p src. */
        void (*relocate)(void *src, void *dst) noexcept;
        /** Destroy the callable held in @p obj storage. */
        void (*destroy)(void *obj) noexcept;
    };

    template <typename Fn>
    struct Manager
    {
        static Fn *
        get(void *storage)
        {
            if constexpr (fitsInline<Fn>())
                return std::launder(reinterpret_cast<Fn *>(storage));
            else
                return *reinterpret_cast<Fn **>(storage);
        }

        static void
        invoke(void *storage)
        {
            (*get(storage))();
        }

        static void
        copyTo(const void *src, void *dst)
        {
            if constexpr (fitsInline<Fn>()) {
                ::new (dst) Fn(*std::launder(
                    reinterpret_cast<const Fn *>(src)));
            } else {
                *reinterpret_cast<Fn **>(dst) =
                    new Fn(**reinterpret_cast<Fn *const *>(src));
            }
        }

        static void
        relocate(void *src, void *dst) noexcept
        {
            if constexpr (fitsInline<Fn>()) {
                Fn *self = get(src);
                ::new (dst) Fn(std::move(*self));
                self->~Fn();
            } else {
                *reinterpret_cast<Fn **>(dst) =
                    *reinterpret_cast<Fn **>(src);
            }
        }

        static void
        destroy(void *obj) noexcept
        {
            if constexpr (fitsInline<Fn>())
                get(obj)->~Fn();
            else
                delete get(obj);
        }

        static constexpr Ops opsTable{&copyTo, &relocate, &destroy};
    };

    using Invoke = void (*)(void *);

    Invoke call = nullptr;
    const Ops *ops = nullptr;
    alignas(std::max_align_t) unsigned char storage[inlineSize];
};

} // namespace corm::sim
