/**
 * @file
 * Fundamental simulation types and time units.
 *
 * All of CoRM runs on a single discrete-event clock whose unit is one
 * nanosecond of simulated time. Helpers below convert between human
 * units (us/ms/s) and ticks; use them instead of raw literals so the
 * time base can be audited in one place.
 */

#pragma once

#include <cstdint>

namespace corm::sim {

/** Simulated time, in nanoseconds since simulation start. */
using Tick = std::uint64_t;

/** A signed duration in ticks, for deltas that may be negative. */
using TickDelta = std::int64_t;

/** Sentinel for "no deadline / never". */
inline constexpr Tick maxTick = ~Tick(0);

/** One nanosecond of simulated time. */
inline constexpr Tick nsec = 1;
/** One microsecond of simulated time. */
inline constexpr Tick usec = 1000 * nsec;
/** One millisecond of simulated time. */
inline constexpr Tick msec = 1000 * usec;
/** One second of simulated time. */
inline constexpr Tick sec = 1000 * msec;

/** Convert ticks to (double) seconds, for reporting. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sec);
}

/** Convert ticks to (double) milliseconds, for reporting. */
constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(msec);
}

/** Convert ticks to (double) microseconds, for reporting. */
constexpr double
toMicros(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(usec);
}

/** Convert (double) seconds to ticks, clamping negatives to zero. */
constexpr Tick
fromSeconds(double s)
{
    return s <= 0.0 ? 0 : static_cast<Tick>(s * static_cast<double>(sec));
}

/** Convert (double) milliseconds to ticks, clamping negatives to zero. */
constexpr Tick
fromMillis(double ms)
{
    return ms <= 0.0 ? 0 : static_cast<Tick>(ms * static_cast<double>(msec));
}

/** Convert (double) microseconds to ticks, clamping negatives to zero. */
constexpr Tick
fromMicros(double us)
{
    return us <= 0.0 ? 0 : static_cast<Tick>(us * static_cast<double>(usec));
}

} // namespace corm::sim
