/**
 * @file
 * Statistics primitives used throughout the platform model.
 *
 * Every experiment metric in the paper — response-time min/max/mean/
 * std-dev (Figs. 2, 4, Table 1), throughput and session counts
 * (Table 2), CPU utilisation (Fig. 5), frame rates (Fig. 6, Table 3)
 * and occupancy time series (Fig. 7) — is produced by the small set of
 * accumulators in this file.
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace corm::sim {

/** Monotonically increasing event counter. */
class Counter
{
  public:
    /** Add @p n occurrences. */
    void add(std::uint64_t n = 1) { total += n; }

    /** Current count. */
    std::uint64_t value() const { return total; }

    /** Reset to zero (used between warm-up and measurement phases). */
    void reset() { total = 0; }

    /** Rate per simulated second over @p elapsed ticks. */
    double
    ratePerSecond(Tick elapsed) const
    {
        if (elapsed == 0)
            return 0.0;
        return static_cast<double>(total) / toSeconds(elapsed);
    }

  private:
    std::uint64_t total = 0;
};

/**
 * Streaming summary: count, min, max, mean and standard deviation via
 * Welford's online algorithm. O(1) space; numerically stable.
 */
class Summary
{
  public:
    /** Record one sample. */
    void
    record(double x)
    {
        ++n;
        if (x < minv)
            minv = x;
        if (x > maxv)
            maxv = x;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n);
        m2 += delta * (x - mean_);
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return n; }

    /** Smallest sample, or 0 if empty. */
    double min() const { return n ? minv : 0.0; }

    /** Largest sample, or 0 if empty. */
    double max() const { return n ? maxv : 0.0; }

    /** Arithmetic mean, or 0 if empty. */
    double mean() const { return n ? mean_ : 0.0; }

    /** Population variance, or 0 with fewer than two samples. */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Forget all samples. */
    void
    reset()
    {
        n = 0;
        mean_ = 0.0;
        m2 = 0.0;
        minv = std::numeric_limits<double>::infinity();
        maxv = -std::numeric_limits<double>::infinity();
    }

    /**
     * Reconstruct a Summary from previously reported moments, e.g.
     * to pool per-trial (count, min, max, mean, stddev) rows via
     * merge(). Exact for count/min/max/mean; the variance round-trips
     * through the population formula this class reports.
     */
    static Summary
    fromMoments(std::uint64_t count, double min_value, double max_value,
                double mean_value, double stddev_value)
    {
        Summary s;
        if (count == 0)
            return s;
        s.n = count;
        s.minv = min_value;
        s.maxv = max_value;
        s.mean_ = mean_value;
        s.m2 = stddev_value * stddev_value * static_cast<double>(count);
        return s;
    }

    /** Merge another summary into this one (parallel-combinable). */
    void
    merge(const Summary &other)
    {
        if (other.n == 0)
            return;
        if (n == 0) {
            *this = other;
            return;
        }
        const auto na = static_cast<double>(n);
        const auto nb = static_cast<double>(other.n);
        const double delta = other.mean_ - mean_;
        const double tot = na + nb;
        mean_ += delta * nb / tot;
        m2 += other.m2 + delta * delta * na * nb / tot;
        n += other.n;
        minv = std::min(minv, other.minv);
        maxv = std::max(maxv, other.maxv);
    }

  private:
    std::uint64_t n = 0;
    double mean_ = 0.0;
    double m2 = 0.0;
    double minv = std::numeric_limits<double>::infinity();
    double maxv = -std::numeric_limits<double>::infinity();
};

/**
 * Log-linear histogram over non-negative values (an HdrHistogram-style
 * layout): values are bucketed with bounded relative error, supporting
 * quantile queries without storing samples. Used for latency
 * distributions where min/max/mean alone hide the tail.
 */
class Histogram
{
  public:
    /**
     * @param max_value Largest trackable value; larger samples clamp.
     * @param sub_buckets Buckets per power-of-two range (relative
     *        error ~ 1/sub_buckets). Must be a power of two >= 2.
     */
    explicit Histogram(double max_value = 1e12, int sub_buckets = 64)
        : maxValue(max_value), subBuckets(sub_buckets)
    {
        // Ranges: values in [S << (r-1), S << r) map to half-range r.
        int ranges = 1;
        double top = static_cast<double>(subBuckets);
        while (top <= maxValue) {
            top *= 2.0;
            ++ranges;
        }
        counts.assign(static_cast<std::size_t>(subBuckets)
                          + static_cast<std::size_t>(ranges)
                                * (subBuckets / 2),
                      0);
    }

    /** Record one non-negative sample (negatives clamp to zero). */
    void
    record(double x)
    {
        if (x < 0.0)
            x = 0.0;
        if (x > maxValue)
            x = maxValue;
        ++counts[indexOf(x)];
        ++n;
        summary.record(x);
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return n; }

    /** Streaming summary over the same samples. */
    const Summary &stats() const { return summary; }

    /**
     * Value at quantile @p q in [0, 1]; returns the representative
     * (upper-edge) value of the containing bucket, 0 if empty.
     */
    double
    quantile(double q) const
    {
        if (n == 0)
            return 0.0;
        q = std::clamp(q, 0.0, 1.0);
        const auto target = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(n)));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            seen += counts[i];
            if (seen >= target && counts[i] > 0)
                return upperEdge(i);
        }
        return summary.max();
    }

    /** Forget all samples. */
    void
    reset()
    {
        std::fill(counts.begin(), counts.end(), 0);
        n = 0;
        summary.reset();
    }

  private:
    std::size_t
    indexOf(double x) const
    {
        const auto v = static_cast<std::uint64_t>(x);
        if (v < static_cast<std::uint64_t>(subBuckets))
            return static_cast<std::size_t>(v);
        // For v >= S, shift v right until it falls in [S/2, S); the
        // shift count selects the half-range, the shifted value the
        // sub-bucket within it. Relative error is bounded by 2/S.
        const int msb = 63 - __builtin_clzll(v);
        const int sub_bits = __builtin_ctz(
            static_cast<unsigned>(subBuckets));
        const int range = msb - sub_bits + 1;
        const std::size_t sub =
            static_cast<std::size_t>(v >> range)
            - static_cast<std::size_t>(subBuckets / 2);
        const std::size_t idx = static_cast<std::size_t>(subBuckets)
            + static_cast<std::size_t>(range - 1) * (subBuckets / 2)
            + sub;
        return std::min(idx, counts.size() - 1);
    }

    double
    upperEdge(std::size_t idx) const
    {
        if (idx < static_cast<std::size_t>(subBuckets))
            return static_cast<double>(idx);
        const std::size_t rel = idx - subBuckets;
        const std::size_t range = rel / (subBuckets / 2) + 1;
        const std::size_t sub = rel % (subBuckets / 2) + subBuckets / 2;
        return static_cast<double>((sub + 1) << range);
    }

    double maxValue;
    int subBuckets;
    std::vector<std::uint64_t> counts;
    std::uint64_t n = 0;
    Summary summary;
};

/**
 * Time series of (tick, value) points, e.g. the Fig. 7 IXP buffer
 * occupancy trace. Append-only; callers sample on their own cadence.
 */
class TimeSeries
{
  public:
    struct Point
    {
        Tick when;
        double value;
    };

    /** Append a point; time must be monotonically non-decreasing. */
    void record(Tick when, double value) { points.push_back({when, value}); }

    /** All recorded points in time order. */
    const std::vector<Point> &data() const { return points; }

    /** Number of points. */
    std::size_t size() const { return points.size(); }

    /** Largest recorded value, or 0 if empty. */
    double
    max() const
    {
        double m = 0.0;
        for (const auto &p : points)
            m = std::max(m, p.value);
        return m;
    }

    /** Arithmetic mean of recorded values, or 0 if empty. */
    double
    mean() const
    {
        if (points.empty())
            return 0.0;
        double s = 0.0;
        for (const auto &p : points)
            s += p.value;
        return s / static_cast<double>(points.size());
    }

    /** Forget all points. */
    void reset() { points.clear(); }

  private:
    std::vector<Point> points;
};

/**
 * Tracks what fraction of wall (simulated) time a resource was busy,
 * optionally split by a small set of usage kinds (user/system/iowait
 * in the Fig. 5 sense). Busy intervals are accumulated explicitly by
 * the component that owns the resource.
 */
class UtilizationTracker
{
  public:
    /** Usage kinds mirrored from the paper's CPU-utilisation split. */
    enum class Kind { user, system, iowait, numKinds };

    /** Accumulate @p busy ticks of the given kind. */
    void
    addBusy(Kind kind, Tick busy)
    {
        busyTicks[static_cast<std::size_t>(kind)] += busy;
    }

    /** Total busy time across kinds. */
    Tick
    totalBusy() const
    {
        Tick t = 0;
        for (Tick b : busyTicks)
            t += b;
        return t;
    }

    /** Busy time of one kind. */
    Tick
    busy(Kind kind) const
    {
        return busyTicks[static_cast<std::size_t>(kind)];
    }

    /** Utilisation in percent of one CPU over @p elapsed ticks. */
    double
    utilizationPct(Tick elapsed) const
    {
        if (elapsed == 0)
            return 0.0;
        return 100.0 * static_cast<double>(totalBusy())
            / static_cast<double>(elapsed);
    }

    /** Utilisation in percent of one kind over @p elapsed ticks. */
    double
    utilizationPct(Kind kind, Tick elapsed) const
    {
        if (elapsed == 0)
            return 0.0;
        return 100.0 * static_cast<double>(busy(kind))
            / static_cast<double>(elapsed);
    }

    /** Forget accumulated time. */
    void
    reset()
    {
        for (Tick &b : busyTicks)
            b = 0;
    }

  private:
    Tick busyTicks[static_cast<std::size_t>(Kind::numKinds)] = {0, 0, 0};
};

} // namespace corm::sim
