/**
 * @file
 * MPlayer workload model: streaming video decode in guest VMs
 * (§3.2 of the paper).
 *
 * A StreamingServer stands in for the paper's external Darwin
 * QuickTime server: it opens an RTSP session (whose setup packet
 * carries the SDP-equivalent bit-/frame-rate metadata the IXP's
 * classifier reads) and then ships frames over UDP through the IXP
 * path, either smoothly paced or in bulk bursts (the no-flow-control
 * UDP case that grows the IXP buffers in Fig. 7).
 *
 * An MplayerClient inside a guest decodes frames in MPlayer's
 * -benchmark mode — as fast as the VCPU allows, video output
 * disabled — and reports decoded frames/sec, the paper's
 * application-level QoS metric. Frames that sit longer than the
 * playout buffer allows are dropped as late, which is what makes
 * CPU starvation visible as a frame-rate loss. A DiskPlayer variant
 * plays from local disk (no network involvement) for the Table 3
 * interference experiment.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "coord/policy.hpp"
#include "ixp/island.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "xen/sched.hpp"
#include "xen/vif.hpp"

namespace corm::apps::mplayer {

/** Static description of one video stream. */
struct StreamSpec
{
    double fps = 25.0;
    double bitrateBps = 1.0e6;
    /** Seconds of content pre-buffered in a startup burst. */
    double prebufferSec = 2.0;
    std::uint32_t streamId = 1;
};

/** How the server paces the stream onto the wire. */
enum class Pacing
{
    smooth, ///< one frame every 1/fps
    bursty, ///< periodic bulk bursts (UDP with no flow control)
};

/**
 * External streaming server: emits the RTSP session setup followed
 * by media frames into the IXP's wire interface.
 */
class StreamingServer
{
  public:
    struct Params
    {
        StreamSpec stream;
        Pacing pacing = Pacing::smooth;
        /** For bursty pacing: content seconds shipped per burst. */
        double burstSec = 8.0;
        corm::net::IpAddr serverIp{10, 0, 9, 2};
        std::uint16_t rtpPort = 5004;
    };

    /**
     * @param simulator Event engine.
     * @param ixp Wire ingress.
     * @param client_ip Destination guest address.
     * @param factory Packet factory of the testbed.
     */
    StreamingServer(corm::sim::Simulator &simulator,
                    corm::ixp::IxpIsland &ixp, corm::net::IpAddr client_ip,
                    corm::net::PacketFactory &factory, Params params);

    /** Open the session and start streaming. */
    void start();

    /** Stop emitting frames. */
    void stop();

    /** Frames put on the wire so far. */
    std::uint64_t framesSent() const { return sent.value(); }

  private:
    void sendSetup();
    void sendFrame();
    void sendBurst();
    corm::net::PacketPtr makeFramePacket();

    corm::sim::Simulator &sim;
    corm::ixp::IxpIsland &ixp;
    corm::net::IpAddr clientIp;
    corm::net::PacketFactory &packets;
    Params cfg;
    std::uint32_t frameBytes;
    bool running = false;
    corm::sim::Counter sent;
};

/** Decode cost and playout parameters of the client. */
struct DecodeParams
{
    /** Fixed decode cost per frame. */
    corm::sim::Tick baseCostPerFrame = 20 * corm::sim::msec;
    /** Additional decode cost per KiB of frame data. */
    corm::sim::Tick costPerKib = 2 * corm::sim::msec;
    /**
     * Playout-buffer depth: a frame not decoded within this long of
     * its arrival is dropped as late (the player stays synchronised
     * by skipping).
     */
    corm::sim::Tick lateDeadline = 700 * corm::sim::msec;
};

/**
 * MPlayer in -benchmark mode inside a guest VM: decodes every frame
 * the ViF delivers, as fast as the VCPU allows.
 */
class MplayerClient
{
  public:
    /**
     * @param simulator Event engine.
     * @param vif The guest's virtual interface (handler installed).
     * @param params Decode cost model.
     */
    MplayerClient(corm::sim::Simulator &simulator, corm::xen::GuestVif &vif,
                  DecodeParams params);

    /** Frames decoded since the last reset. */
    std::uint64_t framesDecoded() const { return decoded.value(); }

    /** Frames dropped late since the last reset. */
    std::uint64_t framesDroppedLate() const { return late.value(); }

    /** Decoded frames/sec over @p elapsed. */
    double
    fps(corm::sim::Tick elapsed) const
    {
        return decoded.ratePerSecond(elapsed);
    }

    /** Zero the frame counters (end of warm-up). */
    void
    resetStats()
    {
        decoded.reset();
        late.reset();
    }

  private:
    void onFrame(corm::net::PacketPtr pkt);

    corm::sim::Simulator &sim;
    corm::xen::GuestVif &vif;
    DecodeParams cfg;
    corm::sim::Counter decoded;
    corm::sim::Counter late;
};

/**
 * MPlayer playing a local file: no network path at all, pure decode
 * load — the uninvolved bystander of the Table 3 trigger-interference
 * experiment.
 */
class DiskPlayer
{
  public:
    /**
     * @param guest Domain doing the decoding.
     * @param per_frame Decode cost of one frame.
     */
    DiskPlayer(corm::xen::Domain &guest, corm::sim::Tick per_frame)
        : dom(guest), cost(per_frame)
    {}

    /** Begin decoding frames back to back. */
    void
    start()
    {
        running = true;
        pump();
    }

    /** Stop after the in-flight frame. */
    void stop() { running = false; }

    /** Frames decoded since the last reset. */
    std::uint64_t framesDecoded() const { return decoded.value(); }

    /** Decoded frames/sec over @p elapsed. */
    double
    fps(corm::sim::Tick elapsed) const
    {
        return decoded.ratePerSecond(elapsed);
    }

    /** Zero the frame counter (end of warm-up). */
    void resetStats() { decoded.reset(); }

  private:
    void
    pump()
    {
        if (!running)
            return;
        dom.submit(cost, corm::xen::JobKind::user, [this] {
            decoded.add();
            pump();
        });
    }

    corm::xen::Domain &dom;
    corm::sim::Tick cost;
    bool running = false;
    corm::sim::Counter decoded;
};

} // namespace corm::apps::mplayer
