/**
 * @file
 * RUBiS workload model implementation.
 */

#include "apps/rubis.hpp"

#include <cassert>

namespace corm::apps::rubis {

using corm::net::AppTag;
using corm::net::FiveTuple;
using corm::net::PacketPtr;
using corm::net::Proto;
using corm::sim::msec;
using corm::sim::Tick;
using corm::xen::JobKind;

namespace {

constexpr Tick
ms(double v)
{
    return corm::sim::fromMillis(v);
}

/**
 * Build the static request catalogue. Per-tier CPU demands and
 * interaction sequences follow the paper's offline profiles:
 * browsing requests are web/app-bound with no database stage, while
 * bid/sell/comment requests walk app ↔ db and put most of their
 * demand on the database and the servlet-running application server.
 */
std::vector<RequestSpec>
buildCatalog()
{
    using T = Tier;
    std::vector<RequestSpec> c;
    // Tier demand scales, calibrated so the three tiers contend at
    // comparable intensity under the bid/browse/sell mix (web and db
    // are heavier per visit than the raw stage numbers suggest:
    // static-content serving and disk-bound query execution).
    static constexpr double tier_scale[3] = {1.30, 1.00, 2.20};
    auto add = [&c](RequestType t, const char *n, bool w,
                    std::uint32_t req, std::uint32_t resp,
                    std::uint32_t hop, std::vector<TierStage> stages) {
        for (TierStage &s : stages) {
            s.cpuMean = static_cast<corm::sim::Tick>(
                static_cast<double>(s.cpuMean)
                * tier_scale[static_cast<std::size_t>(s.tier)]);
        }
        c.push_back({t, n, w, req, resp, hop, std::move(stages)});
    };

    add(RequestType::registerUser, "Register", true, 400, 4096, 1024,
        {{T::web, ms(1.5)}, {T::app, ms(3)}, {T::db, ms(5)},
         {T::app, ms(2)}, {T::web, ms(1.5)}});
    add(RequestType::browse, "Browse", false, 300, 12288, 1024,
        {{T::web, ms(2.5)}, {T::app, ms(2)}, {T::web, ms(1.5)}});
    add(RequestType::browseCategories, "BrowseCategories", false, 300,
        16384, 2048,
        {{T::web, ms(2)}, {T::app, ms(6)}, {T::web, ms(2)}});
    // Searches and item views serve from the application tier's
    // query cache — the paper's browsing profile shows "practically
    // no database server processing" for the read-only mix.
    add(RequestType::searchItemsInCategory, "SearchItemsInCategory",
        false, 350, 14336, 2048,
        {{T::web, ms(2)}, {T::app, ms(6.5)}, {T::web, ms(1.5)}});
    add(RequestType::browseRegions, "BrowseRegions", false, 300, 14336,
        2048, {{T::web, ms(2)}, {T::app, ms(5)}, {T::web, ms(2)}});
    add(RequestType::browseCategoriesInRegion,
        "BrowseCategoriesInRegion", false, 350, 12288, 2048,
        {{T::web, ms(2)}, {T::app, ms(4.5)}, {T::web, ms(1.5)}});
    add(RequestType::searchItemsInRegion, "SearchItemsInRegion", false,
        350, 10240, 1536,
        {{T::web, ms(1.5)}, {T::app, ms(4.5)}, {T::web, ms(1)}});
    add(RequestType::viewItem, "ViewItem", false, 300, 18432, 2048,
        {{T::web, ms(2.5)}, {T::app, ms(10)}, {T::web, ms(2)}});
    add(RequestType::buyNow, "BuyNow", true, 350, 6144, 1024,
        {{T::web, ms(1.5)}, {T::app, ms(2.5)}, {T::db, ms(2)},
         {T::app, ms(1.5)}, {T::web, ms(1)}});
    add(RequestType::putBidAuth, "PutBidAuth", true, 400, 6144, 1024,
        {{T::web, ms(1.5)}, {T::app, ms(3.5)}, {T::db, ms(3.5)},
         {T::app, ms(2)}, {T::web, ms(1.5)}});
    add(RequestType::putBid, "PutBid", true, 400, 8192, 1536,
        {{T::web, ms(2)}, {T::app, ms(5)}, {T::db, ms(4.5)},
         {T::app, ms(2.5)}, {T::web, ms(1.5)}});
    add(RequestType::storeBid, "StoreBid", true, 450, 5120, 1536,
        {{T::web, ms(2)}, {T::app, ms(6)}, {T::db, ms(10)},
         {T::app, ms(3)}, {T::web, ms(1.5)}});
    add(RequestType::putComment, "PutComment", true, 500, 5120, 1536,
        {{T::web, ms(2)}, {T::app, ms(7)}, {T::db, ms(13)},
         {T::app, ms(3)}, {T::web, ms(1.5)}});
    add(RequestType::sell, "Sell", true, 400, 6144, 1024,
        {{T::web, ms(1.5)}, {T::app, ms(3.5)}, {T::db, ms(2.5)},
         {T::app, ms(1.5)}, {T::web, ms(1)}});
    add(RequestType::sellItemForm, "SellItemForm", false, 300, 5120,
        1024, {{T::web, ms(1.5)}, {T::app, ms(2)}, {T::web, ms(1)}});
    add(RequestType::aboutMe, "AboutMe(authForm)", true, 400, 9216,
        1536,
        {{T::web, ms(2)}, {T::app, ms(4.5)}, {T::db, ms(4)},
         {T::app, ms(2)}, {T::web, ms(1.5)}});
    return c;
}

} // namespace

const std::vector<RequestSpec> &
requestCatalog()
{
    static const std::vector<RequestSpec> catalog = buildCatalog();
    return catalog;
}

corm::sim::DiscreteDist
clusterDistribution(Cluster c)
{
    // Request-type frequencies within each behaviour cluster, loosely
    // following the standard RUBiS transition tables.
    std::vector<double> w(numRequestTypes, 0.0);
    auto set = [&w](RequestType t, double v) {
        w[static_cast<std::size_t>(t)] = v;
    };
    switch (c) {
      case Cluster::browse:
        set(RequestType::browse, 12);
        set(RequestType::browseCategories, 14);
        set(RequestType::searchItemsInCategory, 18);
        set(RequestType::browseRegions, 8);
        set(RequestType::browseCategoriesInRegion, 8);
        set(RequestType::searchItemsInRegion, 10);
        set(RequestType::viewItem, 26);
        set(RequestType::sellItemForm, 4);
        break;
      case Cluster::bid:
        set(RequestType::viewItem, 18);
        set(RequestType::buyNow, 8);
        set(RequestType::putBidAuth, 16);
        set(RequestType::putBid, 20);
        set(RequestType::storeBid, 18);
        set(RequestType::putComment, 12);
        set(RequestType::aboutMe, 8);
        break;
      case Cluster::sell:
        set(RequestType::registerUser, 12);
        set(RequestType::sellItemForm, 28);
        set(RequestType::sell, 40);
        set(RequestType::aboutMe, 10);
        set(RequestType::browse, 10);
        break;
    }
    return corm::sim::DiscreteDist(std::move(w));
}

corm::sim::DiscreteDist
clusterTransitions(Cluster from, Mix mix)
{
    if (mix == Mix::browsing) {
        // Read-only mix: sessions never leave the browse cluster.
        return corm::sim::DiscreteDist({1.0, 0.0, 0.0});
    }
    switch (from) {
      case Cluster::browse:
        return corm::sim::DiscreteDist({0.93, 0.055, 0.015});
      case Cluster::bid:
        return corm::sim::DiscreteDist({0.08, 0.90, 0.02});
      case Cluster::sell:
        return corm::sim::DiscreteDist({0.17, 0.03, 0.80});
    }
    return corm::sim::DiscreteDist({1.0, 0.0, 0.0});
}

//
// RubisServer
//

RubisServer::RubisServer(corm::sim::Simulator &simulator,
                         corm::xen::GuestVif &web_vif,
                         corm::xen::GuestVif &app_vif,
                         corm::xen::GuestVif &db_vif,
                         corm::xen::XenBridge &bridge_,
                         corm::net::PacketFactory &factory, Params params)
    : sim(simulator), webVif(web_vif), appVif(app_vif), dbVif(db_vif),
      bridge(bridge_), packets(factory), cfg(params), rng(params.seed)
{
    webVif.setReceiveHandler(
        [this](PacketPtr p) { onTierPacket(Tier::web, std::move(p)); });
    appVif.setReceiveHandler(
        [this](PacketPtr p) { onTierPacket(Tier::app, std::move(p)); });
    dbVif.setReceiveHandler(
        [this](PacketPtr p) { onTierPacket(Tier::db, std::move(p)); });
}

corm::xen::GuestVif &
RubisServer::vifFor(Tier tier)
{
    switch (tier) {
      case Tier::web: return webVif;
      case Tier::app: return appVif;
      case Tier::db: return dbVif;
    }
    return webVif;
}

corm::xen::Domain &
RubisServer::domainFor(Tier tier)
{
    return vifFor(tier).domain();
}

Tick
RubisServer::jitter(Tick mean)
{
    if (cfg.jitterCv <= 0.0)
        return mean;
    return rng.normalTicks(
        mean, static_cast<Tick>(static_cast<double>(mean) * cfg.jitterCv));
}

void
RubisServer::onTierPacket(Tier tier, PacketPtr pkt)
{
    auto ctx = std::static_pointer_cast<RequestCtx>(pkt->context);
    if (!ctx || ctx->stage >= ctx->spec->stages.size())
        return;
    assert(ctx->spec->stages[ctx->stage].tier == tier);
    (void)tier;
    runStage(std::move(ctx));
}

void
RubisServer::runStage(std::shared_ptr<RequestCtx> ctx)
{
    const TierStage &stage = ctx->spec->stages[ctx->stage];
    if (ctx->stage < maxStages)
        ctx->stageStart[ctx->stage] = sim.now();

    // Write transactions serialise in the database tier: acquire the
    // transaction lock before burning db CPU.
    if (stage.tier == Tier::db && ctx->spec->write) {
        if (dbLocked) {
            dbLockQueue.emplace_back(std::move(ctx), sim.now());
            return;
        }
        dbLocked = true;
        lockWaitMs.record(0.0);
    }
    execStage(std::move(ctx));
}

void
RubisServer::execStage(std::shared_ptr<RequestCtx> ctx)
{
    const TierStage &stage = ctx->spec->stages[ctx->stage];
    domainFor(stage.tier)
        .submit(jitter(stage.cpuMean), JobKind::user,
                [this, c = std::move(ctx)]() mutable { advance(c); });
}

void
RubisServer::advance(std::shared_ptr<RequestCtx> ctx)
{
    const Tier here = ctx->spec->stages[ctx->stage].tier;
    if (ctx->stage < maxStages)
        ctx->stageEnd[ctx->stage] = sim.now();

    // Leaving the database stage of a write transaction releases the
    // lock and admits the next queued transaction.
    if (here == Tier::db && ctx->spec->write) {
        if (dbLockQueue.empty()) {
            dbLocked = false;
        } else {
            auto [next, queued_at] = std::move(dbLockQueue.front());
            dbLockQueue.pop_front();
            lockWaitMs.record(corm::sim::toMillis(sim.now() - queued_at));
            execStage(std::move(next));
        }
    }
    ++ctx->stage;

    if (ctx->stage >= ctx->spec->stages.size()) {
        // Final stage always executes on the web tier: respond.
        respond(std::move(ctx));
        return;
    }

    const Tier next = ctx->spec->stages[ctx->stage].tier;
    if (next == here) {
        runStage(std::move(ctx));
        return;
    }

    // Inter-tier hop through the bridge. A downstream hop (toward the
    // database) leaves the caller blocked on I/O; the matching
    // upstream hop releases it.
    if (static_cast<int>(next) > static_cast<int>(here))
        domainFor(here).ioBegin();
    else
        domainFor(next).ioEnd();

    FiveTuple flow;
    flow.src = vifFor(here).ip();
    flow.dst = vifFor(next).ip();
    flow.sport = 8000;
    flow.dport = static_cast<std::uint16_t>(3306 + ctx->stage);
    flow.proto = Proto::tcp;
    PacketPtr hop = packets.make(flow, ctx->spec->interTierBytes,
                                 AppTag{}, sim.now());
    hop->context = ctx;
    vifFor(here).transmit(std::move(hop), [this](PacketPtr p) {
        bridge.relayFromGuest(std::move(p));
    });
}

void
RubisServer::respond(std::shared_ptr<RequestCtx> ctx)
{
    served.add();
    ctx->respondedAt = sim.now();
    FiveTuple flow;
    flow.src = webVif.ip();
    flow.dst = ctx->clientIp;
    flow.sport = 80;
    flow.dport = static_cast<std::uint16_t>(
        20000 + ctx->sessionId % 1000);
    flow.proto = Proto::tcp;
    AppTag tag;
    tag.kind = AppTag::Kind::httpResponse;
    tag.value = static_cast<std::uint32_t>(ctx->spec->type);
    PacketPtr resp =
        packets.make(flow, ctx->spec->responseBytes, tag, sim.now());
    resp->context = std::move(ctx);
    webVif.transmit(std::move(resp), [this](PacketPtr p) {
        bridge.relayFromGuest(std::move(p));
    });
}

//
// RubisClient
//

RubisClient::RubisClient(corm::sim::Simulator &simulator,
                         corm::ixp::IxpIsland &ixp_,
                         corm::net::IpAddr web_ip,
                         corm::net::PacketFactory &factory, Params params)
    : sim(simulator), ixp(ixp_), webIp(web_ip), packets(factory),
      cfg(params), rng(params.seed), perType(numRequestTypes)
{
    for (int c = 0; c < 3; ++c) {
        clusterDist[c] = clusterDistribution(static_cast<Cluster>(c));
        transDist[c] =
            clusterTransitions(static_cast<Cluster>(c), cfg.mix);
    }
}

void
RubisClient::start()
{
    slots.resize(static_cast<std::size_t>(cfg.concurrentSessions));
    for (std::size_t i = 0; i < slots.size(); ++i) {
        // Stagger session starts across one think time to avoid a
        // synchronised thundering herd at t=0.
        sim.schedule(rng.exponentialTicks(cfg.thinkTimeMean),
                     [this, i] { startSession(i); });
    }
}

void
RubisClient::startSession(std::size_t slot)
{
    Session &s = slots[slot];
    s.id = nextSessionId++;
    s.startedAt = sim.now();
    s.port = static_cast<std::uint16_t>(cfg.basePort + slot);
    s.cluster = Cluster::browse; // sessions start by browsing
    // Geometric session length with the configured mean, at least 1.
    s.remaining = 1;
    while (rng.uniform() > 1.0 / cfg.sessionLengthMean
           && s.remaining < 10000) {
        ++s.remaining;
    }
    issueRequest(slot);
}

void
RubisClient::issueRequest(std::size_t slot)
{
    Session &s = slots[slot];
    // One step of the session Markov chain: maybe move to another
    // behaviour cluster, then draw this request's type within it.
    s.cluster = static_cast<Cluster>(
        transDist[static_cast<int>(s.cluster)].sample(rng));
    const auto type_idx =
        clusterDist[static_cast<int>(s.cluster)].sample(rng);
    const RequestSpec &spec = requestCatalog()[type_idx];

    auto ctx = std::make_shared<RequestCtx>();
    ctx->spec = &spec;
    ctx->stage = 0;
    ctx->sentAt = sim.now();
    ctx->sessionId = s.id;
    ctx->clientIp = cfg.clientIp;
    ctx->onResponse = [this, slot](const RequestCtx &c) {
        onResponse(slot, c);
    };

    FiveTuple flow;
    flow.src = cfg.clientIp;
    flow.dst = webIp;
    flow.sport = s.port;
    flow.dport = 80;
    flow.proto = Proto::tcp;
    AppTag tag;
    tag.kind = AppTag::Kind::httpRequest;
    tag.value = static_cast<std::uint32_t>(spec.type);
    PacketPtr req = packets.make(flow, spec.requestBytes, tag, sim.now());
    req->context = ctx;
    ixp.injectFromWire(std::move(req));
}

void
RubisClient::onWirePacket(const PacketPtr &pkt)
{
    auto ctx = std::static_pointer_cast<RequestCtx>(pkt->context);
    if (ctx && ctx->onResponse)
        ctx->onResponse(*ctx);
}

void
RubisClient::onResponse(std::size_t slot, const RequestCtx &ctx)
{
    const double rt_ms = corm::sim::toMillis(sim.now() - ctx.sentAt);
    perType[static_cast<std::size_t>(ctx.spec->type)]
        .responseMs.record(rt_ms);
    allMs.record(rt_ms);
    completed.add();

    // E2Eprof-style breakdown from the trace marks. Tier time
    // includes run-queue waits and (for writes at the database) lock
    // waits — the components coordination actually changes.
    const std::size_t nstages =
        std::min(ctx.spec->stages.size(), maxStages);
    if (nstages > 0 && ctx.stageStart[0] >= ctx.sentAt
        && ctx.respondedAt != 0) {
        trace.ingressMs.record(
            corm::sim::toMillis(ctx.stageStart[0] - ctx.sentAt));
        double tier_ms[3] = {0.0, 0.0, 0.0};
        double hops_ms = 0.0;
        for (std::size_t k = 0; k < nstages; ++k) {
            if (ctx.stageEnd[k] < ctx.stageStart[k])
                continue;
            tier_ms[static_cast<std::size_t>(
                ctx.spec->stages[k].tier)] +=
                corm::sim::toMillis(ctx.stageEnd[k]
                                    - ctx.stageStart[k]);
            if (k + 1 < nstages && ctx.stageStart[k + 1] != 0) {
                hops_ms += corm::sim::toMillis(ctx.stageStart[k + 1]
                                               - ctx.stageEnd[k]);
            }
        }
        for (int t = 0; t < 3; ++t)
            trace.tierMs[t].record(tier_ms[t]);
        trace.hopsMs.record(hops_ms);
        trace.egressMs.record(
            corm::sim::toMillis(sim.now() - ctx.respondedAt));
    }

    Session &s = slots[slot];
    if (ctx.sessionId != s.id)
        return; // stale response from a pre-reset session
    if (--s.remaining <= 0) {
        sessions.add();
        sessionDur.record(corm::sim::toSeconds(sim.now() - s.startedAt));
        sim.schedule(rng.exponentialTicks(cfg.thinkTimeMean),
                     [this, slot] { startSession(slot); });
        return;
    }
    sim.schedule(rng.exponentialTicks(cfg.thinkTimeMean),
                 [this, slot] { issueRequest(slot); });
}

void
RubisClient::resetStats()
{
    for (auto &t : perType)
        t.responseMs.reset();
    allMs.reset();
    trace.ingressMs.reset();
    for (auto &t : trace.tierMs)
        t.reset();
    trace.hopsMs.reset();
    trace.egressMs.reset();
    sessionDur.reset();
    completed.reset();
    sessions.reset();
    // Restart session-duration accounting from now so a session
    // spanning the warm-up boundary doesn't pollute the stats.
    for (auto &s : slots)
        s.startedAt = sim.now();
}

//
// Coordination table
//

void
installRubisAdjustments(coord::RequestTypeTunePolicy &policy,
                        const coord::EntityRef &web,
                        const coord::EntityRef &app,
                        const coord::EntityRef &db, double delta,
                        AdjustmentGains gains)
{
    for (const RequestSpec &spec : requestCatalog()) {
        coord::RequestTypeTunePolicy::Adjustments adj;
        if (spec.write) {
            adj.emplace_back(db, delta * gains.writeDb);
            adj.emplace_back(app, delta * gains.writeApp);
            adj.emplace_back(web, delta * gains.writeWeb);
        } else {
            adj.emplace_back(web, delta * gains.readWeb);
            adj.emplace_back(app, delta * gains.readApp);
            // The offline profile knows which read types query the
            // database; only db-free browsing votes its weight down.
            bool touches_db = false;
            for (const auto &st : spec.stages) {
                if (st.tier == Tier::db)
                    touches_db = true;
            }
            adj.emplace_back(db, delta
                                     * (touches_db
                                            ? gains.readDbWhenUsed
                                            : gains.readDb));
        }
        policy.setAdjustments(static_cast<std::uint32_t>(spec.type),
                              std::move(adj));
    }
}

} // namespace corm::apps::rubis
