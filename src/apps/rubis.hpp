/**
 * @file
 * RUBiS workload model: the eBay-like multi-tier auction benchmark
 * the paper deploys across three Xen VMs (§3.1).
 *
 * The model encodes the offline profiles the paper's coordination
 * relies on: each of the ~16 basic request types has a per-tier CPU
 * demand and an inter-tier interaction sequence. Browsing (read-only)
 * requests exercise web ↔ application server interactions with
 * practically no database work; bid/browse/sell (read–write) requests
 * generate heavy application ↔ database interactions and servlet CPU
 * on the application server — consistent with Magpie (Barham et al.)
 * and Stewart et al., the prior work the paper cites for this
 * request-type → resource-usage relationship.
 *
 * Client sessions follow probabilistic transitions between request
 * types, emulating multiple concurrent user browsing sessions, with
 * two standard mixes: browsing (read) and bid/browse/sell
 * (read–write).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coord/policy.hpp"
#include "ixp/island.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "xen/sched.hpp"
#include "xen/vif.hpp"

namespace corm::apps::rubis {

/** The RUBiS tiers, each deployed in its own VM. */
enum class Tier : std::uint8_t { web = 0, app = 1, db = 2 };

/** The basic request types (Table 1 of the paper). */
enum class RequestType : std::uint32_t
{
    registerUser = 0,
    browse,
    browseCategories,
    searchItemsInCategory,
    browseRegions,
    browseCategoriesInRegion,
    searchItemsInRegion,
    viewItem,
    buyNow,
    putBidAuth,
    putBid,
    storeBid,
    putComment,
    sell,
    sellItemForm,
    aboutMe,
    numTypes
};

/** Number of request types. */
inline constexpr std::size_t numRequestTypes =
    static_cast<std::size_t>(RequestType::numTypes);

/** One step of a request's tier interaction sequence. */
struct TierStage
{
    Tier tier;
    corm::sim::Tick cpuMean; ///< CPU demand at this tier
};

/** Static profile of one request type (from offline profiling). */
struct RequestSpec
{
    RequestType type;
    const char *name;
    bool write; ///< touches the database read–write path
    std::uint32_t requestBytes;  ///< client → web payload
    std::uint32_t responseBytes; ///< web → client payload
    std::uint32_t interTierBytes; ///< payload of each tier-to-tier hop
    std::vector<TierStage> stages; ///< in execution order; ends at web
};

/** The full catalogue, indexed by RequestType ordinal. */
const std::vector<RequestSpec> &requestCatalog();

/** Workload mixes from the standard RUBiS client. */
enum class Mix { browsing, bidBrowseSell };

/**
 * Session behaviour clusters. A user session dwells in a cluster for
 * a sticky run of requests (browse around for a while, then walk a
 * bid sequence, occasionally sell) — the "probabilistic transitions
 * emulating multiple user browsing sessions" of §3.1. The cluster
 * runs are what make the aggregate request mix fluctuate at the
 * seconds timescale, which is exactly the signal the per-request
 * coordination tracks (and what a single static weight setting
 * cannot).
 */
enum class Cluster : std::uint8_t { browse = 0, bid = 1, sell = 2 };

/** Per-cluster request-type sampling distribution. */
corm::sim::DiscreteDist clusterDistribution(Cluster c);

/**
 * Cluster transition distribution: row @p from of the session Markov
 * chain (self-transitions make runs sticky). The browsing mix pins
 * every session to the browse cluster.
 */
corm::sim::DiscreteDist clusterTransitions(Cluster from, Mix mix);

/** Maximum stages any request profile may have. */
inline constexpr std::size_t maxStages = 8;

/**
 * In-flight request state, carried in packet context across the
 * tiers and back to the client. The per-stage timestamps implement
 * E2Eprof-style end-to-end tracing (the paper's §4 application-
 * monitoring discussion): the client can attribute response time to
 * ingress, per-tier service+queueing, inter-tier hops and egress.
 */
struct RequestCtx
{
    const RequestSpec *spec = nullptr;
    std::size_t stage = 0;
    corm::sim::Tick sentAt = 0;   ///< client send time
    std::uint32_t sessionId = 0;
    corm::net::IpAddr clientIp;
    std::function<void(const RequestCtx &)> onResponse;

    // Trace marks (E2Eprof-style breakdown).
    corm::sim::Tick stageStart[maxStages] = {};
    corm::sim::Tick stageEnd[maxStages] = {};
    corm::sim::Tick respondedAt = 0;
};

/**
 * Aggregated end-to-end latency breakdown across requests, all in
 * milliseconds: where response time is actually spent.
 */
struct LatencyBreakdown
{
    corm::sim::Summary ingressMs;  ///< wire → first web-tier stage
    corm::sim::Summary tierMs[3];  ///< per-tier service incl. queueing
    corm::sim::Summary hopsMs;     ///< inter-tier bridge hops, summed
    corm::sim::Summary egressMs;   ///< web respond → client wire
};

/**
 * The server side: three single-VCPU guest domains (web, application,
 * database) wired through the Xen bridge. Receives classified
 * requests on the web tier's ViF, walks each request through its
 * tier-stage sequence (inter-tier hops are bridge packets, and the
 * upstream tier accounts iowait while it waits), and transmits the
 * response toward the client.
 */
class RubisServer
{
  public:
    struct Params
    {
        /** Coefficient of variation of per-stage CPU jitter. */
        double jitterCv = 0.25;
        /** Seed for the jitter stream. */
        std::uint64_t seed = 0xb0b15;
    };

    /**
     * @param simulator Event engine.
     * @param web_vif / app_vif / db_vif Tier ViFs (already bridged).
     * @param bridge The host bridge relaying inter-tier packets.
     * @param factory Packet factory of the testbed.
     */
    RubisServer(corm::sim::Simulator &simulator, corm::xen::GuestVif &web_vif,
                corm::xen::GuestVif &app_vif, corm::xen::GuestVif &db_vif,
                corm::xen::XenBridge &bridge,
                corm::net::PacketFactory &factory, Params params);

    /** Requests fully served so far. */
    std::uint64_t requestsServed() const { return served.value(); }

    /** Time write transactions spent waiting for the db lock (ms). */
    const corm::sim::Summary &dbLockWaitMs() const { return lockWaitMs; }

  private:
    void onTierPacket(Tier tier, corm::net::PacketPtr pkt);
    void runStage(std::shared_ptr<RequestCtx> ctx);
    void execStage(std::shared_ptr<RequestCtx> ctx);
    void advance(std::shared_ptr<RequestCtx> ctx);
    void respond(std::shared_ptr<RequestCtx> ctx);
    corm::xen::GuestVif &vifFor(Tier tier);
    corm::xen::Domain &domainFor(Tier tier);
    corm::sim::Tick jitter(corm::sim::Tick mean);

    corm::sim::Simulator &sim;
    corm::xen::GuestVif &webVif;
    corm::xen::GuestVif &appVif;
    corm::xen::GuestVif &dbVif;
    corm::xen::XenBridge &bridge;
    corm::net::PacketFactory &packets;
    Params cfg;
    corm::sim::Rng rng;
    corm::sim::Counter served;

    /**
     * Write-transaction serialisation in the database tier (InnoDB
     * row-lock / log-flush behaviour): one write transaction holds
     * the lock for the duration of its db CPU stage. Because the
     * lock-hold time stretches with the db VM's scheduling delays, a
     * CPU-starved database turns write bursts into lock convoys —
     * the nonlinearity behind the paper's seconds-long base response
     * times for StoreBid/PutComment and their collapse under
     * coordination.
     */
    bool dbLocked = false;
    std::deque<std::pair<std::shared_ptr<RequestCtx>, corm::sim::Tick>>
        dbLockQueue;
    corm::sim::Summary lockWaitMs;
};

/** Per-request-type response-time statistics, in milliseconds. */
struct TypeStats
{
    corm::sim::Summary responseMs;
};

/**
 * The client side: N concurrent user sessions driving requests into
 * the platform through the IXP's wire interface, with exponential
 * think times and geometric session lengths. Collects the paper's
 * client-observed metrics: per-type response times (Figs. 2 and 4,
 * Table 1), request throughput, completed sessions, and session
 * durations (Table 2).
 */
class RubisClient
{
  public:
    struct Params
    {
        int concurrentSessions = 24;
        corm::sim::Tick thinkTimeMean = 350 * corm::sim::msec;
        /** Mean requests per session (geometric). */
        double sessionLengthMean = 30.0;
        Mix mix = Mix::bidBrowseSell;
        std::uint64_t seed = 0xc11e47;
        corm::net::IpAddr clientIp{10, 0, 9, 1};
        std::uint16_t basePort = 20000;
    };

    /**
     * @param simulator Event engine.
     * @param ixp Ingress point (the programmable NIC fronting the host).
     * @param web_ip Destination of all client requests.
     * @param factory Packet factory of the testbed.
     */
    RubisClient(corm::sim::Simulator &simulator, corm::ixp::IxpIsland &ixp,
                corm::net::IpAddr web_ip, corm::net::PacketFactory &factory,
                Params params);

    /** Launch the configured number of concurrent sessions. */
    void start();

    /** Deliver a response packet that reached the client's wire. */
    void onWirePacket(const corm::net::PacketPtr &pkt);

    /** Zero all collected statistics (end of warm-up). */
    void resetStats();

    /** Per-type response-time stats (ms). */
    const TypeStats &typeStats(RequestType t) const
    {
        return perType[static_cast<std::size_t>(t)];
    }

    /** Completed requests since the last reset. */
    std::uint64_t completedRequests() const { return completed.value(); }

    /** Completed sessions since the last reset. */
    std::uint64_t completedSessions() const { return sessions.value(); }

    /** Session-duration stats (seconds) since the last reset. */
    const corm::sim::Summary &sessionSeconds() const { return sessionDur; }

    /** All-type response-time stats (ms) since the last reset. */
    const corm::sim::Summary &allResponsesMs() const { return allMs; }

    /** End-to-end latency breakdown since the last reset. */
    const LatencyBreakdown &breakdown() const { return trace; }

  private:
    struct Session
    {
        std::uint32_t id;
        int remaining;
        corm::sim::Tick startedAt;
        std::uint16_t port;
        Cluster cluster;
    };

    void startSession(std::size_t slot);
    void issueRequest(std::size_t slot);
    void onResponse(std::size_t slot, const RequestCtx &ctx);

    corm::sim::Simulator &sim;
    corm::ixp::IxpIsland &ixp;
    corm::net::IpAddr webIp;
    corm::net::PacketFactory &packets;
    Params cfg;
    corm::sim::Rng rng;
    corm::sim::DiscreteDist clusterDist[3];
    corm::sim::DiscreteDist transDist[3];
    std::vector<Session> slots;
    std::vector<TypeStats> perType;
    corm::sim::Summary allMs;
    LatencyBreakdown trace;
    corm::sim::Summary sessionDur;
    corm::sim::Counter completed;
    corm::sim::Counter sessions;
    std::uint32_t nextSessionId = 1;
};

/**
 * Gains of the coordination table, in multiples of the base delta.
 * Browsing requests raise the web tier and lower the database; write
 * requests raise the database and lower the web tier; the
 * application server — whose demand is high for both paths — is
 * raised by both (§3.1). The write-side gains are larger than the
 * read-side ones because writes are the rarer class in the
 * bid/browse/sell mix: balancing f_read·readGain ≈ f_write·writeGain
 * keeps each weight tracking the request waves instead of saturating
 * at a clamp bound.
 */
struct AdjustmentGains
{
    double readWeb = +1.0;
    double readApp = +1.5;
    /** Read types with no database stage push the database down... */
    double readDb = -0.5;
    /** ...but read types that do query the database (searches,
     *  ViewItem) must not starve it. */
    double readDbWhenUsed = +0.5;
    double writeDb = +4.0;
    double writeApp = +2.0;
    double writeWeb = -1.5;
};

/**
 * Build the paper's §3.1 coordination table for the request-type Tune
 * policy.
 *
 * @param web / app / db Coordination entity refs of the tier VMs.
 * @param delta Base weight step per classified request.
 * @param gains Per-class gain multipliers (see AdjustmentGains).
 */
void installRubisAdjustments(coord::RequestTypeTunePolicy &policy,
                             const coord::EntityRef &web,
                             const coord::EntityRef &app,
                             const coord::EntityRef &db,
                             double delta = 32.0,
                             AdjustmentGains gains = AdjustmentGains{});

} // namespace corm::apps::rubis
