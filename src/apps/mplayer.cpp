/**
 * @file
 * MPlayer workload model implementation.
 */

#include "apps/mplayer.hpp"

#include <algorithm>

namespace corm::apps::mplayer {

using corm::net::AppTag;
using corm::net::FiveTuple;
using corm::net::PacketPtr;
using corm::net::Proto;
using corm::sim::sec;
using corm::sim::Tick;
using corm::xen::JobKind;

//
// StreamingServer
//

StreamingServer::StreamingServer(corm::sim::Simulator &simulator,
                                 corm::ixp::IxpIsland &ixp_,
                                 corm::net::IpAddr client_ip,
                                 corm::net::PacketFactory &factory,
                                 Params params)
    : sim(simulator), ixp(ixp_), clientIp(client_ip), packets(factory),
      cfg(params)
{
    frameBytes = static_cast<std::uint32_t>(std::max(
        1.0, cfg.stream.bitrateBps / 8.0 / cfg.stream.fps));
}

void
StreamingServer::start()
{
    running = true;
    sendSetup();

    // Startup prebuffer: ship the first prebufferSec of content as a
    // burst (streaming servers front-load the playout buffer), then
    // settle into the configured pacing.
    const int preframes = static_cast<int>(
        cfg.stream.prebufferSec * cfg.stream.fps);
    for (int i = 0; i < preframes; ++i)
        ixp.injectFromWire(makeFramePacket());

    if (cfg.pacing == Pacing::smooth) {
        sim.schedule(
            static_cast<Tick>(static_cast<double>(sec) / cfg.stream.fps),
            [this] { sendFrame(); });
    } else {
        sim.schedule(
            static_cast<Tick>(cfg.burstSec * static_cast<double>(sec)),
            [this] { sendBurst(); });
    }
}

void
StreamingServer::stop()
{
    running = false;
}

void
StreamingServer::sendSetup()
{
    FiveTuple flow;
    flow.src = cfg.serverIp;
    flow.dst = clientIp;
    flow.sport = 554; // RTSP
    flow.dport = cfg.rtpPort;
    flow.proto = Proto::tcp;
    AppTag tag;
    tag.kind = AppTag::Kind::rtspSetup;
    tag.value = cfg.stream.streamId;
    PacketPtr setup = packets.make(flow, 512, tag, sim.now());
    // The SDP-equivalent metadata the DPI classifier extracts.
    auto info = std::make_shared<coord::StreamInfo>();
    info->bitrateBps = cfg.stream.bitrateBps;
    info->fps = cfg.stream.fps;
    setup->context = std::move(info);
    ixp.injectFromWire(std::move(setup));
}

corm::net::PacketPtr
StreamingServer::makeFramePacket()
{
    FiveTuple flow;
    flow.src = cfg.serverIp;
    flow.dst = clientIp;
    flow.sport = 554;
    flow.dport = cfg.rtpPort;
    flow.proto = Proto::udp;
    AppTag tag;
    tag.kind = AppTag::Kind::mediaData;
    tag.value = cfg.stream.streamId;
    PacketPtr p = packets.make(flow, frameBytes, tag, sim.now());
    sent.add();
    return p;
}

void
StreamingServer::sendFrame()
{
    if (!running)
        return;
    ixp.injectFromWire(makeFramePacket());
    sim.schedule(
        static_cast<Tick>(static_cast<double>(sec) / cfg.stream.fps),
        [this] { sendFrame(); });
}

void
StreamingServer::sendBurst()
{
    if (!running)
        return;
    // A burstSec chunk of content arrives back to back: UDP bulk
    // transfer with no flow control (§3.2, system-buffer use case).
    const int frames =
        static_cast<int>(cfg.burstSec * cfg.stream.fps);
    for (int i = 0; i < frames; ++i)
        ixp.injectFromWire(makeFramePacket());
    sim.schedule(
        static_cast<Tick>(cfg.burstSec * static_cast<double>(sec)),
        [this] { sendBurst(); });
}

//
// MplayerClient
//

MplayerClient::MplayerClient(corm::sim::Simulator &simulator,
                             corm::xen::GuestVif &vif_, DecodeParams params)
    : sim(simulator), vif(vif_), cfg(params)
{
    vif.setReceiveHandler(
        [this](PacketPtr p) { onFrame(std::move(p)); });
}

void
MplayerClient::onFrame(PacketPtr pkt)
{
    if (pkt->tag.kind == AppTag::Kind::rtspSetup)
        return; // session control, nothing to decode

    const Tick arrived = sim.now();
    const Tick deadline = arrived + cfg.lateDeadline;
    const Tick cost = cfg.baseCostPerFrame
        + cfg.costPerKib * (pkt->bytes / 1024);

    // -benchmark mode: decode as soon as the VCPU gets to it. A
    // frame whose turn comes after its playout deadline is skipped
    // (costing only a trivial parse) to stay synchronised.
    vif.domain().submit(
        corm::sim::usec * 50, JobKind::user,
        [this, deadline, cost] {
            if (sim.now() > deadline) {
                late.add();
                return;
            }
            vif.domain().submit(cost, JobKind::user,
                                [this] { decoded.add(); });
        });
}

} // namespace corm::apps::mplayer
