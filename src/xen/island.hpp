/**
 * @file
 * The x86 scheduling island: the coordination-facing adapter around
 * the Xen credit scheduler and its domains (§2.2, §2.3).
 *
 * This is where the generic Tune/Trigger mechanisms are translated
 * into this island's own units: a Tune becomes a credit-weight
 * adjustment via the XenCtrl interface, a Trigger becomes a run-queue
 * boost. Entity ids name managed guest domains.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coord/island.hpp"
#include "coord/types.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "xen/sched.hpp"

namespace corm::xen {

/**
 * Thin model of the user-space "XenCtrl interface" Dom0 hosts to tune
 * the credit scheduler (§2.2): weight queries and adjustments for
 * individual guests. Kept separate from the island adapter so local
 * management tools and remote coordination share one code path.
 */
class XenCtl
{
  public:
    explicit XenCtl(CreditScheduler &scheduler) : sched(scheduler) {}

    /** Current weight of @p dom. */
    double getWeight(const Domain &dom) const { return dom.weight(); }

    /** Set @p dom's weight (clamped by the scheduler). */
    void setWeight(Domain &dom, double weight)
    {
        sched.setWeight(dom, weight);
    }

    /** Adjust @p dom's weight by a signed delta. */
    void adjustWeight(Domain &dom, double delta)
    {
        sched.adjustWeight(dom, delta);
    }

    /** Boost @p dom to the head of the run queue. */
    void boost(Domain &dom) { sched.boost(dom); }

  private:
    CreditScheduler &sched;
};

/** Simple island power model: idle floor plus per-core active power. */
struct PowerModel
{
    double idleWatts = 40.0;
    double perCoreActiveWatts = 35.0;
};

/**
 * The x86 island's coordination adapter. Owns the entity-id mapping
 * for guest domains; translates Tunes into weight deltas and Triggers
 * into boosts; answers power queries from the platform power model.
 */
class XenIsland : public coord::ResourceIsland
{
  public:
    /**
     * @param simulator Event engine (for power-window accounting).
     * @param island_id Platform-wide island id.
     * @param island_name e.g. "x86-xen".
     * @param scheduler The island's internal resource manager.
     * @param power Power-model parameters.
     */
    XenIsland(corm::sim::Simulator &simulator, coord::IslandId island_id,
              std::string island_name, CreditScheduler &scheduler,
              PowerModel power = {})
        : sim(simulator), id_(island_id), name_(std::move(island_name)),
          sched(scheduler), ctl(scheduler), powerModel(power)
    {}

    /**
     * Enable decay of tuned weights back toward each entity's
     * baseline with time constant @p tau (0 disables). Repeated
     * one-sided Tunes would otherwise drift every weight to a clamp
     * bound and freeze there; with decay, a weight reflects the Tune
     * inflow of roughly the last tau — i.e., it tracks the *recent*
     * request mix, which is what per-request coordination is for.
     * This is this island's local translation policy for the generic
     * Tune mechanism (§3.3 leaves the translation island-defined);
     * the ablation_oscillation bench compares decay settings.
     */
    void
    setTuneDecay(corm::sim::Tick tau)
    {
        decayTau = tau;
        if (tau == 0) {
            decayEvent.reset();
            return;
        }
        const corm::sim::Tick period = 50 * corm::sim::msec;
        decayEvent = std::make_unique<corm::sim::PeriodicEvent>(
            sim, period, [this, period] {
                const double beta = static_cast<double>(period)
                    / static_cast<double>(decayTau);
                for (auto &[id, dom] : entities) {
                    const double base = baselines[id];
                    ctl.setWeight(*dom,
                                  dom->weight()
                                      + (base - dom->weight()) * beta);
                }
            });
    }

    /**
     * Place a guest domain under coordination management.
     * @return the entity id remote islands use to name it.
     */
    coord::EntityId
    manage(Domain &dom)
    {
        const coord::EntityId id = nextEntity++;
        entities[id] = &dom;
        baselines[id] = dom.weight();
        return id;
    }

    /** Domain managed under @p entity (null if unknown). */
    Domain *
    domainFor(coord::EntityId entity) const
    {
        auto it = entities.find(entity);
        return it == entities.end() ? nullptr : it->second;
    }

    /** The XenCtrl tuning interface. */
    XenCtl &xenctl() { return ctl; }

    /**
     * Attach a trace recorder to the island and its scheduler
     * (nullptr detaches). Tune/Trigger applications become slices on
     * this island's track, joined to the causal span the channel
     * installed around the dispatch.
     */
    void
    setTrace(corm::obs::TraceRecorder *recorder)
    {
        rec = recorder;
        trk = -1;
        sched.setTrace(recorder, name_);
    }

    /** The underlying scheduler. */
    CreditScheduler &scheduler() { return sched; }

    // ResourceIsland interface ------------------------------------

    coord::IslandId id() const override { return id_; }

    const std::string &name() const override { return name_; }

    /**
     * Tune: "translated into corresponding weight or priority
     * adjustments, depending on the remote island's scheduling
     * algorithm — e.g. credit adjustments in the Xen scheduler"
     * (§3.3). Unknown entities are ignored.
     */
    void
    applyTune(coord::EntityId entity, double delta) override
    {
        Domain *dom = domainFor(entity);
        if (dom == nullptr) {
            ignoredOps.add();
            return;
        }
        tunesApplied.add();
        const double before = dom->weight();
        ctl.adjustWeight(*dom, delta);
        if (CORM_TRACE_ACTIVE(rec))
            traceTuneApplied(*dom, delta, before);
    }

    /** Out of line so the untraced applyTune stays lean (it is on
     *  the per-Tune hot path measured by BM_TuneSendToApply). */
    [[gnu::noinline]] void
    traceTuneApplied(Domain &dom, double delta, double before)
    {
        const auto flow = rec->currentFlow();
        rec->complete(islandTrack(), sim.now(), 0, "tune:apply",
                      "xen",
                      {{"dom", static_cast<std::uint64_t>(dom.id())},
                       {"delta", delta},
                       {"weight_before", before},
                       {"weight_after", dom.weight()}});
        if (flow.id != 0) {
            // A fire-and-forget tune ends its span here; a reliable
            // one still has the ack's return hop.
            if (flow.final) {
                rec->flowEnd(islandTrack(), sim.now(), flow.id,
                             "coord.span", "coord");
            } else {
                rec->flowStep(islandTrack(), sim.now(), flow.id,
                              "coord.span", "coord");
            }
        }
    }

    /** Trigger: boost the entity's VCPUs in the run queue. */
    void
    applyTrigger(coord::EntityId entity) override
    {
        Domain *dom = domainFor(entity);
        if (dom == nullptr) {
            ignoredOps.add();
            return;
        }
        triggersApplied.add();
        if (CORM_TRACE_ACTIVE(rec)) {
            const auto flow = rec->currentFlow();
            rec->complete(islandTrack(), sim.now(), 0,
                          "trigger:apply", "xen",
                          {{"dom", static_cast<std::uint64_t>(
                                       dom->id())}});
            // Always a step: the span finishes when the boosted VCPU
            // reaches a PCPU (CreditScheduler::dispatch).
            rec->flowStep(islandTrack(), sim.now(), flow.id,
                          "coord.span", "coord");
        }
        ctl.boost(*dom);
    }

    /**
     * Set the island's DVFS level in (0, 1]: all PCPUs run at that
     * fraction of nominal frequency. This is the island's second
     * power actuator besides weight throttling; active power scales
     * roughly with f·V² ≈ level³ (voltage tracks frequency).
     */
    void
    setDvfsLevel(double level)
    {
        dvfsLevel = std::clamp(level, 0.05, 1.0);
        for (int i = 0; i < sched.pcpuCount(); ++i)
            sched.setPcpuSpeed(i, dvfsLevel);
    }

    /** Current DVFS level. */
    double currentDvfsLevel() const { return dvfsLevel; }

    /**
     * Instantaneous power estimate: idle floor plus per-core active
     * power scaled by each core's busy fraction since the previous
     * query (windowed average) and by the cube of its DVFS speed
     * (frequency × voltage²).
     */
    double
    currentPowerWatts() const override
    {
        const corm::sim::Tick now = sim.now();
        if (lastBusyPerCore.size()
            != static_cast<std::size_t>(sched.pcpuCount())) {
            lastBusyPerCore.assign(
                static_cast<std::size_t>(sched.pcpuCount()), 0);
        }
        double active = 0.0;
        for (int i = 0; i < sched.pcpuCount(); ++i) {
            const corm::sim::Tick busy = sched.pcpuBusy(i);
            double fraction = 0.0;
            if (now > lastPowerQuery) {
                fraction = static_cast<double>(
                               busy
                               - lastBusyPerCore[static_cast<
                                   std::size_t>(i)])
                    / static_cast<double>(now - lastPowerQuery);
            }
            const double speed = sched.pcpuSpeed(i);
            active += powerModel.perCoreActiveWatts
                * std::clamp(fraction, 0.0, 1.0) * speed * speed
                * speed;
            lastBusyPerCore[static_cast<std::size_t>(i)] = busy;
        }
        lastPowerQuery = now;
        return powerModel.idleWatts + active;
    }

    /** Tunes applied so far. */
    std::uint64_t totalTunes() const { return tunesApplied.value(); }
    /** Triggers applied so far. */
    std::uint64_t totalTriggers() const { return triggersApplied.value(); }
    /** Operations naming unknown entities (ignored by contract). */
    std::uint64_t totalIgnored() const { return ignoredOps.value(); }

  private:
    /** Island-level track for apply events (lazy). */
    int
    islandTrack()
    {
        if (trk < 0)
            trk = rec->track(name_, "coord-adapter");
        return trk;
    }

    corm::sim::Simulator &sim;
    coord::IslandId id_;
    std::string name_;
    CreditScheduler &sched;
    corm::obs::TraceRecorder *rec = nullptr;
    int trk = -1;
    XenCtl ctl;
    PowerModel powerModel;
    std::map<coord::EntityId, Domain *> entities;
    std::map<coord::EntityId, double> baselines;
    coord::EntityId nextEntity = 1;
    corm::sim::Tick decayTau = 0;
    std::unique_ptr<corm::sim::PeriodicEvent> decayEvent;
    corm::sim::Counter tunesApplied;
    corm::sim::Counter triggersApplied;
    corm::sim::Counter ignoredOps;
    double dvfsLevel = 1.0;
    mutable corm::sim::Tick lastPowerQuery = 0;
    mutable std::vector<corm::sim::Tick> lastBusyPerCore;
};

} // namespace corm::xen
