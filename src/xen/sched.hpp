/**
 * @file
 * The x86 island's internal resource manager: a discrete-event model
 * of the Xen credit scheduler (credit1) managing single-VCPU domains
 * on a small SMP, as in the paper's prototype (§2.2).
 *
 * Modelled mechanisms, following Cherkasova/Gupta/Vahdat's description
 * of the credit scheduler cited by the paper:
 *
 *  * weights → credits: every 30 ms accounting period, active VCPUs
 *    receive credits in proportion to their domain weights;
 *  * running VCPUs burn credits as they execute; credit sign gives
 *    the UNDER/OVER priority classes;
 *  * event-woken UNDER VCPUs enter the BOOST class and preempt lower
 *    classes (this is what a coordination Trigger piggybacks on);
 *  * 30 ms time slices, per-PCPU run queues, and idle-time work
 *    stealing across PCPUs.
 *
 * Two dispatch modes are provided (SchedParams::creditOrderedDispatch):
 *
 *  * **classFifo** (credit1-faithful, the 2010 behaviour the paper
 *    ran on): BOOST > UNDER > OVER, FIFO within class, 30 ms slices.
 *    An OVER vcpu waits for every UNDER vcpu regardless of how small
 *    the credit gap is — the latency pathology (cf. Ongaro et al.,
 *    the paper's [24]) that coordination exploits: a well-timed
 *    weight increase flips the critical VM to UNDER and collapses its
 *    scheduling delay. The paper-reproduction scenarios use this mode.
 *
 *  * **creditOrdered** (default for new code): within the non-BOOST
 *    classes the dispatcher picks the highest-credit VCPU and
 *    preempts on a one-tick credit lead. Sign-only classes quantise
 *    badly at 10 ms ticks and drift toward 50/50 under high weight
 *    ratios; credit-ordered dispatch restores tight
 *    weight-proportional shares.
 *
 * In both modes credits burn continuously (creditsPerTick per
 * tickPeriod of execution) rather than in 100-credit tick quanta.
 * The ablation_scheduler bench quantifies how much of the paper's
 * coordination win a better scheduler would have absorbed.
 *
 * Domains execute *jobs* — CPU demands tagged user/system — submitted
 * by workload models; the scheduler decides when they run. Weight
 * changes (the XenCtrl / Tune path) take effect at the next
 * accounting, exactly the actuation delay the paper's per-request
 * coordination has to live with.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace corm::xen {

/** Scheduling class; lower value = served first (Xen credit1). */
enum class Priority : std::uint8_t { boost = 0, under = 1, over = 2 };

/** VCPU run states. */
enum class VcpuState : std::uint8_t { blocked, runnable, running };

/** What a job's CPU time counts as, for Fig. 5-style accounting. */
using JobKind = corm::sim::UtilizationTracker::Kind;

/** Scheduler parameters; defaults mirror Xen credit1. */
struct SchedParams
{
    corm::sim::Tick tickPeriod = 10 * corm::sim::msec;
    int ticksPerAcct = 3; ///< accounting every 30 ms
    double creditsPerTick = 100.0;
    double creditsPerAcct = 300.0; ///< per PCPU per accounting period
    corm::sim::Tick sliceLimit = 30 * corm::sim::msec;
    double minWeight = 16.0;
    double maxWeight = 4096.0;
    double creditCap = 600.0;   ///< hoarding bound
    double creditFloor = -600.0;
    bool workStealing = true;
    /**
     * true: credit-ordered dispatch (tight proportional shares);
     * false: literal credit1 class-FIFO (the 2010 semantics with its
     * latency pathologies). See the file comment.
     */
    bool creditOrderedDispatch = true;
};

class Domain;
class CreditScheduler;

/** A unit of CPU demand executed by a domain's VCPU. */
struct Job
{
    corm::sim::Tick remaining = 0;
    JobKind kind = JobKind::user;
    std::function<void()> onComplete;
};

/**
 * A virtual CPU. The paper's guest domains are single-VCPU; Dom0 may
 * have several. Scheduling state is owned by the CreditScheduler.
 */
class Vcpu
{
    friend class CreditScheduler;
    friend class Domain;

  public:
    Vcpu(Domain &owner, int index) : dom(owner), idx(index) {}

    Domain &domain() { return dom; }
    const Domain &domain() const { return dom; }
    int index() const { return idx; }
    VcpuState state() const { return st; }
    Priority priority() const { return prio; }
    double credits() const { return credit; }
    int pcpu() const { return assignedPcpu; }

  private:
    Domain &dom;
    int idx;
    VcpuState st = VcpuState::blocked;
    Priority prio = Priority::under;
    double credit = 0.0;
    int assignedPcpu = 0;
    bool pendingBoost = false;
    bool consumedSinceAcct = false;
    std::deque<Job> jobs;
    corm::sim::Tick blockedSince = 0;
    corm::sim::Tick wakeTick = 0;
};

/**
 * A Xen domain (VM): name, weight, one or more VCPUs, job submission
 * API for workload models, and CPU-usage accounting.
 */
class Domain
{
    friend class CreditScheduler;

  public:
    /**
     * @param scheduler The island scheduler that will run this domain.
     * @param domid Xen-style domain id (0 = control domain).
     * @param domain_name e.g. "web-server".
     * @param weight Initial credit-scheduler weight (Xen default 256).
     * @param num_vcpus VCPUs; guests in the paper have exactly 1.
     */
    Domain(CreditScheduler &scheduler, std::uint32_t domid,
           std::string domain_name, double weight, int num_vcpus = 1);

    std::uint32_t id() const { return domid_; }
    const std::string &name() const { return name_; }

    /** Current credit-scheduler weight. */
    double weight() const { return weight_; }

    /**
     * Submit a CPU job to a VCPU's work queue (FIFO). Wakes the VCPU
     * if it was blocked.
     *
     * @param duration CPU time the job needs.
     * @param kind Accounting kind (user/system).
     * @param on_complete Invoked when the job's last tick executes.
     * @param vcpu_index Which VCPU runs it (default 0).
     */
    void submit(corm::sim::Tick duration, JobKind kind,
                std::function<void()> on_complete = {},
                int vcpu_index = 0);

    /** Pending + running jobs across VCPUs. */
    std::size_t queuedJobs() const;

    /**
     * Mark the start/end of an outstanding I/O-like dependency (e.g.
     * an RPC to another tier). Time a VCPU spends fully blocked while
     * such a dependency is outstanding is accounted as iowait,
     * mirroring the guest-visible iowait the paper reports shrinking
     * under coordination.
     */
    void ioBegin();
    void ioEnd();

    /** CPU usage accounting (user/system/iowait). */
    const corm::sim::UtilizationTracker &cpuUsage() const { return usage; }

    /** Jobs completed so far. */
    std::uint64_t jobsCompleted() const { return completed.value(); }

    /** Reset usage accounting (end of warm-up). */
    void resetUsage() { usage.reset(); }

    Vcpu &vcpu(int index = 0) { return *vcpus.at(index); }
    const Vcpu &vcpu(int index = 0) const { return *vcpus.at(index); }
    int vcpuCount() const { return static_cast<int>(vcpus.size()); }

  private:
    /**
     * Account pending iowait for @p vc: the overlap of its blocked
     * interval with the outstanding-I/O interval, up to now.
     */
    void flushIowait(Vcpu &vc);

    CreditScheduler &sched;
    std::uint32_t domid_;
    std::string name_;
    double weight_;
    std::vector<std::unique_ptr<Vcpu>> vcpus;
    int outstandingIo = 0;
    corm::sim::Tick ioSince = 0;
    corm::sim::UtilizationTracker usage;
    corm::sim::Counter completed;
};

/**
 * One scheduler trace event (xentrace-style): what the dispatcher
 * did, when, where, and to whom. Tracing is off unless a capacity is
 * set; the ring keeps the most recent events.
 */
struct SchedEvent
{
    enum class Kind : std::uint8_t
    {
        dispatch,
        preempt,
        block,
        wake,
        boost,
        migrate,
    };

    corm::sim::Tick when = 0;
    Kind kind = Kind::dispatch;
    std::uint32_t domid = 0;
    int pcpu = 0;
};

/** Human-readable trace-event kind. */
constexpr const char *
schedEventName(SchedEvent::Kind k)
{
    switch (k) {
      case SchedEvent::Kind::dispatch: return "dispatch";
      case SchedEvent::Kind::preempt: return "preempt";
      case SchedEvent::Kind::block: return "block";
      case SchedEvent::Kind::wake: return "wake";
      case SchedEvent::Kind::boost: return "boost";
      case SchedEvent::Kind::migrate: return "migrate";
    }
    return "?";
}

/** Aggregate scheduler statistics. */
struct SchedStats
{
    corm::sim::Counter contextSwitches;
    corm::sim::Counter migrations;
    corm::sim::Counter boosts;
    corm::sim::Counter accountings;
    /** Wake-to-dispatch latency of BOOST wakes (microseconds). */
    corm::sim::Summary boostDispatchUs;
};

/**
 * The credit scheduler proper: owns the PCPUs, the run queues, the
 * tick/accounting machinery, and the tuning surface (weights and the
 * Trigger boost) the coordination layer acts on.
 */
class CreditScheduler
{
  public:
    /**
     * @param simulator Event engine.
     * @param num_pcpus Physical cores (the prototype host has 2).
     * @param params Tunables; defaults mirror Xen credit1.
     */
    CreditScheduler(corm::sim::Simulator &simulator, int num_pcpus,
                    SchedParams params = {});

    ~CreditScheduler() = default;
    CreditScheduler(const CreditScheduler &) = delete;
    CreditScheduler &operator=(const CreditScheduler &) = delete;

    /** Event engine this scheduler runs on. */
    corm::sim::Simulator &simulator() { return sim; }

    /** Number of physical CPUs. */
    int pcpuCount() const { return static_cast<int>(pcpus.size()); }

    /** Parameters in force. */
    const SchedParams &params() const { return cfg; }

    /**
     * Set a domain's weight, clamped to [minWeight, maxWeight]. Takes
     * effect at the next accounting period, as via the real XenCtrl.
     */
    void setWeight(Domain &dom, double weight);

    /** Adjust a domain's weight by a signed delta (Tune semantics). */
    void adjustWeight(Domain &dom, double delta);

    /**
     * Boost a domain's VCPUs to the front of the run queue (Trigger
     * semantics, §3.3: "lets an island request resource allocation
     * for a particular process in a remote island as soon as
     * possible"). Blocked VCPUs boost on their next wake.
     */
    void boost(Domain &dom);

    /** Busy time of one PCPU. */
    corm::sim::Tick pcpuBusy(int pcpu) const
    {
        return pcpus.at(pcpu).busy;
    }

    /**
     * Set a PCPU's DVFS speed factor (1.0 = nominal frequency).
     * Running jobs stretch by 1/speed; the in-flight segment is
     * rescheduled. Substrate for platform-level power coordination
     * (§1 use-case 2 / §5 ongoing work).
     */
    void setPcpuSpeed(int pcpu, double speed);

    /** Current DVFS speed factor of one PCPU. */
    double pcpuSpeed(int pcpu) const
    {
        return pcpus.at(pcpu).speed;
    }

    /** Total busy time across PCPUs. */
    corm::sim::Tick totalBusy() const;

    /** Scheduler statistics. */
    const SchedStats &stats() const { return stats_; }

    /**
     * Enable event tracing with a bounded ring of @p capacity events
     * (0 disables). The most recent events are kept.
     */
    void
    setTraceCapacity(std::size_t capacity)
    {
        traceCap = capacity;
        if (traceRing.size() > traceCap)
            traceRing.erase(traceRing.begin(),
                            traceRing.end()
                                - static_cast<std::ptrdiff_t>(traceCap));
        if (traceCap == 0)
            traceRing.clear();
    }

    /** The recorded trace, oldest first. */
    const std::deque<SchedEvent> &trace() const { return traceRing; }

    /**
     * Attach an observability trace recorder (nullptr detaches);
     * independent of the xentrace-style ring above. Boost dispatches
     * emit wake-to-dispatch slices on @p process's "sched" thread,
     * finishing the causal span of the Trigger that requested them.
     */
    void
    setTrace(corm::obs::TraceRecorder *recorder,
             std::string process = "x86-xen")
    {
        rec_ = recorder;
        obsProcess = std::move(process);
        obsTrk = -1;
    }

    /** Reset PCPU busy accounting (end of warm-up). */
    void resetBusy();

    /** All domains attached to this scheduler. */
    const std::vector<Domain *> &domains() const { return doms; }

  private:
    friend class Domain;

    struct PCpu
    {
        int index = 0;
        Vcpu *current = nullptr;
        corm::sim::Tick segStart = 0;
        corm::sim::Tick sliceEnd = 0;
        corm::sim::EventId segEvent = corm::sim::invalidEventId;
        std::deque<Vcpu *> runq[3]; ///< indexed by Priority
        corm::sim::Tick busy = 0;
        double speed = 1.0; ///< DVFS factor: work done per wall tick
    };

    /** Domain registration (from Domain's constructor). */
    void attach(Domain &dom);

    /** Job submitted; wake the VCPU if needed. */
    void onSubmit(Vcpu &vcpu);

    void wake(Vcpu &vcpu);
    void enqueue(PCpu &pc, Vcpu &vcpu, bool at_front = false);
    void removeFromRunq(Vcpu &vcpu);
    void dispatch(PCpu &pc);
    /** Traced boost()/dispatch() slow paths, kept out of line so the
     *  untraced hot paths keep their codegen (see boost()). */
    void boostTraced(Domain &dom);
    void traceBoostDispatch(Vcpu &vc, PCpu &pc);
    void startSegment(PCpu &pc);
    void accrue(PCpu &pc);
    void onSegmentEnd(PCpu &pc);
    void preemptIfNeeded(PCpu &pc);
    void onTick(PCpu &pc);
    void accounting();
    Vcpu *pickCandidate(PCpu &pc, bool remove);
    static Priority priorityFromCredits(const Vcpu &vcpu);

    corm::sim::Simulator &sim;
    SchedParams cfg;
    std::vector<PCpu> pcpus;
    std::vector<Domain *> doms;
    std::vector<std::unique_ptr<corm::sim::PeriodicEvent>> tickEvents;
    std::unique_ptr<corm::sim::PeriodicEvent> acctEvent;
    void
    traceEvent(SchedEvent::Kind kind, const Vcpu &vcpu, int pcpu)
    {
        if (traceCap == 0)
            return;
        traceRing.push_back(
            {sim.now(), kind, vcpu.domain().id(), pcpu});
        if (traceRing.size() > traceCap)
            traceRing.pop_front();
    }

    /** Observability track for scheduler events (lazy). */
    int
    obsTrack()
    {
        if (obsTrk < 0)
            obsTrk = rec_->track(obsProcess, "sched");
        return obsTrk;
    }

    /** Park (or clear) the Trigger span a boost handed this VCPU. */
    void
    noteBoostFlow(const Vcpu &vc,
                  corm::obs::TraceRecorder::FlowContext flow)
    {
        if (flow.id != 0)
            boostFlows[&vc] = flow;
        else
            boostFlows.erase(&vc);
    }

    SchedStats stats_;
    corm::obs::TraceRecorder *rec_ = nullptr;
    std::string obsProcess = "x86-xen";
    int obsTrk = -1;
    /**
     * Causal span of the Trigger that boosted each VCPU, keyed by
     * VCPU. A side table rather than a Vcpu field so the untraced
     * scheduler pays nothing — Vcpu stays two cache lines, and both
     * writers and the dispatch-side lookup sit behind
     * CORM_TRACE_ACTIVE.
     */
    std::map<const Vcpu *, corm::obs::TraceRecorder::FlowContext>
        boostFlows;
    std::size_t traceCap = 0;
    std::deque<SchedEvent> traceRing;
    int nextPcpu = 0; ///< round-robin initial placement
};

} // namespace corm::xen
