/**
 * @file
 * Guest virtual interfaces (ViFs) and the Xen bridge.
 *
 * Models the paper's §2 data path on the host side: each guest has a
 * virtual interface; all guest traffic is relayed by the privileged
 * control domain (Dom0) through the Xen bridge, which either delivers
 * to another local guest or hands the packet to the external path
 * (the IXP messaging driver). Every hop costs CPU in the domain that
 * performs it — that Dom0 per-packet relay cost is precisely the
 * contention the MPlayer experiments exercise.
 */

#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "sim/stats.hpp"
#include "xen/sched.hpp"

namespace corm::xen {

/** CPU costs of moving packets through a guest's network stack. */
struct VifParams
{
    /** Guest-side receive cost per packet (softirq + socket). */
    corm::sim::Tick rxPerPacket = 6 * corm::sim::usec;
    /** Additional receive cost per KiB of payload (copies). */
    corm::sim::Tick rxPerKib = 1 * corm::sim::usec;
    /** Guest-side transmit cost per packet. */
    corm::sim::Tick txPerPacket = 5 * corm::sim::usec;
    /** Additional transmit cost per KiB of payload. */
    corm::sim::Tick txPerKib = 1 * corm::sim::usec;
    /**
     * Receive-ring depth: packets that may be in flight into the
     * guest before it has run its receive stack. When the guest is
     * CPU-starved the ring fills, the messaging driver stops
     * consuming descriptors, the host descriptor ring fills, and the
     * IXP's DRAM buffers grow — the backpressure chain behind the
     * Fig. 7 buffer-threshold Trigger scheme.
     */
    int rxRingDepth = 64;
};

/**
 * A guest's virtual network interface. Receive and transmit charge
 * system-time jobs to the guest before the application sees or the
 * wire receives the packet, so network processing competes with the
 * guest's own work for its VCPU — the effect coordination must
 * anticipate.
 */
class GuestVif
{
  public:
    using RxHandler = std::function<void(corm::net::PacketPtr)>;
    using TxDone = std::function<void(corm::net::PacketPtr)>;

    /**
     * @param guest Owning domain.
     * @param address The guest's IP (its classifier identity).
     * @param params Stack cost parameters.
     */
    GuestVif(Domain &guest, corm::net::IpAddr address,
             VifParams params = {})
        : dom(guest), ip_(address), cfg(params)
    {}

    /** Install the guest application's receive handler. */
    void setReceiveHandler(RxHandler fn) { rxHandler = std::move(fn); }

    /** The guest's IP address. */
    corm::net::IpAddr ip() const { return ip_; }

    /** Owning domain. */
    Domain &domain() { return dom; }

    /**
     * True if the receive ring has room for another packet; the
     * messaging driver checks this before consuming a descriptor.
     */
    bool canAccept() const { return inflightRx < cfg.rxRingDepth; }

    /** Packets in the receive ring not yet processed by the guest. */
    int inflight() const { return inflightRx; }

    /**
     * Deliver a packet into the guest: occupies a receive-ring slot,
     * charges the receive-stack job, then invokes the application
     * handler. Callers should honour canAccept(); delivery beyond the
     * ring depth is allowed but keeps the ring marked full.
     */
    void
    deliver(corm::net::PacketPtr pkt)
    {
        rxPackets.add();
        rxBytes += pkt->bytes;
        ++inflightRx;
        const corm::sim::Tick cost = cfg.rxPerPacket
            + cfg.rxPerKib * (pkt->bytes / 1024);
        dom.submit(cost, JobKind::system,
                   [this, p = std::move(pkt)]() mutable {
                       --inflightRx;
                       if (rxHandler)
                           rxHandler(std::move(p));
                   });
    }

    /**
     * Transmit a packet from the guest: charges the transmit-stack
     * job, then hands the packet to @p on_wire (the bridge).
     */
    void
    transmit(corm::net::PacketPtr pkt, TxDone on_wire)
    {
        txPackets.add();
        txBytes += pkt->bytes;
        const corm::sim::Tick cost = cfg.txPerPacket
            + cfg.txPerKib * (pkt->bytes / 1024);
        dom.submit(cost, JobKind::system,
                   [p = std::move(pkt),
                    done = std::move(on_wire)]() mutable {
                       if (done)
                           done(std::move(p));
                   });
    }

    /** Packets received into the guest. */
    std::uint64_t totalRxPackets() const { return rxPackets.value(); }
    /** Packets transmitted by the guest. */
    std::uint64_t totalTxPackets() const { return txPackets.value(); }
    /** Bytes received. */
    std::uint64_t totalRxBytes() const { return rxBytes; }
    /** Bytes transmitted. */
    std::uint64_t totalTxBytes() const { return txBytes; }

  private:
    Domain &dom;
    corm::net::IpAddr ip_;
    VifParams cfg;
    RxHandler rxHandler;
    corm::sim::Counter rxPackets;
    corm::sim::Counter txPackets;
    std::uint64_t rxBytes = 0;
    std::uint64_t txBytes = 0;
    int inflightRx = 0;
};

/**
 * The Xen bridge in Dom0: relays guest traffic between local ViFs or
 * out the external path. Each relayed packet costs Dom0 CPU (netback
 * copy + bridge lookup), spread across Dom0's VCPUs since Dom0 is
 * unpinned in the prototype.
 */
class XenBridge
{
  public:
    using ExternalTx = std::function<void(corm::net::PacketPtr)>;

    /**
     * @param dom0 The privileged control domain doing the relaying.
     * @param per_packet_cost Dom0 CPU per relayed packet.
     */
    XenBridge(Domain &dom0, corm::sim::Tick per_packet_cost)
        : ctrl(dom0), relayCost(per_packet_cost)
    {}

    /** Attach a guest interface (keyed by its IP). */
    void attach(GuestVif &vif) { vifs[vif.ip().v] = &vif; }

    /** Install the handler for packets leaving the host. */
    void setExternalTx(ExternalTx fn) { externalTx = std::move(fn); }

    /**
     * Relay a packet transmitted by a guest: Dom0 pays the relay
     * cost, then the packet reaches the destination guest's ViF or
     * the external path.
     */
    void
    relayFromGuest(corm::net::PacketPtr pkt)
    {
        relayed.add();
        submitRelay(std::move(pkt), /*inbound=*/false);
    }

    /**
     * Inject a packet arriving from the external path (the IXP
     * messaging driver): Dom0 pays the relay cost, then the
     * destination guest's ViF receives it.
     */
    void
    injectFromExternal(corm::net::PacketPtr pkt)
    {
        injected.add();
        submitRelay(std::move(pkt), /*inbound=*/true);
    }

    /** Find the local ViF owning @p ip (null if none). */
    GuestVif *
    vifFor(corm::net::IpAddr ip) const
    {
        auto it = vifs.find(ip.v);
        return it == vifs.end() ? nullptr : it->second;
    }

    /** Packets relayed from guests. */
    std::uint64_t totalRelayed() const { return relayed.value(); }
    /** Packets injected from the external path. */
    std::uint64_t totalInjected() const { return injected.value(); }
    /** Packets dropped for want of any destination. */
    std::uint64_t totalNoRoute() const { return noRoute.value(); }

  private:
    void
    submitRelay(corm::net::PacketPtr pkt, bool inbound)
    {
        // Spread relay work across Dom0's VCPUs (Dom0 is unpinned).
        int vcpu = 0;
        std::size_t best = ~std::size_t(0);
        for (int i = 0; i < ctrl.vcpuCount(); ++i) {
            const std::size_t depth = ctrl.vcpu(i).state()
                    == VcpuState::blocked
                ? 0
                : 1;
            if (depth < best) {
                best = depth;
                vcpu = i;
            }
        }
        ctrl.submit(relayCost, JobKind::system,
                    [this, p = std::move(pkt), inbound]() mutable {
                        route(std::move(p), inbound);
                    },
                    vcpu);
    }

    void
    route(corm::net::PacketPtr pkt, bool inbound)
    {
        GuestVif *dst = vifFor(pkt->flow.dst);
        if (dst != nullptr) {
            dst->deliver(std::move(pkt));
            return;
        }
        if (!inbound && externalTx) {
            externalTx(std::move(pkt));
            return;
        }
        noRoute.add();
    }

    Domain &ctrl;
    corm::sim::Tick relayCost;
    std::map<std::uint32_t, GuestVif *> vifs;
    ExternalTx externalTx;
    corm::sim::Counter relayed;
    corm::sim::Counter injected;
    corm::sim::Counter noRoute;
};

} // namespace corm::xen
