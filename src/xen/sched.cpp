/**
 * @file
 * Credit-scheduler implementation. See sched.hpp for the model notes.
 */

#include "xen/sched.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace corm::xen {

using corm::sim::Tick;

//
// Domain
//

Domain::Domain(CreditScheduler &scheduler, std::uint32_t domid,
               std::string domain_name, double weight, int num_vcpus)
    : sched(scheduler), domid_(domid), name_(std::move(domain_name)),
      weight_(std::clamp(weight, scheduler.params().minWeight,
                         scheduler.params().maxWeight))
{
    for (int i = 0; i < num_vcpus; ++i)
        vcpus.push_back(std::make_unique<Vcpu>(*this, i));
    sched.attach(*this);
}

void
Domain::submit(Tick duration, JobKind kind,
               std::function<void()> on_complete, int vcpu_index)
{
    Vcpu &vc = *vcpus.at(vcpu_index);
    Job job;
    job.remaining = duration;
    job.kind = kind;
    job.onComplete = std::move(on_complete);
    vc.jobs.push_back(std::move(job));
    sched.onSubmit(vc);
}

std::size_t
Domain::queuedJobs() const
{
    std::size_t n = 0;
    for (const auto &vc : vcpus)
        n += vc->jobs.size();
    return n;
}

void
Domain::ioBegin()
{
    if (outstandingIo++ == 0)
        ioSince = sched.simulator().now();
}

void
Domain::ioEnd()
{
    if (outstandingIo == 0)
        return;
    if (outstandingIo == 1) {
        // The I/O interval is closing: account any overlap with
        // blocked VCPUs before the state is forgotten.
        for (auto &vc : vcpus) {
            if (vc->st == VcpuState::blocked)
                flushIowait(*vc);
        }
    }
    --outstandingIo;
}

void
Domain::flushIowait(Vcpu &vc)
{
    if (outstandingIo == 0 || vc.st != VcpuState::blocked
        || vc.blockedSince == 0) {
        return;
    }
    const Tick now = sched.simulator().now();
    const Tick start = std::max(vc.blockedSince, ioSince);
    if (now > start) {
        usage.addBusy(JobKind::iowait, now - start);
        // Advance the marker so repeated flushes don't double-count.
        vc.blockedSince = now;
    }
}

//
// CreditScheduler
//

CreditScheduler::CreditScheduler(corm::sim::Simulator &simulator,
                                 int num_pcpus, SchedParams params)
    : sim(simulator), cfg(params)
{
    pcpus.resize(static_cast<std::size_t>(num_pcpus));
    for (int i = 0; i < num_pcpus; ++i)
        pcpus[static_cast<std::size_t>(i)].index = i;

    // Stagger per-PCPU ticks as Xen does, so simultaneous debits on
    // all cores don't create lockstep artifacts.
    for (int i = 0; i < num_pcpus; ++i) {
        const Tick offset =
            cfg.tickPeriod * static_cast<Tick>(i + 1)
            / static_cast<Tick>(num_pcpus);
        tickEvents.push_back(
            std::make_unique<corm::sim::PeriodicEvent>(
                sim, cfg.tickPeriod,
                [this, i] { onTick(pcpus[static_cast<std::size_t>(i)]); },
                offset));
    }
    acctEvent = std::make_unique<corm::sim::PeriodicEvent>(
        sim, cfg.tickPeriod * static_cast<Tick>(cfg.ticksPerAcct),
        [this] { accounting(); });
}

void
CreditScheduler::attach(Domain &dom)
{
    doms.push_back(&dom);
    for (auto &vc : dom.vcpus) {
        vc->assignedPcpu = nextPcpu;
        nextPcpu = (nextPcpu + 1) % pcpuCount();
    }
}

void
CreditScheduler::setWeight(Domain &dom, double weight)
{
    dom.weight_ = std::clamp(weight, cfg.minWeight, cfg.maxWeight);
}

void
CreditScheduler::adjustWeight(Domain &dom, double delta)
{
    setWeight(dom, dom.weight_ + delta);
}

void
CreditScheduler::boost(Domain &dom)
{
    stats_.boosts.add();
    // The traced variant lives out of line: keeping the recorder
    // calls (and their argument construction) out of this function
    // preserves the untraced path's codegen — boost() sits on the
    // Trigger fast path and is microbenchmarked (BM_TriggerBoost).
    if (CORM_TRACE_ACTIVE(rec_)) {
        boostTraced(dom);
        return;
    }
    for (auto &vc : dom.vcpus) {
        traceEvent(SchedEvent::Kind::boost, *vc, vc->assignedPcpu);
        switch (vc->st) {
          case VcpuState::blocked:
            vc->pendingBoost = true;
            break;
          case VcpuState::runnable: {
            // Move to the front of the BOOST class on its PCPU.
            removeFromRunq(*vc);
            vc->prio = Priority::boost;
            vc->wakeTick = sim.now();
            PCpu &pc = pcpus[static_cast<std::size_t>(vc->assignedPcpu)];
            enqueue(pc, *vc, /*at_front=*/true);
            preemptIfNeeded(pc);
            break;
          }
          case VcpuState::running:
            break; // already has the CPU
        }
    }
}

void
CreditScheduler::boostTraced(Domain &dom)
{
    // Adopt the causal span of the Trigger being dispatched (the
    // channel installs it around applyTrigger; see obs::TraceScope):
    // the span finishes when the boosted VCPU actually reaches a
    // PCPU, which is the effect the Trigger asked for. The span is
    // parked in the boostFlows side table (not in Vcpu) so the
    // untraced scheduler pays neither the field nor these calls.
    const auto flow = rec_->currentFlow();
    for (auto &vc : dom.vcpus) {
        traceEvent(SchedEvent::Kind::boost, *vc, vc->assignedPcpu);
        switch (vc->st) {
          case VcpuState::blocked:
            vc->pendingBoost = true;
            noteBoostFlow(*vc, flow);
            break;
          case VcpuState::runnable: {
            removeFromRunq(*vc);
            vc->prio = Priority::boost;
            vc->wakeTick = sim.now();
            noteBoostFlow(*vc, flow);
            PCpu &pc = pcpus[static_cast<std::size_t>(vc->assignedPcpu)];
            enqueue(pc, *vc, /*at_front=*/true);
            preemptIfNeeded(pc);
            break;
          }
          case VcpuState::running:
            // Already has the CPU: the Trigger's effect is immediate.
            if (flow.id != 0) {
                if (flow.final) {
                    rec_->flowEnd(obsTrack(), sim.now(), flow.id,
                                  "coord.span", "coord");
                } else {
                    rec_->flowStep(obsTrack(), sim.now(), flow.id,
                                   "coord.span", "coord");
                }
                rec_->instant(obsTrack(), sim.now(),
                              "boost:already-running", "xen",
                              {{"dom", static_cast<std::uint64_t>(
                                           dom.id())}});
            }
            break;
        }
    }
}

Tick
CreditScheduler::totalBusy() const
{
    Tick t = 0;
    for (const auto &pc : pcpus)
        t += pc.busy;
    return t;
}

void
CreditScheduler::setPcpuSpeed(int pcpu, double speed)
{
    PCpu &pc = pcpus.at(static_cast<std::size_t>(pcpu));
    speed = std::clamp(speed, 0.05, 1.0);
    if (pc.speed == speed)
        return;
    // Retire work done at the old speed, then re-plan the in-flight
    // segment at the new one.
    accrue(pc);
    pc.speed = speed;
    if (pc.current != nullptr) {
        sim.cancel(pc.segEvent);
        pc.segEvent = corm::sim::invalidEventId;
        if (!pc.current->jobs.empty()
            && pc.current->jobs.front().remaining == 0) {
            // The speed change landed exactly at a job boundary.
            onSegmentEnd(pc);
        } else {
            startSegment(pc);
        }
    }
}

void
CreditScheduler::resetBusy()
{
    for (auto &pc : pcpus) {
        // Keep an in-flight segment consistent: charge what has
        // accrued so far, then zero.
        accrue(pc);
        pc.busy = 0;
    }
}

void
CreditScheduler::onSubmit(Vcpu &vcpu)
{
    if (vcpu.st == VcpuState::blocked)
        wake(vcpu);
    // Runnable or running VCPUs simply have the job queued behind
    // whatever they are doing.
}

void
CreditScheduler::wake(Vcpu &vcpu)
{
    assert(vcpu.st == VcpuState::blocked);

    // Account iowait: time spent blocked while an I/O-like dependency
    // was outstanding is guest-visible iowait.
    vcpu.dom.flushIowait(vcpu);
    vcpu.blockedSince = 0;
    vcpu.st = VcpuState::runnable;

    // Xen's wake boost: an UNDER VCPU woken by an event preempts.
    if (vcpu.pendingBoost || vcpu.credit >= 0.0) {
        vcpu.prio = Priority::boost;
        vcpu.wakeTick = sim.now();
    } else {
        vcpu.prio = Priority::over;
    }
    vcpu.pendingBoost = false;
    traceEvent(SchedEvent::Kind::wake, vcpu, vcpu.assignedPcpu);

    // Prefer the home PCPU if idle, else any idle PCPU (wake-time
    // migration), else queue at home.
    PCpu *home = &pcpus[static_cast<std::size_t>(vcpu.assignedPcpu)];
    PCpu *target = home;
    if (home->current != nullptr && cfg.workStealing) {
        for (auto &pc : pcpus) {
            if (pc.current == nullptr) {
                target = &pc;
                break;
            }
        }
    }
    if (target != home) {
        stats_.migrations.add();
        vcpu.assignedPcpu = target->index;
    }
    enqueue(*target, vcpu);
    preemptIfNeeded(*target);
}

void
CreditScheduler::enqueue(PCpu &pc, Vcpu &vcpu, bool at_front)
{
    auto &q = pc.runq[static_cast<std::size_t>(vcpu.prio)];
    if (at_front)
        q.push_front(&vcpu);
    else
        q.push_back(&vcpu);
}

void
CreditScheduler::removeFromRunq(Vcpu &vcpu)
{
    PCpu &pc = pcpus[static_cast<std::size_t>(vcpu.assignedPcpu)];
    auto &q = pc.runq[static_cast<std::size_t>(vcpu.prio)];
    auto it = std::find(q.begin(), q.end(), &vcpu);
    if (it != q.end())
        q.erase(it);
}

void
CreditScheduler::dispatch(PCpu &pc)
{
    assert(pc.current == nullptr);

    // Pick the best candidate. With work stealing enabled the choice
    // is global, mirroring credit1's csched_load_balance: a dispatch
    // prefers a higher-class VCPU queued on another PCPU over a
    // lower-class local one (ties keep the local VCPU to limit
    // migrations).
    Vcpu *next = pickCandidate(pc, /*remove=*/true);
    if (next == nullptr)
        return; // idle
    if (next->assignedPcpu != pc.index) {
        next->assignedPcpu = pc.index;
        stats_.migrations.add();
        traceEvent(SchedEvent::Kind::migrate, *next, pc.index);
    }

    stats_.contextSwitches.add();
    traceEvent(SchedEvent::Kind::dispatch, *next, pc.index);
    if (next->prio == Priority::boost && next->wakeTick != 0) {
        stats_.boostDispatchUs.record(
            corm::sim::toMicros(sim.now() - next->wakeTick));
        // Out of line so dispatch() — the scheduler's hottest
        // function — keeps its untraced codegen.
        if (CORM_TRACE_ACTIVE(rec_))
            traceBoostDispatch(*next, pc);
        next->wakeTick = 0;
    }
    pc.current = next;
    next->st = VcpuState::running;
    pc.segStart = sim.now();
    pc.sliceEnd = sim.now() + cfg.sliceLimit;
    startSegment(pc);
}

void
CreditScheduler::traceBoostDispatch(Vcpu &vc, PCpu &pc)
{
    // The per-dispatch slice is dataplane detail (the trace-densest
    // event in the system); span legs below must record regardless.
    if (rec_->detail()) {
        rec_->complete(
            obsTrack(), vc.wakeTick, sim.now() - vc.wakeTick,
            "boost:dispatch-wait", "xen",
            {{"dom", static_cast<std::uint64_t>(vc.dom.id())},
             {"pcpu", pc.index}});
    }
    if (auto it = boostFlows.find(&vc); it != boostFlows.end()) {
        if (it->second.final) {
            rec_->flowEnd(obsTrack(), sim.now(), it->second.id,
                          "coord.span", "coord");
        } else {
            rec_->flowStep(obsTrack(), sim.now(), it->second.id,
                           "coord.span", "coord");
        }
        boostFlows.erase(it);
    }
}

void
CreditScheduler::startSegment(PCpu &pc)
{
    assert(pc.current != nullptr);
    assert(!pc.current->jobs.empty());

    // Wall time to finish the job at this PCPU's DVFS speed (round
    // up so rounding can never schedule the end before the work is
    // done; the residual converges across segments).
    const double remaining =
        static_cast<double>(pc.current->jobs.front().remaining);
    const Tick job_wall = static_cast<Tick>(
        std::ceil(remaining / pc.speed));
    const Tick job_end = sim.now() + job_wall;
    const Tick seg_end = std::min(job_end, pc.sliceEnd);
    pc.segEvent = sim.scheduleAt(seg_end, [this, &pc] {
        pc.segEvent = corm::sim::invalidEventId;
        onSegmentEnd(pc);
    });
}

void
CreditScheduler::accrue(PCpu &pc)
{
    if (pc.current == nullptr)
        return;
    const Tick delta = sim.now() - pc.segStart;
    if (delta == 0)
        return;
    pc.segStart = sim.now();
    pc.busy += delta;
    Vcpu &vc = *pc.current;
    vc.consumedSinceAcct = true;
    assert(!vc.jobs.empty());
    Job &job = vc.jobs.front();
    // Work retired scales with the PCPU's DVFS speed; usage is
    // charged in wall time (what the guest observes as CPU time).
    const Tick progress = pc.speed >= 1.0
        ? delta
        : static_cast<Tick>(static_cast<double>(delta) * pc.speed);
    job.remaining = job.remaining > progress ? job.remaining - progress
                                             : 0;
    vc.dom.usage.addBusy(job.kind, delta);

    // Continuous credit burn: creditsPerTick per tickPeriod executed.
    vc.credit -= static_cast<double>(delta) * cfg.creditsPerTick
        / static_cast<double>(cfg.tickPeriod);
    if (vc.credit < cfg.creditFloor)
        vc.credit = cfg.creditFloor;
}

void
CreditScheduler::onSegmentEnd(PCpu &pc)
{
    assert(pc.current != nullptr);
    accrue(pc);
    Vcpu &vc = *pc.current;

    // If a job finished, detach its callback now but run it only
    // after the VCPU's next state is settled: callbacks submit new
    // work (possibly to this very VCPU) and may wake BOOST-class
    // VCPUs that preempt this PCPU, so the scheduler state must be
    // consistent before user code runs.
    std::function<void()> callback;
    if (!vc.jobs.empty() && vc.jobs.front().remaining == 0) {
        callback = std::move(vc.jobs.front().onComplete);
        vc.jobs.pop_front();
        vc.dom.completed.add();
    }

    if (vc.jobs.empty()) {
        // Nothing left: block. A callback that submits fresh work
        // will wake the VCPU through the normal path.
        vc.st = VcpuState::blocked;
        vc.prio = priorityFromCredits(vc);
        vc.blockedSince = sim.now();
        pc.current = nullptr;
        traceEvent(SchedEvent::Kind::block, vc, pc.index);
        if (callback)
            callback();
        if (pc.current == nullptr)
            dispatch(pc);
        return;
    }

    if (sim.now() >= pc.sliceEnd) {
        // Slice expired: rotate to the tail of the queue.
        vc.st = VcpuState::runnable;
        vc.prio = priorityFromCredits(vc);
        pc.current = nullptr;
        enqueue(pc, vc);
        if (callback)
            callback();
        if (pc.current == nullptr)
            dispatch(pc);
        return;
    }

    // Keep running within the slice — unless the callback woke
    // something that preempted us.
    if (callback)
        callback();
    if (pc.current == &vc)
        startSegment(pc);
}

void
CreditScheduler::preemptIfNeeded(PCpu &pc)
{
    if (pc.current == nullptr) {
        dispatch(pc);
        return;
    }
    accrue(pc); // bring the running VCPU's credit up to date

    // A waiting BOOST VCPU preempts any non-BOOST runner. Below
    // BOOST: creditOrdered preempts on a one-tick credit lead;
    // classFifo preempts only on a strictly better class (the
    // credit1 rule — an OVER runner yields to a waiting UNDER).
    bool preempt = false;
    Vcpu &cur = *pc.current;
    Vcpu *best = pickCandidate(pc, /*remove=*/false);
    if (best == nullptr)
        return;
    if (best->prio == Priority::boost && cur.prio != Priority::boost) {
        preempt = true;
    } else if (cfg.creditOrderedDispatch) {
        preempt = best->credit > cur.credit + cfg.creditsPerTick;
    } else {
        preempt = static_cast<int>(best->prio)
            < static_cast<int>(cur.prio);
    }
    if (!preempt)
        return;

    sim.cancel(pc.segEvent);
    pc.segEvent = corm::sim::invalidEventId;
    cur.st = VcpuState::runnable;
    cur.prio = priorityFromCredits(cur);
    pc.current = nullptr;
    traceEvent(SchedEvent::Kind::preempt, cur, pc.index);
    enqueue(pc, cur);
    dispatch(pc);
}

void
CreditScheduler::onTick(PCpu &pc)
{
    accrue(pc);
    if (pc.current != nullptr) {
        // A tick ends any boost: priority falls back to the credit
        // classes.
        pc.current->prio = priorityFromCredits(*pc.current);
    }
    preemptIfNeeded(pc);
}

void
CreditScheduler::accounting()
{
    stats_.accountings.add();

    // Total credits to hand out this period, across all PCPUs.
    const double total =
        cfg.creditsPerAcct * static_cast<double>(pcpuCount());

    // A domain is active if any of its VCPUs consumed CPU since the
    // last accounting or is currently runnable/running.
    double active_weight = 0.0;
    for (Domain *dom : doms) {
        bool active = false;
        for (auto &vc : dom->vcpus) {
            if (vc->consumedSinceAcct || vc->st != VcpuState::blocked)
                active = true;
        }
        if (active)
            active_weight += dom->weight_;
    }
    if (active_weight <= 0.0)
        return;

    for (Domain *dom : doms) {
        bool active = false;
        int nvcpus = 0;
        for (auto &vc : dom->vcpus) {
            if (vc->consumedSinceAcct || vc->st != VcpuState::blocked)
                active = true;
            ++nvcpus;
        }
        for (auto &vc : dom->vcpus) {
            if (active) {
                vc->credit += total * (dom->weight_ / active_weight)
                    / static_cast<double>(nvcpus);
            }
            vc->credit = std::clamp(vc->credit, cfg.creditFloor,
                                    cfg.creditCap);
            vc->consumedSinceAcct = false;
        }
    }

    // Re-class queued runnable VCPUs from their new credit balances;
    // BOOST entries keep their class until first dispatch.
    for (auto &pc : pcpus) {
        std::vector<Vcpu *> queued;
        for (auto &q : pc.runq) {
            for (Vcpu *v : q)
                queued.push_back(v);
            q.clear();
        }
        for (Vcpu *v : queued) {
            if (v->prio != Priority::boost)
                v->prio = priorityFromCredits(*v);
            enqueue(pc, *v);
        }
        preemptIfNeeded(pc);
    }
}

Vcpu *
CreditScheduler::pickCandidate(PCpu &pc, bool remove)
{
    // Rank candidates: BOOST first (FIFO, local preferred on ties),
    // then by credit (creditOrdered) or class-then-FIFO (classFifo).
    // Remote queues are consulted only when work stealing is enabled,
    // mirroring credit1's per-dispatch load balance.
    Vcpu *best = nullptr;
    PCpu *best_home = nullptr;
    auto better = [this, &pc, &best](Vcpu *cand, const PCpu &home) {
        if (best == nullptr)
            return true;
        if (cand->prio != best->prio
            && (cand->prio == Priority::boost
                || best->prio == Priority::boost)) {
            return cand->prio == Priority::boost;
        }
        if (cfg.creditOrderedDispatch) {
            if (cand->credit != best->credit)
                return cand->credit > best->credit;
        } else {
            if (cand->prio != best->prio)
                return static_cast<int>(cand->prio)
                    < static_cast<int>(best->prio);
        }
        // Tie: prefer the local queue to limit migrations.
        return home.index == pc.index;
    };

    for (auto &home : pcpus) {
        if (&home != &pc && !cfg.workStealing)
            continue;
        for (auto &q : home.runq) {
            if (q.empty())
                continue;
            // FIFO within a class: only the head is a candidate.
            Vcpu *cand = q.front();
            if (better(cand, home)) {
                best = cand;
                best_home = &home;
            }
        }
    }
    if (best != nullptr && remove) {
        auto &q = best_home->runq[static_cast<std::size_t>(best->prio)];
        q.erase(std::find(q.begin(), q.end(), best));
    }
    return best;
}

Priority
CreditScheduler::priorityFromCredits(const Vcpu &vcpu)
{
    return vcpu.credit >= 0.0 ? Priority::under : Priority::over;
}

} // namespace corm::xen
