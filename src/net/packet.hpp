/**
 * @file
 * Packet and flow model for the simulated data path.
 *
 * Packets carry enough header structure for the IXP classifier to do
 * its job — a five-tuple for per-VM/per-flow classification and an
 * application tag standing in for the first payload bytes that the
 * deep-packet-inspection engine would parse (RUBiS request type, RTSP
 * session metadata). The actual payload is represented only by its
 * length; simulated components charge time for touching it.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/types.hpp"

namespace corm::net {

/** IPv4-style address; value semantics, printable. */
struct IpAddr
{
    std::uint32_t v = 0;

    constexpr IpAddr() = default;
    constexpr explicit IpAddr(std::uint32_t raw) : v(raw) {}

    /** Build from dotted-quad components. */
    constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
        : v((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16)
            | (std::uint32_t(c) << 8) | std::uint32_t(d))
    {}

    constexpr bool operator==(const IpAddr &o) const { return v == o.v; }
    constexpr bool operator!=(const IpAddr &o) const { return v != o.v; }
    constexpr bool operator<(const IpAddr &o) const { return v < o.v; }

    /** Dotted-quad string, for logs and tables. */
    std::string
    str() const
    {
        return std::to_string(v >> 24) + "."
            + std::to_string((v >> 16) & 0xff) + "."
            + std::to_string((v >> 8) & 0xff) + "."
            + std::to_string(v & 0xff);
    }
};

/** Transport protocol of a flow. */
enum class Proto : std::uint8_t { tcp, udp };

/** Classic transport five-tuple identifying a flow. */
struct FiveTuple
{
    IpAddr src;
    IpAddr dst;
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    Proto proto = Proto::tcp;

    bool
    operator==(const FiveTuple &o) const
    {
        return src == o.src && dst == o.dst && sport == o.sport
            && dport == o.dport && proto == o.proto;
    }
};

/** Hash functor so FiveTuple can key unordered containers. */
struct FiveTupleHash
{
    std::size_t
    operator()(const FiveTuple &t) const
    {
        std::uint64_t h = t.src.v;
        h = h * 0x9e3779b97f4a7c15ULL + t.dst.v;
        h = h * 0x9e3779b97f4a7c15ULL
            + ((std::uint64_t(t.sport) << 16) | t.dport);
        h = h * 0x9e3779b97f4a7c15ULL
            + static_cast<std::uint64_t>(t.proto);
        h ^= h >> 29;
        return static_cast<std::size_t>(h);
    }
};

/**
 * Application-level tag readable by deep packet inspection. In the
 * real system this information lives in the first payload bytes (an
 * HTTP request line, an RTSP DESCRIBE response); here the sender sets
 * the tag and the classifier charges inspection cycles to read it.
 */
struct AppTag
{
    /** What kind of payload the first bytes describe. */
    enum class Kind : std::uint8_t
    {
        none,         ///< opaque payload
        httpRequest,  ///< RUBiS request; value = request-type ordinal
        httpResponse, ///< RUBiS response; value = request-type ordinal
        rtspSetup,    ///< stream session setup; value = stream id
        mediaData,    ///< RTP/UDP media payload; value = stream id
    };

    Kind kind = Kind::none;
    std::uint32_t value = 0;
};

/**
 * A simulated packet. Heap-allocated and shared along the pipeline;
 * components annotate it (timestamps) rather than copying it.
 */
struct Packet
{
    /** Platform-unique packet id (monotonic per factory). */
    std::uint64_t id = 0;
    /** Transport five-tuple. */
    FiveTuple flow;
    /** Total wire size in bytes (headers + payload). */
    std::uint32_t bytes = 0;
    /** Tag the DPI classifier can read. */
    AppTag tag;
    /** When the packet entered the simulation (wire arrival / send). */
    corm::sim::Tick created = 0;
    /**
     * Opaque application context travelling with the packet, e.g. the
     * RUBiS request-state object. The receiving endpoint downcasts it.
     */
    std::shared_ptr<void> context;
};

using PacketPtr = std::shared_ptr<Packet>;

/**
 * Allocates packets with unique ids. One factory per simulation so
 * runs are independent of each other.
 */
class PacketFactory
{
  public:
    /** Create a packet with the next id and the given fields. */
    PacketPtr
    make(const FiveTuple &flow, std::uint32_t bytes,
         AppTag tag = AppTag{}, corm::sim::Tick now = 0)
    {
        auto p = std::make_shared<Packet>();
        p->id = ++lastId;
        p->flow = flow;
        p->bytes = bytes;
        p->tag = tag;
        p->created = now;
        return p;
    }

    /** Number of packets created so far. */
    std::uint64_t created() const { return lastId; }

  private:
    std::uint64_t lastId = 0;
};

/** Ethernet + IP + transport header overhead applied to payloads. */
inline constexpr std::uint32_t wireHeaderBytes = 54;

/** Conventional MTU used when segmenting application messages. */
inline constexpr std::uint32_t defaultMtu = 1500;

/**
 * Number of MTU-sized packets needed to carry @p payload_bytes of
 * application data (minimum one packet, e.g. for pure ACK/control).
 */
constexpr std::uint32_t
packetsForPayload(std::uint64_t payload_bytes,
                  std::uint32_t mtu = defaultMtu)
{
    const std::uint32_t mss = mtu - wireHeaderBytes;
    if (payload_bytes == 0)
        return 1;
    return static_cast<std::uint32_t>((payload_bytes + mss - 1) / mss);
}

} // namespace corm::net
