/**
 * @file
 * Bounded drop-tail queues with byte accounting.
 *
 * Used for the IXP per-VM packet rings in modelled DRAM (whose
 * occupancy drives the Fig. 7 Trigger policy), the host descriptor
 * rings, and any staging queue in the pipelines.
 */

#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "sim/stats.hpp"

namespace corm::net {

/**
 * A bounded FIFO of packets, limited in both packet count and total
 * bytes. Enqueue fails (drop-tail) when either bound would be
 * exceeded; drops are counted, mirroring what the IXP runtime exposes.
 */
class PacketQueue
{
  public:
    /**
     * @param max_packets Packet-count bound (0 = unbounded).
     * @param max_bytes Byte bound (0 = unbounded).
     */
    explicit PacketQueue(std::size_t max_packets = 0,
                         std::uint64_t max_bytes = 0)
        : packetCap(max_packets), byteCap(max_bytes)
    {}

    /**
     * Try to enqueue a packet.
     * @return true on success; false if the packet was dropped.
     */
    bool
    push(PacketPtr pkt)
    {
        const bool over_pkts =
            packetCap != 0 && fifo.size() >= packetCap;
        const bool over_bytes =
            byteCap != 0 && bytesQueued + pkt->bytes > byteCap;
        if (over_pkts || over_bytes) {
            drops.add();
            droppedBytes += pkt->bytes;
            return false;
        }
        bytesQueued += pkt->bytes;
        enqueued.add();
        fifo.push_back(std::move(pkt));
        return true;
    }

    /** Dequeue the oldest packet; empty() must be false. */
    PacketPtr
    pop()
    {
        PacketPtr p = std::move(fifo.front());
        fifo.pop_front();
        bytesQueued -= p->bytes;
        return p;
    }

    /**
     * Requeue a packet at the head after a failed downstream handoff
     * (e.g. a full descriptor ring). Never drops: the packet already
     * held its capacity when first admitted.
     */
    void
    pushFront(PacketPtr pkt)
    {
        bytesQueued += pkt->bytes;
        fifo.push_front(std::move(pkt));
    }

    /** Oldest packet without removing it; empty() must be false. */
    const PacketPtr &front() const { return fifo.front(); }

    /** True when no packets are queued. */
    bool empty() const { return fifo.empty(); }

    /** Packets currently queued. */
    std::size_t size() const { return fifo.size(); }

    /** Bytes currently queued. */
    std::uint64_t bytes() const { return bytesQueued; }

    /** Packet-count capacity (0 = unbounded). */
    std::size_t packetCapacity() const { return packetCap; }

    /** Byte capacity (0 = unbounded). */
    std::uint64_t byteCapacity() const { return byteCap; }

    /** Total packets ever accepted. */
    std::uint64_t totalEnqueued() const { return enqueued.value(); }

    /** Total packets ever dropped. */
    std::uint64_t totalDrops() const { return drops.value(); }

    /** Total bytes of dropped packets. */
    std::uint64_t totalDroppedBytes() const { return droppedBytes; }

    /** Clear contents (not the drop/enqueue counters). */
    void
    clear()
    {
        fifo.clear();
        bytesQueued = 0;
    }

  private:
    std::size_t packetCap;
    std::uint64_t byteCap;
    std::deque<PacketPtr> fifo;
    std::uint64_t bytesQueued = 0;
    std::uint64_t droppedBytes = 0;
    corm::sim::Counter enqueued;
    corm::sim::Counter drops;
};

} // namespace corm::net
