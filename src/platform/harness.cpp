/**
 * @file
 * Trial fan-out and cross-trial merging. See harness.hpp for the
 * determinism contract.
 */

#include "platform/harness.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace corm::platform {

void
runTrialsIndexed(int trials, int jobs,
                 const std::function<void(int)> &body)
{
    if (trials <= 0)
        return;
    if (jobs <= 0)
        jobs = trials;
    jobs = std::min(jobs, trials);

    if (jobs == 1) {
        // Run on the calling thread: no pool, exceptions propagate
        // directly. Identical results by construction (trial i's
        // output depends only on i and its derived seed).
        for (int i = 0; i < trials; ++i)
            body(i);
        return;
    }

    std::atomic<int> next{0};
    std::atomic<bool> abort{false};
    std::mutex errorLock;
    std::exception_ptr firstError;

    auto worker = [&] {
        for (;;) {
            if (abort.load(std::memory_order_relaxed))
                return;
            const int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= trials)
                return;
            try {
                body(i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> g(errorLock);
                    if (!firstError)
                        firstError = std::current_exception();
                }
                // Let the other workers wind down instead of
                // starting trials whose output will be discarded.
                abort.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

void
applyTrialSeed(RubisScenarioConfig &cfg, std::uint64_t seed)
{
    corm::sim::SplitMix64 sm(seed);
    cfg.client.seed = sm.next();
    cfg.server.seed = sm.next();
    // Fault weather is part of the trial: each trial replays its own
    // derived storm, so merged fault-sweep reports are identical for
    // any --jobs value. A no-fault plan ignores the seed.
    cfg.testbed.coordFaults.seed = sm.next();
}

namespace {

/** Pool per-trial (count, min, max, mean, stddev) rows. */
corm::sim::Summary
poolRow(const std::vector<RubisResult> &trials, std::size_t type)
{
    corm::sim::Summary pooled;
    for (const auto &t : trials) {
        const auto &row = t.types[type];
        pooled.merge(corm::sim::Summary::fromMoments(
            row.count, row.minMs, row.maxMs, row.meanMs,
            row.stddevMs));
    }
    return pooled;
}

} // namespace

MergedRubis
mergeRubisResults(const std::vector<RubisResult> &trials)
{
    MergedRubis m;
    m.trials = static_cast<int>(trials.size());
    if (trials.empty())
        return m;

    const double n = static_cast<double>(trials.size());
    m.mean = trials.front(); // copies names/shape; scalars overwritten

    // Per request type: the pooled distribution over the union of
    // all trials' samples (counts sum; min/max/mean/stddev combine
    // via the parallel-merge identities).
    m.typeMeanMs.resize(m.mean.types.size());
    for (std::size_t ty = 0; ty < m.mean.types.size(); ++ty) {
        const corm::sim::Summary pooled = poolRow(trials, ty);
        auto &row = m.mean.types[ty];
        row.count = pooled.count();
        row.minMs = pooled.min();
        row.maxMs = pooled.max();
        row.meanMs = pooled.mean();
        row.stddevMs = pooled.stddev();
        for (const auto &t : trials) {
            if (t.types[ty].count > 0)
                m.typeMeanMs[ty].record(t.types[ty].meanMs);
        }
    }

    // Every other field: cross-trial arithmetic mean (they are
    // per-run estimates, not totals).
    auto avg = [&](auto pick) {
        double s = 0.0;
        for (const auto &t : trials)
            s += pick(t);
        return s / n;
    };
    m.mean.throughputRps = avg([](auto &r) { return r.throughputRps; });
    m.mean.sessionsCompleted = static_cast<std::uint64_t>(
        avg([](auto &r) {
            return static_cast<double>(r.sessionsCompleted);
        }) +
        0.5);
    m.mean.avgSessionSec = avg([](auto &r) { return r.avgSessionSec; });
    m.mean.platformEfficiency =
        avg([](auto &r) { return r.platformEfficiency; });
    m.mean.webCpuPct = avg([](auto &r) { return r.webCpuPct; });
    m.mean.appCpuPct = avg([](auto &r) { return r.appCpuPct; });
    m.mean.dbCpuPct = avg([](auto &r) { return r.dbCpuPct; });
    m.mean.dom0CpuPct = avg([](auto &r) { return r.dom0CpuPct; });
    m.mean.webIowaitPct = avg([](auto &r) { return r.webIowaitPct; });
    m.mean.appIowaitPct = avg([](auto &r) { return r.appIowaitPct; });
    m.mean.dbIowaitPct = avg([](auto &r) { return r.dbIowaitPct; });
    m.mean.tunesSent = static_cast<std::uint64_t>(
        avg([](auto &r) { return static_cast<double>(r.tunesSent); }) +
        0.5);
    m.mean.tunesApplied = static_cast<std::uint64_t>(
        avg([](auto &r) {
            return static_cast<double>(r.tunesApplied);
        }) +
        0.5);
    m.mean.meanResponseMs =
        avg([](auto &r) { return r.meanResponseMs; });
    m.mean.minResponseMs = avg([](auto &r) { return r.minResponseMs; });
    m.mean.dbLockWaitMeanMs =
        avg([](auto &r) { return r.dbLockWaitMeanMs; });
    m.mean.dbLockWaitMaxMs =
        avg([](auto &r) { return r.dbLockWaitMaxMs; });
    m.mean.ingressMs = avg([](auto &r) { return r.ingressMs; });
    m.mean.webMs = avg([](auto &r) { return r.webMs; });
    m.mean.appMs = avg([](auto &r) { return r.appMs; });
    m.mean.dbMs = avg([](auto &r) { return r.dbMs; });
    m.mean.hopsMs = avg([](auto &r) { return r.hopsMs; });
    m.mean.egressMs = avg([](auto &r) { return r.egressMs; });
    m.mean.webWeight = avg([](auto &r) { return r.webWeight; });
    m.mean.appWeight = avg([](auto &r) { return r.appWeight; });
    m.mean.dbWeight = avg([](auto &r) { return r.dbWeight; });
    auto avgu = [&](auto pick) {
        return static_cast<std::uint64_t>(
            avg([&pick](auto &r) {
                return static_cast<double>(pick(r));
            }) +
            0.5);
    };
    m.mean.chanDropped = avgu([](auto &r) { return r.chanDropped; });
    m.mean.chanDuplicates =
        avgu([](auto &r) { return r.chanDuplicates; });
    m.mean.chanReorders = avgu([](auto &r) { return r.chanReorders; });
    m.mean.chanRetries = avgu([](auto &r) { return r.chanRetries; });
    m.mean.chanOutageMs = avg([](auto &r) { return r.chanOutageMs; });
    m.mean.regsAcked = avgu([](auto &r) { return r.regsAcked; });
    m.mean.regsAbandoned =
        avgu([](auto &r) { return r.regsAbandoned; });
    m.mean.regsPending = avgu([](auto &r) { return r.regsPending; });

    for (const auto &t : trials) {
        m.throughputRps.record(t.throughputRps);
        m.meanResponseMs.record(t.meanResponseMs);
        m.totalEvents += t.eventsExecuted;
    }
    m.mean.eventsExecuted = m.totalEvents;
    return m;
}

MergedMplayerQos
mergeMplayerResults(const std::vector<MplayerQosResult> &trials)
{
    MergedMplayerQos m;
    m.trials = static_cast<int>(trials.size());
    if (trials.empty())
        return m;
    const double n = static_cast<double>(trials.size());
    auto avg = [&](auto pick) {
        double s = 0.0;
        for (const auto &t : trials)
            s += pick(t);
        return s / n;
    };
    m.mean.fps1 = avg([](auto &r) { return r.fps1; });
    m.mean.fps2 = avg([](auto &r) { return r.fps2; });
    m.mean.late1 = static_cast<std::uint64_t>(
        avg([](auto &r) { return static_cast<double>(r.late1); }) +
        0.5);
    m.mean.late2 = static_cast<std::uint64_t>(
        avg([](auto &r) { return static_cast<double>(r.late2); }) +
        0.5);
    m.mean.cpu1Pct = avg([](auto &r) { return r.cpu1Pct; });
    m.mean.cpu2Pct = avg([](auto &r) { return r.cpu2Pct; });
    m.mean.dom0Pct = avg([](auto &r) { return r.dom0Pct; });
    m.mean.weight1End = avg([](auto &r) { return r.weight1End; });
    m.mean.weight2End = avg([](auto &r) { return r.weight2End; });
    for (const auto &t : trials) {
        m.fps1.record(t.fps1);
        m.fps2.record(t.fps2);
        m.totalEvents += t.eventsExecuted;
    }
    m.mean.eventsExecuted = m.totalEvents;
    return m;
}

MergedTrigger
mergeTriggerResults(const std::vector<TriggerScenarioResult> &trials)
{
    MergedTrigger m;
    m.trials = static_cast<int>(trials.size());
    if (trials.empty())
        return m;
    const double n = static_cast<double>(trials.size());
    auto avg = [&](auto pick) {
        double s = 0.0;
        for (const auto &t : trials)
            s += pick(t);
        return s / n;
    };
    auto avgu = [&](auto pick) {
        return static_cast<std::uint64_t>(
            avg([&pick](auto &r) {
                return static_cast<double>(pick(r));
            }) +
            0.5);
    };
    m.mean.fps1 = avg([](auto &r) { return r.fps1; });
    m.mean.fps2 = avg([](auto &r) { return r.fps2; });
    m.mean.late1 = avgu([](auto &r) { return r.late1; });
    m.mean.triggersSent = avgu([](auto &r) { return r.triggersSent; });
    m.mean.boosts = avgu([](auto &r) { return r.boosts; });
    m.mean.ixpQueueDrops =
        avgu([](auto &r) { return r.ixpQueueDrops; });
    m.mean.bufferPeakBytes =
        avg([](auto &r) { return r.bufferPeakBytes; });
    m.mean.driverPolls = avgu([](auto &r) { return r.driverPolls; });
    m.mean.driverInterrupts =
        avgu([](auto &r) { return r.driverInterrupts; });
    // Time series cannot be averaged point-for-point (sampling
    // instants differ across trials); the merged view carries trial
    // 0's traces as the representative run.
    m.mean.cpu1Series = trials.front().cpu1Series;
    m.mean.bufferSeries = trials.front().bufferSeries;
    for (const auto &t : trials) {
        m.fps1.record(t.fps1);
        m.fps2.record(t.fps2);
        m.totalEvents += t.eventsExecuted;
    }
    m.mean.eventsExecuted = m.totalEvents;
    return m;
}

} // namespace corm::platform
