/**
 * @file
 * Human-readable platform introspection report.
 *
 * Collects the statistics every component already keeps — scheduler,
 * islands, coordination channel, messaging driver, per-guest CPU —
 * into one formatted dump, the xentop/ixp-stats view an operator of
 * the prototype would have watched.
 */

#pragma once

#include <cstdio>
#include <sstream>
#include <string>

#include "coord/fabric.hpp"
#include "platform/testbed.hpp"

namespace corm::platform {

/**
 * Render a coordination-fabric report: the channel-health-style view
 * of an N-island fabric. Notably surfaces FabricStats::dropped — the
 * unroutable-destination count that the two-island report never had
 * a line for (a misconfigured binding silently vanished before).
 */
inline std::string
fabricReport(const corm::coord::CoordFabric &fabric)
{
    std::ostringstream out;
    char line[256];
    const auto &fs = fabric.stats();
    std::snprintf(
        line, sizeof(line),
        "[coord fabric] %s, %zu islands; sent %llu, delivered %llu, "
        "unroutable-dropped %llu, relays %llu\n",
        fabricTopologyName(fabric.params().topology),
        fabric.islandCount(),
        static_cast<unsigned long long>(fs.sent.value()),
        static_cast<unsigned long long>(fs.delivered.value()),
        static_cast<unsigned long long>(fs.dropped.value()),
        static_cast<unsigned long long>(fs.hubRelays.value()));
    out << line;
    std::snprintf(
        line, sizeof(line),
        "[fabric wire] messages %llu (tunes %llu), link drops %llu, "
        "replays %llu, abandoned %llu, dup-suppressed %llu\n",
        static_cast<unsigned long long>(fs.wireMessages.value()),
        static_cast<unsigned long long>(fs.wireTunes.value()),
        static_cast<unsigned long long>(fs.linkDrops.value()),
        static_cast<unsigned long long>(fs.linkReplays.value()),
        static_cast<unsigned long long>(fs.abandoned.value()),
        static_cast<unsigned long long>(fs.duplicates.value()));
    out << line;
    std::snprintf(
        line, sizeof(line),
        "[fabric agg] batches %llu, folded %llu, trigger bypass %llu; "
        "applied tunes %llu; latency mean %.0f us, hops mean %.1f\n",
        static_cast<unsigned long long>(fs.aggBatches.value()),
        static_cast<unsigned long long>(fs.aggFolded.value()),
        static_cast<unsigned long long>(fs.triggerBypass.value()),
        static_cast<unsigned long long>(fs.appliedTunes.value()),
        fs.deliveryLatencyUs.mean(), fs.hopsPerDelivery.mean());
    out << line;
    return out.str();
}

/** Render a full platform report into a string. */
inline std::string
statusReport(Testbed &tb)
{
    std::ostringstream out;
    char line[256];
    const corm::sim::Tick now = tb.sim().now();

    auto emit = [&out, &line] { out << line; };

    std::snprintf(line, sizeof(line),
                  "=== CoRM platform status @ %.3f s ===\n",
                  corm::sim::toSeconds(now));
    emit();

    // x86 island / scheduler.
    auto &sched = tb.scheduler();
    std::snprintf(line, sizeof(line),
                  "[x86 island] %d PCPUs, %zu domains; ctx switches "
                  "%llu, migrations %llu, boosts %llu\n",
                  sched.pcpuCount(), sched.domains().size(),
                  static_cast<unsigned long long>(
                      sched.stats().contextSwitches.value()),
                  static_cast<unsigned long long>(
                      sched.stats().migrations.value()),
                  static_cast<unsigned long long>(
                      sched.stats().boosts.value()));
    emit();
    for (int i = 0; i < sched.pcpuCount(); ++i) {
        std::snprintf(line, sizeof(line),
                      "  pcpu%d: busy %.3f s, dvfs %.2f\n", i,
                      corm::sim::toSeconds(sched.pcpuBusy(i)),
                      sched.pcpuSpeed(i));
        emit();
    }
    for (const auto *dom : sched.domains()) {
        using K = corm::sim::UtilizationTracker::Kind;
        const auto &u = dom->cpuUsage();
        std::snprintf(
            line, sizeof(line),
            "  dom %-12s w=%-5.0f user %.3fs sys %.3fs iowait "
            "%.3fs jobs %llu\n",
            dom->name().c_str(), dom->weight(),
            corm::sim::toSeconds(u.busy(K::user)),
            corm::sim::toSeconds(u.busy(K::system)),
            corm::sim::toSeconds(u.busy(K::iowait)),
            static_cast<unsigned long long>(dom->jobsCompleted()));
        emit();
    }

    // IXP island.
    const auto &ixps = tb.ixp().stats();
    std::snprintf(line, sizeof(line),
                  "[ixp island] wireRx %llu, wireTx %llu, classified "
                  "%llu, unknownDst %llu, drops %llu, dmaRejects "
                  "%llu, tunes %llu\n",
                  static_cast<unsigned long long>(ixps.wireRx.value()),
                  static_cast<unsigned long long>(ixps.wireTx.value()),
                  static_cast<unsigned long long>(
                      ixps.classified.value()),
                  static_cast<unsigned long long>(
                      ixps.unknownDst.value()),
                  static_cast<unsigned long long>(
                      ixps.vmQueueDrops.value()),
                  static_cast<unsigned long long>(
                      ixps.dmaRejects.value()),
                  static_cast<unsigned long long>(
                      ixps.tunesApplied.value()));
    emit();

    // Coordination channel. The delivery-latency histogram lives in
    // the registry; quote its percentiles rather than bucket dumps.
    const auto &cs = tb.channel().stats();
    double latP50 = 0.0, latP99 = 0.0, latP999 = 0.0;
    if (const corm::obs::Histogram *h = tb.metrics().findHistogram(
            "coord.channel.delivery_latency_us{channel="
            + tb.channel().name() + "}")) {
        latP50 = h->quantile(0.50);
        latP99 = h->quantile(0.99);
        latP999 = h->quantile(0.999);
    }
    std::snprintf(
        line, sizeof(line),
        "[coord channel] sent %llu, delivered %llu, dropped %llu "
        "(tunes %llu, triggers %llu, regs %llu); latency mean %.0f "
        "p50 %.0f p99 %.0f p999 %.0f us\n",
        static_cast<unsigned long long>(cs.sent.value()),
        static_cast<unsigned long long>(cs.delivered.value()),
        static_cast<unsigned long long>(cs.dropped.value()),
        static_cast<unsigned long long>(cs.tunes.value()),
        static_cast<unsigned long long>(cs.triggers.value()),
        static_cast<unsigned long long>(cs.registrations.value()),
        cs.deliveryLatencyUs.mean(), latP50, latP99, latP999);
    emit();
    const auto health = tb.channel().health();
    std::snprintf(
        line, sizeof(line),
        "[coord health] retries %llu, dup-suppressed %llu, reorders "
        "%llu; faults: lost %llu, dup %llu, spiked %llu, outage drops "
        "%llu, outage %.1f ms\n",
        static_cast<unsigned long long>(cs.retries.value()),
        static_cast<unsigned long long>(cs.duplicates.value()),
        static_cast<unsigned long long>(cs.reorders.value()),
        static_cast<unsigned long long>(health.lost),
        static_cast<unsigned long long>(health.duplicated),
        static_cast<unsigned long long>(health.spiked),
        static_cast<unsigned long long>(health.outageDrops),
        health.outageTimeUs / 1000.0);
    emit();

    // Messaging driver.
    std::snprintf(line, sizeof(line),
                  "[msg driver] delivered %llu, transmitted %llu, "
                  "polls %llu, interrupts %llu\n",
                  static_cast<unsigned long long>(
                      tb.driver().totalDelivered()),
                  static_cast<unsigned long long>(
                      tb.driver().totalTransmitted()),
                  static_cast<unsigned long long>(
                      tb.driver().totalPolls()),
                  static_cast<unsigned long long>(
                      tb.driver().totalInterrupts()));
    emit();

    // Registration reliability.
    std::snprintf(line, sizeof(line),
                  "[registration] acked %llu, retries %llu, "
                  "abandoned %llu, pending %zu\n",
                  static_cast<unsigned long long>(
                      tb.announcer().acked()),
                  static_cast<unsigned long long>(
                      tb.announcer().retries()),
                  static_cast<unsigned long long>(
                      tb.announcer().abandoned()),
                  tb.announcer().pendingCount());
    emit();

    // Power.
    std::snprintf(line, sizeof(line),
                  "[power] x86 %.1f W + ixp %.1f W\n",
                  tb.x86().currentPowerWatts(),
                  tb.ixp().currentPowerWatts());
    emit();

    // Online health monitor, when armed.
    if (const corm::obs::HealthMonitor *mon = tb.monitor())
        out << mon->healthReport();

    return out.str();
}

/**
 * Render the unified metric registry (obs/metrics.hpp) as text —
 * the machine-flavoured companion to statusReport(), one
 * `name{labels} value` line per metric in sorted order.
 */
inline std::string
metricsReport(Testbed &tb)
{
    std::ostringstream out;
    out << "=== CoRM metrics @ "
        << corm::sim::toSeconds(tb.sim().now()) << " s ===\n";
    tb.metrics().writeText(out);
    return out.str();
}

} // namespace corm::platform
