/**
 * @file
 * Experiment scenario implementations. Parameter choices and their
 * calibration against the paper's reported shapes are documented in
 * EXPERIMENTS.md.
 */

#include "platform/scenarios.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <set>

#include "obs/flowprofile.hpp"
#include "obs/monitor.hpp"
#include "obs/shardcapture.hpp"
#include "sim/sharded.hpp"

namespace corm::platform {

using corm::net::IpAddr;
using corm::net::PacketPtr;
using corm::sim::msec;
using corm::sim::sec;
using corm::sim::Tick;
using corm::sim::usec;

//
// BackgroundLoad
//

BackgroundLoad::BackgroundLoad(corm::sim::Simulator &simulator,
                               corm::xen::Domain &dom, Tick slice_,
                               double duty_, int vcpu_)
    : sim(simulator), target(dom), slice(slice_), duty(duty_), vcpu(vcpu_)
{}

void
BackgroundLoad::start()
{
    running = true;
    pump();
}

void
BackgroundLoad::pump()
{
    if (!running)
        return;
    target.submit(slice, corm::xen::JobKind::user,
                  [this] {
                      if (duty >= 1.0) {
                          pump();
                          return;
                      }
                      const auto idle = static_cast<Tick>(
                          static_cast<double>(slice) * (1.0 - duty)
                          / duty);
                      sim.schedule(idle, [this] { pump(); });
                  },
                  vcpu);
}

//
// RUBiS scenario
//

RubisScenarioConfig::RubisScenarioConfig()
{
    client.concurrentSessions = 60;
    client.thinkTimeMean = 250 * msec;
    client.sessionLengthMean = 50.0;
    client.mix = apps::rubis::Mix::bidBrowseSell;

    // The 2010 prototype runs the literal credit1 scheduler; its
    // class-FIFO latency behaviour is what the coordination acts on.
    testbed.sched.creditOrderedDispatch = false;

    // Dom0 carries the messaging driver and every bridge hop; give
    // it the elevated weight operators configure so guest tuning
    // cannot starve the I/O path (applies to base and coordinated
    // runs alike).
    testbed.dom0Weight = 512.0;

    // Per-request tunes ride between these bounds (the XenCtl range
    // the operators expose); a narrow band keeps the bang-bang
    // dynamics responsive to request bursts at the ~100 ms scale.
    testbed.sched.minWeight = 64.0;
    testbed.sched.maxWeight = 1024.0;
}

RubisResult
runRubisScenario(const RubisScenarioConfig &cfg)
{
    Testbed tb(cfg.testbed);
    auto &web = tb.addGuest("web-server", IpAddr{10, 0, 0, 2},
                            cfg.tierWeight);
    auto &app = tb.addGuest("app-server", IpAddr{10, 0, 0, 3},
                            cfg.tierWeight);
    auto &db = tb.addGuest("db-server", IpAddr{10, 0, 0, 4},
                           cfg.tierWeight);

    apps::rubis::RubisServer server(tb.sim(), *web.vif, *app.vif, *db.vif,
                                    tb.bridge(), tb.packets(), cfg.server);
    apps::rubis::RubisClient client(tb.sim(), tb.ixp(), web.vif->ip(),
                                    tb.packets(), cfg.client);
    tb.setWireSink(cfg.client.clientIp,
                   [&client](const PacketPtr &p) { client.onWirePacket(p); });

    coord::RequestTypeTunePolicy policy(cfg.damping);
    std::unique_ptr<coord::ReliableSender> reliable;
    if (cfg.coordination) {
        tb.x86().setTuneDecay(cfg.tuneDecayTau);
        apps::rubis::installRubisAdjustments(policy, web.ref, app.ref,
                                             db.ref, cfg.tuneDelta,
                                             cfg.gains);
        tb.attachPolicy(policy);
        if (cfg.reliableTunes) {
            // Route Tunes through ack + retry instead of
            // fire-and-forget. The announcer's sender is pinned to
            // the x86 endpoint, so an IXP-side sender coexists.
            reliable = std::make_unique<coord::ReliableSender>(
                tb.sim(), tb.channel(), tb.ixp().id(),
                cfg.reliableParams);
            if (cfg.testbed.trace != nullptr)
                reliable->setTrace(cfg.testbed.trace);
            policy.attachSender(
                tb.ixp().id(),
                [&rel = *reliable](const coord::CoordMessage &m) {
                    rel.send(m);
                });
        }
    }

    // Let the entity registrations cross the coordination channel
    // before traffic arrives, as at real system bring-up.
    tb.run(1 * msec);
    client.start();
    tb.run(cfg.warmup);
    tb.beginMeasurement();
    client.resetStats();
    tb.run(cfg.measure);

    RubisResult r;
    const Tick elapsed = tb.measuredElapsed();
    for (const auto &spec : apps::rubis::requestCatalog()) {
        const auto &s = client.typeStats(spec.type).responseMs;
        RubisResult::TypeRow row;
        row.name = spec.name;
        row.count = s.count();
        row.minMs = s.min();
        row.maxMs = s.max();
        row.meanMs = s.mean();
        row.stddevMs = s.stddev();
        r.types.push_back(std::move(row));
    }
    r.throughputRps = static_cast<double>(client.completedRequests())
        / corm::sim::toSeconds(elapsed);
    r.sessionsCompleted = client.completedSessions();
    r.avgSessionSec = client.sessionSeconds().mean();
    r.webCpuPct = tb.guestCpuPct(web);
    r.appCpuPct = tb.guestCpuPct(app);
    r.dbCpuPct = tb.guestCpuPct(db);
    r.webIowaitPct = tb.guestIowaitPct(web);
    r.appIowaitPct = tb.guestIowaitPct(app);
    r.dbIowaitPct = tb.guestIowaitPct(db);
    {
        const auto &u = tb.dom0().cpuUsage();
        using K = corm::sim::UtilizationTracker::Kind;
        r.dom0CpuPct = 100.0
            * static_cast<double>(u.busy(K::user) + u.busy(K::system))
            / static_cast<double>(elapsed);
    }
    const double total_util =
        (r.webCpuPct + r.appCpuPct + r.dbCpuPct) / 100.0;
    r.platformEfficiency =
        total_util > 0.0 ? r.throughputRps / total_util : 0.0;
    r.tunesSent = policy.tunesSent();
    r.tunesApplied = tb.x86().totalTunes();
    {
        const auto &cs = tb.channel().stats();
        r.chanDropped = cs.dropped.value();
        r.chanDuplicates = cs.duplicates.value();
        r.chanReorders = cs.reorders.value();
        r.chanRetries = cs.retries.value();
        r.chanOutageMs = tb.channel().health().outageTimeUs / 1000.0;
        r.regsAcked = tb.announcer().acked();
        r.regsAbandoned = tb.announcer().abandoned();
        r.regsPending = tb.announcer().pendingCount();
    }
    r.meanResponseMs = client.allResponsesMs().mean();
    r.minResponseMs = client.allResponsesMs().min();
    r.dbLockWaitMeanMs = server.dbLockWaitMs().mean();
    r.dbLockWaitMaxMs = server.dbLockWaitMs().max();
    {
        const auto &bd = client.breakdown();
        r.ingressMs = bd.ingressMs.mean();
        r.webMs = bd.tierMs[0].mean();
        r.appMs = bd.tierMs[1].mean();
        r.dbMs = bd.tierMs[2].mean();
        r.hopsMs = bd.hopsMs.mean();
        r.egressMs = bd.egressMs.mean();
    }
    r.webWeight = web.dom->weight();
    r.appWeight = app.dom->weight();
    r.dbWeight = db.dom->weight();
    r.eventsExecuted = tb.sim().executedEvents();
    if (cfg.inspect)
        cfg.inspect(tb);
    return r;
}

//
// MPlayer weight QoS (Fig. 6)
//

MplayerQosConfig::MplayerQosConfig()
{
    testbed.dom0Vcpus = 1; // polling, bridge and qemu-dm share it
    testbed.sched.creditOrderedDispatch = false; // 2010 credit1

    stream1.fps = 20.0;
    stream1.bitrateBps = 300e3;
    stream1.prebufferSec = 3.0;
    stream1.streamId = 1;

    stream2.fps = 25.0;
    stream2.bitrateBps = 1e6;
    stream2.prebufferSec = 3.0;
    stream2.streamId = 2;

    // Decode costs put Domain-1 at ~0.52 and Domain-2 at ~0.66 of a
    // core at nominal rate — just above their default-weight shares
    // and just below their tuned shares, which is what makes the
    // Fig. 6 weight steps flip them between missing and meeting
    // their frame-rate floors. See EXPERIMENTS.md.
    decode1.baseCostPerFrame = 25 * msec;
    decode1.costPerKib = 1 * msec;
    decode1.lateDeadline = 700 * msec;

    decode2.baseCostPerFrame = 22400 * usec;
    decode2.costPerKib = 1 * msec;
    decode2.lateDeadline = 700 * msec;
}

MplayerQosResult
runMplayerQos(const MplayerQosConfig &cfg)
{
    TestbedParams tp = cfg.testbed;
    tp.dom0Weight = cfg.dom0Weight;
    Testbed tb(tp);

    auto &dom1 = tb.addGuest("mplayer-dom1", IpAddr{10, 0, 1, 2},
                             cfg.weight1);
    auto &dom2 = tb.addGuest("mplayer-dom2", IpAddr{10, 0, 1, 3},
                             cfg.weight2);

    apps::mplayer::MplayerClient c1(tb.sim(), *dom1.vif, cfg.decode1);
    apps::mplayer::MplayerClient c2(tb.sim(), *dom2.vif, cfg.decode2);

    apps::mplayer::StreamingServer::Params sp1;
    sp1.stream = cfg.stream1;
    sp1.serverIp = IpAddr{10, 0, 9, 2};
    apps::mplayer::StreamingServer s1(tb.sim(), tb.ixp(), dom1.vif->ip(),
                                      tb.packets(), sp1);
    apps::mplayer::StreamingServer::Params sp2;
    sp2.stream = cfg.stream2;
    sp2.serverIp = IpAddr{10, 0, 9, 3};
    apps::mplayer::StreamingServer s2(tb.sim(), tb.ixp(), dom2.vif->ip(),
                                      tb.packets(), sp2);

    // Heavy Dom0 device-emulation load (HVM qemu-dm era), the CPU
    // the guests' weight increases reclaim.
    BackgroundLoad qemu(tb.sim(), tb.dom0(), 2 * msec, 1.0, 0);
    if (cfg.dom0Background)
        qemu.start();

    coord::StreamQosTunePolicy policy(cfg.autoCfg);
    if (cfg.autoCoordination)
        tb.attachPolicy(policy);

    if (cfg.ixpThreadBonus2 > 0.0) {
        // "increase the number of IXP threads servicing Domain-2's
        // receive queue in tandem" — expressed through the island's
        // own Tune translation (threadsPerTuneUnit).
        tb.ixp().applyTune(dom2.entity,
                           cfg.ixpThreadBonus2 * 256.0);
    }

    tb.run(1 * msec); // registrations cross the channel first
    s1.start();
    s2.start();
    tb.run(cfg.warmup);
    tb.beginMeasurement();
    c1.resetStats();
    c2.resetStats();
    tb.run(cfg.measure);

    MplayerQosResult r;
    const Tick elapsed = tb.measuredElapsed();
    r.fps1 = c1.fps(elapsed);
    r.fps2 = c2.fps(elapsed);
    r.late1 = c1.framesDroppedLate();
    r.late2 = c2.framesDroppedLate();
    r.cpu1Pct = tb.guestCpuPct(dom1);
    r.cpu2Pct = tb.guestCpuPct(dom2);
    {
        const auto &u = tb.dom0().cpuUsage();
        using K = corm::sim::UtilizationTracker::Kind;
        r.dom0Pct = 100.0
            * static_cast<double>(u.busy(K::user) + u.busy(K::system))
            / static_cast<double>(elapsed);
    }
    r.weight1End = dom1.dom->weight();
    r.weight2End = dom2.dom->weight();
    r.eventsExecuted = tb.sim().executedEvents();
    if (cfg.inspect)
        cfg.inspect(tb);
    return r;
}

//
// Buffer-threshold Trigger (Fig. 7, Table 3)
//

TriggerScenarioConfig::TriggerScenarioConfig()
{
    testbed.dom0Vcpus = 2;
    testbed.sched.creditOrderedDispatch = false; // 2010 credit1
    testbed.ringSlots = 64; // small host ring: bursts back-pressure

    stream1.fps = 25.0;
    stream1.bitrateBps = 1e6;
    stream1.prebufferSec = 4.0;
    stream1.streamId = 1;

    decode1.baseCostPerFrame = 26 * msec;
    decode1.costPerKib = 1 * msec;
    // Streaming players keep a deep playout buffer; a frame is only
    // skipped once it is hopelessly behind.
    decode1.lateDeadline = 6600 * msec;

    triggerCfg.thresholdBytes = 128 * 1024;
    triggerCfg.minGap = 50 * msec;
}

TriggerScenarioResult
runTriggerScenario(const TriggerScenarioConfig &cfg)
{
    Testbed tb(cfg.testbed);
    auto &dom1 = tb.addGuest("mplayer-net", IpAddr{10, 0, 2, 2}, 256.0);
    auto &dom2 = tb.addGuest("mplayer-disk", IpAddr{10, 0, 2, 3}, 256.0);

    apps::mplayer::MplayerClient c1(tb.sim(), *dom1.vif, cfg.decode1);
    apps::mplayer::DiskPlayer d2(*dom2.dom, cfg.diskFrameCost);

    // Dom0 housekeeping load: keeps the host contended enough that
    // scheduling position matters during burst drains.
    BackgroundLoad dom0bg(tb.sim(), tb.dom0(), 2 * msec,
                          cfg.dom0BackgroundDuty, 1);
    if (cfg.dom0BackgroundDuty > 0.0)
        dom0bg.start();

    apps::mplayer::StreamingServer::Params sp;
    sp.stream = cfg.stream1;
    sp.pacing = apps::mplayer::Pacing::bursty;
    sp.burstSec = cfg.burstSec;
    apps::mplayer::StreamingServer server(tb.sim(), tb.ixp(),
                                          dom1.vif->ip(), tb.packets(),
                                          sp);

    coord::BufferThresholdTriggerPolicy policy(cfg.triggerCfg);
    if (cfg.trigger)
        tb.attachPolicy(policy);

    tb.run(1 * msec); // registrations cross the channel first
    d2.start();
    server.start();
    tb.run(cfg.warmup);
    tb.beginMeasurement();
    c1.resetStats();
    d2.resetStats();

    // Fig. 7 CPU-utilisation series for the boosted domain.
    TriggerScenarioResult r;
    Tick last_busy = 0;
    corm::sim::PeriodicEvent sampler(
        tb.sim(), cfg.cpuSamplePeriod, [&] {
            using K = corm::sim::UtilizationTracker::Kind;
            const auto &u = dom1.dom->cpuUsage();
            const Tick busy = u.busy(K::user) + u.busy(K::system);
            r.cpu1Series.record(
                tb.sim().now(),
                100.0 * static_cast<double>(busy - last_busy)
                    / static_cast<double>(cfg.cpuSamplePeriod));
            last_busy = busy;
        });

    const Tick measure_start = tb.sim().now();
    tb.run(cfg.measure);

    const Tick elapsed = tb.measuredElapsed();
    r.fps1 = c1.fps(elapsed);
    r.fps2 = d2.fps(elapsed);
    r.late1 = c1.framesDroppedLate();
    r.triggersSent = policy.triggersSent();
    r.boosts = tb.scheduler().stats().boosts.value();
    r.ixpQueueDrops = tb.ixp().queueDrops(dom1.entity);
    r.driverPolls = tb.driver().totalPolls();
    r.driverInterrupts = tb.driver().totalInterrupts();

    // Copy the measured window of the IXP occupancy trace.
    if (const auto *series = tb.ixp().occupancySeries(dom1.entity)) {
        for (const auto &p : series->data()) {
            if (p.when >= measure_start) {
                r.bufferSeries.record(p.when, p.value);
                r.bufferPeakBytes =
                    std::max(r.bufferPeakBytes, p.value);
            }
        }
    }
    r.eventsExecuted = tb.sim().executedEvents();
    if (cfg.inspect)
        cfg.inspect(tb);
    return r;
}

//
// Scale-out fabric scenario
//

namespace {

/**
 * A shard island: hosts per-tier weight state (a slice of a sharded
 * RUBiS deployment) and counts what the fabric delivers to it. The
 * root instance doubles as the classifier island, accumulating the
 * shards' upward load reports into the same per-tier weights.
 */
class ShardIsland final : public coord::ResourceIsland
{
  public:
    ShardIsland(coord::IslandId island_id, std::string island_name)
        : id_(island_id), name_(std::move(island_name))
    {}

    coord::IslandId id() const override { return id_; }
    const std::string &name() const override { return name_; }

    void
    applyTune(coord::EntityId entity, double delta) override
    {
        weights[entity] += delta;
        tunes.add();
    }

    void applyTrigger(coord::EntityId entity) override
    {
        (void)entity;
        triggers.add();
    }

    void learnBinding(const coord::EntityBinding &binding) override
    {
        learned.insert(binding.ref.entity);
    }

    double currentPowerWatts() const override { return 5.0; }

    double
    weight(coord::EntityId entity) const
    {
        auto it = weights.find(entity);
        return it == weights.end() ? 0.0 : it->second;
    }

    std::map<coord::EntityId, double> weights;
    std::set<coord::EntityId> learned;
    corm::sim::Counter tunes;
    corm::sim::Counter triggers;

  private:
    coord::IslandId id_;
    std::string name_;
};

} // namespace

FabricScenarioResult
runFabricScenario(const FabricScenarioConfig &cfg)
{
    FabricScenarioResult r;
    const int n = std::max(2, cfg.islands);
    r.islands = n;
    assert(cfg.firstIslandId >= 0
           && static_cast<std::size_t>(cfg.firstIslandId)
                   + static_cast<std::size_t>(n)
               <= coord::maxIslands
           && "island ids must fit IslandId");
    const auto rootId = static_cast<coord::IslandId>(cfg.firstIslandId);
    const coord::EntityId tierBase = 100;
    const int K = cfg.shards > 0 ? std::min(cfg.shards, n) : 0;

    coord::FabricParams fp = cfg.fabric;
    fp.hub = rootId;

    // Sharded mode: one Simulator per shard advancing concurrently
    // under a one-hop conservative lookahead. The fabric's primary
    // simulator is shard 0's — the root classifier always lives
    // there, so the reliable senders and the announcer (which keep
    // per-message state) stay single-shard and race-free.
    std::unique_ptr<corm::sim::ShardedEngine> engine;
    std::unique_ptr<corm::sim::Simulator> soloSim;
    std::vector<int> shardOf;
    if (K > 0) {
        engine = std::make_unique<corm::sim::ShardedEngine>(
            K, fp.hopLatency, cfg.seed);
        shardOf.assign(
            static_cast<std::size_t>(cfg.firstIslandId + n), 0);
        // Contiguous id-ordered placement: island index i lands on
        // shard i*K/n, so the root (i == 0) is always on shard 0.
        for (int i = 0; i < n; ++i)
            shardOf[static_cast<std::size_t>(cfg.firstIslandId + i)] =
                static_cast<int>(static_cast<long long>(i) * K / n);
    } else {
        soloSim = std::make_unique<corm::sim::Simulator>();
    }
    corm::sim::Simulator &sim = engine ? engine->sim(0) : *soloSim;
    // Trace capture: legacy mode records straight into cfg.trace;
    // sharded mode gives every shard a window-local recorder and
    // merges them at barriers in canonical order, so the merged
    // JSON is byte-identical for every shard count >= 1 and the
    // digest matches a capture-off run (capture schedules nothing).
    corm::obs::TraceRecorder *const trace = cfg.trace;
    std::unique_ptr<corm::obs::ShardCapture> capture;
    if (engine && trace)
        capture = std::make_unique<corm::obs::ShardCapture>(
            trace, K,
            [eng = engine.get()](int k) { return eng->sim(k).now(); });
    // The recorder everything running on shard 0 — the scenario's
    // policy stand-in, the announcer, the trigger sender — writes to.
    corm::obs::TraceRecorder *const rootRec =
        capture ? capture->shardRecorder(0) : trace;
    coord::CoordFabric fabric(sim, fp);
    if (!engine)
        fabric.setTrace(trace);

    std::vector<std::unique_ptr<ShardIsland>> islands;
    for (int i = 0; i < n; ++i) {
        const auto id = static_cast<coord::IslandId>(rootId + i);
        islands.push_back(std::make_unique<ShardIsland>(
            id, (i == 0 ? "classifier" : "shard")
                    + std::to_string(static_cast<int>(id))));
        fabric.attach(*islands.back());
    }
    ShardIsland &root = *islands.front();

    // Per-lane stall watchdogs: one heartbeat lane per mailbox
    // direction. Legacy mode feeds the monitor live from the
    // mailboxes' activity observers; sharded mode has no mailboxes,
    // so the fabric logs lane activity shard-locally and the barrier
    // probe replays it into the monitor in canonical order with
    // explicit timestamps — watchdog state is then a pure function
    // of the global event set, identical for every shard count.
    corm::obs::MetricRegistry registry;
    std::unique_ptr<corm::obs::HealthMonitor> monitor;
    corm::obs::HealthMonitor::Params monitorParams;
    std::map<std::uint64_t, int> laneMon; // directional lane id -> monitor lane
    if (cfg.monitorLanes) {
        monitor = std::make_unique<corm::obs::HealthMonitor>(
            sim, registry, monitorParams);
        monitor->setMirrorTrace(trace);
        if (!engine) {
            fabric.forEachLane([&](const std::string &lane_name,
                                   corm::interconnect::Mailbox &mb) {
                const int lane = monitor->lane(lane_name);
                mb.setActivityObserver(
                    [mon = monitor.get(),
                     lane](corm::interconnect::Mailbox::Activity a) {
                        using A = corm::interconnect::Mailbox::Activity;
                        if (a == A::sent)
                            mon->laneSent(lane);
                        else if (a == A::delivered)
                            mon->laneDelivered(lane);
                    });
            });
            monitor->start();
        } else {
            fabric.forEachLaneId(
                [&](const std::string &lane_name, std::uint64_t id) {
                    laneMon[id] = monitor->lane(lane_name);
                });
            fabric.setLaneActivityRecording(true);
        }
    }
    if (cfg.wire)
        cfg.wire(fabric);
    if (engine) {
        fabric.enableSharding(*engine, shardOf);
        if (capture) {
            std::vector<corm::obs::TraceRecorder *> recs;
            for (int k = 0; k < K; ++k)
                recs.push_back(capture->shardRecorder(k));
            fabric.setShardTrace(recs);
        }
    }

    // Self-observability: fabric counters plus, under sharding, the
    // engine's per-window accounting as shard{k}-labelled metrics.
    // Everything is read through callbacks at snapshot/sample time;
    // nothing here schedules events, so capture cannot perturb the
    // digest. Host-time costs (barrier waits) stay out of the
    // registry — they are nondeterministic and would poison replay
    // comparisons.
    {
        const coord::FabricStats &fs = fabric.stats();
        const auto cnt = [&](const char *metric_name,
                             const corm::sim::Counter &c) {
            registry.counterFn(metric_name, {},
                               [&c] { return c.value(); });
        };
        cnt("fabric.wire.messages", fs.wireMessages);
        cnt("fabric.wire.tunes", fs.wireTunes);
        cnt("fabric.tunes.applied", fs.appliedTunes);
        cnt("fabric.agg.batches", fs.aggBatches);
        cnt("fabric.agg.folded", fs.aggFolded);
        cnt("fabric.link.drops", fs.linkDrops);
        cnt("fabric.link.replays", fs.linkReplays);
        cnt("fabric.abandoned", fs.abandoned);
        cnt("fabric.duplicates", fs.duplicates);
        if (engine) {
            auto *eng = engine.get();
            registry.counterFn("shard.windows", {}, [eng] {
                return eng->stats().windows;
            });
            registry.counterFn("shard.boundary.messages", {}, [eng] {
                return eng->stats().messages;
            });
            registry.counterFn("shard.boundary.batches", {}, [eng] {
                return eng->stats().batches;
            });
            registry.gaugeFn("shard.boundary.depth_high_water", {},
                             [eng] {
                                 return static_cast<double>(
                                     eng->stats().maxBoundaryDepth);
                             });
            for (int k = 0; k < K; ++k) {
                const corm::obs::Labels lbl = {
                    {"shard", std::to_string(k)}};
                registry.counterFn("shard.posted", lbl, [eng, k] {
                    return eng->postedBy(k);
                });
                registry.counterFn("shard.received", lbl, [eng, k] {
                    return eng->receivedBy(k);
                });
                registry.counterFn("shard.events", lbl, [eng, k] {
                    return eng->sim(k).executedEvents();
                });
            }
        }
    }

    // Event-scheduling seams: in sharded mode an island's events must
    // land on its own shard's simulator, and runs go through the
    // engine's windowed loop.
    const auto simOf = [&](coord::IslandId id) -> corm::sim::Simulator & {
        return engine ? engine->sim(shardOf[id]) : sim;
    };
    const auto runFor = [&](Tick d) {
        if (engine)
            engine->runFor(d);
        else
            sim.runFor(d);
    };

    // Policy intent: the exact weight every (island, tier) should
    // settle at — adjusted down when the fabric reports a delta as
    // abandoned, so convergence targets what the fabric still owes.
    std::map<std::uint64_t, double> intent;
    const auto intentKey = [](coord::IslandId island,
                              coord::EntityId entity) {
        return (static_cast<std::uint64_t>(island) << 32) | entity;
    };
    std::uint64_t abandonedLogicalTunes = 0;
    fabric.setAbandonObserver([&](const coord::CoordMessage &m) {
        // Only fire-and-forget tunes carry conservation-ledger deltas
        // (sequenced messages belong to a ReliableSender, which owns
        // their terminal abandon). A tune bound for a migrated entity
        // is attributed against the entity's *current* home — its
        // intent entry moved there with the migration handoff.
        if (m.type == coord::MsgType::tune && m.seq == 0) {
            abandonedLogicalTunes += m.coalesced;
            intent[intentKey(fabric.currentHome(m.dst, m.entity),
                             m.entity)] -= m.value;
        }
        if (monitor)
            monitor->noteAbandon(
                std::string("fabric:") + coord::msgTypeName(m.type)
                + ",dst=" + std::to_string(static_cast<int>(m.dst)));
    });

    // Phase 1 — registration bring-up: the root announces every
    // tier binding to every shard through the reliable announcer
    // (which owns the root's ack observer until it is retired).
    const Tick bringup = 150 * msec;
    std::uint64_t regsAcked = 0, regsAbandoned = 0, regsPending = 0;
    {
        coord::ReliableAnnouncer::Params ap;
        ap.retryTimeout = 2 * msec;
        ap.maxAttempts = 6;
        coord::ReliableAnnouncer announcer(sim, fabric, ap);
        announcer.setTrace(rootRec);
        for (int i = 1; i < n; ++i) {
            for (int t = 0; t < cfg.tiers; ++t) {
                coord::EntityBinding b;
                b.ref = coord::EntityRef{
                    rootId, tierBase + static_cast<coord::EntityId>(t)};
                b.name = "tier" + std::to_string(t);
                // Island index spread across two octets: ids past
                // 255 must keep distinct network identities.
                b.ip = corm::net::IpAddr(
                    10, static_cast<std::uint8_t>((i >> 8) & 0xff),
                    static_cast<std::uint8_t>(i & 0xff),
                    static_cast<std::uint8_t>(t));
                announcer.announce(
                    static_cast<coord::IslandId>(rootId + i), b);
                ++r.bindingsAnnounced;
            }
        }
        runFor(bringup);
        regsAcked = announcer.acked();
        regsAbandoned = announcer.abandoned();
        regsPending = announcer.pendingCount();
    } // announcer retires; the trigger sender may now own the root

    // Phase 2 — workload, scheduled up front from one seeded stream
    // so replays are identical under any --jobs fan-out. Integer
    // deltas keep every aggregated sum exact in double arithmetic.
    corm::sim::Rng rng(cfg.seed);
    coord::ReliableSender triggerSender(sim, fabric, rootId,
                                        cfg.reliable);
    triggerSender.setTrace(rootRec);
    std::uint64_t triggersSent = 0;

    // Causal spans for root-originated messages, following the
    // policy-layer idiom (decide instant + flow begin). Flows are
    // allocated ONLY on shard 0 — the root's shard — so flow ids and
    // their allocation order are placement-independent; the fabric
    // and the reliable layer step/end any message whose trace id is
    // set, stitching the flow across lane and island tracks (and so
    // across shards). Shard-originated load reports stay unflowed.
    const int policyTrk = CORM_TRACE_ACTIVE(rootRec)
        ? rootRec->track("coord",
                         "policy@" + std::to_string(
                             static_cast<int>(rootId)))
        : -1;
    const auto beginSpan = [rootRec, policyTrk,
                            &sim](coord::CoordMessage &m) {
        if (policyTrk < 0 || !CORM_TRACE_ACTIVE(rootRec))
            return;
        m.trace = rootRec->newFlow();
        const Tick now = sim.now();
        rootRec->complete(
            policyTrk, now, 0,
            std::string("decide:") + coord::msgTypeName(m.type),
            "coord",
            {{"entity", static_cast<std::uint64_t>(m.entity)},
             {"dst", static_cast<std::uint64_t>(m.dst)}});
        rootRec->flowBegin(policyTrk, now, m.trace, "coord.span",
                           "coord");
    };

    // Pre-size the event queues for the up-front scheduled workload,
    // so heap growth never lands mid-run (Simulator::reserve).
    const std::size_t expectedSends =
        static_cast<std::size_t>(std::max(n - 1, 1))
        * static_cast<std::size_t>(std::max(cfg.tiers, 1))
        * static_cast<std::size_t>(std::max(cfg.tunesPerPair, 1)) * 2;
    if (engine)
        engine->reserve(
            expectedSends / static_cast<std::size_t>(K) + 256);
    else
        sim.reserve(expectedSends + 256);
    const Tick span = std::max<Tick>(cfg.workloadSpan, 1);
    // Tunes fire in policy epochs (the paper's managers evaluate
    // periodically), with a small per-sender skew. Bursting is what
    // gives tree hubs something to aggregate: every shard's load
    // report for one tier lands within the same window.
    const Tick epochPeriod = std::max<Tick>(
        span / static_cast<Tick>(std::max(cfg.tunesPerPair, 1)), 1);
    const Tick jitter =
        std::min<Tick>(cfg.epochJitter, epochPeriod - 1);
    for (int i = 1; i < n; ++i) {
        const auto shard = static_cast<coord::IslandId>(rootId + i);
        for (int t = 0; t < cfg.tiers; ++t) {
            const auto tier =
                tierBase + static_cast<coord::EntityId>(t);
            for (int k = 0; k < cfg.tunesPerPair; ++k) {
                // Root -> shard allocation tune (aggregates at tree
                // hubs along the downward path, per shard + tier).
                {
                    const Tick at = sim.now()
                        + static_cast<Tick>(k) * epochPeriod
                        + rng.uniformInt(jitter + 1);
                    double d = static_cast<double>(
                        1 + rng.uniformInt(8));
                    if (rng.chance(0.5))
                        d = -d;
                    coord::CoordMessage m;
                    m.type = coord::MsgType::tune;
                    m.src = rootId;
                    m.dst = shard;
                    m.entity = tier;
                    m.value = d;
                    intent[intentKey(shard, tier)] += d;
                    ++r.logicalTunes;
                    sim.scheduleAt(at, [&fabric, beginSpan, m] {
                        auto msg = m;
                        beginSpan(msg);
                        fabric.send(msg);
                    });
                }
                // Shard -> root load report for the same shared tier
                // entity (aggregates across shards at hubs).
                {
                    const Tick at = sim.now()
                        + static_cast<Tick>(k) * epochPeriod
                        + rng.uniformInt(jitter + 1);
                    double d = static_cast<double>(
                        1 + rng.uniformInt(8));
                    if (rng.chance(0.5))
                        d = -d;
                    coord::CoordMessage m;
                    m.type = coord::MsgType::tune;
                    m.src = shard;
                    m.dst = rootId;
                    m.entity = tier;
                    m.value = d;
                    intent[intentKey(rootId, tier)] += d;
                    ++r.logicalTunes;
                    // A send must run on the shard owning its source.
                    simOf(shard).scheduleAt(at, [&fabric, m] {
                        auto msg = m;
                        fabric.send(msg);
                    });
                }
                // Occasionally the classifier needs a shard serviced
                // right now: a Trigger on the reliable low-latency
                // path (bypasses aggregation).
                if (rng.chance(cfg.triggerProb)) {
                    const Tick at = sim.now() + rng.uniformInt(span);
                    coord::CoordMessage m;
                    m.type = coord::MsgType::trigger;
                    m.src = rootId;
                    m.dst = shard;
                    m.entity = tier;
                    ++triggersSent;
                    sim.scheduleAt(at, [&triggerSender, beginSpan, m] {
                        auto msg = m;
                        beginSpan(msg);
                        triggerSender.send(msg);
                    });
                }
            }
        }
    }

    // Churn schedule: membership and placement changes mid-workload.
    // Legacy mode applies each event from a simulator event at its
    // tick; sharded mode applies due events at the first window
    // barrier at-or-after the tick (below, in the probe), passing the
    // barrier tick so re-driven flushes land placement-independently.
    // Either way events apply in schedule order, so a seed replays
    // exactly.
    using ChurnEvent = FabricScenarioConfig::ChurnEvent;
    std::vector<ChurnEvent> churnPlan = cfg.churn;
    std::stable_sort(churnPlan.begin(), churnPlan.end(),
                     [](const ChurnEvent &a, const ChurnEvent &b) {
                         return a.at < b.at;
                     });
    const Tick workloadStart = sim.now();
    std::uint64_t churnSkipped = 0;

    // Re-wire watchdog lanes after a membership change: links born
    // from a join or re-parent get lanes registered, links that
    // departed with an island retire (no spurious stall breach for
    // traffic that will never resume). Lane ids and names are pure
    // functions of the endpoint ids, so a re-joined pair revives its
    // old lane rather than growing a new one.
    const auto resyncLanes = [&] {
        if (!monitor)
            return;
        std::vector<std::string> live;
        if (engine) {
            fabric.forEachLaneId(
                [&](const std::string &lane_name, std::uint64_t id) {
                    if (!laneMon.count(id))
                        laneMon[id] = monitor->lane(lane_name);
                    live.push_back(lane_name);
                });
        } else {
            fabric.forEachLane([&](const std::string &lane_name,
                                   corm::interconnect::Mailbox &mb) {
                const int lane = monitor->lane(lane_name);
                mb.setActivityObserver(
                    [mon = monitor.get(),
                     lane](corm::interconnect::Mailbox::Activity a) {
                        using A = corm::interconnect::Mailbox::Activity;
                        if (a == A::sent)
                            mon->laneSent(lane);
                        else if (a == A::delivered)
                            mon->laneDelivered(lane);
                    });
                live.push_back(lane_name);
            });
        }
        monitor->retireLanesExcept(live);
    };

    const auto applyChurn = [&](const ChurnEvent &ev, Tick now) {
        using Kind = ChurnEvent::Kind;
        if (ev.island <= 0 || ev.island >= n) {
            ++churnSkipped;
            return;
        }
        const auto id =
            static_cast<coord::IslandId>(rootId + ev.island);
        switch (ev.kind) {
          case Kind::join:
            if (fabric.attached(id)) {
                ++churnSkipped;
                return;
            }
            fabric.join(*islands[static_cast<std::size_t>(ev.island)],
                        now);
            break;
          case Kind::leave:
          case Kind::crash:
            if (!fabric.attached(id)) {
                ++churnSkipped;
                return;
            }
            if (ev.kind == Kind::leave)
                fabric.leave(id, now);
            else
                fabric.crash(id, now);
            // Cancel the trigger retry timers still aimed at the
            // departed island through finish(): each pending counts
            // as abandoned, so the trigger ledger stays balanced
            // without waiting out the full retry budget.
            triggerSender.abandonDestination(id);
            break;
          case Kind::migrate: {
            if (ev.dstIsland <= 0 || ev.dstIsland >= n
                || ev.tier < 0 || ev.tier >= std::max(cfg.tiers, 1)) {
                ++churnSkipped;
                return;
            }
            const auto tier =
                tierBase + static_cast<coord::EntityId>(ev.tier);
            const auto dst =
                static_cast<coord::IslandId>(rootId + ev.dstIsland);
            // The handoff moves coordination state from the entity's
            // *current* home — it may have migrated before.
            const coord::IslandId from = fabric.currentHome(id, tier);
            if (!fabric.migrateEntity(from, dst, tier, now)) {
                ++churnSkipped;
                return;
            }
            ShardIsland &fromIsl =
                *islands[static_cast<std::size_t>(from - rootId)];
            ShardIsland &dstIsl =
                *islands[static_cast<std::size_t>(ev.dstIsland)];
            auto wit = fromIsl.weights.find(tier);
            if (wit != fromIsl.weights.end()) {
                dstIsl.weights[tier] += wit->second;
                fromIsl.weights.erase(wit);
            }
            auto iit = intent.find(intentKey(from, tier));
            if (iit != intent.end()) {
                intent[intentKey(dst, tier)] += iit->second;
                intent.erase(iit);
            }
            break;
          }
        }
    };
    if (!churnPlan.empty() && !engine) {
        for (const ChurnEvent &ev : churnPlan) {
            sim.scheduleAt(workloadStart + ev.at, [&, ev] {
                applyChurn(ev, 0);
                resyncLanes();
            });
        }
    }

    // Convergence probe: the first poll tick (after which no later
    // poll disagrees) where every island's applied weights equal the
    // policy intent, exactly.
    const Tick workloadEnd = sim.now() + span;
    const Tick deadline = workloadEnd + cfg.settleLimit;
    Tick convergedAt = 0;
    bool haveConverged = false;
    const auto converged = [&] {
        for (const auto &[key, want] : intent) {
            const auto island = static_cast<std::size_t>(key >> 32);
            const auto entity =
                static_cast<coord::EntityId>(key & 0xffffffffu);
            if (islands[island - rootId]->weight(entity) != want)
                return false;
        }
        return true;
    };
    const auto pollCheck = [&](Tick at) {
        if (at > deadline)
            return;
        if (converged()) {
            if (!haveConverged) {
                haveConverged = true;
                convergedAt = at;
            }
        } else {
            haveConverged = false;
        }
    };
    const Tick pollPeriod = std::max<Tick>(cfg.convergencePoll, 1);
    std::unique_ptr<corm::sim::PeriodicEvent> poll;
    if (engine) {
        // The convergence check reads weights across every shard, so
        // it may only run at a window barrier (all shards parked) —
        // the engine's probe. A no-op heartbeat on shard 0 keeps
        // windows (and therefore probes) coming at poll cadence even
        // after the workload's own events dry out; gating the check
        // on nextPollAt keeps its cost off the per-window path. The
        // window sequence is a pure function of the global event set,
        // so every probe decision replays identically under any
        // shard count.
        poll = std::make_unique<corm::sim::PeriodicEvent>(
            sim, pollPeriod, [] {});
        Tick nextPollAt = sim.now() + pollPeriod;
        Tick nextMonAt = sim.now() + monitorParams.samplePeriod;
        // Barrier-time capture sequence (all workers parked):
        //  0. apply churn events due by this window's end (and any
        //     re-parents whose delay elapsed) at the barrier tick;
        //  1. merge the shards' window trace buffers (canonical
        //     order), so everything below lands after window events;
        //  2. drain abandons (observer feeds intent + monitor);
        //  3. replay the window's lane activity into the watchdogs;
        //  4. monitor sample/rule/stall pass at its own cadence;
        //  5. the convergence check.
        // Every step is a pure function of the global event set, so
        // the whole sequence replays identically for any shard count
        // — churn included: the window sequence is shard-count
        // invariant, so each event lands at the same barrier tick.
        std::size_t nextChurnIdx = 0;
        engine->setProbe([&, nextPollAt, nextMonAt, nextChurnIdx](
                             Tick windowEnd) mutable {
            if (nextChurnIdx < churnPlan.size()
                || fabric.pendingReparentCount() != 0) {
                const std::uint64_t epoch = fabric.routeEpoch();
                while (nextChurnIdx < churnPlan.size()
                       && workloadStart + churnPlan[nextChurnIdx].at
                           <= windowEnd) {
                    applyChurn(churnPlan[nextChurnIdx], windowEnd);
                    ++nextChurnIdx;
                }
                fabric.churnTick(windowEnd);
                if (fabric.routeEpoch() != epoch)
                    resyncLanes();
            }
            if (capture)
                capture->mergeWindow();
            fabric.drainAbandoned();
            if (monitor) {
                fabric.drainLaneActivity(
                    [&](const coord::CoordFabric::LaneEvent &e) {
                        const int lane = laneMon.at(e.lane);
                        if (e.delivered)
                            monitor->laneDeliveredAt(lane, e.when);
                        else
                            monitor->laneSentAt(lane, e.when);
                    });
                if (windowEnd >= nextMonAt) {
                    monitor->poll(windowEnd);
                    nextMonAt =
                        windowEnd + monitorParams.samplePeriod;
                }
            }
            if (windowEnd >= nextPollAt) {
                pollCheck(windowEnd);
                nextPollAt = windowEnd + pollPeriod;
            }
            return false;
        });
    } else {
        poll = std::make_unique<corm::sim::PeriodicEvent>(
            sim, pollPeriod, [&] {
                // Complete crash re-parents whose delay elapsed
                // (no-op — and digest-neutral — without churn).
                if (fabric.pendingReparentCount() != 0) {
                    const std::uint64_t epoch = fabric.routeEpoch();
                    fabric.churnTick(sim.now());
                    if (fabric.routeEpoch() != epoch)
                        resyncLanes();
                }
                pollCheck(sim.now());
            });
    }
    runFor(span + cfg.settleLimit);
    poll->stop();
    if (engine) {
        engine->setProbe({});
        // Final pass over anything queued after the last window.
        if (capture)
            capture->mergeWindow();
        fabric.drainAbandoned();
        if (monitor) {
            fabric.drainLaneActivity(
                [&](const coord::CoordFabric::LaneEvent &e) {
                    const int lane = laneMon.at(e.lane);
                    if (e.delivered)
                        monitor->laneDeliveredAt(lane, e.when);
                    else
                        monitor->laneSentAt(lane, e.when);
                });
            monitor->poll(sim.now());
        }
    }

    // Harvest.
    const coord::FabricStats &fs = fabric.stats();
    r.appliedTunes = fs.appliedTunes.value();
    r.abandonedTunes = abandonedLogicalTunes;
    r.wireTuneMessages = fs.wireTunes.value();
    r.wireMessages = fs.wireMessages.value();
    r.msgsPerAppliedTune = r.appliedTunes
        ? static_cast<double>(r.wireTuneMessages)
            / static_cast<double>(r.appliedTunes)
        : 0.0;
    r.hubWireMessages = fabric.wireHandledAt(rootId);
    r.hubMsgsPerAppliedTune = r.appliedTunes
        ? static_cast<double>(r.hubWireMessages)
            / static_cast<double>(r.appliedTunes)
        : 0.0;
    r.hubRelays = fs.hubRelays.value();
    r.aggBatches = fs.aggBatches.value();
    r.aggFolded = fs.aggFolded.value();
    r.triggerBypass = fs.triggerBypass.value();
    r.linkDrops = fs.linkDrops.value();
    r.linkReplays = fs.linkReplays.value();
    r.abandonedWire = fs.abandoned.value();
    r.duplicates = fs.duplicates.value();
    r.fabricDropped = fs.dropped.value();
    r.meanDeliveryUs = fs.deliveryLatencyUs.mean();
    r.meanHops = fs.hopsPerDelivery.mean();
    r.migForwards = fs.migForwards.value();
    {
        const coord::CoordFabric::ChurnCounters &cc =
            fabric.churnCounters();
        r.churnJoins = cc.joins;
        r.churnLeaves = cc.leaves;
        r.churnCrashes = cc.crashes;
        r.churnMigrations = cc.migrations;
        r.churnReparents = cc.reparents;
    }
    r.churnSkipped = churnSkipped;
    r.routeEpochs = fabric.routeEpoch();
    r.tunesLost = static_cast<std::int64_t>(r.logicalTunes)
        - static_cast<std::int64_t>(r.appliedTunes)
        - static_cast<std::int64_t>(r.abandonedTunes);

    r.triggersSent = triggersSent;
    r.triggersAcked = triggerSender.acked();
    r.triggersAbandoned = triggerSender.abandoned();
    std::uint64_t shardTriggers = 0;
    for (int i = 1; i < n; ++i)
        shardTriggers += islands[i]->triggers.value();
    r.triggersApplied = shardTriggers;
    r.triggersAccounted =
        triggerSender.pendingCount() == 0
        && r.triggersAcked + r.triggersAbandoned == r.triggersSent
        && r.triggersApplied >= r.triggersAcked;

    std::uint64_t learnedBindings = 0;
    for (int i = 1; i < n; ++i)
        learnedBindings += islands[i]->learned.size();
    r.bindingsLearned = learnedBindings;
    r.bindingsAbandoned = regsAbandoned;
    r.bindingsOk = regsPending == 0
        && regsAcked + regsAbandoned == r.bindingsAnnounced
        && r.bindingsLearned >= regsAcked;

    r.hubQueueHighWater = fabric.maxLaneQueueHighWater();
    r.aggOpenHighWater = fabric.aggPendingHighWater();
    r.maxIslandWireSends = fabric.maxWireSends();
    r.healthBreaches = monitor ? monitor->breaches() : 0;
    if (monitor)
        r.healthReport = monitor->healthReport();
    if (cfg.captureMetrics)
        r.metricsJson = registry.jsonSnapshot();
    if (trace)
        r.traceEvents = trace->events().size();
    if (cfg.profileFlows && trace) {
        // Post-run, read-only over the merged trace: digest-neutral,
        // and byte-identical across shard counts because the merged
        // trace is (DESIGN.md §11/§12).
        corm::obs::FlowProfiler prof;
        prof.ingest(*trace);
        r.flowProfileJson = prof.reportJson(cfg.profileTopK);
        r.profiledFlows = prof.flows().size();
    }

    r.converged = haveConverged;
    r.convergenceMs = haveConverged
        ? corm::sim::toSeconds(convergedAt - (bringup)) * 1000.0
        : corm::sim::toSeconds(deadline - bringup) * 1000.0;

    // Exact-sum invariant: every applied weight equals the intent
    // (which already excludes abandoned deltas), and the logical
    // tune count balances applied + abandoned.
    r.deltaSumsExact = converged()
        && r.appliedTunes + r.abandonedTunes == r.logicalTunes;
    if (!converged()) {
        int rows = 0;
        for (const auto &[key, want] : intent) {
            const auto island = static_cast<std::size_t>(key >> 32);
            const auto entity =
                static_cast<coord::EntityId>(key & 0xffffffffu);
            const double got =
                islands[island - rootId]->weight(entity);
            if (got == want)
                continue;
            char line[96];
            std::snprintf(line, sizeof(line),
                          "island %zu entity %u want %g got %g\n",
                          island, entity, want, got);
            r.convergenceMismatch += line;
            if (++rows >= 8)
                break;
        }
    }

    // Replay-identity digest over final weights and counters.
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (const auto &isl : islands) {
        mix(isl->id());
        for (const auto &[entity, w] : isl->weights) {
            mix(entity);
            mix(std::bit_cast<std::uint64_t>(w));
        }
        mix(isl->tunes.value());
        mix(isl->triggers.value());
        for (coord::EntityId e : isl->learned)
            mix(e);
    }
    mix(root.tunes.value());
    r.digest = h;
    if (engine) {
        r.eventsExecuted = engine->eventsExecuted();
        const corm::sim::ShardEngineStats &es = engine->stats();
        r.shardWindows = es.windows;
        r.boundaryMessages = es.messages;
        r.boundaryBatches = es.batches;
        r.boundaryDepthHighWater = es.maxBoundaryDepth;
        r.barrierWaitNs = es.barrierWaitNs;
    } else {
        r.eventsExecuted = sim.executedEvents();
    }
    return r;
}

} // namespace corm::platform
