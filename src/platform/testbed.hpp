/**
 * @file
 * The x86–IXP prototype testbed: wires every substrate into the
 * paper's two-island platform (Fig. 3).
 *
 *   islands:  (1) x86 cores under the Xen credit scheduler + Dom0
 *             (2) IXP2850 under its microengine runtime
 *   fabric:   PCIe duplex link, descriptor ring, messaging driver,
 *             coordination mailbox in PCI config space
 *   control:  global controller in Dom0; entity registration is
 *             announced to the IXP over the coordination channel
 *
 * Experiments build a Testbed, add guests and workloads, attach
 * coordination policies, and read the metrics back out.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coord/channel.hpp"
#include "coord/controller.hpp"
#include "coord/policy.hpp"
#include "coord/reliable.hpp"
#include "interconnect/msgring.hpp"
#include "interconnect/pcie.hpp"
#include "ixp/island.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "platform/driver.hpp"
#include "sim/simulator.hpp"
#include "xen/island.hpp"
#include "xen/sched.hpp"
#include "xen/vif.hpp"

namespace corm::platform {

/** Complete testbed configuration. */
struct TestbedParams
{
    /** Host cores (the prototype's Xeon is dual-core). */
    int pcpus = 2;
    corm::xen::SchedParams sched;
    double dom0Weight = 256.0;
    int dom0Vcpus = 2;

    corm::interconnect::LinkParams link;
    std::size_t ringSlots = 256;

    /**
     * One-way latency of the PCI-config-space coordination mailbox;
     * the "relatively large latency of the PCIe-based messaging
     * channel" the paper calls out (§3.1).
     */
    corm::sim::Tick coordLatency = 120 * corm::sim::usec;

    /**
     * Fault weather of the coordination channel (loss, duplication,
     * reordering, latency spikes, outages). Defaults to a perfect
     * channel; the fault-sweep bench and robustness tests fill it
     * in. Seeded, so a run is reproducible end to end.
     */
    corm::interconnect::FaultPlanParams coordFaults;

    /** Retry policy of the registration announcer. */
    corm::coord::ReliableAnnouncer::Params announcer;

    corm::ixp::IxpParams ixp;
    DriverParams driver;
    corm::xen::VifParams vif;

    /** Dom0 CPU per packet relayed through the Xen bridge. */
    corm::sim::Tick bridgeRelayCost = 15 * corm::sim::usec;

    corm::coord::IslandId x86IslandId = 1;
    corm::coord::IslandId ixpIslandId = 2;

    /**
     * Observability trace recorder (not owned; may be null). When
     * set, the channel, both islands, the scheduler and the
     * registration announcer emit simulated-time events into it;
     * attachPolicy() also roots causal Tune/Trigger spans there.
     */
    corm::obs::TraceRecorder *trace = nullptr;

    /**
     * Arm the online health monitor (obs/monitor.hpp): SLO
     * watchdogs over the metric registry, per-direction mailbox
     * stall detection, and an always-on flight recorder that
     * snapshots a Perfetto window around the first incident even
     * when no full trace recorder is attached.
     */
    bool monitor = false;

    /**
     * Health-monitor tuning. An empty rules list means
     * obs::defaultHealthRules().
     */
    corm::obs::HealthMonitor::Params monitorParams;
};

/**
 * The assembled platform. Owns every component; exposes guests,
 * policies and metrics to the experiments.
 */
class Testbed
{
  public:
    /** A guest VM deployed on the x86 island. */
    struct Guest
    {
        std::unique_ptr<corm::xen::Domain> dom;
        std::unique_ptr<corm::xen::GuestVif> vif;
        corm::coord::EntityId entity = corm::coord::invalidEntity;
        corm::coord::EntityRef ref;
    };

    explicit Testbed(TestbedParams params = TestbedParams{});

    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;

    /**
     * Deploy a single-VCPU guest VM: creates the domain and its ViF,
     * attaches it to the bridge, places it under coordination
     * management, and registers it with the global controller (which
     * announces the binding to the IXP over the channel).
     */
    Guest &addGuest(const std::string &name, corm::net::IpAddr ip,
                    double weight = 256.0);

    /**
     * Attach a coordination policy: it observes IXP events and emits
     * over the coordination channel.
     */
    void attachPolicy(corm::coord::CoordinationPolicy &policy);

    /** Route wire-egress packets for @p ip to @p sink. */
    void
    setWireSink(corm::net::IpAddr ip,
                std::function<void(const corm::net::PacketPtr &)> sink)
    {
        wireSinks[ip.v] = std::move(sink);
    }

    /** Advance simulated time by @p duration. */
    void run(corm::sim::Tick duration)
    {
        sim_.runUntil(sim_.now() + duration);
    }

    /**
     * End the warm-up: zero CPU accounting so the measured interval
     * starts clean. (Workload-level stats are reset by the callers
     * that own the workloads.)
     */
    void beginMeasurement();

    /** Ticks elapsed since beginMeasurement(). */
    corm::sim::Tick
    measuredElapsed() const
    {
        return sim_.now() - measureStart;
    }

    /** Guest CPU utilisation in percent of one core (user+system). */
    double guestCpuPct(const Guest &guest) const;

    /** Guest iowait in percent of one core over the measured window. */
    double guestIowaitPct(const Guest &guest) const;

    // Component access ---------------------------------------------

    corm::sim::Simulator &sim() { return sim_; }
    corm::net::PacketFactory &packets() { return packets_; }
    corm::xen::CreditScheduler &scheduler() { return sched_; }
    corm::xen::Domain &dom0() { return dom0_; }
    corm::xen::XenBridge &bridge() { return bridge_; }
    corm::ixp::IxpIsland &ixp() { return ixp_; }
    corm::xen::XenIsland &x86() { return x86_; }
    corm::coord::GlobalController &controller() { return controller_; }
    corm::coord::CoordChannel &channel() { return channel_; }
    corm::coord::ReliableAnnouncer &announcer() { return announcer_; }
    MessagingDriver &driver() { return driver_; }
    const TestbedParams &params() const { return cfg; }

    /**
     * The platform's unified metric registry: every component's
     * counters and gauges under one name{label}-keyed namespace (see
     * obs/metrics.hpp). Always available; reads are pull-based, so
     * an unqueried registry costs nothing.
     */
    corm::obs::MetricRegistry &metrics() { return metrics_; }

    /** The health monitor, or nullptr unless params.monitor. */
    corm::obs::HealthMonitor *monitor() { return monitor_.get(); }
    const corm::obs::HealthMonitor *monitor() const
    {
        return monitor_.get();
    }

    /**
     * The recorder components actually trace into: the configured
     * full recorder when one was given, else the monitor's bounded
     * flight ring, else nullptr.
     */
    corm::obs::TraceRecorder *
    effectiveTrace()
    {
        if (cfg.trace != nullptr)
            return cfg.trace;
        return monitor_ ? monitor_->flightTrace() : nullptr;
    }

  private:
    /** Build and wire the health monitor (ctor tail). */
    void armMonitor();

    /** Register every component's counters/gauges (ctor tail). */
    void registerMetrics();

    TestbedParams cfg;
    corm::sim::Simulator sim_;
    corm::net::PacketFactory packets_;
    corm::xen::CreditScheduler sched_;
    corm::xen::Domain dom0_;
    corm::xen::XenBridge bridge_;
    corm::interconnect::DuplexLink pcie_;
    corm::interconnect::DescriptorRing ring_;
    corm::ixp::IxpIsland ixp_;
    corm::xen::XenIsland x86_;
    corm::coord::GlobalController controller_;
    corm::coord::CoordChannel channel_;
    corm::coord::ReliableAnnouncer announcer_;
    MessagingDriver driver_;
    corm::obs::MetricRegistry metrics_;
    std::unique_ptr<corm::obs::HealthMonitor> monitor_;
    std::vector<std::unique_ptr<Guest>> guests_;
    std::map<std::uint32_t,
             std::function<void(const corm::net::PacketPtr &)>>
        wireSinks;
    corm::sim::Tick measureStart = 0;
};

} // namespace corm::platform
