/**
 * @file
 * Prebuilt experiment scenarios reproducing the paper's evaluation
 * (§3): the RUBiS coordinated-vs-base comparison (Figs. 2/4/5,
 * Tables 1/2), the MPlayer weight-QoS experiment (Fig. 6), and the
 * buffer-threshold Trigger experiment (Fig. 7, Table 3).
 *
 * Benches, examples and the integration tests all run these same
 * scenario functions, so the numbers in EXPERIMENTS.md are exactly
 * what the test suite asserts against.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/mplayer.hpp"
#include "apps/rubis.hpp"
#include "coord/fabric.hpp"
#include "coord/policy.hpp"
#include "coord/reliable.hpp"
#include "platform/testbed.hpp"
#include "sim/stats.hpp"

namespace corm::platform {

//
// RUBiS (§3.1)
//

/** Configuration of one RUBiS run. */
struct RubisScenarioConfig
{
    TestbedParams testbed;
    apps::rubis::RubisClient::Params client;
    apps::rubis::RubisServer::Params server;

    /** Initial weight of each tier VM (the paper's defaults). */
    double tierWeight = 256.0;

    /** Enable the request-type Tune coordination scheme. */
    bool coordination = false;
    /** Per-request weight step of the coordination table. */
    double tuneDelta = 2.0;
    /** Gain multipliers of the coordination table. */
    apps::rubis::AdjustmentGains gains;
    /**
     * Decay time constant of tuned weights toward baseline on the
     * x86 island (0 = off). With decay, a tier's weight tracks the
     * Tune inflow of the last ~tau — the recent request mix.
     */
    corm::sim::Tick tuneDecayTau = 2 * corm::sim::sec;
    /** Optional damping (oscillation ablation; off = paper baseline). */
    coord::RequestTypeTunePolicy::Damping damping;

    /**
     * Send Tunes through a ReliableSender (ack + retry) instead of
     * fire-and-forget. Not the paper's configuration — used by the
     * latency-breakdown bench to expose the full decide → send →
     * apply → ack chain, and by fault studies.
     */
    bool reliableTunes = false;
    coord::ReliableSender::Params reliableParams;

    /**
     * Invoked on the live testbed after the measured window, before
     * teardown — the hook harnesses use to snapshot the metric
     * registry or other component state.
     */
    std::function<void(Testbed &)> inspect;

    corm::sim::Tick warmup = 20 * corm::sim::sec;
    corm::sim::Tick measure = 120 * corm::sim::sec;

    RubisScenarioConfig();
};

/** Results of one RUBiS run, shaped like the paper's artefacts. */
struct RubisResult
{
    /** One Table 1 / Fig. 2 / Fig. 4 row. */
    struct TypeRow
    {
        std::string name;
        std::uint64_t count = 0;
        double minMs = 0.0;
        double maxMs = 0.0;
        double meanMs = 0.0;
        double stddevMs = 0.0;
    };

    std::vector<TypeRow> types; ///< indexed by RequestType ordinal

    // Table 2 metrics.
    double throughputRps = 0.0;
    std::uint64_t sessionsCompleted = 0;
    double avgSessionSec = 0.0;
    double platformEfficiency = 0.0; ///< throughput / (Σ guest util/100)

    // Fig. 5 metrics (percent of one core).
    double webCpuPct = 0.0, appCpuPct = 0.0, dbCpuPct = 0.0;
    double dom0CpuPct = 0.0;
    double webIowaitPct = 0.0, appIowaitPct = 0.0, dbIowaitPct = 0.0;

    // Coordination machinery counters.
    std::uint64_t tunesSent = 0;
    std::uint64_t tunesApplied = 0;

    // Coordination-channel health under fault injection (zeros on a
    // perfect channel). Drops/duplicates/reorders are the channel's
    // accounting view; outage time is scheduled-outage overlap with
    // the run.
    std::uint64_t chanDropped = 0;
    std::uint64_t chanDuplicates = 0;
    std::uint64_t chanReorders = 0;
    std::uint64_t chanRetries = 0;
    double chanOutageMs = 0.0;

    // Registration convergence through the reliable announcer.
    std::uint64_t regsAcked = 0;
    std::uint64_t regsAbandoned = 0;
    std::uint64_t regsPending = 0;

    double meanResponseMs = 0.0;
    double minResponseMs = 0.0;

    // Database write-transaction lock behaviour.
    double dbLockWaitMeanMs = 0.0;
    double dbLockWaitMaxMs = 0.0;

    // E2Eprof-style latency breakdown (means, ms).
    double ingressMs = 0.0;
    double webMs = 0.0, appMs = 0.0, dbMs = 0.0;
    double hopsMs = 0.0;
    double egressMs = 0.0;

    // Final tier weights (where the per-request tuning settled).
    double webWeight = 0.0, appWeight = 0.0, dbWeight = 0.0;

    /** Host-side cost: simulator events dispatched during the run. */
    std::uint64_t eventsExecuted = 0;
};

/** Run one RUBiS experiment end to end. */
RubisResult runRubisScenario(const RubisScenarioConfig &cfg);

//
// MPlayer weight QoS (Fig. 6, §3.2 scheme 1)
//

struct MplayerQosConfig
{
    TestbedParams testbed;

    /** Guest weights for the run (the Fig. 6 x-axis). */
    double weight1 = 256.0;
    double weight2 = 256.0;

    /**
     * Extra dequeue-thread share for Domain-2's IXP queue (the
     * "increase the number of IXP threads servicing Domain-2's
     * receive queue in tandem" step of the third configuration).
     */
    double ixpThreadBonus2 = 0.0;

    /**
     * Run with the StreamQosTunePolicy driving the weights instead
     * of static settings (the automated version of the scheme).
     */
    bool autoCoordination = false;
    coord::StreamQosTunePolicy::Config autoCfg;

    /** Dom0 device-emulation background load (HVM qemu-dm model). */
    bool dom0Background = true;
    double dom0Weight = 512.0;

    apps::mplayer::StreamSpec stream1;
    apps::mplayer::StreamSpec stream2;
    apps::mplayer::DecodeParams decode1;
    apps::mplayer::DecodeParams decode2;

    /** Post-measurement inspection hook (see RubisScenarioConfig). */
    std::function<void(Testbed &)> inspect;

    corm::sim::Tick warmup = 10 * corm::sim::sec;
    corm::sim::Tick measure = 60 * corm::sim::sec;

    MplayerQosConfig();
};

struct MplayerQosResult
{
    double fps1 = 0.0;
    double fps2 = 0.0;
    std::uint64_t late1 = 0, late2 = 0;
    double cpu1Pct = 0.0, cpu2Pct = 0.0, dom0Pct = 0.0;
    double weight1End = 0.0, weight2End = 0.0;

    /** Host-side cost: simulator events dispatched during the run. */
    std::uint64_t eventsExecuted = 0;
};

/** Run one Fig. 6 configuration. */
MplayerQosResult runMplayerQos(const MplayerQosConfig &cfg);

//
// Buffer-threshold Trigger (Fig. 7, Table 3; §3.2 scheme 2)
//

struct TriggerScenarioConfig
{
    TestbedParams testbed;

    /** Enable the buffer-threshold Trigger policy. */
    bool trigger = false;
    coord::BufferThresholdTriggerPolicy::Config triggerCfg;

    /** Domain-1's bursty network stream. */
    apps::mplayer::StreamSpec stream1;
    double burstSec = 8.0;
    apps::mplayer::DecodeParams decode1;

    /** Domain-2's local-disk decode cost per frame. */
    corm::sim::Tick diskFrameCost = 12500 * corm::sim::usec;

    /** Dom0 housekeeping/device-emulation duty cycle (0 = none). */
    double dom0BackgroundDuty = 0.5;

    /** Sampling period of the Fig. 7 CPU-utilisation series. */
    corm::sim::Tick cpuSamplePeriod = 1 * corm::sim::sec;

    /** Post-measurement inspection hook (see RubisScenarioConfig). */
    std::function<void(Testbed &)> inspect;

    corm::sim::Tick warmup = 8 * corm::sim::sec;
    corm::sim::Tick measure = 120 * corm::sim::sec;

    TriggerScenarioConfig();
};

struct TriggerScenarioResult
{
    double fps1 = 0.0; ///< network-stream domain
    double fps2 = 0.0; ///< local-disk domain
    std::uint64_t late1 = 0;
    std::uint64_t triggersSent = 0;
    std::uint64_t boosts = 0;
    std::uint64_t ixpQueueDrops = 0;
    double bufferPeakBytes = 0.0;
    std::uint64_t driverPolls = 0;
    std::uint64_t driverInterrupts = 0;

    /** Fig. 7 series: Dom-1 CPU utilisation (%) over time. */
    corm::sim::TimeSeries cpu1Series;
    /** Fig. 7 series: Dom-1 IXP buffer occupancy (bytes) over time. */
    corm::sim::TimeSeries bufferSeries;

    /** Host-side cost: simulator events dispatched during the run. */
    std::uint64_t eventsExecuted = 0;
};

/** Run one Fig. 7 / Table 3 configuration. */
TriggerScenarioResult runTriggerScenario(const TriggerScenarioConfig &cfg);

//
// Scale-out coordination fabric (§5: "scalability of such
// mechanisms to large-scale multicore platforms")
//

/**
 * Configuration of one many-island fabric run: a classifier island
 * at the fabric root plus N-1 islands hosting sharded RUBiS tiers.
 * The root drives per-(island, tier) Tune streams downward (these
 * aggregate at tree hubs); every shard island reports per-tier load
 * Tunes upward to the same root tier entities (these aggregate
 * across shards at intermediate hubs); Triggers ride the reliable
 * low-latency path and bypass aggregation.
 */
struct FabricScenarioConfig
{
    /** Total islands including the root classifier (>= 2). */
    int islands = 8;

    /**
     * Event-loop shards running concurrently within the trial.
     * 0 = the legacy single-threaded event loop (byte-identical to
     * the pre-sharding scenario). >= 1 partitions the islands
     * contiguously by id across that many ShardedEngine simulators
     * (clamped to the island count); every wire hop then crosses a
     * window barrier, so results are digest-identical for ANY shard
     * count >= 1 (but intentionally distinct from the legacy loop,
     * whose same-tick interleavings differ). Capture rides along:
     * trace and monitorLanes work under sharding via window-local
     * per-shard recorders and lane logs merged at barriers
     * (obs/shardcapture.hpp), with the merged trace byte-identical
     * for every shard count >= 1 and the digest identical to a
     * capture-off run.
     */
    int shards = 0;

    /**
     * Id of the root/classifier island; islands occupy ids
     * [firstIslandId, firstIslandId + islands). Default 1 preserves
     * historical digests; 256-island runs need 0 so the top id still
     * fits IslandId (uint8).
     */
    int firstIslandId = 1;

    /**
     * Fabric parameters: topology, hop latency, aggregation window,
     * link fault weather, replay budget. The hub is forced to the
     * root island's id.
     */
    coord::FabricParams fabric;

    /** Shared tier entities (web/app/db by default). */
    int tiers = 3;
    /** Tunes per (shard island, tier), in each direction. */
    int tunesPerPair = 20;
    /** Probability a downward tune round also fires a Trigger. */
    double triggerProb = 0.1;

    /** Workload seed (drives send times, deltas, trigger picks). */
    std::uint64_t seed = 1;

    /** Window over which the workload sends are spread. */
    corm::sim::Tick workloadSpan = 200 * corm::sim::msec;
    /**
     * Per-sender skew within a policy epoch. Tune k of every
     * (shard, tier) pair fires at k * (workloadSpan / tunesPerPair)
     * plus up to this much jitter — the bursty cadence of periodic
     * policy managers, and what hub aggregation feeds on.
     */
    corm::sim::Tick epochJitter = 100 * corm::sim::usec;
    /** Extra time allowed after the span for convergence. */
    corm::sim::Tick settleLimit = 2 * corm::sim::sec;
    /** Convergence polling cadence. */
    corm::sim::Tick convergencePoll = 500 * corm::sim::usec;

    /** Reliable-delivery knobs of the Trigger path. */
    coord::ReliableSender::Params reliable;

    /**
     * Register per-lane stall watchdogs with a health monitor. Legacy
     * runs feed it live from Mailbox activity observers; sharded runs
     * replay the fabric's shard-local lane logs into it at barriers.
     */
    bool monitorLanes = true;

    /**
     * Optional trace recorder (multi-hop coordination spans). Works
     * in both legacy and sharded mode; sharded capture never touches
     * the digest, and the merged JSON is shard-count independent.
     */
    corm::obs::TraceRecorder *trace = nullptr;

    /**
     * Fill FabricScenarioResult::metricsJson with a registry snapshot
     * (fabric counters plus, under sharding, the engine's per-shard
     * self-metrics) taken after the run.
     */
    bool captureMetrics = false;

    /**
     * Post-run flow-latency attribution (obs/flowprofile.hpp): with a
     * trace recorder attached, fill FabricScenarioResult::
     * flowProfileJson with the per-leg/per-link attribution report.
     * Runs strictly after the simulation over the merged trace, so it
     * is digest-neutral and shard-count independent by construction
     * (a byte-identical trace yields a byte-identical report).
     */
    bool profileFlows = false;
    /** Slowest-flow entries in the report (see FlowProfiler). */
    std::size_t profileTopK = 5;

    /**
     * One scheduled membership/placement change. Times are offsets
     * from the start of the workload phase (after binding bring-up);
     * islands are named by index in [0, islands), and index 0 — the
     * root/hub — is never churned. An event that does not apply to
     * the live membership at its tick (leaving an island that already
     * left, joining one still attached, migrating to the entity's own
     * home) is skipped and tallied in churnSkipped, so randomly
     * generated schedules need no pre-validation.
     */
    struct ChurnEvent
    {
        enum class Kind : std::uint8_t { join, leave, crash, migrate };
        Kind kind = Kind::leave;
        corm::sim::Tick at = 0;
        int island = 0;    ///< target island index (1 .. islands-1)
        int dstIsland = 0; ///< migrate: new home island index
        int tier = 0;      ///< migrate: tier index in [0, tiers)
    };

    /**
     * Churn schedule applied during the workload. Legacy runs apply
     * each event from a simulator event at its tick; sharded runs
     * apply due events at the first window barrier at-or-after the
     * tick — the only placement-independent point, with every worker
     * parked — so results stay digest-identical for every shard
     * count >= 1. Deltas stranded by churn are attributed through
     * the abandon observer (against the entity's current home), so
     * the exact-sum conservation invariant holds under any schedule.
     */
    std::vector<ChurnEvent> churn;

    /** Invoked after islands attach, before the workload starts. */
    std::function<void(coord::CoordFabric &)> wire;
};

/** Results and invariant verdicts of one fabric run. */
struct FabricScenarioResult
{
    int islands = 0;

    // Tune accounting (logical = un-aggregated deltas).
    std::uint64_t logicalTunes = 0;
    std::uint64_t appliedTunes = 0;   ///< Σ coalesced at destinations
    std::uint64_t abandonedTunes = 0; ///< logical, after replay budget
    std::uint64_t wireTuneMessages = 0;
    std::uint64_t wireMessages = 0;
    /** The scale-out cost metric: wire tunes per applied tune. */
    double msgsPerAppliedTune = 0.0;

    /** Wire messages the hub island handled (sent + received). */
    std::uint64_t hubWireMessages = 0;
    /**
     * The hub-bottleneck metric: hub wire messages per applied
     * tune. A star's hub touches every message; a tree offloads
     * relaying and folds incast load reports at intermediate hubs.
     */
    double hubMsgsPerAppliedTune = 0.0;

    std::uint64_t hubRelays = 0;
    std::uint64_t aggBatches = 0;
    std::uint64_t aggFolded = 0;
    std::uint64_t triggerBypass = 0;
    std::uint64_t linkDrops = 0;
    std::uint64_t linkReplays = 0;
    std::uint64_t abandonedWire = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t fabricDropped = 0; ///< unroutable destinations

    // Churn accounting (all zero without a churn schedule).
    std::uint64_t churnJoins = 0;
    std::uint64_t churnLeaves = 0;
    std::uint64_t churnCrashes = 0;
    std::uint64_t churnMigrations = 0;
    std::uint64_t churnReparents = 0;
    std::uint64_t churnSkipped = 0; ///< events invalid at their tick
    std::uint64_t migForwards = 0;  ///< deliveries re-routed to a new home
    std::uint64_t routeEpochs = 0;  ///< route-table rebuild epochs
    /**
     * logicalTunes - appliedTunes - abandonedTunes: zero iff every
     * root-issued tune was applied exactly once or attributed as
     * abandoned, across any migration or re-parent (the churn
     * bench's machine-checked conservation gate).
     */
    std::int64_t tunesLost = 0;

    // Trigger delivered-or-abandoned accounting.
    std::uint64_t triggersSent = 0;
    std::uint64_t triggersAcked = 0;
    std::uint64_t triggersAbandoned = 0;
    std::uint64_t triggersApplied = 0;

    // Binding propagation root -> shards.
    std::uint64_t bindingsAnnounced = 0;
    std::uint64_t bindingsLearned = 0;
    std::uint64_t bindingsAbandoned = 0;

    /** Deepest in-flight queue on any lane (hub pressure). */
    std::size_t hubQueueHighWater = 0;
    /** Most aggregation buckets open at one hub. */
    std::size_t aggOpenHighWater = 0;
    /** Highest per-island wire-send load (hub bottleneck). */
    std::uint64_t maxIslandWireSends = 0;

    /** Sim-time until every island's weights match policy intent. */
    double convergenceMs = 0.0;
    bool converged = false;
    /**
     * When not converged: up to the first few (island, entity,
     * want, got) rows where applied weight disagrees with intent,
     * one per line. Empty on convergence. Diagnostic only — never
     * part of the digest.
     */
    std::string convergenceMismatch;

    // Invariant verdicts (the fuzz harness asserts these).
    bool deltaSumsExact = false; ///< Σ applied == intent, exactly
    bool bindingsOk = false;     ///< learned + abandoned == announced
    bool triggersAccounted = false; ///< acked+abandoned == sent

    std::uint64_t healthBreaches = 0; ///< lane stalls + abandons seen
    /** Monitor event log + summary (empty without monitorLanes). */
    std::string healthReport;
    /** Registry snapshot (empty unless cfg.captureMetrics). */
    std::string metricsJson;
    /** Events in the trace recorder after the run (0 untraced). */
    std::uint64_t traceEvents = 0;
    /** Attribution report (empty unless cfg.profileFlows + trace). */
    std::string flowProfileJson;
    /** Flows the profiler reassembled (0 unless profiled). */
    std::uint64_t profiledFlows = 0;
    double meanDeliveryUs = 0.0;
    double meanHops = 0.0;

    /** FNV-1a digest of final weights + counters (replay identity). */
    std::uint64_t digest = 0;
    std::uint64_t eventsExecuted = 0;

    // Sharded-engine accounting (all zero in legacy mode). Windows
    // and boundary messages are pure functions of the global event
    // set, so they are identical for every shard count >= 1 — the
    // bench gate pins them; batches and depth depend on placement.
    std::uint64_t shardWindows = 0;
    std::uint64_t boundaryMessages = 0;
    std::uint64_t boundaryBatches = 0;
    std::size_t boundaryDepthHighWater = 0;
    /**
     * Host nanoseconds the coordinator spent parked at barriers.
     * Wall-clock, nondeterministic — keep it out of digests, replay
     * comparisons and bench baselines.
     */
    std::uint64_t barrierWaitNs = 0;
};

/** Run one scale-out fabric experiment end to end. */
FabricScenarioResult runFabricScenario(const FabricScenarioConfig &cfg);

//
// Shared helpers
//

/**
 * A CPU-hungry background load inside a domain (device emulation,
 * kernel housekeeping): back-to-back jobs of the given slice length
 * on one VCPU, optionally duty-cycled.
 */
class BackgroundLoad
{
  public:
    /**
     * @param simulator Event engine (paces duty-cycled loads).
     * @param dom Domain to load.
     * @param slice Job length (2 ms gives tick-grained interleaving).
     * @param duty Fraction of time busy in (0, 1]; 1 = saturating.
     * @param vcpu VCPU index to load.
     */
    BackgroundLoad(corm::sim::Simulator &simulator, corm::xen::Domain &dom,
                   corm::sim::Tick slice, double duty = 1.0, int vcpu = 0);

    void start();
    void stop() { running = false; }

  private:
    void pump();

    corm::sim::Simulator &sim;
    corm::xen::Domain &target;
    corm::sim::Tick slice;
    double duty;
    int vcpu;
    bool running = false;
};

} // namespace corm::platform
