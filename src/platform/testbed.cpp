/**
 * @file
 * Testbed assembly.
 */

#include "platform/testbed.hpp"

#include <bit>

namespace corm::platform {

using corm::coord::CoordMessage;
using corm::coord::EntityBinding;
using corm::coord::MsgType;
using corm::sim::UtilizationTracker;

Testbed::Testbed(TestbedParams params)
    : cfg(std::move(params)),
      sched_(sim_, cfg.pcpus, cfg.sched),
      dom0_(sched_, 0, "dom0", cfg.dom0Weight, cfg.dom0Vcpus),
      bridge_(dom0_, cfg.bridgeRelayCost),
      pcie_(sim_, cfg.link, "pcie"),
      ring_(cfg.ringSlots, "hostring"),
      ixp_(sim_, cfg.ixpIslandId, "ixp2850", pcie_.deviceToHost(), ring_,
           cfg.ixp),
      x86_(sim_, cfg.x86IslandId, "x86-xen", sched_),
      channel_(sim_, ixp_, x86_, cfg.coordLatency),
      announcer_(sim_, channel_, cfg.announcer),
      driver_(sim_, dom0_, ring_, bridge_, pcie_.hostToDevice(), ixp_,
              cfg.driver)
{
    channel_.installFaultPlan(cfg.coordFaults);

    registerMetrics();
    if (cfg.monitor)
        armMonitor();

    // Components trace into the full recorder when one is attached;
    // with only the monitor armed they trace into its bounded flight
    // ring, so an incident dump carries real platform events.
    if (corm::obs::TraceRecorder *tr = effectiveTrace()) {
        channel_.setTrace(tr);
        x86_.setTrace(tr);
        ixp_.setTrace(tr);
        announcer_.setTrace(tr);
    }

    controller_.registerIsland(x86_);
    controller_.registerIsland(ixp_);

    // Registration announcements to the IXP travel the coordination
    // channel (§2.3); islands co-located with the controller learn
    // directly.
    controller_.setAnnounceTransport(
        [this](corm::coord::ResourceIsland &to, const EntityBinding &b) {
            if (to.id() == ixp_.id()) {
                // Registrations travel the channel with ack + retry:
                // a lost binding would blind the classifier forever.
                announcer_.announce(ixp_.id(), b);
            } else {
                to.learnBinding(b);
            }
        });

    // Wire egress: route to the registered external sink for the
    // destination address.
    ixp_.setWireTx([this](corm::net::PacketPtr p) {
        auto it = wireSinks.find(p->flow.dst.v);
        if (it != wireSinks.end())
            it->second(p);
    });
}

Testbed::Guest &
Testbed::addGuest(const std::string &name, corm::net::IpAddr ip,
                  double weight)
{
    auto guest = std::make_unique<Guest>();
    guest->dom = std::make_unique<corm::xen::Domain>(
        sched_, static_cast<std::uint32_t>(guests_.size() + 1), name,
        weight);
    guest->vif =
        std::make_unique<corm::xen::GuestVif>(*guest->dom, ip, cfg.vif);
    bridge_.attach(*guest->vif);

    guest->entity = x86_.manage(*guest->dom);
    guest->ref = corm::coord::EntityRef{x86_.id(), guest->entity};

    EntityBinding binding;
    binding.ref = guest->ref;
    binding.name = name;
    binding.ip = ip;
    controller_.registerEntity(binding);

    guests_.push_back(std::move(guest));
    return *guests_.back();
}

void
Testbed::attachPolicy(corm::coord::CoordinationPolicy &policy)
{
    ixp_.attachPolicy(policy);
    policy.attachSender(ixp_.id(), [this](const CoordMessage &m) {
        channel_.send(m);
    });
    if (corm::obs::TraceRecorder *tr = effectiveTrace())
        policy.attachTrace(tr, ixp_.name(), &sim_);
}

void
Testbed::armMonitor()
{
    corm::obs::HealthMonitor::Params mp = cfg.monitorParams;
    if (mp.rules.empty())
        mp.rules = corm::obs::defaultHealthRules();
    monitor_ =
        std::make_unique<corm::obs::HealthMonitor>(sim_, metrics_, mp);
    monitor_->setMirrorTrace(cfg.trace);

    // Heartbeat lanes: one per mailbox direction. Every send enters
    // the lane (even when fault weather silently eats it — that is
    // exactly the outage signature the stall watchdog exists for);
    // a delivery proves the lane moved.
    using Activity = corm::interconnect::Mailbox::Activity;
    for (int dir = 0; dir < 2; ++dir) {
        const int id = monitor_->lane(channel_.name()
                                      + (dir == 0 ? ".a2b" : ".b2a"));
        channel_.setActivityObserver(dir, [this, id](Activity act) {
            if (act == Activity::sent)
                monitor_->laneSent(id);
            else if (act == Activity::delivered)
                monitor_->laneDelivered(id);
        });
    }

    announcer_.setAbandonObserver([this](const CoordMessage &m) {
        monitor_->noteAbandon(
            "reg:entity=" + std::to_string(m.entity) + ",dst="
            + std::to_string(static_cast<unsigned>(m.dst)));
    });

    metrics_.counterFn("health.breaches", {},
                       [this] { return monitor_->breaches(); });
    metrics_.counterFn("health.events", {}, [this] {
        return static_cast<std::uint64_t>(monitor_->events().size());
    });

    monitor_->start();
}

void
Testbed::registerMetrics()
{
    using corm::obs::Labels;
    auto &m = metrics_;

    const Labels chan{{"channel", channel_.name()}};
    const auto &cs = channel_.stats();
    m.counterFn("coord.channel.sent", chan,
                [&cs] { return cs.sent.value(); });
    m.counterFn("coord.channel.delivered", chan,
                [&cs] { return cs.delivered.value(); });
    m.counterFn("coord.channel.dropped", chan,
                [&cs] { return cs.dropped.value(); });
    m.counterFn("coord.channel.tunes", chan,
                [&cs] { return cs.tunes.value(); });
    m.counterFn("coord.channel.triggers", chan,
                [&cs] { return cs.triggers.value(); });
    m.counterFn("coord.channel.registrations", chan,
                [&cs] { return cs.registrations.value(); });
    m.counterFn("coord.channel.duplicates", chan,
                [&cs] { return cs.duplicates.value(); });
    m.counterFn("coord.channel.reorders", chan,
                [&cs] { return cs.reorders.value(); });
    m.counterFn("coord.channel.retries", chan,
                [&cs] { return cs.retries.value(); });
    channel_.setDeliveryHistogram(
        &m.histogram("coord.channel.delivery_latency_us", chan));

    const Labels x86l{{"island", x86_.name()}};
    const auto &ss = sched_.stats();
    m.counterFn("xen.sched.context_switches", x86l,
                [&ss] { return ss.contextSwitches.value(); });
    m.counterFn("xen.sched.migrations", x86l,
                [&ss] { return ss.migrations.value(); });
    m.counterFn("xen.sched.boosts", x86l,
                [&ss] { return ss.boosts.value(); });
    m.counterFn("xen.sched.accountings", x86l,
                [&ss] { return ss.accountings.value(); });
    m.counterFn("xen.island.tunes_applied", x86l,
                [this] { return x86_.totalTunes(); });
    m.counterFn("xen.island.triggers_applied", x86l,
                [this] { return x86_.totalTriggers(); });
    m.counterFn("xen.island.ignored_ops", x86l,
                [this] { return x86_.totalIgnored(); });

    const Labels ixpl{{"island", ixp_.name()}};
    const auto &is = ixp_.stats();
    m.counterFn("ixp.wire_rx", ixpl,
                [&is] { return is.wireRx.value(); });
    m.counterFn("ixp.wire_tx", ixpl,
                [&is] { return is.wireTx.value(); });
    m.counterFn("ixp.classified", ixpl,
                [&is] { return is.classified.value(); });
    m.counterFn("ixp.unknown_dst", ixpl,
                [&is] { return is.unknownDst.value(); });
    m.counterFn("ixp.vm_queue_drops", ixpl,
                [&is] { return is.vmQueueDrops.value(); });
    m.counterFn("ixp.dma_rejects", ixpl,
                [&is] { return is.dmaRejects.value(); });
    m.counterFn("ixp.tunes_applied", ixpl,
                [&is] { return is.tunesApplied.value(); });
    m.counterFn("ixp.triggers_applied", ixpl,
                [&is] { return is.triggersApplied.value(); });

    m.counterFn("driver.polls", {},
                [this] { return driver_.totalPolls(); });
    m.counterFn("driver.interrupts", {},
                [this] { return driver_.totalInterrupts(); });
    m.counterFn("driver.delivered", {},
                [this] { return driver_.totalDelivered(); });
    m.counterFn("driver.transmitted", {},
                [this] { return driver_.totalTransmitted(); });

    m.counterFn("reg.acked", {},
                [this] { return announcer_.acked(); });
    m.counterFn("reg.retries", {},
                [this] { return announcer_.retries(); });
    m.counterFn("reg.abandoned", {},
                [this] { return announcer_.abandoned(); });
    m.gaugeFn("reg.pending", {}, [this] {
        return static_cast<double>(announcer_.pendingCount());
    });

    m.counterFn("hostring.posted", {},
                [this] { return ring_.totalPosted(); });
    m.counterFn("hostring.full_rejects", {},
                [this] { return ring_.totalFullRejects(); });
    m.gaugeFn("hostring.high_water", {}, [this] {
        return static_cast<double>(ring_.highWater());
    });
}

void
Testbed::beginMeasurement()
{
    measureStart = sim_.now();
    sched_.resetBusy();
    dom0_.resetUsage();
    for (auto &g : guests_)
        g->dom->resetUsage();
}

double
Testbed::guestCpuPct(const Guest &guest) const
{
    const corm::sim::Tick elapsed = measuredElapsed();
    if (elapsed == 0)
        return 0.0;
    const auto &u = guest.dom->cpuUsage();
    const corm::sim::Tick busy = u.busy(UtilizationTracker::Kind::user)
        + u.busy(UtilizationTracker::Kind::system);
    return 100.0 * static_cast<double>(busy)
        / static_cast<double>(elapsed);
}

double
Testbed::guestIowaitPct(const Guest &guest) const
{
    const corm::sim::Tick elapsed = measuredElapsed();
    if (elapsed == 0)
        return 0.0;
    return 100.0
        * static_cast<double>(guest.dom->cpuUsage().busy(
              UtilizationTracker::Kind::iowait))
        / static_cast<double>(elapsed);
}

} // namespace corm::platform
