/**
 * @file
 * Testbed assembly.
 */

#include "platform/testbed.hpp"

#include <bit>

namespace corm::platform {

using corm::coord::CoordMessage;
using corm::coord::EntityBinding;
using corm::coord::MsgType;
using corm::sim::UtilizationTracker;

Testbed::Testbed(TestbedParams params)
    : cfg(std::move(params)),
      sched_(sim_, cfg.pcpus, cfg.sched),
      dom0_(sched_, 0, "dom0", cfg.dom0Weight, cfg.dom0Vcpus),
      bridge_(dom0_, cfg.bridgeRelayCost),
      pcie_(sim_, cfg.link, "pcie"),
      ring_(cfg.ringSlots, "hostring"),
      ixp_(sim_, cfg.ixpIslandId, "ixp2850", pcie_.deviceToHost(), ring_,
           cfg.ixp),
      x86_(sim_, cfg.x86IslandId, "x86-xen", sched_),
      channel_(sim_, ixp_, x86_, cfg.coordLatency),
      announcer_(sim_, channel_, cfg.announcer),
      driver_(sim_, dom0_, ring_, bridge_, pcie_.hostToDevice(), ixp_,
              cfg.driver)
{
    channel_.installFaultPlan(cfg.coordFaults);

    controller_.registerIsland(x86_);
    controller_.registerIsland(ixp_);

    // Registration announcements to the IXP travel the coordination
    // channel (§2.3); islands co-located with the controller learn
    // directly.
    controller_.setAnnounceTransport(
        [this](corm::coord::ResourceIsland &to, const EntityBinding &b) {
            if (to.id() == ixp_.id()) {
                // Registrations travel the channel with ack + retry:
                // a lost binding would blind the classifier forever.
                announcer_.announce(ixp_.id(), b);
            } else {
                to.learnBinding(b);
            }
        });

    // Wire egress: route to the registered external sink for the
    // destination address.
    ixp_.setWireTx([this](corm::net::PacketPtr p) {
        auto it = wireSinks.find(p->flow.dst.v);
        if (it != wireSinks.end())
            it->second(p);
    });
}

Testbed::Guest &
Testbed::addGuest(const std::string &name, corm::net::IpAddr ip,
                  double weight)
{
    auto guest = std::make_unique<Guest>();
    guest->dom = std::make_unique<corm::xen::Domain>(
        sched_, static_cast<std::uint32_t>(guests_.size() + 1), name,
        weight);
    guest->vif =
        std::make_unique<corm::xen::GuestVif>(*guest->dom, ip, cfg.vif);
    bridge_.attach(*guest->vif);

    guest->entity = x86_.manage(*guest->dom);
    guest->ref = corm::coord::EntityRef{x86_.id(), guest->entity};

    EntityBinding binding;
    binding.ref = guest->ref;
    binding.name = name;
    binding.ip = ip;
    controller_.registerEntity(binding);

    guests_.push_back(std::move(guest));
    return *guests_.back();
}

void
Testbed::attachPolicy(corm::coord::CoordinationPolicy &policy)
{
    ixp_.attachPolicy(policy);
    policy.attachSender(ixp_.id(), [this](const CoordMessage &m) {
        channel_.send(m);
    });
}

void
Testbed::beginMeasurement()
{
    measureStart = sim_.now();
    sched_.resetBusy();
    dom0_.resetUsage();
    for (auto &g : guests_)
        g->dom->resetUsage();
}

double
Testbed::guestCpuPct(const Guest &guest) const
{
    const corm::sim::Tick elapsed = measuredElapsed();
    if (elapsed == 0)
        return 0.0;
    const auto &u = guest.dom->cpuUsage();
    const corm::sim::Tick busy = u.busy(UtilizationTracker::Kind::user)
        + u.busy(UtilizationTracker::Kind::system);
    return 100.0 * static_cast<double>(busy)
        / static_cast<double>(elapsed);
}

double
Testbed::guestIowaitPct(const Guest &guest) const
{
    const corm::sim::Tick elapsed = measuredElapsed();
    if (elapsed == 0)
        return 0.0;
    return 100.0
        * static_cast<double>(guest.dom->cpuUsage().busy(
              UtilizationTracker::Kind::iowait))
        / static_cast<double>(elapsed);
}

} // namespace corm::platform
