/**
 * @file
 * Parallel multi-trial experiment harness.
 *
 * Every paper artefact is a function of one `(scenario config, seed)`
 * pair run through a single-threaded Simulator. Confidence intervals
 * and parameter sweeps need many such trials, and independent trials
 * share no mutable state — each owns its Simulator, Testbed and RNG
 * streams — so they fan out across host cores embarrassingly.
 *
 * TrialRunner is a fixed-pool runner (no work stealing: trials are
 * coarse, seconds-long units; an atomic cursor over the index space
 * balances fine). The determinism contract: for a fixed
 * (config, trials, seed), the merged output is identical for ANY
 * --jobs value, because trial i always derives its seeds from
 * trialSeed(master, i) and results are merged in trial-index order.
 *
 * Merge helpers aggregate the per-trial result structs of
 * platform/scenarios.hpp into cross-trial mean/stddev/min/max
 * summaries (per request type for RUBiS), which is what the bench
 * binaries print and serialize.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "platform/scenarios.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace corm::platform {

/** Knobs shared by every multi-trial experiment. */
struct TrialOptions
{
    /** Number of independent trials (distinct derived seeds). */
    int trials = 1;
    /** Worker threads; clamped to [1, trials]. 0 = one per trial. */
    int jobs = 1;
    /** Master seed all per-trial seeds derive from. */
    std::uint64_t seed = 0x5eedc0de5eedc0deULL;
};

/**
 * Seed of trial @p trial under master seed @p master. Stateless (no
 * sequential RNG walk), so any trial's seed is computable without
 * running the others — the property the parallel runner relies on.
 */
inline std::uint64_t
trialSeed(std::uint64_t master, int trial)
{
    corm::sim::SplitMix64 sm(
        master ^ (0x9e3779b97f4a7c15ULL *
                  (static_cast<std::uint64_t>(trial) + 1)));
    return sm.next();
}

/**
 * Run @p body(trial) for every trial index in [0, trials) across a
 * fixed pool of @p jobs threads. Blocks until all trials finish. If
 * any body throws, the first exception (by completion order) is
 * rethrown on the calling thread after every worker has been joined;
 * remaining unstarted trials are abandoned.
 */
void runTrialsIndexed(int trials, int jobs,
                      const std::function<void(int)> &body);

/**
 * Typed fan-out: returns one R per trial, indexed by trial number.
 * @p fn is invoked as fn(trialIndex, derivedSeed) and must not touch
 * shared mutable state (each invocation may run on any pool thread).
 */
template <typename Fn>
auto
runTrials(const TrialOptions &opt, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, int, std::uint64_t>>
{
    using R = std::invoke_result_t<Fn &, int, std::uint64_t>;
    std::vector<R> results(
        static_cast<std::size_t>(opt.trials > 0 ? opt.trials : 0));
    runTrialsIndexed(opt.trials, opt.jobs, [&](int i) {
        results[static_cast<std::size_t>(i)] =
            fn(i, trialSeed(opt.seed, i));
    });
    return results;
}

//
// Cross-trial aggregation
//
// Each Merged* struct carries (a) `mean`: the familiar result struct
// with every scalar field averaged across trials (request counts are
// summed — they are totals, not estimates), so existing printing
// code works unchanged on multi-trial runs; and (b) cross-trial
// Summary distributions for the headline metrics, so benches can
// report the spread that a single run hides.
//

/** Cross-trial view of the RUBiS scenario. */
struct MergedRubis
{
    int trials = 0;
    RubisResult mean;
    /** Per request type: distribution of per-trial mean latency. */
    std::vector<corm::sim::Summary> typeMeanMs;
    corm::sim::Summary throughputRps;
    corm::sim::Summary meanResponseMs;
    /** Host-side totals for events/sec reporting. */
    std::uint64_t totalEvents = 0;
};

/** Cross-trial view of the MPlayer QoS scenario. */
struct MergedMplayerQos
{
    int trials = 0;
    MplayerQosResult mean;
    corm::sim::Summary fps1;
    corm::sim::Summary fps2;
    std::uint64_t totalEvents = 0;
};

/** Cross-trial view of the buffer-threshold Trigger scenario. */
struct MergedTrigger
{
    int trials = 0;
    TriggerScenarioResult mean;
    corm::sim::Summary fps1;
    corm::sim::Summary fps2;
    std::uint64_t totalEvents = 0;
};

/** Aggregate trial results in index order. Requires !trials.empty(). */
MergedRubis mergeRubisResults(const std::vector<RubisResult> &trials);
MergedMplayerQos
mergeMplayerResults(const std::vector<MplayerQosResult> &trials);
MergedTrigger
mergeTriggerResults(const std::vector<TriggerScenarioResult> &trials);

/**
 * Derive the per-trial workload seeds of a RUBiS config from one
 * trial seed (client and server jitter streams get independent
 * sub-seeds). Trial 0 of the default master seed is the canonical
 * configuration benches report.
 */
void applyTrialSeed(RubisScenarioConfig &cfg, std::uint64_t seed);

} // namespace corm::platform
