/**
 * @file
 * The host-side messaging driver (§2 / §2.1 of the paper).
 *
 * Lives in the Dom0 kernel: drains the host descriptor ring by
 * periodic polling (each poll costs Dom0 CPU, plus a per-packet relay
 * charge as packets enter the Xen bridge), honouring each guest's
 * receive-ring window — the backpressure that lets host-side
 * scheduling stalls propagate back into the IXP's DRAM buffers.
 * On the transmit side it DMAs guest packets to the IXP over the
 * host-to-device link direction.
 */

#pragma once

#include <cstdint>
#include <memory>

#include "interconnect/msgring.hpp"
#include "interconnect/pcie.hpp"
#include "ixp/island.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "xen/sched.hpp"
#include "xen/vif.hpp"

namespace corm::platform {

/** Receive-path notification mode. */
enum class DriverMode
{
    polling,   ///< periodic poll of the descriptor ring (§2.1 default)
    interrupt, ///< device interrupts the host on post, coalesced
};

/** Messaging-driver cost/behaviour parameters. */
struct DriverParams
{
    DriverMode mode = DriverMode::polling;
    /** Polling period of the receive path (polling mode). */
    corm::sim::Tick pollInterval = 500 * corm::sim::usec;
    /** Dom0 CPU cost of one poll (queue scan + doorbell reads). */
    corm::sim::Tick pollCost = 40 * corm::sim::usec;
    /**
     * Interrupt mode: minimum spacing between interrupts ("the IXP
     * can be programmed to interrupt the host at a user-defined
     * frequency", §2.1) and the per-interrupt CPU cost (cheaper than
     * a poll: no speculative queue scan).
     */
    corm::sim::Tick interruptCoalesce = 50 * corm::sim::usec;
    corm::sim::Tick interruptCost = 12 * corm::sim::usec;
    /** Max descriptors consumed per poll/interrupt. */
    int pollBatch = 64;
    /** Dom0 VCPU that runs the polling work. */
    int pollVcpu = 0;
};

/**
 * The messaging driver: polls the descriptor ring into the bridge
 * (receive) and pushes guest egress packets to the IXP (transmit).
 */
class MessagingDriver
{
  public:
    /**
     * @param simulator Event engine.
     * @param dom0 The control domain paying the CPU costs.
     * @param ring Descriptor ring written by the IXP's DMA engine.
     * @param bridge Xen bridge delivering to guest ViFs.
     * @param h2d Host-to-device link direction (transmit DMA).
     * @param ixp Device receiving transmitted packets.
     * @param params Cost parameters.
     */
    MessagingDriver(corm::sim::Simulator &simulator, corm::xen::Domain &dom0,
                    corm::interconnect::DescriptorRing &ring,
                    corm::xen::XenBridge &bridge,
                    corm::interconnect::Link &h2d,
                    corm::ixp::IxpIsland &ixp, DriverParams params = {})
        : sim(simulator), ctrl(dom0), descriptors(ring), xenBridge(bridge),
          txLink(h2d), device(ixp), cfg(params)
    {
        if (cfg.mode == DriverMode::polling) {
            poller = std::make_unique<corm::sim::PeriodicEvent>(
                sim, cfg.pollInterval, [this] { schedulePoll(); });
        } else {
            descriptors.setPostCallback([this] { onDeviceInterrupt(); });
        }
        xenBridge.setExternalTx(
            [this](corm::net::PacketPtr p) { sendToDevice(std::move(p)); });
    }

    /** Packets delivered from the ring into the bridge. */
    std::uint64_t totalDelivered() const { return delivered.value(); }

    /** Packets DMAed toward the device. */
    std::uint64_t totalTransmitted() const { return transmitted.value(); }

    /** Polls executed. */
    std::uint64_t totalPolls() const { return polls.value(); }

    /** Interrupts taken (interrupt mode). */
    std::uint64_t totalInterrupts() const { return interrupts.value(); }

    /** Change the polling period (the IXP-side Tune knob for hosts). */
    void
    setPollInterval(corm::sim::Tick interval)
    {
        cfg.pollInterval = interval;
        poller = std::make_unique<corm::sim::PeriodicEvent>(
            sim, cfg.pollInterval, [this] { schedulePoll(); });
    }

  private:
    void
    onDeviceInterrupt()
    {
        // Coalescing: one interrupt per window; descriptors posted
        // inside the window ride the same service pass.
        if (pollPending || intrMasked)
            return;
        intrMasked = true;
        sim.schedule(cfg.interruptCoalesce,
                     [this] { intrMasked = false; maybeReArm(); });
        interrupts.add();
        pollPending = true;
        ctrl.submit(cfg.interruptCost, corm::xen::JobKind::system,
                    [this] {
                        pollPending = false;
                        drain();
                    },
                    cfg.pollVcpu);
    }

    void
    maybeReArm()
    {
        // Level-style re-arm: descriptors that arrived while masked
        // (or that a full guest ring deferred) get a fresh interrupt.
        if (cfg.mode == DriverMode::interrupt && !descriptors.empty())
            onDeviceInterrupt();
    }

    void
    schedulePoll()
    {
        // Only one poll job outstanding: if Dom0 is so starved the
        // previous poll hasn't run yet, this period is skipped — the
        // stall the Fig. 7 backpressure chain needs.
        if (pollPending)
            return;
        pollPending = true;
        ctrl.submit(cfg.pollCost, corm::xen::JobKind::system,
                    [this] {
                        pollPending = false;
                        drain();
                    },
                    cfg.pollVcpu);
    }

    void
    drain()
    {
        polls.add();
        int budget = cfg.pollBatch;
        while (budget-- > 0 && !descriptors.empty()) {
            const corm::net::PacketPtr &head = descriptors.front();
            corm::xen::GuestVif *vif =
                xenBridge.vifFor(head->flow.dst);
            if (vif != nullptr && !vif->canAccept())
                break; // guest rx ring full: leave it on the ring
            corm::net::PacketPtr pkt = descriptors.consume();
            delivered.add();
            xenBridge.injectFromExternal(std::move(pkt));
        }
        // Interrupt mode has no periodic poll to pick up leftovers
        // (full guest ring, exhausted batch): self-schedule a
        // re-check so the ring cannot strand descriptors.
        if (cfg.mode == DriverMode::interrupt && !descriptors.empty()) {
            sim.schedule(cfg.interruptCoalesce,
                         [this] { maybeReArm(); });
        }
    }

    void
    sendToDevice(corm::net::PacketPtr pkt)
    {
        transmitted.add();
        auto bytes = pkt->bytes + corm::interconnect::descriptorBytes;
        txLink.transfer(bytes, [this, p = std::move(pkt)]() mutable {
            device.enqueueTx(std::move(p));
        });
    }

    corm::sim::Simulator &sim;
    corm::xen::Domain &ctrl;
    corm::interconnect::DescriptorRing &descriptors;
    corm::xen::XenBridge &xenBridge;
    corm::interconnect::Link &txLink;
    corm::ixp::IxpIsland &device;
    DriverParams cfg;
    std::unique_ptr<corm::sim::PeriodicEvent> poller;
    bool pollPending = false;
    bool intrMasked = false;
    corm::sim::Counter polls;
    corm::sim::Counter interrupts;
    corm::sim::Counter delivered;
    corm::sim::Counter transmitted;
};

} // namespace corm::platform
