/**
 * @file
 * End-to-end integration tests: the paper-reproduction scenarios
 * must keep their headline shapes, and identical seeds must produce
 * identical results (the determinism contract every number in
 * EXPERIMENTS.md relies on).
 *
 * Shorter warm-up/measure windows than the bench binaries keep the
 * suite fast; the asserted shapes are correspondingly coarse.
 */

#include <gtest/gtest.h>

#include "platform/scenarios.hpp"

using namespace corm::sim;
using namespace corm::platform;

namespace {

RubisResult
rubis(bool coordination)
{
    RubisScenarioConfig cfg;
    cfg.coordination = coordination;
    cfg.warmup = 10 * sec;
    cfg.measure = 90 * sec;
    return runRubisScenario(cfg);
}

} // namespace

TEST(ScenarioRubis, BaseProducesTheMotivatingVariability)
{
    const auto r = rubis(false);
    // Fig. 2's shape: every type shows substantial min-max spread.
    int spread_types = 0, rows = 0;
    for (const auto &t : r.types) {
        if (t.count < 20)
            continue;
        ++rows;
        if (t.maxMs > 2.0 * t.minMs)
            ++spread_types;
    }
    ASSERT_GT(rows, 10);
    EXPECT_EQ(spread_types, rows);
    EXPECT_GT(r.throughputRps, 20.0);
    EXPECT_GT(r.meanResponseMs, 50.0);
}

TEST(ScenarioRubis, CoordinationReducesVariance)
{
    const auto base = rubis(false);
    const auto coord = rubis(true);

    // Fig. 4's headline: stddev falls for (nearly) every type.
    int reduced = 0, rows = 0;
    for (std::size_t i = 0; i < base.types.size(); ++i) {
        if (base.types[i].count < 30 || coord.types[i].count < 30)
            continue;
        ++rows;
        if (coord.types[i].stddevMs < base.types[i].stddevMs)
            ++reduced;
    }
    ASSERT_GT(rows, 8);
    EXPECT_GE(reduced, rows - 4);

    // Table 2 direction: throughput and efficiency do not regress.
    EXPECT_GT(coord.throughputRps, base.throughputRps * 0.97);
    EXPECT_GT(coord.platformEfficiency,
              base.platformEfficiency * 0.97);
    // The machinery actually ran. A handful of tunes may still be
    // in flight on the channel when the clock stops.
    EXPECT_GT(coord.tunesSent, 1000u);
    EXPECT_LE(coord.tunesApplied, coord.tunesSent);
    EXPECT_GE(coord.tunesApplied + 16, coord.tunesSent);
    EXPECT_EQ(base.tunesSent, 0u);
}

TEST(ScenarioRubis, CoordinationShiftsWeightsOffDefaults)
{
    const auto coord = rubis(true);
    const bool moved = coord.webWeight != 256.0
        || coord.appWeight != 256.0 || coord.dbWeight != 256.0;
    EXPECT_TRUE(moved);
    // The application server — hot on both paths — ends highest.
    EXPECT_GE(coord.appWeight, coord.webWeight * 0.9);
}

TEST(ScenarioRubis, DeterministicForFixedSeed)
{
    RubisScenarioConfig cfg;
    cfg.coordination = true;
    cfg.warmup = 5 * sec;
    cfg.measure = 20 * sec;
    const auto a = runRubisScenario(cfg);
    const auto b = runRubisScenario(cfg);
    EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
    EXPECT_DOUBLE_EQ(a.meanResponseMs, b.meanResponseMs);
    EXPECT_EQ(a.tunesSent, b.tunesSent);
    EXPECT_DOUBLE_EQ(a.dbWeight, b.dbWeight);
}

TEST(ScenarioRubis, DifferentSeedsDifferButAgreeOnShape)
{
    RubisScenarioConfig cfg;
    cfg.warmup = 5 * sec;
    cfg.measure = 30 * sec;
    const auto a = runRubisScenario(cfg);
    cfg.client.seed = 0x5eed2;
    cfg.server.seed = 0x5eed3;
    const auto b = runRubisScenario(cfg);
    EXPECT_NE(a.throughputRps, b.throughputRps);
    EXPECT_NEAR(a.throughputRps / b.throughputRps, 1.0, 0.15);
}

TEST(ScenarioMplayerQos, DefaultWeightsMissTunedWeightsMeet)
{
    MplayerQosConfig defaults;
    defaults.measure = 45 * sec;
    const auto a = runMplayerQos(defaults);
    // Fig. 6 config (a): neither meets its floor.
    EXPECT_LT(a.fps1, 19.8);
    EXPECT_LT(a.fps2, 24.8);

    MplayerQosConfig tuned;
    tuned.weight1 = 384;
    tuned.weight2 = 512;
    tuned.measure = 45 * sec;
    const auto b = runMplayerQos(tuned);
    // Fig. 6 config (b): both meet.
    EXPECT_GE(b.fps1, 19.8);
    EXPECT_GE(b.fps2, 24.8);
    EXPECT_LT(b.late2, a.late2);
}

TEST(ScenarioMplayerQos, AutoPolicyMatchesManualTuning)
{
    MplayerQosConfig cfg;
    cfg.autoCoordination = true;
    cfg.autoCfg.highFps = 19.0;
    cfg.autoCfg.highBitrateBps = 250e3;
    cfg.autoCfg.increaseDelta = +128.0;
    cfg.autoCfg.perMbpsBonus = +256.0;
    cfg.measure = 45 * sec;
    const auto r = runMplayerQos(cfg);
    EXPECT_GE(r.fps1, 19.5);
    EXPECT_GE(r.fps2, 24.5);
    EXPECT_GT(r.weight1End, 256.0);
    EXPECT_GT(r.weight2End, r.weight1End);
}

TEST(ScenarioTrigger, BoostImprovesStreamAtBystanderCost)
{
    TriggerScenarioConfig base_cfg;
    base_cfg.measure = 60 * sec;
    const auto base = runTriggerScenario(base_cfg);

    TriggerScenarioConfig trig_cfg;
    trig_cfg.trigger = true;
    trig_cfg.measure = 60 * sec;
    const auto trig = runTriggerScenario(trig_cfg);

    // Table 3 shape: the streaming domain gains, the uninvolved
    // local-disk domain pays.
    EXPECT_GT(trig.fps1, base.fps1 * 1.03);
    EXPECT_LT(trig.fps2, base.fps2);
    EXPECT_GT(trig.triggersSent, 0u);
    EXPECT_EQ(trig.triggersSent, trig.boosts);
    EXPECT_EQ(base.triggersSent, 0u);

    // Fig. 7 shape: the buffer saw-tooth exists, crosses the 128 KiB
    // threshold, and drains better with triggers.
    EXPECT_GT(base.bufferPeakBytes, 128.0 * 1024.0);
    EXPECT_LE(trig.ixpQueueDrops, base.ixpQueueDrops);
    EXPECT_GT(base.bufferSeries.size(), 100u);
    EXPECT_GT(trig.cpu1Series.size(), 10u);
}

TEST(ScenarioTrigger, DeterministicForFixedSeed)
{
    TriggerScenarioConfig cfg;
    cfg.trigger = true;
    cfg.measure = 30 * sec;
    const auto a = runTriggerScenario(cfg);
    const auto b = runTriggerScenario(cfg);
    EXPECT_DOUBLE_EQ(a.fps1, b.fps1);
    EXPECT_EQ(a.triggersSent, b.triggersSent);
}

TEST(ScenarioOscillation, BrowsingOnlyMixNeverRegresses)
{
    // The paper's diagnostic: the pure browsing mix has no
    // read-write transitions, so coordination always helps.
    RubisScenarioConfig base_cfg;
    base_cfg.client.mix = corm::apps::rubis::Mix::browsing;
    base_cfg.warmup = 10 * sec;
    base_cfg.measure = 45 * sec;
    auto coord_cfg = base_cfg;
    coord_cfg.coordination = true;
    const auto base = runRubisScenario(base_cfg);
    const auto coord = runRubisScenario(coord_cfg);
    EXPECT_LE(coord.meanResponseMs, base.meanResponseMs * 1.05);
    int regressions = 0;
    for (std::size_t i = 0; i < base.types.size(); ++i) {
        if (base.types[i].count < 30 || coord.types[i].count < 30)
            continue;
        if (coord.types[i].meanMs > base.types[i].meanMs * 1.10)
            ++regressions;
    }
    EXPECT_EQ(regressions, 0);
}
