/**
 * @file
 * Unit tests for the x86 island adapter, the XenCtl interface, guest
 * ViFs and the Xen bridge.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "xen/island.hpp"
#include "xen/sched.hpp"
#include "xen/vif.hpp"

using namespace corm::sim;
using namespace corm::xen;
using corm::net::AppTag;
using corm::net::FiveTuple;
using corm::net::IpAddr;
using corm::net::PacketFactory;
using corm::net::PacketPtr;

namespace {

struct Rig
{
    Simulator sim;
    CreditScheduler sched;
    XenIsland island;
    PacketFactory packets;

    Rig() : sched(sim, 2), island(sim, 1, "x86", sched) {}

    PacketPtr
    packet(IpAddr src, IpAddr dst, std::uint32_t bytes)
    {
        FiveTuple flow;
        flow.src = src;
        flow.dst = dst;
        return packets.make(flow, bytes, AppTag{}, sim.now());
    }
};

} // namespace

//
// XenIsland adapter
//

TEST(XenIsland, ManageAssignsEntityIds)
{
    Rig rig;
    Domain a(rig.sched, 1, "a", 256);
    Domain b(rig.sched, 2, "b", 256);
    const auto ea = rig.island.manage(a);
    const auto eb = rig.island.manage(b);
    EXPECT_NE(ea, eb);
    EXPECT_EQ(rig.island.domainFor(ea), &a);
    EXPECT_EQ(rig.island.domainFor(eb), &b);
    EXPECT_EQ(rig.island.domainFor(999), nullptr);
}

TEST(XenIsland, TuneTranslatesToWeightDelta)
{
    Rig rig;
    Domain dom(rig.sched, 1, "d", 256);
    const auto e = rig.island.manage(dom);
    rig.island.applyTune(e, +128.0);
    EXPECT_DOUBLE_EQ(dom.weight(), 384.0);
    rig.island.applyTune(e, -500.0);
    EXPECT_DOUBLE_EQ(dom.weight(), rig.sched.params().minWeight);
    EXPECT_EQ(rig.island.totalTunes(), 2u);
}

TEST(XenIsland, UnknownEntityOperationsAreIgnored)
{
    Rig rig;
    rig.island.applyTune(42, 1.0);
    rig.island.applyTrigger(42);
    EXPECT_EQ(rig.island.totalTunes(), 0u);
    EXPECT_EQ(rig.island.totalTriggers(), 0u);
    EXPECT_EQ(rig.island.totalIgnored(), 2u);
}

TEST(XenIsland, TriggerBoostsDomain)
{
    Rig rig;
    Domain dom(rig.sched, 1, "d", 256);
    const auto e = rig.island.manage(dom);
    rig.island.applyTrigger(e);
    EXPECT_EQ(rig.island.totalTriggers(), 1u);
    EXPECT_EQ(rig.sched.stats().boosts.value(), 1u);
}

TEST(XenIsland, TuneDecayRelaxesTowardBaseline)
{
    Rig rig;
    Domain dom(rig.sched, 1, "d", 256);
    const auto e = rig.island.manage(dom);
    rig.island.setTuneDecay(1 * sec);
    rig.island.applyTune(e, +512.0);
    EXPECT_DOUBLE_EQ(dom.weight(), 768.0);
    rig.sim.runFor(3 * sec);
    // Three time constants later the weight is nearly back at 256.
    EXPECT_LT(dom.weight(), 300.0);
    EXPECT_GT(dom.weight(), 255.0);
    // Disabling decay freezes the weight.
    rig.island.setTuneDecay(0);
    const double frozen = dom.weight();
    rig.sim.runFor(2 * sec);
    EXPECT_DOUBLE_EQ(dom.weight(), frozen);
}

TEST(XenIsland, PowerRisesWithLoad)
{
    Rig rig;
    Domain dom(rig.sched, 1, "d", 256);
    (void)rig.island.currentPowerWatts(); // establish the window
    rig.sim.runFor(100 * msec);
    const double idle = rig.island.currentPowerWatts();
    dom.submit(1 * sec, JobKind::user);
    rig.sim.runFor(100 * msec);
    const double busy = rig.island.currentPowerWatts();
    EXPECT_GT(busy, idle);
}

TEST(XenCtl, GetSetAdjustBoost)
{
    Rig rig;
    Domain dom(rig.sched, 1, "d", 256);
    XenCtl &ctl = rig.island.xenctl();
    EXPECT_DOUBLE_EQ(ctl.getWeight(dom), 256.0);
    ctl.setWeight(dom, 512.0);
    EXPECT_DOUBLE_EQ(ctl.getWeight(dom), 512.0);
    ctl.adjustWeight(dom, -112.0);
    EXPECT_DOUBLE_EQ(ctl.getWeight(dom), 400.0);
    ctl.boost(dom);
    EXPECT_EQ(rig.sched.stats().boosts.value(), 1u);
}

//
// GuestVif
//

TEST(GuestVif, DeliveryChargesSystemTimeThenHandsToApp)
{
    Rig rig;
    Domain dom(rig.sched, 1, "d", 256);
    GuestVif vif(dom, IpAddr(10, 0, 0, 2));
    int received = 0;
    Tick received_at = 0;
    vif.setReceiveHandler([&](PacketPtr) {
        ++received;
        received_at = rig.sim.now();
    });
    vif.deliver(rig.packet(IpAddr(10, 0, 9, 1), vif.ip(), 2048));
    rig.sim.runFor(10 * msec);
    EXPECT_EQ(received, 1);
    EXPECT_GT(received_at, 0u); // stack cost elapsed first
    EXPECT_GT(dom.cpuUsage().busy(UtilizationTracker::Kind::system), 0u);
    EXPECT_EQ(vif.totalRxPackets(), 1u);
    EXPECT_EQ(vif.totalRxBytes(), 2048u);
}

TEST(GuestVif, RxWindowTracksInflight)
{
    Rig rig;
    // A zero-weight... rather, block the guest by keeping the other
    // domain hogging both cores is complex; instead use a huge rx
    // cost so packets stay in flight.
    VifParams params;
    params.rxPerPacket = 100 * msec;
    params.rxRingDepth = 2;
    Domain dom(rig.sched, 1, "d", 256);
    GuestVif vif(dom, IpAddr(10, 0, 0, 2), params);
    vif.setReceiveHandler([](PacketPtr) {});
    EXPECT_TRUE(vif.canAccept());
    vif.deliver(rig.packet(IpAddr(10, 0, 9, 1), vif.ip(), 100));
    vif.deliver(rig.packet(IpAddr(10, 0, 9, 1), vif.ip(), 100));
    EXPECT_FALSE(vif.canAccept());
    EXPECT_EQ(vif.inflight(), 2);
    rig.sim.runFor(300 * msec);
    EXPECT_TRUE(vif.canAccept());
    EXPECT_EQ(vif.inflight(), 0);
}

TEST(GuestVif, TransmitChargesGuestThenHitsWire)
{
    Rig rig;
    Domain dom(rig.sched, 1, "d", 256);
    GuestVif vif(dom, IpAddr(10, 0, 0, 2));
    int on_wire = 0;
    vif.transmit(rig.packet(vif.ip(), IpAddr(10, 0, 9, 1), 1500),
                 [&](PacketPtr) { ++on_wire; });
    EXPECT_EQ(on_wire, 0); // not before the tx stack job runs
    rig.sim.runFor(10 * msec);
    EXPECT_EQ(on_wire, 1);
    EXPECT_EQ(vif.totalTxPackets(), 1u);
}

//
// XenBridge
//

TEST(XenBridge, RelaysBetweenLocalGuests)
{
    Rig rig;
    Domain dom0(rig.sched, 0, "dom0", 256, 2);
    Domain g1(rig.sched, 1, "g1", 256);
    Domain g2(rig.sched, 2, "g2", 256);
    GuestVif v1(g1, IpAddr(10, 0, 0, 2));
    GuestVif v2(g2, IpAddr(10, 0, 0, 3));
    XenBridge bridge(dom0, 15 * usec);
    bridge.attach(v1);
    bridge.attach(v2);
    int got = 0;
    v2.setReceiveHandler([&](PacketPtr) { ++got; });

    bridge.relayFromGuest(rig.packet(v1.ip(), v2.ip(), 1000));
    rig.sim.runFor(10 * msec);
    EXPECT_EQ(got, 1);
    EXPECT_EQ(bridge.totalRelayed(), 1u);
    // Dom0 paid the relay cost.
    EXPECT_GT(dom0.cpuUsage().busy(UtilizationTracker::Kind::system), 0u);
}

TEST(XenBridge, NonLocalEgressGoesExternal)
{
    Rig rig;
    Domain dom0(rig.sched, 0, "dom0", 256, 2);
    XenBridge bridge(dom0, 15 * usec);
    int external = 0;
    bridge.setExternalTx([&](PacketPtr) { ++external; });
    bridge.relayFromGuest(
        rig.packet(IpAddr(10, 0, 0, 2), IpAddr(99, 0, 0, 1), 500));
    rig.sim.runFor(10 * msec);
    EXPECT_EQ(external, 1);
}

TEST(XenBridge, InboundWithoutGuestIsNoRoute)
{
    Rig rig;
    Domain dom0(rig.sched, 0, "dom0", 256, 2);
    XenBridge bridge(dom0, 15 * usec);
    bridge.setExternalTx([](PacketPtr) {
        FAIL() << "inbound traffic must not loop back out";
    });
    bridge.injectFromExternal(
        rig.packet(IpAddr(10, 0, 9, 1), IpAddr(10, 0, 0, 7), 500));
    rig.sim.runFor(10 * msec);
    EXPECT_EQ(bridge.totalNoRoute(), 1u);
    EXPECT_EQ(bridge.totalInjected(), 1u);
}

TEST(XenBridge, VifLookupByIp)
{
    Rig rig;
    Domain dom0(rig.sched, 0, "dom0", 256, 2);
    Domain g1(rig.sched, 1, "g1", 256);
    GuestVif v1(g1, IpAddr(10, 0, 0, 2));
    XenBridge bridge(dom0, 15 * usec);
    bridge.attach(v1);
    EXPECT_EQ(bridge.vifFor(IpAddr(10, 0, 0, 2)), &v1);
    EXPECT_EQ(bridge.vifFor(IpAddr(10, 0, 0, 3)), nullptr);
}
